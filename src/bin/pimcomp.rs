//! `pimcomp` — command-line driver for the compilation framework.
//!
//! ```text
//! pimcomp compile  --model resnet18 [--mode ht|ll] [--chips N] [--parallelism P]
//!                  [--policy naive|add|ag] [--ga POPxITERS] [--seed S]
//!                  [--artifact out.pimc.json] [--progress]
//!                  [--simulate] [--report out.json]
//! pimcomp simulate --artifact model.pimc.json [--report out.json]
//! pimcomp inspect  --model model.onnx           # graph + workload stats
//! pimcomp inspect  --artifact model.pimc.json   # compiled-stage summary
//! pimcomp export   --model vgg16 --out vgg16.onnx
//! pimcomp models                                # list the zoo
//! pimcomp explore  sweep.json [--threads N] [--out report.json]
//! pimcomp explore  --diff old.json --against new.json
//! pimcomp serve    --spec sweep.json [--out report.json] [--journal FILE]
//! pimcomp work     --connect host:port [--cache DIR]
//! ```
//!
//! `--model` accepts either a zoo name (`vgg16`, `resnet18`,
//! `googlenet`, `inception_v3`, `squeezenet`, `tiny_cnn`, …) or a path
//! to an `.onnx` file.
//!
//! The compile-once/serve-many flow: `compile --artifact` persists a
//! versioned [`CompiledArtifact`]; `simulate --artifact` (typically on
//! another machine) executes it without recompiling. Pass
//! `--chips`/`--parallelism` to `simulate` to pin the serving target —
//! the artifact's hardware fingerprint is then checked against it.

use pimcomp::prelude::*;
use pimcomp_arch::PipelineMode;
use pimcomp_core::{CompileStage, GaParams, ReusePolicy};
use pimcomp_ir::transform::normalize;
use pimcomp_ir::{Graph, GraphStats};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `explore` takes a positional spec path; handle it before the
    // flag-only parser.
    if cmd == "explore" {
        return match cmd_explore(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "compile" => cmd_compile(&opts),
        "simulate" => cmd_simulate(&opts),
        "verify" => cmd_verify(&opts),
        "inspect" => cmd_inspect(&opts),
        "export" => cmd_export(&opts),
        "models" => cmd_models(),
        "serve" => cmd_serve(&opts),
        "work" => cmd_work(&opts),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "pimcomp — compilation framework for crossbar-based PIM DNN accelerators

USAGE:
  pimcomp compile  --model <NAME|FILE.onnx> [options]  compile (and optionally simulate)
  pimcomp simulate --artifact <FILE.pimc.json>         simulate a saved artifact
  pimcomp verify   --artifact <FILE.pimc.json>         functionally execute a saved
                                                       artifact and check its numerics
  pimcomp inspect  --model <NAME|FILE.onnx>            print graph and workload statistics
  pimcomp inspect  --artifact <FILE.pimc.json>         summarize a saved artifact's stages
  pimcomp export   --model <NAME> --out <FILE.onnx>    export a zoo model as ONNX
  pimcomp models                                       list zoo models
  pimcomp explore  <SPEC.json> [options]               run a design-space sweep
  pimcomp explore  --diff <OLD.json> --against <NEW.json>
                                                       diff two sweep reports
  pimcomp serve    --spec <SPEC.json> [options]        coordinate a distributed sweep
  pimcomp work     --connect <HOST:PORT> [options]     join a sweep as a worker

OPTIONS (compile):
  --mode ht|ll            pipeline mode (default: ht)
  --chips N               chip count (default: sized to fit with 2x headroom)
  --parallelism P         parallelism degree (default: 20)
  --policy naive|add|ag   memory-reuse policy (default: ag)
  --ga POPxITERS          GA size (default: 100x200)
  --seed S                GA seed (default: 1)
  --weight-reload         allow time-multiplexing the crossbars: models
                          larger than the target compile into mapping
                          epochs whose weights are rewritten between
                          phases (reload stalls appear in the report)
  --seq-len N             bind symbolic sequence dimensions to N tokens
                          (required for transformer models such as
                          tiny_bert; ignored by fixed-shape CNNs)
  --reload-budget N       cap the resident crossbar budget at N
                          (default: the target's full crossbar count;
                          requires --weight-reload)
  --threads N|auto        GA worker threads (`auto` uses all cores; any
                          value compiles bit-identically; default: the
                          PIMCOMP_GA_THREADS env var, else 1)
  --artifact FILE         save the compiled model as a versioned artifact
  --progress              stream stage + GA-generation progress to stderr
  --simulate              run the cycle-accurate simulator on the result
  --report FILE.json      write a JSON report

OPTIONS (simulate):
  --artifact FILE         artifact produced by `compile --artifact`
  --chips N, --parallelism P
                          pin the serving target; the artifact's hardware
                          fingerprint is checked against it (default: the
                          artifact's own embedded hardware)
  --report FILE.json      write the simulation report as JSON

OPTIONS (verify):
  --artifact FILE         artifact produced by `compile --artifact`
  --seed S                synthetic weight/input seed (default: 1); must
                          match a seed the caller wants to reproduce —
                          verification is self-contained, any seed works
  --tolerance T           max acceptable output RMSE for the unquantized
                          check (default: 1e-4)
  --quantized             also execute with crossbar quantization (weight
                          bit-slicing into cells plus ADC clipping) and
                          report the accuracy degradation; the run fails
                          only if the quantized top-1 prediction flips
  --adc-bits B            ADC resolution for --quantized (default: 8;
                          32 means an ideal converter)

OPTIONS (explore):
  (the sweep spec JSON — models incl. .onnx paths, modes, hardware grids
  or \"auto\" per-model sizing, memory_policies, ht_batches, seeds,
  search — is documented field by field in docs/SWEEP_SPEC.md)
  --threads N|auto        sweep worker threads (default: auto; any value
                          produces a byte-identical report)
  --out FILE.json         write the versioned sweep report as JSON
  --csv FILE.csv          write the sweep report as CSV
  --cache DIR|off         per-point artifact cache; reruns replay cached
                          points (default: .pimcomp-cache)
  --cache-max-mb N        bound the cache directory; least-recently-used
                          artifacts are evicted after the run (default:
                          unbounded)
  --budget-summary        print per-rung evaluation accounting and the
                          evaluations saved vs an exhaustive sweep (the
                          spec's `search` section selects the strategy)
  --progress              stream per-point completions (key, rung, cache
                          hit/miss) to stderr; stdout is unchanged
  --diff OLD --against NEW
                          compare two sweep reports instead of running

OPTIONS (serve):
  --spec SPEC.json        the sweep spec (exhaustive search only)
  --listen HOST:PORT      listen address (default: 127.0.0.1:0 — any free
                          port; see --port-file)
  --port-file FILE        write the bound address (host:port) to FILE once
                          listening, for scripted worker launches
  --journal FILE          append-only crash-resume journal; rerunning with
                          the same spec and journal resumes completed points
  --lease-size N          points per worker lease (default: 4)
  --lease-timeout-secs S  reclaim leases older than this (default: 60)
  --out FILE.json         write the report — byte-identical to a
                          single-process `pimcomp explore --out` run
  --csv FILE.csv          write the report as CSV
  --progress              stream lease/point/worker events to stderr

OPTIONS (work):
  --connect HOST:PORT     coordinator address (required)
  --name NAME             display name in the coordinator's progress view
  --cache DIR             shared content-addressed artifact store
  --cache-max-mb N        bound the cache (LRU eviction after each lease)
  --max-points N          stop after N points (CI kill/restart drills)
  --throttle-ms MS        sleep after each point (test interleaving)";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        match key {
            "simulate" | "progress" | "weight-reload" | "quantized" => {
                map.insert(key.to_string(), "true".to_string());
            }
            _ => {
                let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                map.insert(key.to_string(), v.clone());
            }
        }
    }
    Ok(map)
}

fn load_model(opts: &HashMap<String, String>) -> Result<Graph, String> {
    let spec = opts
        .get("model")
        .ok_or("`--model` is required (zoo name or .onnx path)")?;
    if spec.ends_with(".onnx") {
        let bytes = std::fs::read(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
        return pimcomp_onnx::import_bytes(&bytes).map_err(|e| e.to_string());
    }
    pimcomp::ir::models::test_model(spec)
        .or_else(|| pimcomp::ir::models::by_name(spec))
        .ok_or_else(|| {
            format!(
                "unknown model `{spec}`; available models: {}",
                pimcomp::ir::models::ZOO
                    .iter()
                    .chain(pimcomp::ir::models::TEST_MODELS.iter())
                    .copied()
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
}

fn hardware(opts: &HashMap<String, String>, graph: &Graph) -> Result<HardwareConfig, String> {
    let parallelism: usize = opts
        .get("parallelism")
        .map(|s| s.parse().map_err(|_| "bad --parallelism"))
        .transpose()?
        .unwrap_or(20);
    let chips = match opts.get("chips") {
        Some(s) => s.parse().map_err(|_| "bad --chips")?,
        // The shared headroom heuristic (also behind `hardware: "auto"`
        // in sweep specs and the bench harness's sizing).
        None => pimcomp_core::sized_chips(graph, &HardwareConfig::puma(), 2.0)
            .map_err(|e| e.to_string())?,
    };
    let hw = HardwareConfig::puma_with_chips(chips).with_parallelism(parallelism);
    hw.validate().map_err(|e| e.to_string())?;
    Ok(hw)
}

fn cmd_compile(opts: &HashMap<String, String>) -> Result<(), String> {
    let graph =
        normalize(&load_model(opts)?).map_err(|e| format!("model failed normalization: {e}"))?;
    let seq_len = opts
        .get("seq-len")
        .map(|s| {
            s.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or("--seq-len expects a positive integer")
        })
        .transpose()?;
    // Hardware sizing needs fixed shapes; the session re-binds (a
    // no-op on the already-bound graph) through the same options path
    // API users take.
    let sizing_graph = match seq_len {
        Some(n) => pimcomp::ir::transform::bind_seq_len(&graph, n).map_err(|e| e.to_string())?,
        None => graph.clone(),
    };
    let hw = hardware(opts, &sizing_graph)?;
    let mode = match opts.get("mode").map(String::as_str).unwrap_or("ht") {
        "ht" | "HT" => PipelineMode::HighThroughput,
        "ll" | "LL" => PipelineMode::LowLatency,
        other => return Err(format!("unknown mode `{other}` (ht|ll)")),
    };
    let policy = match opts.get("policy").map(String::as_str).unwrap_or("ag") {
        "naive" => ReusePolicy::Naive,
        "add" => ReusePolicy::AddReuse,
        "ag" => ReusePolicy::AgReuse,
        other => return Err(format!("unknown policy `{other}` (naive|add|ag)")),
    };
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(1);
    let parallelism = match opts.get("threads").map(String::as_str) {
        None => None,
        Some("auto") => std::thread::available_parallelism().ok(),
        Some(raw) => {
            let n: usize = raw
                .parse()
                .map_err(|_| "--threads expects a positive integer or `auto`")?;
            Some(std::num::NonZeroUsize::new(n).ok_or("--threads must be at least 1 (or `auto`)")?)
        }
    };
    let ga = match opts.get("ga").map(String::as_str) {
        Some(spec) => {
            let (pop, iters) = spec
                .split_once('x')
                .ok_or("--ga expects POPxITERS, e.g. 100x200")?;
            GaParams {
                population: pop.parse().map_err(|_| "bad GA population")?,
                iterations: iters.parse().map_err(|_| "bad GA iterations")?,
                seed,
                parallelism,
                ..GaParams::default()
            }
        }
        None => GaParams {
            seed,
            parallelism,
            ..GaParams::default()
        },
    };

    println!(
        "compiling {} for {} chips x {} cores (parallelism {}, {mode} mode)...",
        graph.name(),
        hw.chips,
        hw.cores_per_chip,
        hw.parallelism
    );
    let reload_budget = opts
        .get("reload-budget")
        .map(|s| s.parse::<usize>().map_err(|_| "bad --reload-budget"))
        .transpose()?;
    let mut compile_opts = CompileOptions::new(mode).with_ga(ga).with_policy(policy);
    if let Some(n) = seq_len {
        compile_opts = compile_opts.with_seq_len(n);
    }
    if opts.contains_key("weight-reload") {
        compile_opts = compile_opts.with_weight_reload(reload_budget);
    } else if reload_budget.is_some() {
        return Err("--reload-budget requires --weight-reload".to_string());
    }
    let session =
        CompileSession::new(hw.clone(), &graph, compile_opts).map_err(|e| e.to_string())?;
    let compiled = if opts.contains_key("progress") {
        session.run_observed(&mut ProgressPrinter::default())
    } else {
        session.run()
    }
    .map_err(|e| e.to_string())?;

    let r = &compiled.report;
    println!(
        "  stages: partition {:?}, replicate+map {:?}, schedule {:?}",
        r.timings.node_partitioning, r.timings.replicating_mapping, r.timings.dataflow_scheduling
    );
    println!("  replication: {:?}", r.replication);
    println!(
        "  {} active cores, {} / {} crossbars, estimated {} = {:.0} cycles",
        r.active_cores,
        r.crossbars_used,
        hw.total_crossbars(),
        if mode == PipelineMode::HighThroughput {
            "F_HT"
        } else {
            "F_LL"
        },
        r.estimated_fitness
    );
    if let Some(plan) = &compiled.reload {
        if plan.is_single_epoch() {
            println!(
                "  weight reload: fits the {}-crossbar budget in one epoch (no reload cost)",
                plan.budget
            );
        } else {
            println!(
                "  weight reload: {} epochs over a {}-crossbar budget, {} AGs rewritten, \
                 {} write-stall cycles, {:.1} uJ write energy",
                plan.epoch_count(),
                plan.budget,
                plan.total_ags_written,
                plan.total_write_cycles,
                plan.total_write_pj / 1e6
            );
        }
    }

    let sim_report = if opts.contains_key("simulate") {
        let report = Simulator::new(hw)
            .run(&compiled)
            .map_err(|e| e.to_string())?;
        match mode {
            PipelineMode::HighThroughput => println!(
                "  simulated: {} cycles/inference -> {:.0} inf/s",
                report.total_cycles, report.throughput_inf_per_s
            ),
            PipelineMode::LowLatency => println!(
                "  simulated: {} cycles latency ({:.1} us)",
                report.total_cycles, report.latency_us
            ),
        }
        println!(
            "  energy {:.1} uJ (dyn {:.1} + leak {:.1}), avg local mem {:.1} kB",
            report.energy.total_pj() / 1e6,
            report.energy.dynamic_pj() / 1e6,
            report.energy.leakage_pj / 1e6,
            report.memory.avg_local_bytes / 1024.0
        );
        if report.reload_stall_cycles > 0 {
            println!(
                "  reload: {} epochs, {} AGs rewritten, {} stall cycles, {:.1} uJ write energy",
                report.reload_epochs,
                report.reload_ags_rewritten,
                report.reload_stall_cycles,
                report.energy.reload_pj / 1e6
            );
        }
        Some(report)
    } else {
        None
    };

    if let Some(path) = opts.get("report") {
        #[derive(serde::Serialize)]
        struct FullReport<'a> {
            compile: &'a pimcomp_core::CompileReport,
            simulation: Option<&'a pimcomp_sim::SimReport>,
        }
        let payload = FullReport {
            compile: r,
            simulation: sim_report.as_ref(),
        };
        let json = serde_json::to_string_pretty(&payload).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("  wrote {path}");
    }

    // Last, so the model can be moved into the artifact without a
    // deep copy (compiled models for large networks are megabytes).
    if let Some(path) = opts.get("artifact") {
        let artifact = CompiledArtifact::new(compiled);
        artifact.save(path).map_err(|e| e.to_string())?;
        println!(
            "  wrote artifact {path} (format v{}, hw fingerprint {:#018x})",
            artifact.format_version(),
            artifact.hw_fingerprint()
        );
    }
    Ok(())
}

/// Observer streaming stage + GA progress to stderr (`--progress`).
#[derive(Default)]
struct ProgressPrinter {
    last_reported: usize,
}

/// Whether `GA_DEBUG` is set, read **once** per process. The mutation
/// diagnostics it unlocks flow through the [`GaGeneration`] observer
/// snapshot (the library tallies them into `GaStats` instead of
/// printing to stderr from the hot mutation loop).
fn ga_debug() -> bool {
    static GA_DEBUG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *GA_DEBUG.get_or_init(|| std::env::var_os("GA_DEBUG").is_some())
}

impl CompileObserver for ProgressPrinter {
    fn on_stage_start(&mut self, stage: CompileStage) {
        eprintln!("[stage] {} ...", stage.label());
    }

    fn on_stage_finish(&mut self, stage: CompileStage, elapsed: Duration) {
        eprintln!("[stage] {} done in {elapsed:?}", stage.label());
    }

    fn on_ga_generation(&mut self, p: GaGeneration) {
        // Report ~20 times per run to keep stderr readable.
        let step = (p.total_generations / 20).max(1);
        if p.generation >= self.last_reported + step || p.generation + 1 == p.total_generations {
            self.last_reported = p.generation;
            eprintln!(
                "[ga] generation {}/{}: best fitness {:.0} ({} evaluations, {} cache hits)",
                p.generation + 1,
                p.total_generations,
                p.best_fitness,
                p.evaluations,
                p.cache_hits
            );
            if ga_debug() {
                eprintln!(
                    "[ga]   grow mutations so far: {} placed, {} failed (wedged \
                     against capacity when failures dominate)",
                    p.grow_successes, p.grow_failures
                );
            }
        }
    }
}

fn cmd_simulate(opts: &HashMap<String, String>) -> Result<(), String> {
    let path = opts
        .get("artifact")
        .ok_or("`--artifact FILE` is required (produced by `compile --artifact`)")?;
    let artifact = CompiledArtifact::load(path).map_err(|e| e.to_string())?;
    let model = artifact.model();
    println!(
        "loaded {path}: {} ({} mode, format v{}, hw fingerprint {:#018x})",
        model.report.model,
        model.mode,
        artifact.format_version(),
        artifact.hw_fingerprint()
    );
    // With --chips/--parallelism the caller pins the serving target and
    // the fingerprint check is meaningful; otherwise the artifact's own
    // embedded hardware is the target (trivially matching).
    let target = if opts.contains_key("chips") || opts.contains_key("parallelism") {
        let chips = match opts.get("chips") {
            Some(s) => s.parse().map_err(|_| "bad --chips")?,
            None => model.hw.chips,
        };
        let parallelism = match opts.get("parallelism") {
            Some(s) => s.parse().map_err(|_| "bad --parallelism")?,
            None => model.hw.parallelism,
        };
        HardwareConfig::puma_with_chips(chips).with_parallelism(parallelism)
    } else {
        model.hw.clone()
    };
    let report = Simulator::new(target)
        .run_artifact(&artifact)
        .map_err(|e| e.to_string())?;
    match model.mode {
        PipelineMode::HighThroughput => println!(
            "  simulated: {} cycles/inference -> {:.0} inf/s",
            report.total_cycles, report.throughput_inf_per_s
        ),
        PipelineMode::LowLatency => println!(
            "  simulated: {} cycles latency ({:.1} us)",
            report.total_cycles, report.latency_us
        ),
    }
    println!(
        "  energy {:.1} uJ (dyn {:.1} + leak {:.1}), avg local mem {:.1} kB",
        report.energy.total_pj() / 1e6,
        report.energy.dynamic_pj() / 1e6,
        report.energy.leakage_pj / 1e6,
        report.memory.avg_local_bytes / 1024.0
    );
    if let Some(out) = opts.get("report") {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| e.to_string())?;
        println!("  wrote {out}");
    }
    Ok(())
}

fn cmd_verify(opts: &HashMap<String, String>) -> Result<(), String> {
    let path = opts
        .get("artifact")
        .ok_or("`--artifact FILE` is required (produced by `compile --artifact`)")?;
    let artifact = CompiledArtifact::load(path).map_err(|e| e.to_string())?;
    let model = artifact.model();
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(1);
    let tolerance: f64 = opts
        .get("tolerance")
        .map(|s| s.parse().map_err(|_| "bad --tolerance"))
        .transpose()?
        .unwrap_or(1e-4);
    println!(
        "loaded {path}: {} ({} mode, format v{}, hw fingerprint {:#018x})",
        model.report.model,
        model.mode,
        artifact.format_version(),
        artifact.hw_fingerprint()
    );
    let exact = pimcomp::exec::verify_model(model, seed, None).map_err(|e| e.to_string())?;
    println!(
        "  unquantized: RMSE {:.3e} over {} output values, top-1 {} (seed {seed})",
        exact.output_rmse,
        exact.output_len,
        if exact.top1_match {
            "match"
        } else {
            "MISMATCH"
        }
    );
    if exact.output_rmse > tolerance {
        return Err(format!(
            "mapped execution diverges from the reference: RMSE {:.3e} exceeds tolerance {tolerance:.1e}",
            exact.output_rmse
        ));
    }
    if opts.contains_key("quantized") {
        let adc_bits: u32 = opts
            .get("adc-bits")
            .map(|s| s.parse().map_err(|_| "bad --adc-bits"))
            .transpose()?
            .unwrap_or(8);
        let quant = pimcomp_arch::QuantConfig::for_hardware(&model.hw, adc_bits)
            .map_err(|e| e.to_string())?;
        let q = pimcomp::exec::verify_model(model, seed, Some(quant)).map_err(|e| e.to_string())?;
        println!(
            "  quantized ({}b cells, {}b weights, {}b ADC): RMSE {:.3e}, top-1 {}",
            model.hw.cell_bits,
            model.hw.weight_bits,
            adc_bits,
            q.output_rmse,
            if q.top1_match { "match" } else { "MISMATCH" }
        );
        if !q.top1_match {
            return Err(format!(
                "quantization at {adc_bits} ADC bits flips the top-1 prediction \
                 (RMSE {:.3e}); raise --adc-bits or the cell precision",
                q.output_rmse
            ));
        }
    }
    println!("  verification passed");
    Ok(())
}

fn inspect_artifact(path: &str) -> Result<(), String> {
    let artifact = CompiledArtifact::load(path).map_err(|e| e.to_string())?;
    let m = artifact.model();
    let r = &m.report;
    println!(
        "artifact {path} (format v{}, hw fingerprint {:#018x})",
        artifact.format_version(),
        artifact.hw_fingerprint()
    );
    println!(
        "model: {} compiled by {} in {} mode",
        r.model, r.compiler, r.mode
    );
    println!(
        "hardware: {} chips x {} cores, parallelism {}",
        m.hw.chips, m.hw.cores_per_chip, m.hw.parallelism
    );
    println!("stages:");
    println!(
        "  partitioning : {:?} ({} MVM nodes)",
        r.timings.node_partitioning,
        m.partitioning.len()
    );
    print!(
        "  replicate+map: {:?} ({} active cores, {} crossbars",
        r.timings.replicating_mapping, r.active_cores, r.crossbars_used
    );
    match &r.ga {
        Some(ga) => println!(
            "; GA {:.0} -> {:.0} over {} generations, {} evals ({} incremental), {} cache hits)",
            ga.initial_fitness,
            ga.final_fitness,
            ga.history.len(),
            ga.evaluations,
            ga.incremental_evals,
            ga.cache_hits
        ),
        None => println!(")"),
    }
    println!(
        "  scheduling   : {:?} ({} schedule, {} policy, peak local {:.1} kB)",
        r.timings.dataflow_scheduling,
        match &m.schedule {
            pimcomp_core::Schedule::HighThroughput(_) => "HT",
            pimcomp_core::Schedule::LowLatency(_) => "LL",
        },
        m.memory.policy.label(),
        m.memory.peak_bytes as f64 / 1024.0
    );
    println!("replication: {:?}", r.replication);
    match &m.reload {
        Some(plan) if plan.is_single_epoch() => println!(
            "weight reload: single epoch within a {}-crossbar budget (resident, no reload cost)",
            plan.budget
        ),
        Some(plan) => println!(
            "weight reload: {} epochs over a {}-crossbar budget ({} AGs rewritten, \
             {} write-stall cycles, {:.1} uJ)",
            plan.epoch_count(),
            plan.budget,
            plan.total_ags_written,
            plan.total_write_cycles,
            plan.total_write_pj / 1e6
        ),
        None => {}
    }
    println!("estimated fitness: {:.0} cycles", r.estimated_fitness);
    Ok(())
}

fn cmd_inspect(opts: &HashMap<String, String>) -> Result<(), String> {
    if let Some(path) = opts.get("artifact") {
        return inspect_artifact(path);
    }
    let graph = load_model(opts)?;
    let stats = GraphStats::of(&graph);
    println!("model: {} ({} nodes)", stats.model, stats.nodes);
    println!(
        "totals: {} conv/fc nodes, {:.2}M params, {:.2}G MACs",
        stats.mvm_nodes,
        stats.params as f64 / 1e6,
        stats.macs as f64 / 1e9
    );
    println!(
        "\n{:<28} {:<10} {:>12} {:>14} {:>10}",
        "node", "op", "params", "MACs", "windows"
    );
    for n in &stats.per_node {
        if n.macs == 0 && n.params == 0 {
            continue;
        }
        println!(
            "{:<28} {:<10} {:>12} {:>14} {:>10}",
            n.name, n.op, n.params, n.macs, n.windows
        );
    }
    Ok(())
}

fn cmd_export(opts: &HashMap<String, String>) -> Result<(), String> {
    let graph = load_model(opts)?;
    let out = opts.get("out").ok_or("`--out FILE.onnx` is required")?;
    let bytes = pimcomp_onnx::export_graph(&graph).encode();
    std::fs::write(out, &bytes).map_err(|e| e.to_string())?;
    println!("wrote {out} ({} bytes)", bytes.len());
    Ok(())
}

fn cmd_explore(args: &[String]) -> Result<(), String> {
    use pimcomp::dse::{ExploreEngine, SweepReport, SweepSpec};

    // One positional (the spec path) plus --key value flags.
    let mut spec_path: Option<String> = None;
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            if key == "budget-summary" || key == "progress" {
                flags.insert(key.to_string(), "true".to_string());
                continue;
            }
            let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            flags.insert(key.to_string(), v.clone());
        } else if spec_path.is_none() {
            spec_path = Some(a.clone());
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
    }

    // Diff mode: compare two saved reports instead of running.
    if let Some(old) = flags.get("diff") {
        let new = flags
            .get("against")
            .ok_or("`--diff OLD` needs `--against NEW`")?;
        let old_report = SweepReport::load(old).map_err(|e| e.to_string())?;
        let new_report = SweepReport::load(new).map_err(|e| e.to_string())?;
        print!("{}", old_report.diff(&new_report));
        return Ok(());
    }

    let spec_path = spec_path
        .or_else(|| flags.get("spec").cloned())
        .ok_or("`pimcomp explore` needs a sweep spec path (JSON)")?;
    let json =
        std::fs::read_to_string(&spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let spec = SweepSpec::from_json(&json).map_err(|e| e.to_string())?;

    let threads = match flags.get("threads").map(String::as_str) {
        None | Some("auto") => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--threads expects a positive integer or `auto`")?,
    };
    let mut engine = ExploreEngine::new().with_threads(threads);
    match flags.get("cache").map(String::as_str) {
        Some("off") => {}
        Some(dir) => engine = engine.with_cache_dir(dir),
        None => engine = engine.with_cache_dir(".pimcomp-cache"),
    }
    if let Some(raw) = flags.get("cache-max-mb") {
        let max_mb: u64 = raw
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--cache-max-mb expects a positive integer (megabytes)")?;
        engine = engine.with_cache_limit_mb(max_mb);
    }
    if flags.contains_key("progress") {
        // Per-point completions go to stderr; stdout (the summary and
        // frontier table) is byte-for-byte what a silent run prints.
        engine = engine.with_progress(std::sync::Arc::new(|e: &pimcomp::dse::PointEvent| {
            eprintln!(
                "[explore] {}/{} {} rung {} ({}{})",
                e.index + 1,
                e.total,
                e.key,
                e.rung,
                if e.cache_hit { "cache hit" } else { "compiled" },
                if e.ok { "" } else { ", failed" }
            );
        }));
    }

    // The mode/batch factor is spelled so the printed product equals
    // the point count even when LL modes collapse the batch axis.
    let ht_modes = spec
        .modes
        .iter()
        .filter(|&&m| m == PipelineMode::HighThroughput)
        .count();
    let ll_modes = spec.modes.len() - ht_modes;
    let mode_axis = match (ht_modes, ll_modes) {
        (_, 0) => format!("{} modes x {} batches", ht_modes, spec.batches.len()),
        (0, _) => format!("{ll_modes} modes"),
        _ => format!(
            "({ht_modes} HT mode{} x {} batches + {ll_modes} LL mode{})",
            if ht_modes == 1 { "" } else { "s" },
            spec.batches.len(),
            if ll_modes == 1 { "" } else { "s" },
        ),
    };
    // The reload axis only shows up when the spec sweeps it; the
    // historical banner stays untouched for reload-off sweeps.
    let reload_axis = if spec.weight_reload.as_slice() == [pimcomp::dse::ReloadSetting::Off] {
        String::new()
    } else {
        format!(" x {} reload settings", spec.weight_reload.len())
    };
    println!(
        "exploring {} points ({} models x {mode_axis} x {} hardware configs x {} policies \
         x {} seeds{reload_axis}, {} search, {threads} threads)...",
        spec.len(),
        spec.models.len(),
        spec.hardware.len(),
        spec.policies.len(),
        spec.seeds.len(),
        spec.search.name()
    );
    if spec.hardware.is_auto() {
        println!(
            "  hardware: auto — chip counts sized per model by the headroom heuristic \
             (labels carry the chosen count)"
        );
    }
    if spec.modes.contains(&PipelineMode::LowLatency) && spec.batches.iter().any(|&b| b > 1) {
        println!(
            "  note: `ht_batches` applies to high-throughput points only; \
             low-latency points always run batch 1"
        );
    }
    let outcome = engine.run(&spec).map_err(|e| e.to_string())?;
    let report = &outcome.report;
    println!(
        "  evaluated {} points: {} ok, {} failed, {} cache hits / {} compiled",
        report.points.len(),
        report.points.len() - report.failures(),
        report.failures(),
        outcome.cache_hits,
        outcome.cache_misses
    );
    if let Some(ev) = &outcome.eviction {
        if ev.evicted_files > 0 {
            println!(
                "  cache bound: evicted {} artifact(s) ({:.1} MB), kept {} ({:.1} MB)",
                ev.evicted_files,
                ev.evicted_bytes as f64 / (1024.0 * 1024.0),
                ev.kept_files,
                ev.kept_bytes as f64 / (1024.0 * 1024.0)
            );
        }
    }
    if flags.contains_key("budget-summary") {
        println!();
        print!("{}", outcome.budget);
    }

    println!(
        "\nPareto frontier ({} of {} points, per model x mode):",
        report.frontier.len(),
        report.points.len()
    );
    println!(
        "  {:<10} {:<4} {:<28} {:<6} {:>5} {:>20} {:>12} {:>12} {:>11} {:>6}",
        "model",
        "mode",
        "hardware",
        "policy",
        "batch",
        "seed",
        "cycles",
        "energy(uJ)",
        "inf/s",
        "xbar%"
    );
    for p in report.frontier_records() {
        let m = p.metrics.as_ref().expect("frontier points succeeded");
        println!(
            "  {:<10} {:<4} {:<28} {:<6} {:>5} {:>20} {:>12} {:>12.2} {:>11.0} {:>5.1}%",
            p.model,
            p.mode,
            p.hardware,
            p.policy,
            p.batch,
            p.seed,
            m.cycles,
            m.energy_uj,
            m.throughput_inf_per_s,
            m.crossbar_utilization * 100.0
        );
    }
    for p in report.points.iter().filter(|p| !p.ok) {
        eprintln!(
            "  failed: {} ({})",
            p.key(),
            p.error.as_deref().unwrap_or("unknown")
        );
    }

    if let Some(path) = flags.get("out") {
        std::fs::write(path, report.to_json().map_err(|e| e.to_string())? + "\n")
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("\nwrote {path} (report format v{})", report.format_version);
    }
    if let Some(path) = flags.get("csv") {
        std::fs::write(path, report.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    use pimcomp::serve::{Coordinator, CoordinatorConfig};

    let spec_path = opts
        .get("spec")
        .ok_or("`--spec SPEC.json` is required (an exhaustive sweep spec)")?;
    let json =
        std::fs::read_to_string(spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;

    let mut cfg = CoordinatorConfig::default();
    if let Some(listen) = opts.get("listen") {
        cfg.listen = listen.clone();
    }
    if let Some(raw) = opts.get("lease-size") {
        cfg.lease_size = raw
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--lease-size expects a positive integer")?;
    }
    if let Some(raw) = opts.get("lease-timeout-secs") {
        let secs: u64 = raw
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--lease-timeout-secs expects a positive integer")?;
        cfg.lease_timeout = Duration::from_secs(secs);
    }
    cfg.journal = opts.get("journal").map(std::path::PathBuf::from);
    cfg.progress = opts.contains_key("progress");
    // Label the job by the spec's file stem so journal headers and
    // progress lines say which sweep this is.
    if let Some(stem) = std::path::Path::new(spec_path)
        .file_stem()
        .and_then(|s| s.to_str())
    {
        cfg.job = stem.to_string();
    }

    let coordinator = Coordinator::bind(&json, cfg).map_err(|e| e.to_string())?;
    let addr = coordinator.local_addr().map_err(|e| e.to_string())?;
    println!("coordinating sweep {spec_path} on {addr}");
    if let Some(path) = opts.get("port-file") {
        std::fs::write(path, format!("{addr}\n")).map_err(|e| format!("writing {path}: {e}"))?;
        println!("  wrote {path}");
    }

    let outcome = coordinator.run().map_err(|e| e.to_string())?;
    let report = &outcome.report;
    println!(
        "  evaluated {} points ({} resumed from the journal): {} ok, {} failed",
        outcome.evaluated_points,
        outcome.resumed_points,
        report.points.len() - report.failures(),
        report.failures()
    );
    println!(
        "  {} worker connection(s), {} lease(s) issued, {} reclaimed",
        outcome.workers_seen, outcome.leases_issued, outcome.leases_reclaimed
    );
    if let Some(path) = opts.get("out") {
        // Same bytes as `pimcomp explore --out` — the determinism gate
        // `cmp`s the two files.
        std::fs::write(path, report.to_json().map_err(|e| e.to_string())? + "\n")
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("  wrote {path} (report format v{})", report.format_version);
    }
    if let Some(path) = opts.get("csv") {
        std::fs::write(path, report.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("  wrote {path}");
    }
    Ok(())
}

fn cmd_work(opts: &HashMap<String, String>) -> Result<(), String> {
    use pimcomp::serve::{run_worker, WorkerConfig};

    let connect = opts
        .get("connect")
        .ok_or("`--connect HOST:PORT` is required (the coordinator's address)")?;
    let mut cfg = WorkerConfig::connect_to(connect.as_str());
    if let Some(name) = opts.get("name") {
        cfg.name = name.clone();
    }
    cfg.cache_dir = opts.get("cache").map(std::path::PathBuf::from);
    if let Some(raw) = opts.get("cache-max-mb") {
        let max_mb: u64 = raw
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--cache-max-mb expects a positive integer (megabytes)")?;
        cfg.cache_max_mb = Some(max_mb);
    }
    if let Some(raw) = opts.get("max-points") {
        cfg.max_points = Some(
            raw.parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or("--max-points expects a positive integer")?,
        );
    }
    if let Some(raw) = opts.get("throttle-ms") {
        let ms: u64 = raw
            .parse()
            .map_err(|_| "--throttle-ms expects milliseconds")?;
        cfg.throttle = Some(Duration::from_millis(ms));
    }

    let summary = run_worker(&cfg).map_err(|e| e.to_string())?;
    println!(
        "worker {} done: {} point(s) evaluated ({} cache hits) over {} lease(s){}",
        summary.worker,
        summary.points_evaluated,
        summary.cache_hits,
        summary.leases,
        if summary.stopped_early {
            ", stopped early at --max-points"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_models() -> Result<(), String> {
    println!("paper benchmarks:");
    for m in pimcomp::ir::models::PAPER_BENCHMARKS {
        let g = pimcomp::ir::models::by_name(m).expect("zoo model");
        let s = GraphStats::of(&g);
        println!(
            "  {:<14} {:>3} nodes {:>7.2}M params {:>6.2}G MACs",
            m,
            s.nodes,
            s.params as f64 / 1e6,
            s.macs as f64 / 1e9
        );
    }
    println!("other zoo models:");
    for m in pimcomp::ir::models::ZOO {
        if pimcomp::ir::models::PAPER_BENCHMARKS.contains(&m) {
            continue;
        }
        let g = pimcomp::ir::models::by_name(m).expect("zoo model");
        let s = GraphStats::of(&g);
        if g.has_symbolic_dims() {
            println!(
                "  {:<14} {:>3} nodes {:>7.2}M params   symbolic seq (bind with --seq-len)",
                m,
                s.nodes,
                s.params as f64 / 1e6
            );
        } else {
            println!(
                "  {:<14} {:>3} nodes {:>7.2}M params {:>6.2}G MACs",
                m,
                s.nodes,
                s.params as f64 / 1e6,
                s.macs as f64 / 1e9
            );
        }
    }
    println!(
        "test models: {}",
        pimcomp::ir::models::TEST_MODELS.join(", ")
    );
    Ok(())
}
