//! `pimcomp` — command-line driver for the compilation framework.
//!
//! ```text
//! pimcomp compile  --model resnet18 [--mode ht|ll] [--chips N] [--parallelism P]
//!                  [--policy naive|add|ag] [--ga POPxITERS] [--seed S]
//!                  [--simulate] [--report out.json]
//! pimcomp inspect  --model model.onnx           # print graph + workload stats
//! pimcomp export   --model vgg16 --out vgg16.onnx
//! pimcomp models                                # list the zoo
//! ```
//!
//! `--model` accepts either a zoo name (`vgg16`, `resnet18`,
//! `googlenet`, `inception_v3`, `squeezenet`, `tiny_cnn`, …) or a path
//! to an `.onnx` file.

use pimcomp::prelude::*;
use pimcomp_arch::PipelineMode;
use pimcomp_core::{GaParams, Partitioning, ReusePolicy};
use pimcomp_ir::transform::normalize;
use pimcomp_ir::{Graph, GraphStats};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "compile" => cmd_compile(&opts),
        "inspect" => cmd_inspect(&opts),
        "export" => cmd_export(&opts),
        "models" => cmd_models(),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "pimcomp — compilation framework for crossbar-based PIM DNN accelerators

USAGE:
  pimcomp compile --model <NAME|FILE.onnx> [options]   compile (and optionally simulate)
  pimcomp inspect --model <NAME|FILE.onnx>             print graph and workload statistics
  pimcomp export  --model <NAME> --out <FILE.onnx>     export a zoo model as ONNX
  pimcomp models                                       list zoo models

OPTIONS (compile):
  --mode ht|ll            pipeline mode (default: ht)
  --chips N               chip count (default: sized to fit with 2x headroom)
  --parallelism P         parallelism degree (default: 20)
  --policy naive|add|ag   memory-reuse policy (default: ag)
  --ga POPxITERS          GA size (default: 100x200)
  --seed S                GA seed (default: 1)
  --simulate              run the cycle-accurate simulator on the result
  --report FILE.json      write a JSON report";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        match key {
            "simulate" => {
                map.insert(key.to_string(), "true".to_string());
            }
            _ => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                map.insert(key.to_string(), v.clone());
            }
        }
    }
    Ok(map)
}

fn load_model(opts: &HashMap<String, String>) -> Result<Graph, String> {
    let spec = opts
        .get("model")
        .ok_or("`--model` is required (zoo name or .onnx path)")?;
    if spec.ends_with(".onnx") {
        let bytes =
            std::fs::read(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
        return pimcomp_onnx::import_bytes(&bytes).map_err(|e| e.to_string());
    }
    match spec.as_str() {
        "tiny_cnn" => Ok(pimcomp::ir::models::tiny_cnn()),
        "tiny_mlp" => Ok(pimcomp::ir::models::tiny_mlp()),
        "two_branch" => Ok(pimcomp::ir::models::two_branch()),
        name => pimcomp::ir::models::by_name(name)
            .ok_or_else(|| format!("unknown model `{name}` (try `pimcomp models`)")),
    }
}

fn hardware(opts: &HashMap<String, String>, graph: &Graph) -> Result<HardwareConfig, String> {
    let parallelism: usize = opts
        .get("parallelism")
        .map(|s| s.parse().map_err(|_| "bad --parallelism"))
        .transpose()?
        .unwrap_or(20);
    let chips = match opts.get("chips") {
        Some(s) => s.parse().map_err(|_| "bad --chips")?,
        None => {
            let base = HardwareConfig::puma();
            let p = Partitioning::new(graph, &base).map_err(|e| e.to_string())?;
            let per_chip = base.cores_per_chip * base.crossbars_per_core;
            (2 * p.min_crossbars()).div_ceil(per_chip).max(1)
        }
    };
    let hw = HardwareConfig::puma_with_chips(chips).with_parallelism(parallelism);
    hw.validate().map_err(|e| e.to_string())?;
    Ok(hw)
}

fn cmd_compile(opts: &HashMap<String, String>) -> Result<(), String> {
    let graph = normalize(&load_model(opts)?);
    let hw = hardware(opts, &graph)?;
    let mode = match opts.get("mode").map(String::as_str).unwrap_or("ht") {
        "ht" | "HT" => PipelineMode::HighThroughput,
        "ll" | "LL" => PipelineMode::LowLatency,
        other => return Err(format!("unknown mode `{other}` (ht|ll)")),
    };
    let policy = match opts.get("policy").map(String::as_str).unwrap_or("ag") {
        "naive" => ReusePolicy::Naive,
        "add" => ReusePolicy::AddReuse,
        "ag" => ReusePolicy::AgReuse,
        other => return Err(format!("unknown policy `{other}` (naive|add|ag)")),
    };
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(1);
    let ga = match opts.get("ga").map(String::as_str) {
        Some(spec) => {
            let (pop, iters) = spec
                .split_once('x')
                .ok_or("--ga expects POPxITERS, e.g. 100x200")?;
            GaParams {
                population: pop.parse().map_err(|_| "bad GA population")?,
                iterations: iters.parse().map_err(|_| "bad GA iterations")?,
                seed,
                ..GaParams::default()
            }
        }
        None => GaParams {
            seed,
            ..GaParams::default()
        },
    };

    println!(
        "compiling {} for {} chips x {} cores (parallelism {}, {mode} mode)...",
        graph.name(),
        hw.chips,
        hw.cores_per_chip,
        hw.parallelism
    );
    let compile_opts = CompileOptions::new(mode).with_ga(ga).with_policy(policy);
    let compiled = PimCompiler::new(hw.clone())
        .compile(&graph, &compile_opts)
        .map_err(|e| e.to_string())?;

    let r = &compiled.report;
    println!("  stages: partition {:?}, replicate+map {:?}, schedule {:?}",
        r.timings.node_partitioning, r.timings.replicating_mapping, r.timings.dataflow_scheduling);
    println!("  replication: {:?}", r.replication);
    println!(
        "  {} active cores, {} / {} crossbars, estimated {} = {:.0} cycles",
        r.active_cores,
        r.crossbars_used,
        hw.total_crossbars(),
        if mode == PipelineMode::HighThroughput { "F_HT" } else { "F_LL" },
        r.estimated_fitness
    );

    let sim_report = if opts.contains_key("simulate") {
        let report = Simulator::new(hw)
            .run(&compiled)
            .map_err(|e| e.to_string())?;
        match mode {
            PipelineMode::HighThroughput => println!(
                "  simulated: {} cycles/inference -> {:.0} inf/s",
                report.total_cycles, report.throughput_inf_per_s
            ),
            PipelineMode::LowLatency => println!(
                "  simulated: {} cycles latency ({:.1} us)",
                report.total_cycles, report.latency_us
            ),
        }
        println!(
            "  energy {:.1} uJ (dyn {:.1} + leak {:.1}), avg local mem {:.1} kB",
            report.energy.total_pj() / 1e6,
            report.energy.dynamic_pj() / 1e6,
            report.energy.leakage_pj / 1e6,
            report.memory.avg_local_bytes / 1024.0
        );
        Some(report)
    } else {
        None
    };

    if let Some(path) = opts.get("report") {
        #[derive(serde::Serialize)]
        struct FullReport<'a> {
            compile: &'a pimcomp_core::CompileReport,
            simulation: Option<&'a pimcomp_sim::SimReport>,
        }
        let payload = FullReport {
            compile: r,
            simulation: sim_report.as_ref(),
        };
        let json = serde_json::to_string_pretty(&payload).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("  wrote {path}");
    }
    Ok(())
}

fn cmd_inspect(opts: &HashMap<String, String>) -> Result<(), String> {
    let graph = load_model(opts)?;
    let stats = GraphStats::of(&graph);
    println!("model: {} ({} nodes)", stats.model, stats.nodes);
    println!(
        "totals: {} conv/fc nodes, {:.2}M params, {:.2}G MACs",
        stats.mvm_nodes,
        stats.params as f64 / 1e6,
        stats.macs as f64 / 1e9
    );
    println!(
        "\n{:<28} {:<10} {:>12} {:>14} {:>10}",
        "node", "op", "params", "MACs", "windows"
    );
    for n in &stats.per_node {
        if n.macs == 0 && n.params == 0 {
            continue;
        }
        println!(
            "{:<28} {:<10} {:>12} {:>14} {:>10}",
            n.name, n.op, n.params, n.macs, n.windows
        );
    }
    Ok(())
}

fn cmd_export(opts: &HashMap<String, String>) -> Result<(), String> {
    let graph = load_model(opts)?;
    let out = opts.get("out").ok_or("`--out FILE.onnx` is required")?;
    let bytes = pimcomp_onnx::export_graph(&graph).encode();
    std::fs::write(out, &bytes).map_err(|e| e.to_string())?;
    println!("wrote {out} ({} bytes)", bytes.len());
    Ok(())
}

fn cmd_models() -> Result<(), String> {
    println!("paper benchmarks:");
    for m in pimcomp::ir::models::PAPER_BENCHMARKS {
        let g = pimcomp::ir::models::by_name(m).expect("zoo model");
        let s = GraphStats::of(&g);
        println!(
            "  {:<14} {:>3} nodes {:>7.2}M params {:>6.2}G MACs",
            m,
            s.nodes,
            s.params as f64 / 1e6,
            s.macs as f64 / 1e9
        );
    }
    println!("test models: tiny_cnn, tiny_mlp, two_branch");
    Ok(())
}
