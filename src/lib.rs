//! PIMCOMP — a universal compilation framework for crossbar-based PIM
//! DNN accelerators, reproduced from Sun et al., DAC 2023.
//!
//! This facade crate re-exports the workspace crates so applications can
//! depend on a single name:
//!
//! * [`ir`] — DNN graph IR, shape inference, model zoo ([`pimcomp_ir`]).
//! * [`onnx`] — minimal ONNX interchange ([`pimcomp_onnx`]).
//! * [`arch`] — abstract accelerator architecture ([`pimcomp_arch`]).
//! * [`compiler`] — the staged compilation pipeline ([`pimcomp_core`]).
//! * [`exec`] — the functional executor: reference interpretation and
//!   mapped per-crossbar execution with quantization modeling
//!   ([`pimcomp_exec`]).
//! * [`sim`] — the cycle-accurate simulator ([`pimcomp_sim`]).
//! * [`dse`] — deterministic design-space exploration over compiler +
//!   simulator ([`pimcomp_dse`]).
//! * [`serve`] — the distributed, resumable sweep service: a
//!   coordinator/worker fan-out over TCP with a journaled crash-resume
//!   whose reports stay byte-identical to single-process runs
//!   ([`pimcomp_serve`]).
//!
//! # Quickstart: staged compilation sessions
//!
//! The compiler is a four-stage pipeline (paper Fig. 3). A
//! [`CompileSession`](prelude::CompileSession) walks it one typed,
//! inspectable artifact at a time:
//!
//! ```
//! use pimcomp::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. A model (tiny CNN from the zoo; real flows load ONNX).
//! let graph = pimcomp::ir::models::tiny_cnn();
//!
//! // 2. A hardware target (scaled-down PUMA-like preset).
//! let hw = HardwareConfig::small_test();
//!
//! // 3. Compile stage by stage in high-throughput mode.
//! let opts = CompileOptions::new(PipelineMode::HighThroughput).with_fast_ga(7);
//! let scheduled = CompileSession::new(hw.clone(), &graph, opts)?
//!     .partition()? // §IV-B: node partitioning
//!     .optimize()?  // §IV-C: GA replication + mapping
//!     .schedule()?; // §IV-D: dataflow schedule + memory plan
//! let compiled = scheduled.finish();
//!
//! // 4. Persist as a versioned artifact, reload, and simulate — the
//! //    compile-once/serve-many flow.
//! let artifact = CompiledArtifact::new(compiled);
//! let artifact = CompiledArtifact::from_json(&artifact.to_json()?)?;
//! let report = Simulator::new(hw).run_artifact(&artifact)?;
//! assert!(report.total_cycles > 0);
//! # Ok(())
//! # }
//! ```
//!
//! The one-call [`PimCompiler::compile`](prelude::PimCompiler) wrapper
//! still exists and produces identical results for identical inputs.
//! Live progress (stage boundaries, per-generation GA fitness) streams
//! through a [`CompileObserver`](prelude::CompileObserver) passed to
//! the `_observed` stage variants.

pub use pimcomp_arch as arch;
pub use pimcomp_core as compiler;
pub use pimcomp_dse as dse;
pub use pimcomp_exec as exec;
pub use pimcomp_ir as ir;
pub use pimcomp_onnx as onnx;
pub use pimcomp_serve as serve;
pub use pimcomp_sim as sim;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use pimcomp_arch::{HardwareConfig, PipelineMode};
    pub use pimcomp_core::{
        ArtifactError, CompileError, CompileObserver, CompileOptions, CompileSession, CompileStage,
        CompiledArtifact, CompiledModel, GaGeneration, GaParams, Optimized, Partitioned,
        PimCompiler, ReusePolicy, Scheduled,
    };
    pub use pimcomp_dse::{ExploreEngine, ExploreError, SweepReport, SweepSpec};
    pub use pimcomp_ir::{Graph, GraphBuilder};
    pub use pimcomp_serve::{run_worker, Coordinator, CoordinatorConfig, ServeError, WorkerConfig};
    pub use pimcomp_sim::{SimReport, Simulator};
}
