//! PIMCOMP — a universal compilation framework for crossbar-based PIM
//! DNN accelerators, reproduced from Sun et al., DAC 2023.
//!
//! This facade crate re-exports the workspace crates so applications can
//! depend on a single name:
//!
//! * [`ir`] — DNN graph IR, shape inference, model zoo ([`pimcomp_ir`]).
//! * [`onnx`] — minimal ONNX interchange ([`pimcomp_onnx`]).
//! * [`arch`] — abstract accelerator architecture ([`pimcomp_arch`]).
//! * [`compiler`] — the four compilation stages ([`pimcomp_core`]).
//! * [`sim`] — the cycle-accurate simulator ([`pimcomp_sim`]).
//!
//! # Quickstart
//!
//! ```
//! use pimcomp::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. A model (tiny CNN from the zoo; real flows load ONNX).
//! let graph = pimcomp::ir::models::tiny_cnn();
//!
//! // 2. A hardware target (scaled-down PUMA-like preset).
//! let hw = HardwareConfig::small_test();
//!
//! // 3. Compile in high-throughput mode.
//! let opts = CompileOptions::new(PipelineMode::HighThroughput).with_fast_ga(7);
//! let compiled = PimCompiler::new(hw.clone()).compile(&graph, &opts)?;
//!
//! // 4. Simulate the result cycle-accurately.
//! let report = Simulator::new(hw).run(&compiled)?;
//! assert!(report.total_cycles > 0);
//! # Ok(())
//! # }
//! ```

pub use pimcomp_arch as arch;
pub use pimcomp_core as compiler;
pub use pimcomp_ir as ir;
pub use pimcomp_onnx as onnx;
pub use pimcomp_sim as sim;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use pimcomp_arch::{HardwareConfig, PipelineMode};
    pub use pimcomp_core::{CompileOptions, CompiledModel, PimCompiler};
    pub use pimcomp_ir::{Graph, GraphBuilder};
    pub use pimcomp_sim::{SimReport, Simulator};
}
