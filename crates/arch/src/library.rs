//! The Table I component library: published power and area of every
//! accelerator component in the paper's PUMA-like instantiation.

use crate::{RouterModel, SramModel};
use serde::{Deserialize, Serialize};

/// Power/area record of one hardware component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Component name as printed in Table I.
    pub name: String,
    /// The "Parameters / Specification" column.
    pub spec: String,
    /// Power in milliwatts.
    pub power_mw: f64,
    /// Area in square millimeters.
    pub area_mm2: f64,
}

/// The full component library of Table I.
///
/// The PIMMU/VFU/control-unit numbers are the published constants; the
/// memory and router rows are produced by the [`SramModel`] and
/// [`RouterModel`] stand-ins (CACTI 7 / Orion 3.0 substitutes), which
/// are calibrated to return exactly the published values at the
/// published design points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentLibrary {
    /// PIM matrix unit: 64 ReRAM crossbars with ADC/DAC/S&H/S&A.
    pub pimmu: ComponentSpec,
    /// Vector functional unit (12 lanes per core).
    pub vfu: ComponentSpec,
    /// 64 kB local scratchpad.
    pub local_memory: ComponentSpec,
    /// Core control unit.
    pub control_unit: ComponentSpec,
    /// One core (sum of the four above).
    pub core: ComponentSpec,
    /// NoC router with 64-bit flits.
    pub router: ComponentSpec,
    /// 4 MB global memory.
    pub global_memory: ComponentSpec,
    /// Off-chip Hyper Transport link.
    pub hyper_transport: ComponentSpec,
    /// Whole chip (36 cores + routers + global memory + HT).
    pub chip: ComponentSpec,
}

/// Table I published constants.
pub mod table1 {
    /// PIMMU power (mW) for 64 crossbars.
    pub const PIMMU_POWER_MW: f64 = 1221.76;
    /// PIMMU area (mm²).
    pub const PIMMU_AREA_MM2: f64 = 0.77;
    /// VFU power (mW), 12 per core.
    pub const VFU_POWER_MW: f64 = 22.80;
    /// VFU area (mm²).
    pub const VFU_AREA_MM2: f64 = 0.048;
    /// 64 kB local memory power (mW).
    pub const LOCAL_MEM_POWER_MW: f64 = 18.00;
    /// 64 kB local memory area (mm²).
    pub const LOCAL_MEM_AREA_MM2: f64 = 0.085;
    /// Control unit power (mW).
    pub const CONTROL_POWER_MW: f64 = 8.00;
    /// Control unit area (mm²).
    pub const CONTROL_AREA_MM2: f64 = 0.11;
    /// Core power (mW) — the sum of the four components above.
    pub const CORE_POWER_MW: f64 = 1270.56;
    /// Core area (mm²).
    pub const CORE_AREA_MM2: f64 = 1.01;
    /// Router power (mW), 64-bit flits.
    pub const ROUTER_POWER_MW: f64 = 43.13;
    /// Router area (mm²).
    pub const ROUTER_AREA_MM2: f64 = 0.14;
    /// 4 MB global memory power (mW).
    pub const GLOBAL_MEM_POWER_MW: f64 = 257.72;
    /// 4 MB global memory area (mm²).
    pub const GLOBAL_MEM_AREA_MM2: f64 = 2.42;
    /// Hyper Transport power (mW).
    pub const HT_POWER_MW: f64 = 10_400.0;
    /// Hyper Transport area (mm²).
    pub const HT_AREA_MM2: f64 = 22.88;
    /// Hyper Transport link bandwidth (GB/s).
    pub const HT_BANDWIDTH_GBS: f64 = 6.40;
    /// Chip power (mW) as published. (The naive sum
    /// `36*(core+router)+global+HT` gives ≈57.95 W; the paper prints
    /// 56.79 k mW — the difference is attributable to rounding in the
    /// per-component rows. We keep the published value.)
    pub const CHIP_POWER_MW: f64 = 56_790.0;
    /// Chip area (mm²) as published.
    pub const CHIP_AREA_MM2: f64 = 62.92;
}

impl ComponentLibrary {
    /// Builds the library for the paper's PUMA-like design point.
    pub fn puma() -> Self {
        let sram = SramModel::calibrated();
        let router = RouterModel::calibrated();
        let local = sram.spec(64 * 1024);
        let global = sram.spec(4 * 1024 * 1024);
        ComponentLibrary {
            pimmu: ComponentSpec {
                name: "PIMMU".into(),
                spec: "# crossbar 64".into(),
                power_mw: table1::PIMMU_POWER_MW,
                area_mm2: table1::PIMMU_AREA_MM2,
            },
            vfu: ComponentSpec {
                name: "VFU".into(),
                spec: "# per core 12".into(),
                power_mw: table1::VFU_POWER_MW,
                area_mm2: table1::VFU_AREA_MM2,
            },
            local_memory: ComponentSpec {
                name: "Local Memory".into(),
                spec: "capacity 64 kB".into(),
                power_mw: local.0,
                area_mm2: local.1,
            },
            control_unit: ComponentSpec {
                name: "Control Unit".into(),
                spec: "—".into(),
                power_mw: table1::CONTROL_POWER_MW,
                area_mm2: table1::CONTROL_AREA_MM2,
            },
            core: ComponentSpec {
                name: "Core".into(),
                spec: "# per chip 36".into(),
                power_mw: table1::CORE_POWER_MW,
                area_mm2: table1::CORE_AREA_MM2,
            },
            router: ComponentSpec {
                name: "Router".into(),
                spec: "flit size 64".into(),
                power_mw: router.power_mw(),
                area_mm2: router.area_mm2(),
            },
            global_memory: ComponentSpec {
                name: "Global Memory".into(),
                spec: "capacity 4 MB".into(),
                power_mw: global.0,
                area_mm2: global.1,
            },
            hyper_transport: ComponentSpec {
                name: "Hyper Transport".into(),
                spec: format!("link bandwidth {:.2} GB/s", table1::HT_BANDWIDTH_GBS),
                power_mw: table1::HT_POWER_MW,
                area_mm2: table1::HT_AREA_MM2,
            },
            chip: ComponentSpec {
                name: "Chip".into(),
                spec: "—".into(),
                power_mw: table1::CHIP_POWER_MW,
                area_mm2: table1::CHIP_AREA_MM2,
            },
        }
    }

    /// All rows in Table I order.
    pub fn rows(&self) -> [&ComponentSpec; 9] {
        [
            &self.pimmu,
            &self.vfu,
            &self.local_memory,
            &self.control_unit,
            &self.core,
            &self.router,
            &self.global_memory,
            &self.hyper_transport,
            &self.chip,
        ]
    }

    /// Core power recomputed from its constituents; Table I's own core
    /// row equals this to rounding.
    pub fn core_power_from_parts(&self) -> f64 {
        self.pimmu.power_mw
            + self.vfu.power_mw
            + self.local_memory.power_mw
            + self.control_unit.power_mw
    }

    /// Core area recomputed from its constituents.
    pub fn core_area_from_parts(&self) -> f64 {
        self.pimmu.area_mm2
            + self.vfu.area_mm2
            + self.local_memory.area_mm2
            + self.control_unit.area_mm2
    }
}

impl Default for ComponentLibrary {
    fn default() -> Self {
        Self::puma()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants_are_pinned() {
        let lib = ComponentLibrary::puma();
        assert_eq!(lib.pimmu.power_mw, 1221.76);
        assert_eq!(lib.pimmu.area_mm2, 0.77);
        assert_eq!(lib.vfu.power_mw, 22.80);
        assert_eq!(lib.control_unit.power_mw, 8.00);
        assert_eq!(lib.core.power_mw, 1270.56);
        assert_eq!(lib.router.power_mw, 43.13);
        assert_eq!(lib.hyper_transport.power_mw, 10_400.0);
    }

    #[test]
    fn calibrated_models_reproduce_memory_rows() {
        let lib = ComponentLibrary::puma();
        assert!((lib.local_memory.power_mw - 18.0).abs() < 1e-9);
        assert!((lib.local_memory.area_mm2 - 0.085).abs() < 1e-9);
        assert!((lib.global_memory.power_mw - 257.72).abs() < 1e-9);
        assert!((lib.global_memory.area_mm2 - 2.42).abs() < 1e-9);
    }

    #[test]
    fn core_row_is_the_sum_of_its_parts() {
        let lib = ComponentLibrary::puma();
        assert!((lib.core_power_from_parts() - lib.core.power_mw).abs() < 0.01);
        assert!((lib.core_area_from_parts() - lib.core.area_mm2).abs() < 0.01);
    }

    #[test]
    fn rows_iterate_in_table_order() {
        let lib = ComponentLibrary::puma();
        let names: Vec<_> = lib.rows().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names[0], "PIMMU");
        assert_eq!(names[8], "Chip");
    }
}
