//! Per-operation energy and per-component leakage derivation.
//!
//! The Fig. 9 evaluation splits energy into *dynamic* (activity-
//! proportional: MVMs, VFU ops, memory accesses, NoC flits) and
//! *leakage/static* (component standby power × active time). This module
//! turns the [`ComponentLibrary`] numbers into the per-event quantities
//! the simulator accumulates.

use crate::{ComponentLibrary, HardwareConfig, SramModel};
use serde::{Deserialize, Serialize};

/// Static power of the always-on structures, broken down per component
/// class, in mW.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LeakageBreakdown {
    /// Per single core (PIMMU + VFU + local memory + control).
    pub core_mw: f64,
    /// Per router.
    pub router_mw: f64,
    /// Global memory (whole chip).
    pub global_memory_mw: f64,
}

impl LeakageBreakdown {
    /// Total chip leakage for `cores` active cores, in mW.
    pub fn chip_total_mw(&self, cores: usize) -> f64 {
        self.core_mw * cores as f64 + self.router_mw * cores as f64 + self.global_memory_mw
    }
}

/// Derived per-event energies (pJ) and per-component leakage (mW).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one MVM on one crossbar, in pJ.
    pub mvm_pj_per_crossbar: f64,
    /// Energy of one VFU element-operation, in pJ.
    pub vfu_pj_per_element: f64,
    /// Energy per byte moved through a local scratchpad, in pJ.
    pub local_mem_pj_per_byte: f64,
    /// Energy per byte moved through global memory, in pJ.
    pub global_mem_pj_per_byte: f64,
    /// Energy per flit per hop on the NoC, in pJ.
    pub noc_pj_per_flit_hop: f64,
    /// Energy to program one NVM cell during a weight reload, in pJ
    /// (taken directly from [`HardwareConfig::xbar_write_pj_per_cell`]).
    pub xbar_write_pj_per_cell: f64,
    /// Static power breakdown.
    pub leakage: LeakageBreakdown,
    /// Clock used for power↔energy conversion, GHz.
    pub clock_ghz: f64,
}

impl EnergyModel {
    /// Derives the model from a hardware config and the Table I library.
    ///
    /// Accounting identities (standard practice, documented in
    /// DESIGN.md):
    ///
    /// * MVM: the PIMMU's dynamic power share divided across its
    ///   crossbars, integrated over `T_MVM`.
    /// * VFU: dynamic power share divided by element throughput.
    /// * Memories: CACTI-style access energy from [`SramModel`].
    /// * Leakage: `leakage_fraction` of each component's Table I power.
    pub fn derive(hw: &HardwareConfig, lib: &ComponentLibrary) -> Self {
        let dyn_frac = 1.0 - hw.leakage_fraction;
        let sram = SramModel::calibrated();

        // mW * ns = pJ; T_MVM in cycles / clock_ghz = ns.
        let mvm_ns = hw.mvm_latency as f64 / hw.clock_ghz;
        let mvm_pj_per_crossbar =
            lib.pimmu.power_mw * dyn_frac / hw.crossbars_per_core as f64 * mvm_ns / 1000.0 * 1000.0;
        // (mW = pJ/ns, so power_mw * ns = pJ directly; the *1000/1000
        // pair above cancels and is kept for unit legibility.)

        let vfu_rate_elems_per_ns = hw.vfu_per_core as f64 * hw.vfu_lane_throughput * hw.clock_ghz;
        let vfu_pj_per_element = lib.vfu.power_mw * dyn_frac / vfu_rate_elems_per_ns;

        EnergyModel {
            mvm_pj_per_crossbar,
            vfu_pj_per_element,
            local_mem_pj_per_byte: sram.access_pj_per_byte(hw.local_memory_bytes),
            global_mem_pj_per_byte: sram.access_pj_per_byte(hw.global_memory_bytes),
            noc_pj_per_flit_hop: lib.router.power_mw * dyn_frac / hw.clock_ghz,
            xbar_write_pj_per_cell: hw.xbar_write_pj_per_cell,
            leakage: LeakageBreakdown {
                core_mw: lib.core.power_mw * hw.leakage_fraction,
                router_mw: lib.router.power_mw * hw.leakage_fraction,
                global_memory_mw: lib.global_memory.power_mw * hw.leakage_fraction,
            },
            clock_ghz: hw.clock_ghz,
        }
    }

    /// Leakage energy in pJ for a component of `power_mw` static power
    /// active for `cycles`.
    pub fn leakage_pj(&self, power_mw: f64, cycles: u64) -> f64 {
        // mW × ns = pJ.
        power_mw * (cycles as f64 / self.clock_ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::derive(&HardwareConfig::puma(), &ComponentLibrary::puma())
    }

    #[test]
    fn mvm_energy_is_reasonable() {
        let m = model();
        // 0.6 * 1221.76 mW / 64 crossbars * 2000 ns ≈ 22.9 nJ.
        assert!((m.mvm_pj_per_crossbar - 22_908.0).abs() < 10.0);
    }

    #[test]
    fn global_memory_costs_more_than_local() {
        let m = model();
        assert!(m.global_mem_pj_per_byte > m.local_mem_pj_per_byte);
        // 64× capacity → 8× access energy under √ scaling.
        assert!((m.global_mem_pj_per_byte / m.local_mem_pj_per_byte - 8.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_breakdown_scales_with_cores() {
        let m = model();
        let one = m.leakage.chip_total_mw(1);
        let ten = m.leakage.chip_total_mw(10);
        assert!(ten > one);
        assert!((ten - one - 9.0 * (m.leakage.core_mw + m.leakage.router_mw)).abs() < 1e-9);
    }

    #[test]
    fn leakage_energy_integrates_power_over_time() {
        let m = model();
        // 1 mW for 1000 cycles at 1 GHz = 1000 pJ.
        assert!((m.leakage_pj(1.0, 1000) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_leakage_fraction_means_all_dynamic() {
        let mut hw = HardwareConfig::puma();
        hw.leakage_fraction = 0.0;
        let m = EnergyModel::derive(&hw, &ComponentLibrary::puma());
        assert_eq!(m.leakage.core_mw, 0.0);
        assert!(m.mvm_pj_per_crossbar > model().mvm_pj_per_crossbar);
    }
}
