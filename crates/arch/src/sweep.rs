//! Hardware design-space enumeration: named base presets plus a
//! [`HardwareGrid`] that expands per-field value lists into the
//! cross-product of validated [`HardwareConfig`] variants.
//!
//! This is the architecture-side half of the design-space exploration
//! subsystem (the `pimcomp-dse` crate's sweep engine): the grid knows
//! which knobs are sweepable, generates one labelled configuration per
//! grid point, and validates every point before it is handed to the
//! compiler — so a sweep over hundreds of configurations fails fast on
//! the one malformed axis value instead of mid-run. The same
//! enumeration also backs the engine's `hardware: "auto"` option:
//! per-model sized chip counts are fed through a one-point grid so
//! their labels (`auto-puma+chips3+par4`) and validation match
//! explicit grids exactly.
//!
//! # Examples
//!
//! A two-axis grid over a preset (only swept axes enter the label):
//!
//! ```
//! use pimcomp_arch::HardwareGrid;
//!
//! let grid = HardwareGrid::over_preset("small_test")
//!     .unwrap()
//!     .with_chips(vec![1, 2])
//!     .with_parallelism(vec![8, 64]);
//! let points = grid.enumerate().unwrap();
//! assert_eq!(points.len(), 4);
//! assert_eq!(points[0].0, "small_test+chips1+par8");
//! ```
//!
//! Every sweepable knob has a builder; values are validated as part of
//! enumeration, so a bad axis value surfaces before any compilation:
//!
//! ```
//! use pimcomp_arch::{HardwareConfig, HardwareGrid};
//!
//! let grid = HardwareGrid::new("custom", HardwareConfig::small_test())
//!     .with_cores_per_chip(vec![8])
//!     .with_crossbars_per_core(vec![8, 16])
//!     .with_crossbar_size(vec![64])
//!     .with_local_memory_kb(vec![64])
//!     .with_mvm_latency(vec![20])
//!     .with_noc_link_bw(vec![16.0]);
//! let points = grid.enumerate().unwrap();
//! assert_eq!(points.len(), 2);
//! assert_eq!(points[1].0, "custom+cores8+xbars16+xbar64+mem64k+mvm20+noc16");
//! assert_eq!(points[1].1.crossbars_per_core, 16);
//!
//! // Zero chips can never reach the compiler.
//! let bad = HardwareGrid::over_preset("small_test")
//!     .unwrap()
//!     .with_chips(vec![0]);
//! assert!(bad.enumerate().is_err());
//! ```

use crate::config::{HardwareConfig, HwError};

/// Looks up a named base preset for sweeps.
///
/// Accepted names: `puma` (the paper's Table I target) and
/// `small_test` / `small` (the scaled-down test target). Returns
/// `None` for unknown names; [`preset_names`] lists the canonical
/// spellings.
pub fn preset(name: &str) -> Option<HardwareConfig> {
    match name {
        "puma" => Some(HardwareConfig::puma()),
        "small_test" | "small" => Some(HardwareConfig::small_test()),
        _ => None,
    }
}

/// The canonical preset names [`preset`] accepts.
pub fn preset_names() -> &'static [&'static str] {
    &["puma", "small_test"]
}

/// A declarative grid over the sweepable [`HardwareConfig`] knobs.
///
/// Each field holds the axis values to sweep; an empty list keeps the
/// base configuration's value (a fixed axis). [`HardwareGrid::enumerate`]
/// expands the cross-product, labels each point with the swept values
/// (`base+chips2+par64`), and validates every resulting configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareGrid {
    /// Label of the base configuration (used as the label prefix).
    pub base_name: String,
    /// The configuration the swept fields override.
    pub base: HardwareConfig,
    /// Chip counts to sweep (`chips`).
    pub chips: Vec<usize>,
    /// Cores-per-chip values to sweep (`cores_per_chip`).
    pub cores_per_chip: Vec<usize>,
    /// Crossbars-per-core values to sweep (`crossbars_per_core`).
    pub crossbars_per_core: Vec<usize>,
    /// Square crossbar sizes to sweep (sets `crossbar_rows` and
    /// `crossbar_cols` together).
    pub crossbar_size: Vec<usize>,
    /// Parallelism degrees to sweep (`parallelism`, the Fig. 8 knob).
    pub parallelism: Vec<usize>,
    /// Local scratchpad capacities to sweep, in kilobytes.
    pub local_memory_kb: Vec<usize>,
    /// MVM latencies to sweep, in cycles.
    pub mvm_latency: Vec<u64>,
    /// NoC link bandwidths to sweep, in bytes/cycle.
    pub noc_link_bw: Vec<f64>,
}

impl HardwareGrid {
    /// A grid with no swept axes over an explicit base configuration.
    pub fn new(base_name: impl Into<String>, base: HardwareConfig) -> Self {
        HardwareGrid {
            base_name: base_name.into(),
            base,
            chips: Vec::new(),
            cores_per_chip: Vec::new(),
            crossbars_per_core: Vec::new(),
            crossbar_size: Vec::new(),
            parallelism: Vec::new(),
            local_memory_kb: Vec::new(),
            mvm_latency: Vec::new(),
            noc_link_bw: Vec::new(),
        }
    }

    /// A grid over a named [`preset`].
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidParameter`] naming the valid presets when
    /// `name` is unknown.
    pub fn over_preset(name: &str) -> Result<Self, HwError> {
        let base = preset(name).ok_or_else(|| HwError::InvalidParameter {
            name: "base",
            detail: format!(
                "unknown hardware preset `{name}` (available: {})",
                preset_names().join(", ")
            ),
        })?;
        Ok(Self::new(name, base))
    }

    /// Sets the chip-count axis.
    #[must_use]
    pub fn with_chips(mut self, values: Vec<usize>) -> Self {
        self.chips = values;
        self
    }

    /// Sets the cores-per-chip axis.
    #[must_use]
    pub fn with_cores_per_chip(mut self, values: Vec<usize>) -> Self {
        self.cores_per_chip = values;
        self
    }

    /// Sets the crossbars-per-core axis.
    #[must_use]
    pub fn with_crossbars_per_core(mut self, values: Vec<usize>) -> Self {
        self.crossbars_per_core = values;
        self
    }

    /// Sets the parallelism-degree axis.
    #[must_use]
    pub fn with_parallelism(mut self, values: Vec<usize>) -> Self {
        self.parallelism = values;
        self
    }

    /// Sets the square-crossbar-size axis.
    #[must_use]
    pub fn with_crossbar_size(mut self, values: Vec<usize>) -> Self {
        self.crossbar_size = values;
        self
    }

    /// Sets the local-scratchpad-capacity axis, in kilobytes.
    #[must_use]
    pub fn with_local_memory_kb(mut self, values: Vec<usize>) -> Self {
        self.local_memory_kb = values;
        self
    }

    /// Sets the MVM-latency axis, in cycles.
    #[must_use]
    pub fn with_mvm_latency(mut self, values: Vec<u64>) -> Self {
        self.mvm_latency = values;
        self
    }

    /// Sets the NoC-link-bandwidth axis, in bytes/cycle.
    #[must_use]
    pub fn with_noc_link_bw(mut self, values: Vec<f64>) -> Self {
        self.noc_link_bw = values;
        self
    }

    /// Number of grid points the cross-product expands to.
    pub fn len(&self) -> usize {
        let axis = |n: usize| n.max(1);
        axis(self.chips.len())
            * axis(self.cores_per_chip.len())
            * axis(self.crossbars_per_core.len())
            * axis(self.crossbar_size.len())
            * axis(self.parallelism.len())
            * axis(self.local_memory_kb.len())
            * axis(self.mvm_latency.len())
            * axis(self.noc_link_bw.len())
    }

    /// Always `false`: every axis contributes at least its base value,
    /// so a grid expands to at least one point. Present only to pair
    /// with [`HardwareGrid::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Expands the cross-product into `(label, config)` points, in a
    /// deterministic axis-nested order, validating every configuration.
    ///
    /// Labels carry the base name plus one `+knob<value>` segment per
    /// *swept* axis (axes left at their base value do not clutter the
    /// label).
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidParameter`] from
    /// [`HardwareConfig::validate`] on the first invalid point (the
    /// error is raised before any point is returned, so callers never
    /// see a partially valid sweep).
    pub fn enumerate(&self) -> Result<Vec<(String, HardwareConfig)>, HwError> {
        // Each axis yields (label_segment, mutator) pairs; fixed axes
        // yield a single no-op point with no label segment.
        fn axis<T: Copy>(
            values: &[T],
            tag: &str,
            show: impl Fn(T) -> String,
        ) -> Vec<(String, Option<T>)> {
            if values.is_empty() {
                vec![(String::new(), None)]
            } else {
                values
                    .iter()
                    .map(|&v| (format!("+{tag}{}", show(v)), Some(v)))
                    .collect()
            }
        }

        let chips = axis(&self.chips, "chips", |v: usize| v.to_string());
        let cores = axis(&self.cores_per_chip, "cores", |v: usize| v.to_string());
        let xbars = axis(&self.crossbars_per_core, "xbars", |v: usize| v.to_string());
        let size = axis(&self.crossbar_size, "xbar", |v: usize| v.to_string());
        let par = axis(&self.parallelism, "par", |v: usize| v.to_string());
        let mem = axis(&self.local_memory_kb, "mem", |v: usize| format!("{v}k"));
        let mvm = axis(&self.mvm_latency, "mvm", |v: u64| v.to_string());
        let noc = axis(&self.noc_link_bw, "noc", |v: f64| v.to_string());

        let mut out = Vec::with_capacity(self.len());
        for (l1, c) in &chips {
            for (l2, cc) in &cores {
                for (l3, xc) in &xbars {
                    for (l4, sz) in &size {
                        for (l5, p) in &par {
                            for (l6, m) in &mem {
                                for (l7, lat) in &mvm {
                                    for (l8, bw) in &noc {
                                        let mut hw = self.base.clone();
                                        if let Some(v) = c {
                                            hw.chips = *v;
                                        }
                                        if let Some(v) = cc {
                                            hw.cores_per_chip = *v;
                                        }
                                        if let Some(v) = xc {
                                            hw.crossbars_per_core = *v;
                                        }
                                        if let Some(v) = sz {
                                            hw.crossbar_rows = *v;
                                            hw.crossbar_cols = *v;
                                        }
                                        if let Some(v) = p {
                                            hw.parallelism = *v;
                                        }
                                        if let Some(v) = m {
                                            hw.local_memory_bytes = v * 1024;
                                        }
                                        if let Some(v) = lat {
                                            hw.mvm_latency = *v;
                                        }
                                        if let Some(v) = bw {
                                            hw.noc_link_bw = *v;
                                        }
                                        hw.validate()?;
                                        let label = format!(
                                            "{}{l1}{l2}{l3}{l4}{l5}{l6}{l7}{l8}",
                                            self.base_name
                                        );
                                        out.push((label, hw));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_and_validate() {
        for name in preset_names() {
            preset(name).unwrap().validate().unwrap();
        }
        assert!(preset("tpu").is_none());
    }

    #[test]
    fn empty_grid_yields_the_base() {
        let g = HardwareGrid::over_preset("puma").unwrap();
        let pts = g.enumerate().unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].0, "puma");
        assert_eq!(pts[0].1, HardwareConfig::puma());
    }

    #[test]
    fn cross_product_order_is_deterministic() {
        let g = HardwareGrid::over_preset("small_test")
            .unwrap()
            .with_chips(vec![1, 2])
            .with_parallelism(vec![4, 8]);
        let pts = g.enumerate().unwrap();
        assert_eq!(g.len(), 4);
        let labels: Vec<&str> = pts.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            [
                "small_test+chips1+par4",
                "small_test+chips1+par8",
                "small_test+chips2+par4",
                "small_test+chips2+par8",
            ]
        );
        assert_eq!(pts[3].1.chips, 2);
        assert_eq!(pts[3].1.parallelism, 8);
    }

    #[test]
    fn crossbar_size_sets_rows_and_cols() {
        let g = HardwareGrid::over_preset("small_test")
            .unwrap()
            .with_crossbar_size(vec![32]);
        let pts = g.enumerate().unwrap();
        assert_eq!(pts[0].1.crossbar_rows, 32);
        assert_eq!(pts[0].1.crossbar_cols, 32);
    }

    #[test]
    fn invalid_axis_value_is_rejected_up_front() {
        let g = HardwareGrid::over_preset("small_test")
            .unwrap()
            .with_chips(vec![1, 0]);
        assert!(g.enumerate().is_err());
    }

    #[test]
    fn unknown_preset_names_the_alternatives() {
        let err = HardwareGrid::over_preset("tpu").unwrap_err();
        assert!(err.to_string().contains("puma"));
    }
}
