//! Analytic SRAM model standing in for CACTI 7.
//!
//! The paper models its memories with CACTI 7 and reports two design
//! points in Table I (64 kB local: 18 mW / 0.085 mm²; 4 MB global:
//! 257.72 mW / 2.42 mm²). This model fits power-law curves
//! `P(C) = p0 * (C/C0)^α` through those two points, so it returns the
//! published values exactly at the published capacities and interpolates
//! CACTI-like sublinear scaling elsewhere. Access energy follows the
//! standard CACTI observation that energy/access grows roughly with the
//! square root of capacity.

use serde::{Deserialize, Serialize};

/// Analytic SRAM power/area/access-energy model (CACTI 7 substitute).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramModel {
    /// Reference capacity in bytes (64 kB).
    ref_bytes: f64,
    /// Power at the reference capacity (mW).
    ref_power_mw: f64,
    /// Area at the reference capacity (mm²).
    ref_area_mm2: f64,
    /// Power scaling exponent.
    power_exp: f64,
    /// Area scaling exponent.
    area_exp: f64,
    /// Access energy at the reference capacity (pJ/byte).
    ref_access_pj_per_byte: f64,
}

impl SramModel {
    /// The model calibrated to the two Table I design points.
    pub fn calibrated() -> Self {
        let c0: f64 = 64.0 * 1024.0;
        let c1: f64 = 4.0 * 1024.0 * 1024.0;
        let ratio = (c1 / c0).ln();
        SramModel {
            ref_bytes: c0,
            ref_power_mw: 18.0,
            ref_area_mm2: 0.085,
            power_exp: (257.72_f64 / 18.0).ln() / ratio,
            area_exp: (2.42_f64 / 0.085).ln() / ratio,
            // ~1 pJ/byte for a 64 kB scratchpad at 32 nm (CACTI-class).
            ref_access_pj_per_byte: 1.0,
        }
    }

    /// Standby + clocking power for a memory of `bytes` capacity, in mW.
    pub fn power_mw(&self, bytes: usize) -> f64 {
        self.ref_power_mw * (bytes as f64 / self.ref_bytes).powf(self.power_exp)
    }

    /// Silicon area for a memory of `bytes` capacity, in mm².
    pub fn area_mm2(&self, bytes: usize) -> f64 {
        self.ref_area_mm2 * (bytes as f64 / self.ref_bytes).powf(self.area_exp)
    }

    /// `(power_mw, area_mm2)` convenience pair.
    pub fn spec(&self, bytes: usize) -> (f64, f64) {
        (self.power_mw(bytes), self.area_mm2(bytes))
    }

    /// Energy per byte accessed, in pJ (√capacity scaling).
    pub fn access_pj_per_byte(&self, bytes: usize) -> f64 {
        self.ref_access_pj_per_byte * (bytes as f64 / self.ref_bytes).sqrt()
    }
}

impl Default for SramModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table1_points_exactly() {
        let m = SramModel::calibrated();
        assert!((m.power_mw(64 * 1024) - 18.0).abs() < 1e-9);
        assert!((m.area_mm2(64 * 1024) - 0.085).abs() < 1e-9);
        assert!((m.power_mw(4 * 1024 * 1024) - 257.72).abs() < 1e-6);
        assert!((m.area_mm2(4 * 1024 * 1024) - 2.42).abs() < 1e-9);
    }

    #[test]
    fn scaling_is_monotone_and_sublinear() {
        let m = SramModel::calibrated();
        let p128 = m.power_mw(128 * 1024);
        let p64 = m.power_mw(64 * 1024);
        assert!(p128 > p64);
        // Sublinear: doubling capacity less than doubles power.
        assert!(p128 < 2.0 * p64);
    }

    #[test]
    fn access_energy_grows_with_capacity() {
        let m = SramModel::calibrated();
        assert!(m.access_pj_per_byte(4 * 1024 * 1024) > m.access_pj_per_byte(64 * 1024));
        assert!((m.access_pj_per_byte(64 * 1024) - 1.0).abs() < 1e-12);
    }
}
