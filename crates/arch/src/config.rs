//! Hardware configuration — the "User Input" block of paper Fig. 3.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How cores exchange data (paper: "The cores can be interconnected
/// through NoC or busses", or indirectly through global memory only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreConnection {
    /// 2-D mesh network-on-chip (the PUMA instantiation used in the
    /// paper's evaluation).
    Mesh,
    /// A shared bus: one transfer at a time, uniform latency.
    Bus,
    /// No direct core-to-core path; all transfers bounce through global
    /// memory.
    GlobalMemoryOnly,
}

/// Inter-layer pipeline granularity (paper Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineMode {
    /// High-throughput: layer-by-layer processing; once the pipeline is
    /// filled, different layers process *different inferences*. No
    /// inter-layer streaming.
    HighThroughput,
    /// Low-latency: a layer forwards each output element to its
    /// consumers immediately; consumers start as soon as their receptive
    /// window is available.
    LowLatency,
}

impl fmt::Display for PipelineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineMode::HighThroughput => f.write_str("HT"),
            PipelineMode::LowLatency => f.write_str("LL"),
        }
    }
}

/// Configuration errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwError {
    /// A parameter is zero or otherwise out of its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::InvalidParameter { name, detail } => {
                write!(f, "invalid hardware parameter `{name}`: {detail}")
            }
        }
    }
}

impl std::error::Error for HwError {}

/// The abstract accelerator's user-visible knobs (paper Fig. 3), plus
/// the timing constants the execution model needs.
///
/// All times are in core clock *cycles*; [`HardwareConfig::clock_ghz`]
/// converts to wall time where needed (energy integration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareConfig {
    /// Crossbar array height `Hxbar` in cells (weight-matrix rows an AG
    /// covers).
    pub crossbar_rows: usize,
    /// Crossbar array width in cells.
    pub crossbar_cols: usize,
    /// Physical crossbars per PIMMU (Table I: 64).
    pub crossbars_per_core: usize,
    /// Cores per chip (Table I: 36).
    pub cores_per_chip: usize,
    /// Chip count; total cores = `cores_per_chip * chips`.
    pub chips: usize,
    /// NVM cell precision in bits (Table I: 2-bit ReRAM).
    pub cell_bits: u32,
    /// Weight precision in bits (Table I: 16-bit fixed point).
    pub weight_bits: u32,
    /// Input/activation precision in bits (16-bit fixed point).
    pub input_bits: u32,
    /// Local scratchpad capacity per core in bytes (Table I: 64 kB).
    pub local_memory_bytes: usize,
    /// Global memory capacity in bytes (Table I: 4 MB per chip).
    pub global_memory_bytes: usize,
    /// Local memory bandwidth in bytes/cycle.
    pub local_memory_bw: f64,
    /// Global memory bandwidth in bytes/cycle (shared by all cores).
    pub global_memory_bw: f64,
    /// Latency of one MVM operation, `T_MVM`, in cycles.
    pub mvm_latency: u64,
    /// Degree of parallelism: how many AGs may compute simultaneously
    /// within a core, limited by the user-given on-chip bandwidth
    /// (paper Section V-B.1: swept over {1, 20, 40, 200, 2000}).
    pub parallelism: usize,
    /// VFUs per core (Table I: 12).
    pub vfu_per_core: usize,
    /// Elements processed per cycle by one VFU lane.
    pub vfu_lane_throughput: f64,
    /// How cores are interconnected.
    pub connection: CoreConnection,
    /// NoC per-hop router latency in cycles.
    pub noc_hop_latency: u64,
    /// NoC link bandwidth in bytes/cycle.
    pub noc_link_bw: f64,
    /// NoC flit size in bits (Table I: 64).
    pub noc_flit_bits: u32,
    /// Core clock in GHz (PUMA: 1 GHz).
    pub clock_ghz: f64,
    /// Fraction of each component's Table I power that is static
    /// (leakage) rather than activity-proportional. Calibration knob for
    /// the Fig. 9 energy split; see DESIGN.md.
    pub leakage_fraction: f64,
    /// Cycles to program one crossbar row of NVM cells. Writes proceed
    /// row by row but are parallel across the cells of a row and across
    /// the crossbars of an array group, so rewriting an AG slice of `r`
    /// weight rows costs `r * xbar_write_row_cycles` cycles
    /// (COMPASS-style weight reloading; ReRAM SET/RESET is orders of
    /// magnitude slower than a read, hence the large default).
    pub xbar_write_row_cycles: u64,
    /// Energy to program one NVM cell, in pJ (the reload cost model's
    /// energy counterpart to `xbar_write_row_cycles`).
    pub xbar_write_pj_per_cell: f64,
}

impl HardwareConfig {
    /// The PUMA-like instantiation used throughout the paper's
    /// evaluation (Table I), at parallelism degree 20.
    pub fn puma() -> Self {
        HardwareConfig {
            crossbar_rows: 128,
            crossbar_cols: 128,
            crossbars_per_core: 64,
            cores_per_chip: 36,
            chips: 1,
            cell_bits: 2,
            weight_bits: 16,
            input_bits: 16,
            local_memory_bytes: 64 * 1024,
            global_memory_bytes: 4 * 1024 * 1024,
            local_memory_bw: 32.0,
            global_memory_bw: 64.0,
            mvm_latency: 2000,
            parallelism: 20,
            vfu_per_core: 12,
            vfu_lane_throughput: 1.0,
            connection: CoreConnection::Mesh,
            noc_hop_latency: 4,
            noc_link_bw: 8.0,
            noc_flit_bits: 64,
            clock_ghz: 1.0,
            leakage_fraction: 0.4,
            xbar_write_row_cycles: 100,
            xbar_write_pj_per_cell: 10.0,
        }
    }

    /// A scaled-down target for unit tests and examples: 4×4 cores of
    /// sixteen 64×64 crossbars storing 8-bit weights in 8-bit cells
    /// (no bit slicing, so small models fit with replication headroom).
    /// Small models compile and simulate in milliseconds on it.
    pub fn small_test() -> Self {
        HardwareConfig {
            crossbar_rows: 64,
            crossbar_cols: 64,
            crossbars_per_core: 16,
            cores_per_chip: 16,
            chips: 1,
            cell_bits: 8,
            weight_bits: 8,
            input_bits: 8,
            local_memory_bytes: 16 * 1024,
            global_memory_bytes: 1024 * 1024,
            local_memory_bw: 32.0,
            global_memory_bw: 64.0,
            mvm_latency: 64,
            parallelism: 8,
            vfu_per_core: 4,
            vfu_lane_throughput: 1.0,
            connection: CoreConnection::Mesh,
            noc_hop_latency: 2,
            noc_link_bw: 8.0,
            noc_flit_bits: 64,
            clock_ghz: 1.0,
            leakage_fraction: 0.4,
            xbar_write_row_cycles: 16,
            xbar_write_pj_per_cell: 1.0,
        }
    }

    /// Returns `puma()` scaled to `chips` chips (the paper's "Chip
    /// Number" user input): enough capacity for large networks.
    pub fn puma_with_chips(chips: usize) -> Self {
        HardwareConfig {
            chips,
            ..Self::puma()
        }
    }

    /// Returns a copy with the given parallelism degree (the Fig. 8
    /// sweep knob).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Total number of cores across all chips.
    pub fn total_cores(&self) -> usize {
        self.cores_per_chip * self.chips
    }

    /// Physical crossbar cells per weight: `ceil(weight_bits /
    /// cell_bits)`. With 16-bit weights and 2-bit cells a weight spans 8
    /// cells along the crossbar row.
    pub fn cells_per_weight(&self) -> usize {
        (self.weight_bits as usize).div_ceil(self.cell_bits as usize)
    }

    /// Weight columns available in one crossbar (`Wxbar` of the
    /// node-partitioning formulas): `crossbar_cols / cells_per_weight`.
    pub fn weight_cols_per_crossbar(&self) -> usize {
        (self.crossbar_cols / self.cells_per_weight()).max(1)
    }

    /// Crossbars available per core for weight storage.
    pub fn crossbar_capacity_per_core(&self) -> usize {
        self.crossbars_per_core
    }

    /// Total crossbars across the whole accelerator.
    pub fn total_crossbars(&self) -> usize {
        self.total_cores() * self.crossbars_per_core
    }

    /// The MVM issue interval `T_interval` in cycles: consecutive MVM
    /// launches within one core are spaced by at least this much, which
    /// realizes the parallelism degree `T_MVM / T_interval`
    /// (paper Fig. 5: `f(n) = n*T_interval` when issue-bound).
    pub fn issue_interval(&self) -> u64 {
        (self.mvm_latency as f64 / self.parallelism as f64)
            .ceil()
            .max(1.0) as u64
    }

    /// Cost in cycles of one *operation cycle* (one sliding window
    /// across `n` concurrently-active AGs in a core): the paper's
    /// `f(n) = max(n*T_interval, T_MVM)`.
    pub fn operation_cycle_cost(&self, n_ags: usize) -> u64 {
        (n_ags as u64 * self.issue_interval()).max(self.mvm_latency)
    }

    /// Bytes occupied by one activation element.
    pub fn input_bytes_per_element(&self) -> usize {
        (self.input_bits as usize).div_ceil(8)
    }

    /// Cycles for the VFU array of a core to process `elements`
    /// element-operations.
    pub fn vfu_cycles(&self, elements: usize) -> u64 {
        let rate = self.vfu_per_core as f64 * self.vfu_lane_throughput;
        (elements as f64 / rate).ceil() as u64
    }

    /// Cycles to move `bytes` through the global memory port (bandwidth
    /// only; contention is the simulator's job).
    pub fn global_memory_cycles(&self, bytes: usize) -> u64 {
        (bytes as f64 / self.global_memory_bw).ceil() as u64
    }

    /// Cycles to move `bytes` through a core's local memory port.
    pub fn local_memory_cycles(&self, bytes: usize) -> u64 {
        (bytes as f64 / self.local_memory_bw).ceil() as u64
    }

    /// Cycles to rewrite an array-group slice covering `rows` weight
    /// rows: programming is row-serial but cell- and crossbar-parallel,
    /// so only the row count matters.
    pub fn xbar_write_cycles(&self, rows: usize) -> u64 {
        rows as u64 * self.xbar_write_row_cycles
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidParameter`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<(), HwError> {
        let positive: [(&'static str, usize); 8] = [
            ("crossbar_rows", self.crossbar_rows),
            ("crossbar_cols", self.crossbar_cols),
            ("crossbars_per_core", self.crossbars_per_core),
            ("cores_per_chip", self.cores_per_chip),
            ("chips", self.chips),
            ("local_memory_bytes", self.local_memory_bytes),
            ("parallelism", self.parallelism),
            ("vfu_per_core", self.vfu_per_core),
        ];
        for (name, v) in positive {
            if v == 0 {
                return Err(HwError::InvalidParameter {
                    name,
                    detail: "must be positive".into(),
                });
            }
        }
        if self.cell_bits == 0 || self.weight_bits == 0 || self.input_bits == 0 {
            return Err(HwError::InvalidParameter {
                name: "bit widths",
                detail: "must be positive".into(),
            });
        }
        if self.cell_bits > self.weight_bits {
            return Err(HwError::InvalidParameter {
                name: "cell_bits",
                detail: format!(
                    "cell precision {} exceeds weight precision {}",
                    self.cell_bits, self.weight_bits
                ),
            });
        }
        if self.mvm_latency == 0 {
            return Err(HwError::InvalidParameter {
                name: "mvm_latency",
                detail: "must be positive".into(),
            });
        }
        if self.xbar_write_row_cycles == 0 {
            return Err(HwError::InvalidParameter {
                name: "xbar_write_row_cycles",
                detail: "must be positive".into(),
            });
        }
        if !self.xbar_write_pj_per_cell.is_finite() || self.xbar_write_pj_per_cell < 0.0 {
            return Err(HwError::InvalidParameter {
                name: "xbar_write_pj_per_cell",
                detail: "must be a finite non-negative number".into(),
            });
        }
        for (name, v) in [
            ("local_memory_bw", self.local_memory_bw),
            ("global_memory_bw", self.global_memory_bw),
            ("noc_link_bw", self.noc_link_bw),
            ("clock_ghz", self.clock_ghz),
            ("vfu_lane_throughput", self.vfu_lane_throughput),
        ] {
            if v <= 0.0 || v.is_nan() {
                return Err(HwError::InvalidParameter {
                    name,
                    detail: "must be positive".into(),
                });
            }
        }
        if !(0.0..=1.0).contains(&self.leakage_fraction) {
            return Err(HwError::InvalidParameter {
                name: "leakage_fraction",
                detail: "must lie in [0, 1]".into(),
            });
        }
        Ok(())
    }
}

impl Default for HardwareConfig {
    /// The paper's PUMA-like target ([`HardwareConfig::puma`]).
    fn default() -> Self {
        Self::puma()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn puma_preset_validates() {
        HardwareConfig::puma().validate().unwrap();
        HardwareConfig::small_test().validate().unwrap();
    }

    #[test]
    fn weight_cols_account_for_bit_slicing() {
        let hw = HardwareConfig::puma();
        assert_eq!(hw.cells_per_weight(), 8);
        assert_eq!(hw.weight_cols_per_crossbar(), 16);
    }

    #[test]
    fn issue_interval_matches_parallelism() {
        let hw = HardwareConfig::puma().with_parallelism(20);
        assert_eq!(hw.issue_interval(), 100);
        let hw1 = hw.clone().with_parallelism(1);
        assert_eq!(hw1.issue_interval(), 2000);
        let hw2000 = hw.with_parallelism(2000);
        assert_eq!(hw2000.issue_interval(), 1);
    }

    #[test]
    fn operation_cycle_cost_is_max_of_issue_and_latency() {
        let hw = HardwareConfig::puma().with_parallelism(20);
        // Few AGs: latency-bound.
        assert_eq!(hw.operation_cycle_cost(3), 2000);
        // Many AGs: issue-bound (n * 100 > 2000 for n > 20).
        assert_eq!(hw.operation_cycle_cost(30), 3000);
        // Break-even at exactly the parallelism degree.
        assert_eq!(hw.operation_cycle_cost(20), 2000);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut hw = HardwareConfig::puma();
        hw.crossbar_rows = 0;
        assert!(hw.validate().is_err());

        let mut hw = HardwareConfig::puma();
        hw.cell_bits = 32;
        assert!(hw.validate().is_err());

        let mut hw = HardwareConfig::puma();
        hw.leakage_fraction = 1.5;
        assert!(hw.validate().is_err());

        let mut hw = HardwareConfig::puma();
        hw.global_memory_bw = 0.0;
        assert!(hw.validate().is_err());

        let mut hw = HardwareConfig::puma();
        hw.xbar_write_row_cycles = 0;
        assert!(hw.validate().is_err());

        let mut hw = HardwareConfig::puma();
        hw.xbar_write_pj_per_cell = f64::NAN;
        assert!(hw.validate().is_err());

        let mut hw = HardwareConfig::puma();
        hw.xbar_write_pj_per_cell = -1.0;
        assert!(hw.validate().is_err());
    }

    #[test]
    fn total_counts_scale_with_chips() {
        let hw = HardwareConfig::puma_with_chips(4);
        assert_eq!(hw.total_cores(), 144);
        assert_eq!(hw.total_crossbars(), 144 * 64);
    }

    #[test]
    fn serde_round_trip() {
        let hw = HardwareConfig::puma();
        let s = serde_json::to_string(&hw).unwrap();
        let hw2: HardwareConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(hw, hw2);
    }
}
