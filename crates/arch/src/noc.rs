//! 2-D mesh network-on-chip timing/energy model.
//!
//! The paper instantiates core interconnect as a NoC (Section V-A.1).
//! Cores are arranged in a near-square mesh per chip; inter-chip
//! transfers cross the Hyper Transport link. Transfer cost =
//! per-hop router latency × hops + serialization at link bandwidth,
//! the usual wormhole first-flit + body model.

use crate::{CoreConnection, HardwareConfig, RouterModel};
use serde::{Deserialize, Serialize};

/// Mesh geometry and transfer cost model for a given hardware config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocModel {
    cols: usize,
    rows: usize,
    cores_per_chip: usize,
    hop_latency: u64,
    link_bw: f64,
    connection: CoreConnection,
    router: RouterModel,
    /// Extra cycles for crossing the off-chip link once.
    chip_crossing_latency: u64,
}

impl NocModel {
    /// Builds the mesh model for `hw` (per-chip mesh of
    /// `cores_per_chip` nodes, as square as possible).
    pub fn new(hw: &HardwareConfig) -> Self {
        let cols = (hw.cores_per_chip as f64).sqrt().ceil() as usize;
        let rows = hw.cores_per_chip.div_ceil(cols);
        NocModel {
            cols,
            rows,
            cores_per_chip: hw.cores_per_chip,
            hop_latency: hw.noc_hop_latency,
            link_bw: hw.noc_link_bw,
            connection: hw.connection,
            router: RouterModel::calibrated(),
            chip_crossing_latency: 100,
        }
    }

    /// Mesh dimensions `(cols, rows)` per chip.
    pub fn mesh_dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// `(chip, x, y)` coordinates of a global core index.
    pub fn coords(&self, core: usize) -> (usize, usize, usize) {
        let chip = core / self.cores_per_chip;
        let local = core % self.cores_per_chip;
        (chip, local % self.cols, local / self.cols)
    }

    /// Router hops between two cores (Manhattan distance in-mesh; cores
    /// on different chips additionally pay each mesh's path to its edge
    /// port, accounted as the two in-chip distances plus one crossing).
    pub fn hops(&self, from: usize, to: usize) -> usize {
        if from == to {
            return 0;
        }
        let (cf, xf, yf) = self.coords(from);
        let (ct, xt, yt) = self.coords(to);
        if cf == ct {
            xf.abs_diff(xt) + yf.abs_diff(yt)
        } else {
            // To the edge (x=0) of the source mesh, across, then into
            // the destination mesh from its edge.
            (xf + yf) + 1 + (xt + yt)
        }
    }

    /// `true` when the two cores sit on different chips.
    pub fn crosses_chips(&self, from: usize, to: usize) -> bool {
        self.coords(from).0 != self.coords(to).0
    }

    /// Cycles for `bytes` to travel from core `from` to core `to`:
    /// head-flit routing latency plus body serialization.
    pub fn transfer_cycles(&self, from: usize, to: usize, bytes: usize) -> u64 {
        if from == to {
            return 0;
        }
        let serialization = (bytes as f64 / self.link_bw).ceil() as u64;
        match self.connection {
            CoreConnection::Mesh => {
                let hops = self.hops(from, to) as u64;
                let mut t = hops * self.hop_latency + serialization;
                if self.crosses_chips(from, to) {
                    t += self.chip_crossing_latency;
                }
                t
            }
            CoreConnection::Bus => {
                // Uniform two-hop cost; the simulator serializes bus use.
                2 * self.hop_latency + serialization
            }
            CoreConnection::GlobalMemoryOnly => {
                // Store + load through global memory: double move.
                2 * serialization + 2 * self.hop_latency
            }
        }
    }

    /// Energy in pJ for the same transfer.
    pub fn transfer_energy_pj(&self, from: usize, to: usize, bytes: usize) -> f64 {
        if from == to {
            return 0.0;
        }
        let hops = match self.connection {
            CoreConnection::Mesh => self.hops(from, to),
            CoreConnection::Bus | CoreConnection::GlobalMemoryOnly => 2,
        };
        self.router.transfer_energy_pj(bytes, hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> NocModel {
        NocModel::new(&HardwareConfig::puma())
    }

    #[test]
    fn puma_mesh_is_6x6() {
        assert_eq!(mesh().mesh_dims(), (6, 6));
    }

    #[test]
    fn hops_are_manhattan_distance() {
        let m = mesh();
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 1), 1); // (0,0)->(1,0)
        assert_eq!(m.hops(0, 7), 2); // (0,0)->(1,1)
        assert_eq!(m.hops(0, 35), 10); // (0,0)->(5,5)
                                       // Symmetry.
        assert_eq!(m.hops(3, 20), m.hops(20, 3));
    }

    #[test]
    fn transfer_time_includes_serialization() {
        let m = mesh();
        let short = m.transfer_cycles(0, 1, 8);
        let long = m.transfer_cycles(0, 1, 8000);
        assert!(long > short);
        assert_eq!(m.transfer_cycles(5, 5, 1_000_000), 0);
    }

    #[test]
    fn cross_chip_transfers_pay_the_crossing() {
        let hw = HardwareConfig::puma_with_chips(2);
        let m = NocModel::new(&hw);
        assert!(m.crosses_chips(0, 36));
        assert!(!m.crosses_chips(0, 35));
        assert!(m.transfer_cycles(0, 36, 64) > m.transfer_cycles(0, 35, 64));
    }

    #[test]
    fn bus_cost_is_distance_independent() {
        let mut hw = HardwareConfig::puma();
        hw.connection = CoreConnection::Bus;
        let m = NocModel::new(&hw);
        assert_eq!(m.transfer_cycles(0, 1, 64), m.transfer_cycles(0, 35, 64));
    }

    #[test]
    fn energy_zero_for_self_transfer() {
        let m = mesh();
        assert_eq!(m.transfer_energy_pj(4, 4, 100), 0.0);
        assert!(m.transfer_energy_pj(0, 35, 100) > m.transfer_energy_pj(0, 1, 100));
    }
}
