//! Analytic NoC router model standing in for Orion 3.0.
//!
//! Orion estimates router power/area from microarchitectural parameters;
//! Table I reports its output for the evaluated design (64-bit flits:
//! 43.13 mW, 0.14 mm²). This substitute pins those outputs and derives a
//! per-flit-per-hop traversal energy by attributing the router's dynamic
//! power share to a fully-utilized router (one flit per cycle at the
//! core clock), the standard Orion accounting identity.

use serde::{Deserialize, Serialize};

/// Analytic router power/area/flit-energy model (Orion 3.0 substitute).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterModel {
    power_mw: f64,
    area_mm2: f64,
    flit_bits: u32,
    /// Fraction of router power that is static.
    leakage_fraction: f64,
    /// Clock used to convert power to per-flit energy (GHz).
    clock_ghz: f64,
}

impl RouterModel {
    /// The model calibrated to the Table I router row (64-bit flits at
    /// 1 GHz, 40% leakage share).
    pub fn calibrated() -> Self {
        RouterModel {
            power_mw: 43.13,
            area_mm2: 0.14,
            flit_bits: 64,
            leakage_fraction: 0.4,
            clock_ghz: 1.0,
        }
    }

    /// Total router power in mW.
    pub fn power_mw(&self) -> f64 {
        self.power_mw
    }

    /// Router area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.area_mm2
    }

    /// Static (leakage) power in mW.
    pub fn leakage_power_mw(&self) -> f64 {
        self.power_mw * self.leakage_fraction
    }

    /// Flit width in bits.
    pub fn flit_bits(&self) -> u32 {
        self.flit_bits
    }

    /// Flit width in bytes (rounded up).
    pub fn flit_bytes(&self) -> usize {
        (self.flit_bits as usize).div_ceil(8)
    }

    /// Energy for one flit to traverse one router, in pJ.
    ///
    /// Derivation: dynamic power = `(1-leak) * P`; at full utilization a
    /// router moves `clock_ghz` Gflit/s, so energy/flit =
    /// `P_dyn / rate`. For the calibrated model:
    /// `0.6 * 43.13 mW / 1 GHz ≈ 25.9 pJ`.
    pub fn flit_energy_pj(&self) -> f64 {
        self.power_mw * (1.0 - self.leakage_fraction) / self.clock_ghz
    }

    /// Flits needed to carry `bytes` of payload.
    pub fn flits_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.flit_bytes()).max(1)
    }

    /// Energy in pJ for `bytes` moved across `hops` routers.
    pub fn transfer_energy_pj(&self, bytes: usize, hops: usize) -> f64 {
        self.flits_for(bytes) as f64 * hops.max(1) as f64 * self.flit_energy_pj()
    }
}

impl Default for RouterModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_table1_router_row() {
        let r = RouterModel::calibrated();
        assert_eq!(r.power_mw(), 43.13);
        assert_eq!(r.area_mm2(), 0.14);
        assert_eq!(r.flit_bits(), 64);
        assert_eq!(r.flit_bytes(), 8);
    }

    #[test]
    fn flit_energy_is_dynamic_share_over_rate() {
        let r = RouterModel::calibrated();
        assert!((r.flit_energy_pj() - 25.878).abs() < 1e-3);
    }

    #[test]
    fn transfer_energy_scales_with_flits_and_hops() {
        let r = RouterModel::calibrated();
        let one = r.transfer_energy_pj(8, 1);
        assert!((r.transfer_energy_pj(16, 1) - 2.0 * one).abs() < 1e-9);
        assert!((r.transfer_energy_pj(8, 3) - 3.0 * one).abs() < 1e-9);
        // Zero-byte messages still cost one flit (header).
        assert!(r.transfer_energy_pj(0, 1) > 0.0);
    }
}
