//! Abstract crossbar-PIM accelerator architecture (paper Section III).
//!
//! The accelerator is a set of *cores* connected to a *global memory*;
//! each core holds a PIM matrix unit (PIMMU, a bundle of NVM crossbars),
//! a vector functional unit (VFU), a local scratchpad and a control unit.
//! Cores run asynchronously and synchronize on inter-core transfers.
//! This crate captures:
//!
//! * [`HardwareConfig`] — the user-input knobs of paper Fig. 3 (crossbar
//!   size, core/chip counts, connection method, bit widths, bandwidths,
//!   MVM latency, parallelism degree).
//! * [`ComponentLibrary`] — the Table I power/area numbers, with
//!   [`SramModel`] and [`RouterModel`] standing in for CACTI 7 and
//!   Orion 3.0 (calibrated to reproduce the published constants).
//! * [`NocModel`] — 2-D mesh transfer latency/energy.
//! * [`EnergyModel`] — per-operation dynamic energies and per-component
//!   leakage powers derived from the library.
//!
//! # Example
//!
//! ```
//! use pimcomp_arch::HardwareConfig;
//!
//! let hw = HardwareConfig::puma();
//! assert_eq!(hw.crossbar_rows, 128);
//! assert_eq!(hw.cores_per_chip, 36);
//! // 16-bit weights in 2-bit cells: 8 physical columns per weight.
//! assert_eq!(hw.weight_cols_per_crossbar(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod energy;
mod library;
mod memory_model;
mod noc;
mod quant;
mod router;
mod sweep;

pub use config::{CoreConnection, HardwareConfig, HwError, PipelineMode};
pub use energy::{EnergyModel, LeakageBreakdown};
pub use library::{table1, ComponentLibrary, ComponentSpec};
pub use memory_model::SramModel;
pub use noc::NocModel;
pub use quant::QuantConfig;
pub use router::RouterModel;
pub use sweep::{preset, preset_names, HardwareGrid};
