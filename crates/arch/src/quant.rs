//! Crossbar quantization knobs: weight bit-slicing and ADC precision.
//!
//! A crossbar stores each `weight_bits`-bit weight across
//! `ceil(weight_bits / cell_bits)` NVM cells, and every analog
//! column-sum passes through an ADC of finite resolution before digital
//! accumulation. The bit-slice decomposition is value-exact (it is an
//! integer base-`2^cell_bits` expansion), so the accuracy loss of a
//! compiled layout comes from two places this config captures:
//!
//! * weight quantization — weights are rounded to `weight_bits`-bit
//!   signed integers under a per-node symmetric scale, and
//! * ADC clipping — each per-crossbar partial sum is rounded to a
//!   `2^adc_bits`-level grid over a calibrated full-scale range.
//!
//! Both effects are modeled by the functional executor
//! (`pimcomp-exec`); this crate only owns the knobs, so that hardware
//! description and numerics stay in their own layers.
//!
//! `adc_bits` grids are nested — every level of a `b`-bit ADC is also a
//! level of a `b+1`-bit ADC over the same full scale — so output error
//! is monotone non-increasing in `adc_bits`, a property the test suite
//! relies on.

use crate::config::{HardwareConfig, HwError};
use serde::{Deserialize, Serialize};

/// Quantization model of a crossbar target: how many bits a weight
/// carries, how wide one NVM cell is, and how precise the ADC is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Signed weight precision in bits (weights quantize to
    /// `[-(2^(b-1) - 1), 2^(b-1) - 1]` under a per-node scale).
    pub weight_bits: u32,
    /// Bits stored per NVM cell; a weight occupies
    /// `ceil(weight_bits / cell_bits)` cells (bit slicing).
    pub cell_bits: u32,
    /// ADC resolution in bits: each per-crossbar partial sum is rounded
    /// and clipped to a signed `2^adc_bits`-level grid. The maximum
    /// value, 32, models an *ideal* converter (its grid resolves below
    /// f32 precision, so the executor skips conversion entirely) — the
    /// baseline the ADC-monotonicity tests measure against.
    pub adc_bits: u32,
}

impl QuantConfig {
    /// The quantization model of a hardware target: `weight_bits` and
    /// `cell_bits` come from the target (they are already compilation
    /// knobs — they set the crossbar column budget), `adc_bits` is the
    /// new accuracy knob.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidParameter`] when the resulting config fails
    /// [`QuantConfig::validate`].
    pub fn for_hardware(hw: &HardwareConfig, adc_bits: u32) -> Result<Self, HwError> {
        let q = QuantConfig {
            weight_bits: hw.weight_bits,
            cell_bits: hw.cell_bits,
            adc_bits,
        };
        q.validate()?;
        Ok(q)
    }

    /// Cells per weight: `ceil(weight_bits / cell_bits)` — must agree
    /// with [`HardwareConfig::cells_per_weight`] for the same target.
    pub fn cells_per_weight(&self) -> u32 {
        self.weight_bits.div_ceil(self.cell_bits)
    }

    /// Largest representable quantized weight magnitude:
    /// `2^(weight_bits - 1) - 1`.
    pub fn weight_qmax(&self) -> i64 {
        (1i64 << (self.weight_bits - 1)) - 1
    }

    /// Signed ADC levels on each side of zero: `2^(adc_bits - 1)`.
    pub fn adc_half_levels(&self) -> i64 {
        1i64 << (self.adc_bits - 1)
    }

    /// `true` when the ADC is ideal (`adc_bits == 32`): conversion is
    /// lossless at f32 precision and the executor bypasses it, leaving
    /// weight quantization as the only accuracy effect.
    pub fn is_ideal_adc(&self) -> bool {
        self.adc_bits >= 32
    }

    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidParameter`] when a bit width is zero, exceeds
    /// 32, or `cell_bits > weight_bits`.
    pub fn validate(&self) -> Result<(), HwError> {
        let range = |name: &'static str, v: u32| {
            if v == 0 || v > 32 {
                return Err(HwError::InvalidParameter {
                    name,
                    detail: format!("must be in 1..=32, got {v}"),
                });
            }
            Ok(())
        };
        range("weight_bits", self.weight_bits)?;
        range("cell_bits", self.cell_bits)?;
        range("adc_bits", self.adc_bits)?;
        if self.cell_bits > self.weight_bits {
            return Err(HwError::InvalidParameter {
                name: "cell_bits",
                detail: format!(
                    "cell width {} exceeds weight width {}",
                    self.cell_bits, self.weight_bits
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_hardware_matches_config_helpers() {
        let hw = HardwareConfig::puma();
        let q = QuantConfig::for_hardware(&hw, 8).unwrap();
        assert_eq!(q.weight_bits, 16);
        assert_eq!(q.cell_bits, 2);
        assert_eq!(q.cells_per_weight() as usize, hw.cells_per_weight());
        assert_eq!(q.weight_qmax(), 32767);
        assert_eq!(q.adc_half_levels(), 128);
    }

    #[test]
    fn validate_rejects_bad_widths() {
        let hw = HardwareConfig::puma();
        assert!(QuantConfig::for_hardware(&hw, 0).is_err());
        assert!(QuantConfig::for_hardware(&hw, 33).is_err());
        let bad = QuantConfig {
            weight_bits: 4,
            cell_bits: 8,
            adc_bits: 8,
        };
        let e = bad.validate().unwrap_err();
        assert!(e.to_string().contains("cell_bits"));
    }
}
