//! The mapped MVM strategy: execute a compiled model's per-crossbar
//! layout numerically.
//!
//! Each MVM node's weight matrix is split exactly the way the compiled
//! [`Partitioning`] and [`CoreMapping`] say it is: column groups first,
//! then replicas (each handling a contiguous window range), then Array
//! Groups (crossbar-height row slices), each AG's columns living on
//! physical crossbars. A window's output element is the sum of its
//! per-slice partial sums, accumulated in ascending slice order at the
//! replica's owner core — so a missing, duplicated or misplaced AG in
//! the mapping produces either a structured [`ExecError`] or a wrong
//! tensor a differential test catches.
//!
//! With a [`QuantConfig`], the executor additionally models the analog
//! datapath: weights are rounded to `weight_bits`-bit integers under a
//! per-node symmetric scale (their base-`2^cell_bits` bit-slice
//! decomposition is value-exact, see [`slice_cells`]), and every
//! per-crossbar column sum passes through an ADC that rounds and clips
//! to a `2^adc_bits`-level grid over a per-node calibrated full scale.
//! ADC grids over one full scale are nested in `adc_bits`, so the
//! per-partial error — and with it the single-layer output RMSE — is
//! monotone non-increasing in ADC resolution.

use crate::engine::{MvmBackend, MvmJob, WeightMatrix};
use crate::error::ExecError;
use crate::reference::dot;
use pimcomp_arch::QuantConfig;
use pimcomp_core::{slice_rows, CompiledModel, EpochPlan, NodePartition};

/// Per-MVM-entry Array-Group coverage extracted from a [`CoreMapping`]:
/// `cores[replica][slice]` is the core holding that AG.
struct Coverage {
    cores: Vec<Vec<usize>>,
}

/// Computes MVM nodes through the compiled per-crossbar layout.
pub struct MappedBackend<'a> {
    model: &'a CompiledModel,
    quant: Option<QuantConfig>,
    coverage: Vec<Coverage>,
}

impl<'a> MappedBackend<'a> {
    /// Builds the executor, validating everything it will index: the
    /// replication counts, every AG instance's `(mvm, replica, slice,
    /// core)`, the owner table, per-entry geometry against the
    /// hardware, and (for multi-epoch `weight_reload` artifacts) the
    /// reconstructed epoch plan.
    ///
    /// # Errors
    ///
    /// [`ExecError::MappingIncomplete`] / [`ExecError::CoreOutOfRange`]
    /// / [`ExecError::ReloadPlanMismatch`] on any inconsistency a
    /// truncated or tampered artifact could exhibit, and
    /// [`ExecError::InvalidQuant`] for bad quantization knobs.
    pub fn new(model: &'a CompiledModel, quant: Option<QuantConfig>) -> Result<Self, ExecError> {
        if let Some(q) = &quant {
            q.validate().map_err(|e| ExecError::InvalidQuant {
                detail: e.to_string(),
            })?;
        }
        let entries = model.partitioning.entries();
        let counts = model.mapping.replication.counts();
        if counts.len() != entries.len() {
            return Err(ExecError::MappingIncomplete {
                detail: format!(
                    "replication plan covers {} nodes, partitioning has {}",
                    counts.len(),
                    entries.len()
                ),
            });
        }
        let total_cores = model.hw.total_cores();
        let hx = model.hw.crossbar_rows;
        let wcc = model.hw.weight_cols_per_crossbar();
        if hx == 0 || wcc == 0 {
            return Err(ExecError::MappingIncomplete {
                detail: "hardware has zero crossbar rows or weight columns".to_string(),
            });
        }
        for (i, e) in entries.iter().enumerate() {
            if counts[i] == 0 {
                return Err(ExecError::MappingIncomplete {
                    detail: format!("entry {i} (`{}`) has replication 0", e.name),
                });
            }
            if e.ags_per_replica != e.weight_height.div_ceil(hx)
                || e.crossbars_per_ag != e.weight_width.div_ceil(wcc)
            {
                return Err(ExecError::MappingIncomplete {
                    detail: format!(
                        "entry {i} (`{}`) geometry ({} AGs × {} crossbars) disagrees with \
                         a {}×{} weight matrix on {hx}-row, {wcc}-weight-column crossbars",
                        e.name,
                        e.ags_per_replica,
                        e.crossbars_per_ag,
                        e.weight_height,
                        e.weight_width
                    ),
                });
            }
        }

        let mut coverage: Vec<Vec<Vec<Option<usize>>>> = entries
            .iter()
            .enumerate()
            .map(|(i, e)| vec![vec![None; e.ags_per_replica]; counts[i]])
            .collect();
        for inst in &model.mapping.instances {
            let slot = coverage
                .get_mut(inst.mvm)
                .ok_or(ExecError::MappingIncomplete {
                    detail: format!(
                        "AG instance names MVM entry {} of {}",
                        inst.mvm,
                        entries.len()
                    ),
                })?
                .get_mut(inst.replica)
                .ok_or_else(|| ExecError::MappingIncomplete {
                    detail: format!(
                        "AG instance names replica {} of entry {} (replication {})",
                        inst.replica, inst.mvm, counts[inst.mvm]
                    ),
                })?
                .get_mut(inst.slice)
                .ok_or_else(|| ExecError::MappingIncomplete {
                    detail: format!(
                        "AG instance names slice {} of entry {} ({} AGs per replica)",
                        inst.slice, inst.mvm, entries[inst.mvm].ags_per_replica
                    ),
                })?;
            if inst.core >= total_cores {
                return Err(ExecError::CoreOutOfRange {
                    core: inst.core,
                    total: total_cores,
                });
            }
            if slot.replace(inst.core).is_some() {
                return Err(ExecError::MappingIncomplete {
                    detail: format!(
                        "duplicate AG instance (entry {}, replica {}, slice {})",
                        inst.mvm, inst.replica, inst.slice
                    ),
                });
            }
        }
        let coverage: Vec<Coverage> = coverage
            .into_iter()
            .enumerate()
            .map(|(i, reps)| {
                let cores = reps
                    .into_iter()
                    .enumerate()
                    .map(|(r, slices)| {
                        slices
                            .into_iter()
                            .enumerate()
                            .map(|(s, c)| {
                                c.ok_or_else(|| ExecError::MappingIncomplete {
                                    detail: format!(
                                        "no AG instance for entry {i}, replica {r}, slice {s}"
                                    ),
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Coverage { cores })
            })
            .collect::<Result<_, _>>()?;

        // Owner table: one accumulation core per replica, in range.
        if model.mapping.owners.len() != entries.len() {
            return Err(ExecError::MappingIncomplete {
                detail: format!(
                    "owner table covers {} nodes, partitioning has {}",
                    model.mapping.owners.len(),
                    entries.len()
                ),
            });
        }
        for (i, owners) in model.mapping.owners.iter().enumerate() {
            if owners.len() != counts[i] {
                return Err(ExecError::MappingIncomplete {
                    detail: format!(
                        "entry {i} has {} owners for {} replicas",
                        owners.len(),
                        counts[i]
                    ),
                });
            }
            for &core in owners {
                if core >= total_cores {
                    return Err(ExecError::CoreOutOfRange {
                        core,
                        total: total_cores,
                    });
                }
            }
        }

        let backend = MappedBackend {
            model,
            quant,
            coverage,
        };
        backend.check_reload_plan()?;
        Ok(backend)
    }

    /// Multi-epoch `weight_reload` artifacts: reconstruct the
    /// (deterministic) epoch plan from the stored budget and insist it
    /// covers every Array Group exactly once with replication 1 — the
    /// duplication-free time-multiplexing contract that only numerics
    /// can falsify.
    fn check_reload_plan(&self) -> Result<(), ExecError> {
        let Some(plan) = self.model.reload.as_ref().filter(|p| !p.is_single_epoch()) else {
            return Ok(());
        };
        let entries = self.model.partitioning.entries();
        let counts = self.model.mapping.replication.counts();
        if counts.iter().any(|&c| c != 1) {
            return Err(ExecError::ReloadPlanMismatch {
                detail: "multi-epoch reload mapping must be duplication-free (replication 1)"
                    .to_string(),
            });
        }
        let rebuilt = EpochPlan::new(&self.model.partitioning, &self.model.hw, plan.budget)
            .map_err(|e| ExecError::ReloadPlanMismatch {
                detail: format!("cannot rebuild epoch plan for budget {}: {e}", plan.budget),
            })?;
        if rebuilt.epoch_count() != plan.epoch_count() {
            return Err(ExecError::ReloadPlanMismatch {
                detail: format!(
                    "stored plan has {} epochs, rebuilt plan has {}",
                    plan.epoch_count(),
                    rebuilt.epoch_count()
                ),
            });
        }
        let mut seen: Vec<Vec<bool>> = entries
            .iter()
            .map(|e| vec![false; e.ags_per_replica])
            .collect();
        for epoch in &rebuilt.epochs {
            for a in epoch {
                let slot = seen
                    .get_mut(a.mvm)
                    .and_then(|s| s.get_mut(a.slice))
                    .ok_or_else(|| ExecError::ReloadPlanMismatch {
                        detail: format!(
                            "epoch assignment (entry {}, slice {}) is out of range",
                            a.mvm, a.slice
                        ),
                    })?;
                if *slot {
                    return Err(ExecError::ReloadPlanMismatch {
                        detail: format!(
                            "entry {} slice {} is written in two epochs",
                            a.mvm, a.slice
                        ),
                    });
                }
                *slot = true;
            }
        }
        if let Some((i, s)) = seen
            .iter()
            .enumerate()
            .find_map(|(i, v)| v.iter().position(|&b| !b).map(|s| (i, s)))
        {
            return Err(ExecError::ReloadPlanMismatch {
                detail: format!("entry {i} slice {s} is never scheduled in any epoch"),
            });
        }
        Ok(())
    }

    /// The node's partition entries in column-group order, validated
    /// against the job geometry.
    fn node_entries(&self, job: &MvmJob) -> Result<Vec<usize>, ExecError> {
        let mut indices = self.model.partitioning.indices_of(job.node.id);
        if indices.is_empty() {
            return Err(ExecError::MissingPartition {
                node: job.node.name.clone(),
            });
        }
        let entries = self.model.partitioning.entries();
        indices.sort_by_key(|&i| entries[i].col_group);
        let mut width = 0usize;
        for (pos, &i) in indices.iter().enumerate() {
            let e = &entries[i];
            if e.col_group != pos || e.col_groups != indices.len() {
                return Err(ExecError::MappingIncomplete {
                    detail: format!(
                        "column groups of `{}` are not consecutive (group {} of {})",
                        job.node.name, e.col_group, e.col_groups
                    ),
                });
            }
            if e.weight_height != job.height || e.windows != job.windows {
                return Err(ExecError::ShapeMismatch {
                    node: job.node.name.clone(),
                    detail: format!(
                        "partition entry expects {}×? over {} windows, kernel computes {}×{} \
                         over {} windows",
                        e.weight_height, e.windows, job.height, job.width, job.windows
                    ),
                });
            }
            width += e.weight_width;
        }
        if width != job.width {
            return Err(ExecError::ShapeMismatch {
                node: job.node.name.clone(),
                detail: format!(
                    "column groups cover {width} columns, weight matrix has {}",
                    job.width
                ),
            });
        }
        Ok(indices)
    }

    /// Runs the layout over every `(window, slice, column)` partial,
    /// feeding each partial (and its output cell) to `sink` in the
    /// deterministic accumulation order.
    fn for_each_partial(
        &self,
        job: &MvmJob,
        indices: &[usize],
        weights: &WeightMatrix,
        mut sink: impl FnMut(usize, f32),
    ) {
        let entries = self.model.partitioning.entries();
        let counts = self.model.mapping.replication.counts();
        let hx = self.model.hw.crossbar_rows;
        let mut col_base = 0usize;
        for &idx in indices {
            let e: &NodePartition = &entries[idx];
            let r = counts[idx];
            let wpr = e.windows_per_replica(r);
            for replica in 0..r {
                let w0 = replica * wpr;
                let w1 = (w0 + wpr).min(e.windows);
                if w0 >= w1 {
                    continue;
                }
                // The replica's AGs: cores are validated and fixed, the
                // owner core accumulates partials in ascending slice
                // order (coverage lookup asserts the AGs exist).
                let _ag_cores = &self.coverage[idx].cores[replica];
                for s in 0..e.ags_per_replica {
                    let rows = slice_rows(e.weight_height, hx, s);
                    if rows == 0 {
                        continue;
                    }
                    let r0 = s * hx;
                    for w in w0..w1 {
                        for c in 0..e.weight_width {
                            let gcol = col_base + c;
                            let g = job.group_of(gcol);
                            let row = &job.rows[g][w * job.height + r0..w * job.height + r0 + rows];
                            let wcol = &weights.col(gcol)[r0..r0 + rows];
                            sink(w * job.width + gcol, dot(row, wcol));
                        }
                    }
                }
            }
            col_base += e.weight_width;
        }
    }
}

impl MvmBackend for MappedBackend<'_> {
    fn mvm(&mut self, job: &MvmJob) -> Result<Vec<f32>, ExecError> {
        let indices = self.node_entries(job)?;
        let mut out = vec![0.0f32; job.windows * job.width];
        match &self.quant {
            None => {
                self.for_each_partial(job, &indices, job.weights, |cell, p| out[cell] += p);
            }
            Some(q) if q.is_ideal_adc() => {
                // Ideal converter: weight quantization is the only
                // accuracy effect — the ADC-monotonicity baseline.
                let qw = quantize_weights(job.weights, q);
                self.for_each_partial(job, &indices, &qw, |cell, p| out[cell] += p);
            }
            Some(q) => {
                let qw = quantize_weights(job.weights, q);
                // Calibration pass: the ADC full scale is the largest
                // unclipped partial magnitude of this node — a function
                // of the quantized weights and the input only, NOT of
                // adc_bits, so grids of different resolutions nest.
                let mut full_scale = 0.0f32;
                self.for_each_partial(job, &indices, &qw, |_, p| {
                    full_scale = full_scale.max(p.abs())
                });
                let half = q.adc_half_levels();
                self.for_each_partial(job, &indices, &qw, |cell, p| {
                    out[cell] += adc_quantize(p, full_scale, half)
                });
            }
        }
        Ok(out)
    }
}

/// Rounds weights to `weight_bits`-bit signed integers under a
/// symmetric per-matrix scale, returning the dequantized matrix. The
/// physical bit-slice storage (base-`2^cell_bits` cells) reconstructs
/// these values exactly, so computing with the dequantized matrix is
/// the cell-accurate result — see [`slice_cells`].
fn quantize_weights(w: &WeightMatrix, q: &QuantConfig) -> WeightMatrix {
    let qmax = q.weight_qmax() as f32;
    let max_abs = w.cols.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if max_abs == 0.0 {
        return WeightMatrix {
            height: w.height,
            width: w.width,
            cols: w.cols.clone(),
        };
    }
    let scale = max_abs / qmax;
    let cols = w
        .cols
        .iter()
        .map(|&v| (v / scale).round().clamp(-qmax, qmax) * scale)
        .collect();
    WeightMatrix {
        height: w.height,
        width: w.width,
        cols,
    }
}

/// One ADC conversion: round `x` to the signed `2^adc_bits`-level grid
/// of step `full_scale / 2^(adc_bits-1)` and clip to its range. Grids
/// of increasing resolution over one full scale are nested (every
/// coarse level is a fine level and the clip range only widens), so
/// `|x - adc(x)|` is non-increasing in `adc_bits`.
fn adc_quantize(x: f32, full_scale: f32, half_levels: i64) -> f32 {
    if full_scale <= 0.0 {
        return 0.0;
    }
    let step = full_scale / half_levels as f32;
    let q = (x / step)
        .round()
        .clamp(-(half_levels as f32), (half_levels - 1) as f32);
    q * step
}

/// Decomposes a non-negative quantized weight into base-`2^cell_bits`
/// cell conductances, least significant cell first. Exposed for the
/// bit-slicing exactness tests: the decomposition reconstructs the
/// integer exactly, which is why `quantize_weights`'s dequantized
/// matrix equals the cell-level computation.
pub fn slice_cells(value: u64, cell_bits: u32, cells: u32) -> Vec<u64> {
    let base = 1u64 << cell_bits;
    let mut rest = value;
    let mut out = Vec::with_capacity(cells as usize);
    for _ in 0..cells {
        out.push(rest % base);
        rest /= base;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_slice_decomposition_is_exact() {
        // Every 16-bit offset-encoded weight decomposes into 2-bit
        // cells and reconstructs exactly — the cell-level layout
        // computes the same value as the dequantized matrix.
        for value in [0u64, 1, 2, 37, 255, 32767, 65534, 65535] {
            for cell_bits in [1u32, 2, 4, 8] {
                let cells = 16u32.div_ceil(cell_bits);
                let sliced = slice_cells(value, cell_bits, cells);
                let rebuilt: u64 = sliced
                    .iter()
                    .enumerate()
                    .map(|(i, c)| c << (cell_bits * i as u32))
                    .sum();
                assert_eq!(rebuilt, value, "value {value} cell_bits {cell_bits}");
                assert!(sliced.iter().all(|&c| c < (1 << cell_bits)));
            }
        }
    }

    #[test]
    fn adc_grids_nest() {
        // Every representable level of a b-bit ADC is representable by
        // a (b+1)-bit ADC over the same full scale, so the pointwise
        // error is non-increasing in resolution.
        let fs = 3.7f32;
        for x in [-4.0f32, -3.7, -1.234, -0.01, 0.0, 0.5, 1.9999, 3.69, 5.0] {
            let mut prev = f32::INFINITY;
            for bits in 1..=12u32 {
                let half = 1i64 << (bits - 1);
                let err = (x - adc_quantize(x, fs, half)).abs();
                assert!(
                    err <= prev + 1e-9,
                    "x={x} bits={bits}: err {err} > coarser {prev}"
                );
                prev = err;
            }
        }
    }

    #[test]
    fn adc_clips_to_range() {
        let half = 128i64; // 8-bit
        let fs = 1.0f32;
        assert_eq!(
            adc_quantize(10.0, fs, half),
            (half - 1) as f32 / half as f32
        );
        assert_eq!(adc_quantize(-10.0, fs, half), -1.0);
        assert_eq!(adc_quantize(0.0, fs, half), 0.0);
    }
}
