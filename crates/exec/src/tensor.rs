//! A minimal dense f32 tensor.

use serde::{Deserialize, Serialize};

/// A dense row-major f32 tensor. Rank-3 tensors are `[C, H, W]`
/// feature maps, rank-2 are `[rows, features]` token streams, rank-1
/// are flat feature vectors — mirroring the IR's shape conventions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    /// Dimension extents (row-major layout; the last dimension is
    /// contiguous).
    pub dims: Vec<usize>,
    /// The elements, `dims.iter().product()` of them.
    pub data: Vec<f32>,
}

impl Tensor {
    /// A new tensor; panics only on an internal executor bug (the
    /// element count is computed from validated shapes).
    pub fn new(dims: Vec<usize>, data: Vec<f32>) -> Self {
        debug_assert_eq!(dims.iter().product::<usize>(), data.len());
        Tensor { dims, data }
    }

    /// A zero-filled tensor.
    pub fn zeros(dims: Vec<usize>) -> Self {
        let len = dims.iter().product();
        Tensor {
            dims,
            data: vec![0.0; len],
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}
