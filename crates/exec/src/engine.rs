//! The shared execution engine: graph validation, topological
//! traversal, and the functional kernels for every non-MVM operator.
//!
//! The reference interpreter and the mapped executor differ *only* in
//! how they compute the MVM operators (convolution, fully connected,
//! weight-stationary matmul); everything else — pooling, activations,
//! attention, normalization, data movement — runs on the VFU or in
//! local memory in both worlds and therefore executes through the exact
//! same kernel code here. The MVM strategy is injected as an
//! [`MvmBackend`], which receives the unfolded weight matrix and the
//! im2col'd input rows and returns the pre-bias output rows. This
//! construction guarantees that any differential disagreement between
//! the two executors is attributable to the compiled layout.

use crate::error::ExecError;
use crate::tensor::Tensor;
use pimcomp_ir::{infer_output_shape, synth, Activation, Graph, Node, Op, PoolKind, Shape};

/// The unfolded stationary weight matrix of one MVM node, stored
/// column-major so a crossbar column (a row range of one output
/// column) is a contiguous slice.
pub struct WeightMatrix {
    /// Matrix height (contraction length).
    pub height: usize,
    /// Matrix width (output columns).
    pub width: usize,
    /// Column-major elements: column `c` is `cols[c*height..(c+1)*height]`.
    pub cols: Vec<f32>,
}

impl WeightMatrix {
    /// Column `c` as a contiguous slice.
    pub fn col(&self, c: usize) -> &[f32] {
        &self.cols[c * self.height..(c + 1) * self.height]
    }
}

/// One MVM computation handed to a backend: input rows (per
/// convolution group) times a stationary weight matrix.
pub struct MvmJob<'a> {
    /// The node being computed.
    pub node: &'a Node,
    /// Output rows (sliding windows for convolution, sequence
    /// positions for matmul, 1 for fully connected).
    pub windows: usize,
    /// Weight-matrix height (= input row length).
    pub height: usize,
    /// Weight-matrix width (total output columns across groups).
    pub width: usize,
    /// Convolution groups (1 for everything else). Output column `c`
    /// contracts against `rows[c / (width / groups)]`.
    pub groups: usize,
    /// Per group: row-major `[windows × height]` input rows.
    pub rows: &'a [Vec<f32>],
    /// The unfolded weight matrix.
    pub weights: &'a WeightMatrix,
}

impl MvmJob<'_> {
    /// The input row for window `w` of group `g`.
    pub fn row(&self, g: usize, w: usize) -> &[f32] {
        &self.rows[g][w * self.height..(w + 1) * self.height]
    }

    /// The group that output column `c` belongs to.
    pub fn group_of(&self, c: usize) -> usize {
        c / (self.width / self.groups)
    }
}

/// An MVM computation strategy: direct f32 matmul (reference) or the
/// compiled per-crossbar layout (mapped).
pub trait MvmBackend {
    /// Computes the pre-bias output rows, `[windows × width]`
    /// row-major.
    fn mvm(&mut self, job: &MvmJob) -> Result<Vec<f32>, ExecError>;
}

/// Synthesizes the unfolded weight matrix of an MVM node
/// (column-major; element `(r, c)` has synthesis index `c*height + r`
/// under tag `"<node>/w"`), scaled by `1/sqrt(height)` so activations
/// stay O(1) through deep networks.
pub fn synth_weights(seed: u64, name: &str, height: usize, width: usize) -> WeightMatrix {
    let scale = 1.0 / (height.max(1) as f32).sqrt();
    let cols = synth::values(seed, &format!("{name}/w"), height * width, scale);
    WeightMatrix {
        height,
        width,
        cols,
    }
}

/// Synthesizes an MVM node's bias vector (tag `"<node>/b"`).
pub fn synth_bias(seed: u64, name: &str, width: usize) -> Vec<f32> {
    synth::values(seed, &format!("{name}/b"), width, 0.1)
}

/// Synthesizes a graph input tensor (tag `"<node>/x"`).
pub fn synth_input(seed: u64, name: &str, len: usize) -> Vec<f32> {
    synth::values(seed, &format!("{name}/x"), len, 1.0)
}

/// The concrete extents of a shape; the engine rejects symbolic graphs
/// up front, so a symbolic dim here is an internal inconsistency.
fn fixed_dims(node: &str, shape: &Shape) -> Result<Vec<usize>, ExecError> {
    shape
        .dims()
        .iter()
        .map(|d| match d {
            pimcomp_ir::Dim::Fixed(n) => Ok(*n),
            pimcomp_ir::Dim::Seq => Err(ExecError::ShapeMismatch {
                node: node.to_string(),
                detail: "unexpected symbolic `seq` dimension".to_string(),
            }),
        })
        .collect()
}

/// Validates an (artifact-loaded, therefore untrusted) graph for
/// execution: concrete shapes, in-range node ids, correct arities, an
/// acyclic topology, and recorded output shapes that agree with shape
/// inference. Returns a deterministic topological order.
fn validate_for_execution(graph: &Graph) -> Result<Vec<usize>, ExecError> {
    if graph.has_symbolic_dims() {
        return Err(ExecError::SymbolicShape {
            model: graph.name().to_string(),
        });
    }
    let nodes = graph.nodes();
    let n = nodes.len();
    for (i, node) in nodes.iter().enumerate() {
        if node.id.0 != i {
            return Err(ExecError::InvalidGraph {
                detail: format!("node `{}` has id {} at position {i}", node.name, node.id.0),
            });
        }
        for input in &node.inputs {
            if input.0 >= n {
                return Err(ExecError::NodeOutOfRange {
                    node: node.name.clone(),
                    id: input.0,
                    count: n,
                });
            }
        }
        match node.op.arity() {
            Some(a) if node.inputs.len() != a => {
                return Err(ExecError::InvalidGraph {
                    detail: format!(
                        "node `{}` ({}) needs {a} inputs, has {}",
                        node.name,
                        node.op.mnemonic(),
                        node.inputs.len()
                    ),
                })
            }
            None if node.inputs.len() < 2 => {
                return Err(ExecError::InvalidGraph {
                    detail: format!("variadic node `{}` has fewer than 2 inputs", node.name),
                })
            }
            _ => {}
        }
        // Recorded shapes must agree with what the operator computes on
        // its inputs' recorded shapes — a tampered artifact cannot
        // smuggle an inconsistent tensor size past this.
        let input_shapes: Vec<&Shape> = node
            .inputs
            .iter()
            .map(|i| &nodes[i.0].output_shape)
            .collect();
        let inferred = infer_output_shape(&node.name, &node.op, &input_shapes).map_err(|e| {
            ExecError::ShapeMismatch {
                node: node.name.clone(),
                detail: e.to_string(),
            }
        })?;
        if inferred != node.output_shape {
            return Err(ExecError::ShapeMismatch {
                node: node.name.clone(),
                detail: format!(
                    "recorded output shape {:?} but operator computes {:?}",
                    node.output_shape, inferred
                ),
            });
        }
    }

    // Kahn's algorithm, smallest-id-first among ready nodes: a
    // deterministic order, with cycle detection (graph.topo_order()
    // assumes a validated graph; this path cannot).
    let mut indegree = vec![0usize; n];
    for node in nodes {
        for _ in &node.inputs {
            indegree[node.id.0] += 1;
        }
    }
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for node in nodes {
        for input in &node.inputs {
            successors[input.0].push(node.id.0);
        }
    }
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(i)) = ready.pop() {
        order.push(i);
        for &s in &successors[i] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready.push(std::cmp::Reverse(s));
            }
        }
    }
    if order.len() != n {
        return Err(ExecError::InvalidGraph {
            detail: "graph contains a cycle".to_string(),
        });
    }
    Ok(order)
}

/// Executes a graph with deterministically synthesized inputs and
/// weights, computing MVM nodes through `backend`. Returns the graph's
/// output tensors (nodes with no successors) as `(name, tensor)`
/// pairs in ascending node-id order.
pub fn run_graph(
    graph: &Graph,
    seed: u64,
    backend: &mut dyn MvmBackend,
) -> Result<Vec<(String, Tensor)>, ExecError> {
    let order = validate_for_execution(graph)?;
    let nodes = graph.nodes();
    let n = nodes.len();

    // Reference counts so large activations free as soon as their last
    // consumer has run; graph outputs keep one extra reference.
    let mut refs = vec![0usize; n];
    for node in nodes {
        for input in &node.inputs {
            refs[input.0] += 1;
        }
    }
    let output_ids: Vec<usize> = (0..n).filter(|&i| refs[i] == 0).collect();
    for &i in &output_ids {
        refs[i] += 1;
    }

    let mut values: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
    for &i in &order {
        let node = &nodes[i];
        let inputs: Vec<&Tensor> = node
            .inputs
            .iter()
            .map(|id| {
                values[id.0]
                    .as_ref()
                    .ok_or_else(|| ExecError::InvalidGraph {
                        detail: format!("node `{}` consumed before production", nodes[id.0].name),
                    })
            })
            .collect::<Result<_, _>>()?;
        let out = eval_node(node, &inputs, seed, backend)?;
        let out_dims = fixed_dims(&node.name, &node.output_shape)?;
        if out.dims != out_dims {
            return Err(ExecError::ShapeMismatch {
                node: node.name.clone(),
                detail: format!("kernel produced {:?}, expected {:?}", out.dims, out_dims),
            });
        }
        drop(inputs);
        values[i] = Some(out);
        for id in &node.inputs {
            refs[id.0] -= 1;
            if refs[id.0] == 0 {
                values[id.0] = None;
            }
        }
    }

    Ok(output_ids
        .into_iter()
        .map(|i| {
            let t = values[i].take().expect("output tensor retained");
            (nodes[i].name.clone(), t)
        })
        .collect())
}

/// Evaluates one node.
fn eval_node(
    node: &Node,
    inputs: &[&Tensor],
    seed: u64,
    backend: &mut dyn MvmBackend,
) -> Result<Tensor, ExecError> {
    let out_dims = fixed_dims(&node.name, &node.output_shape)?;
    let shape_err = |detail: String| ExecError::ShapeMismatch {
        node: node.name.clone(),
        detail,
    };
    match &node.op {
        Op::Input { .. } => {
            let len = out_dims.iter().product();
            Ok(Tensor::new(out_dims, synth_input(seed, &node.name, len)))
        }
        Op::Conv2d(_) | Op::Linear(_) | Op::MatMul(_) => eval_mvm(node, inputs[0], seed, backend),
        Op::Pool(p) => {
            let x = inputs[0];
            let (c, ih, iw) = chw(x).map_err(shape_err)?;
            let (oh, ow) = (out_dims[1], out_dims[2]);
            let mut out = Tensor::zeros(out_dims);
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let y0 = (oy * p.stride.0) as isize - p.padding.0 as isize;
                        let x0 = (ox * p.stride.1) as isize - p.padding.1 as isize;
                        let mut acc = match p.kind {
                            PoolKind::Max => f32::NEG_INFINITY,
                            PoolKind::Avg => 0.0,
                        };
                        let mut count = 0usize;
                        for ky in 0..p.kernel.0 {
                            for kx in 0..p.kernel.1 {
                                let (y, xx) = (y0 + ky as isize, x0 + kx as isize);
                                if y < 0 || xx < 0 || y >= ih as isize || xx >= iw as isize {
                                    continue;
                                }
                                let v = x.data[(ch * ih + y as usize) * iw + xx as usize];
                                match p.kind {
                                    PoolKind::Max => acc = acc.max(v),
                                    PoolKind::Avg => acc += v,
                                }
                                count += 1;
                            }
                        }
                        // Padding elements are excluded: max over an
                        // empty window is 0, avg divides by the
                        // in-bounds count.
                        out.data[(ch * oh + oy) * ow + ox] = match p.kind {
                            PoolKind::Max if count == 0 => 0.0,
                            PoolKind::Max => acc,
                            PoolKind::Avg if count == 0 => 0.0,
                            PoolKind::Avg => acc / count as f32,
                        };
                    }
                }
            }
            Ok(out)
        }
        Op::GlobalAvgPool => {
            let x = inputs[0];
            let (c, ih, iw) = chw(x).map_err(shape_err)?;
            let hw = (ih * iw) as f32;
            let data = (0..c)
                .map(|ch| x.data[ch * ih * iw..(ch + 1) * ih * iw].iter().sum::<f32>() / hw)
                .collect();
            Ok(Tensor::new(out_dims, data))
        }
        Op::Activation(a) => {
            let f: fn(f32) -> f32 = match a {
                Activation::Relu => |v| v.max(0.0),
                Activation::Sigmoid => |v| 1.0 / (1.0 + (-v).exp()),
                Activation::Tanh => |v| v.tanh(),
                Activation::Gelu => gelu,
            };
            Ok(Tensor::new(
                out_dims,
                inputs[0].data.iter().map(|&v| f(v)).collect(),
            ))
        }
        Op::Concat => {
            // Channel-wise concatenation of equal-extent CHW maps.
            let mut data = Vec::with_capacity(out_dims.iter().product());
            for x in inputs {
                chw(x).map_err(shape_err)?;
                data.extend_from_slice(&x.data);
            }
            Ok(Tensor::new(out_dims, data))
        }
        Op::Eltwise(kind) => {
            let (a, b) = (inputs[0], inputs[1]);
            if a.dims != b.dims {
                return Err(shape_err(format!(
                    "eltwise operands {:?} vs {:?}",
                    a.dims, b.dims
                )));
            }
            let data = a
                .data
                .iter()
                .zip(&b.data)
                .map(|(&x, &y)| match kind {
                    pimcomp_ir::EltwiseKind::Add => x + y,
                    pimcomp_ir::EltwiseKind::Mul => x * y,
                })
                .collect();
            Ok(Tensor::new(out_dims, data))
        }
        Op::Flatten => Ok(Tensor::new(out_dims, inputs[0].data.clone())),
        Op::Softmax => {
            let x = inputs[0];
            let last = *x.dims.last().ok_or_else(|| shape_err("rank 0".into()))?;
            let mut data = x.data.clone();
            for row in data.chunks_mut(last.max(1)) {
                softmax_row(row);
            }
            Ok(Tensor::new(out_dims, data))
        }
        // Inference-time identities: the compiler folds batch-norm into
        // the adjacent convolution during normalization (the IR carries
        // no BN statistics), and dropout is a no-op outside training.
        Op::BatchNorm | Op::Dropout => Ok(Tensor::new(out_dims, inputs[0].data.clone())),
        Op::Lrn(l) => {
            let x = inputs[0];
            let (c, ih, iw) = chw(x).map_err(shape_err)?;
            let mut out = Tensor::zeros(out_dims);
            let half_lo = (l.size - 1) / 2;
            let half_hi = l.size - 1 - half_lo;
            for ch in 0..c {
                let lo = ch.saturating_sub(half_lo);
                let hi = (ch + half_hi).min(c - 1);
                for p in 0..ih * iw {
                    let sq: f64 = (lo..=hi)
                        .map(|cc| {
                            let v = x.data[cc * ih * iw + p] as f64;
                            v * v
                        })
                        .sum();
                    // ONNX LRN: x / (bias + alpha/size * sq_sum)^beta
                    // with bias = 1.
                    let denom = (1.0 + l.alpha / l.size as f64 * sq).powf(l.beta);
                    out.data[ch * ih * iw + p] = (x.data[ch * ih * iw + p] as f64 / denom) as f32;
                }
            }
            Ok(out)
        }
        Op::Pad(p) => {
            let x = inputs[0];
            let (c, ih, iw) = chw(x).map_err(shape_err)?;
            let (oh, ow) = (out_dims[1], out_dims[2]);
            let mut out = Tensor::zeros(out_dims);
            for ch in 0..c {
                for y in 0..ih {
                    for xx in 0..iw {
                        out.data[(ch * oh + y + p.height) * ow + xx + p.width] =
                            x.data[(ch * ih + y) * iw + xx];
                    }
                }
            }
            Ok(out)
        }
        Op::Bmm(b) => {
            let (a, bb) = (inputs[0], inputs[1]);
            let (m, k) = rank2(a).map_err(shape_err)?;
            let (bd0, bd1) = rank2(bb).map_err(shape_err)?;
            let nn = if b.transpose_b { bd0 } else { bd1 };
            let bk = if b.transpose_b { bd1 } else { bd0 };
            if bk != k {
                return Err(shape_err(format!("bmm contraction {k} vs {bk}")));
            }
            let scale = if b.scaled {
                1.0 / (k as f32).sqrt()
            } else {
                1.0
            };
            let mut data = vec![0.0f32; m * nn];
            for i in 0..m {
                for j in 0..nn {
                    let mut acc = 0.0f32;
                    for t in 0..k {
                        let bv = if b.transpose_b {
                            bb.data[j * k + t]
                        } else {
                            bb.data[t * nn + j]
                        };
                        acc += a.data[i * k + t] * bv;
                    }
                    data[i * nn + j] = acc * scale;
                }
            }
            Ok(Tensor::new(out_dims, data))
        }
        Op::LayerNorm => {
            let x = inputs[0];
            let last = *x.dims.last().ok_or_else(|| shape_err("rank 0".into()))?;
            let mut data = x.data.clone();
            for row in data.chunks_mut(last.max(1)) {
                let mean = row.iter().sum::<f32>() / row.len() as f32;
                let var =
                    row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / row.len() as f32;
                let inv = 1.0 / (var + 1e-5).sqrt();
                for v in row {
                    *v = (*v - mean) * inv;
                }
            }
            Ok(Tensor::new(out_dims, data))
        }
        Op::Transpose => {
            let x = inputs[0];
            if x.dims.len() < 2 {
                return Err(shape_err("transpose needs rank >= 2".into()));
            }
            let (r, c) = (x.dims[x.dims.len() - 2], x.dims[x.dims.len() - 1]);
            let batch = x.data.len() / (r * c).max(1);
            let mut data = vec![0.0f32; x.data.len()];
            for b in 0..batch {
                for i in 0..r {
                    for j in 0..c {
                        data[b * r * c + j * r + i] = x.data[b * r * c + i * c + j];
                    }
                }
            }
            Ok(Tensor::new(out_dims, data))
        }
        Op::Reshape { .. } => Ok(Tensor::new(out_dims, inputs[0].data.clone())),
        Op::Attention(att) => {
            let (q, k, v) = (inputs[0], inputs[1], inputs[2]);
            let (s, h) = rank2(q).map_err(shape_err)?;
            if att.heads == 0 || h % att.heads != 0 {
                return Err(shape_err(format!("heads {} !| hidden {h}", att.heads)));
            }
            let d = h / att.heads;
            let scale = 1.0 / (d as f32).sqrt();
            let mut out = vec![0.0f32; s * h];
            let mut scores = vec![0.0f32; s];
            for head in 0..att.heads {
                let o = head * d;
                for i in 0..s {
                    for (j, sc) in scores.iter_mut().enumerate() {
                        let mut acc = 0.0f32;
                        for t in 0..d {
                            acc += q.data[i * h + o + t] * k.data[j * h + o + t];
                        }
                        *sc = acc * scale;
                    }
                    softmax_row(&mut scores);
                    for t in 0..d {
                        let mut acc = 0.0f32;
                        for (j, sc) in scores.iter().enumerate() {
                            acc += sc * v.data[j * h + o + t];
                        }
                        out[i * h + o + t] = acc;
                    }
                }
            }
            Ok(Tensor::new(out_dims, out))
        }
        other => Err(ExecError::UnsupportedOp {
            node: node.name.clone(),
            op: other.mnemonic().to_string(),
        }),
    }
}

/// Evaluates an MVM node through the backend: unfold the input into
/// rows, synthesize the weight matrix, multiply, add bias, fold back
/// into the output layout.
fn eval_mvm(
    node: &Node,
    input: &Tensor,
    seed: u64,
    backend: &mut dyn MvmBackend,
) -> Result<Tensor, ExecError> {
    let shape_err = |detail: String| ExecError::ShapeMismatch {
        node: node.name.clone(),
        detail,
    };
    let out_dims = fixed_dims(&node.name, &node.output_shape)?;
    let (height, width) = node
        .op
        .weight_matrix()
        .ok_or_else(|| shape_err("not an MVM operator".into()))?;
    let has_bias = node.op.has_bias().unwrap_or(false);
    let weights = synth_weights(seed, &node.name, height, width);
    let bias = if has_bias {
        synth_bias(seed, &node.name, width)
    } else {
        vec![0.0; width]
    };

    match &node.op {
        Op::Conv2d(c) => {
            let (ci, ih, iw) = chw(input).map_err(&shape_err)?;
            if c.groups == 0 || ci % c.groups != 0 || c.out_channels % c.groups != 0 {
                return Err(shape_err(format!(
                    "groups {} do not divide channels {ci}/{}",
                    c.groups, c.out_channels
                )));
            }
            let (oh, ow) = (out_dims[1], out_dims[2]);
            let windows = oh * ow;
            let cpg = ci / c.groups;
            let (kh, kw) = c.kernel;
            let mut rows = Vec::with_capacity(c.groups);
            for g in 0..c.groups {
                let mut m = vec![0.0f32; windows * height];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let w = oy * ow + ox;
                        let y0 = (oy * c.stride.0) as isize - c.padding.0 as isize;
                        let x0 = (ox * c.stride.1) as isize - c.padding.1 as isize;
                        for cl in 0..cpg {
                            let ch = g * cpg + cl;
                            for ky in 0..kh {
                                let y = y0 + ky as isize;
                                if y < 0 || y >= ih as isize {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let x = x0 + kx as isize;
                                    if x < 0 || x >= iw as isize {
                                        continue;
                                    }
                                    m[w * height + (cl * kh + ky) * kw + kx] =
                                        input.data[(ch * ih + y as usize) * iw + x as usize];
                                }
                            }
                        }
                    }
                }
                rows.push(m);
            }
            let job = MvmJob {
                node,
                windows,
                height,
                width,
                groups: c.groups,
                rows: &rows,
                weights: &weights,
            };
            let out = backend.mvm(&job)?;
            // [window][cout] rows -> CHW, bias per output channel.
            let mut data = vec![0.0f32; width * windows];
            for w in 0..windows {
                for ch in 0..width {
                    data[ch * windows + w] = out[w * width + ch] + bias[ch];
                }
            }
            Ok(Tensor::new(out_dims, data))
        }
        Op::Linear(_) => {
            if input.data.len() != height {
                return Err(shape_err(format!(
                    "linear input {} != in_features {height}",
                    input.data.len()
                )));
            }
            let rows = [input.data.clone()];
            let job = MvmJob {
                node,
                windows: 1,
                height,
                width,
                groups: 1,
                rows: &rows,
                weights: &weights,
            };
            let mut out = backend.mvm(&job)?;
            for (o, b) in out.iter_mut().zip(&bias) {
                *o += b;
            }
            Ok(Tensor::new(out_dims, out))
        }
        Op::MatMul(_) => {
            let (s, f) = rank2(input).map_err(&shape_err)?;
            if f != height {
                return Err(shape_err(format!("matmul input width {f} != {height}")));
            }
            let rows = [input.data.clone()];
            let job = MvmJob {
                node,
                windows: s,
                height,
                width,
                groups: 1,
                rows: &rows,
                weights: &weights,
            };
            let mut out = backend.mvm(&job)?;
            for w in 0..s {
                for ch in 0..width {
                    out[w * width + ch] += bias[ch];
                }
            }
            Ok(Tensor::new(out_dims, out))
        }
        _ => unreachable!("eval_mvm called on non-MVM op"),
    }
}

/// GELU, tanh approximation (the form PIM VFU libraries implement).
fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// In-place numerically stable softmax of one row.
fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Interprets a tensor as `[C, H, W]`.
fn chw(t: &Tensor) -> Result<(usize, usize, usize), String> {
    match t.dims[..] {
        [c, h, w] => Ok((c, h, w)),
        _ => Err(format!("expected CHW feature map, got {:?}", t.dims)),
    }
}

/// Interprets a tensor as `[rows, cols]`.
fn rank2(t: &Tensor) -> Result<(usize, usize), String> {
    match t.dims[..] {
        [r, c] => Ok((r, c)),
        _ => Err(format!("expected rank-2 tensor, got {:?}", t.dims)),
    }
}
