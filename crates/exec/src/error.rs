//! Structured functional-execution errors.
//!
//! The executor consumes artifact-loaded data (graphs, partitionings,
//! mappings) that may come from disk or the network; per the repo's
//! panic policy it never indexes such data raw. Every inconsistency a
//! hostile or truncated artifact can exhibit surfaces as an
//! [`ExecError`].

use std::fmt;

/// Errors produced by the functional executor.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// A node references an input node id outside the graph (foreign
    /// node id in an artifact-loaded graph).
    NodeOutOfRange {
        /// The referencing node's name.
        node: String,
        /// The out-of-range id.
        id: usize,
        /// Number of nodes in the graph.
        count: usize,
    },
    /// The graph is not executable: cycle, duplicate/misnumbered node
    /// ids, or an arity violation.
    InvalidGraph {
        /// Description of the defect.
        detail: String,
    },
    /// The graph still carries a symbolic `seq` dimension; bind a
    /// sequence length before executing.
    SymbolicShape {
        /// Name of the graph.
        model: String,
    },
    /// A node's recorded output shape (or an input's shape) disagrees
    /// with what its operator computes — the tensor cannot be produced.
    ShapeMismatch {
        /// Node name.
        node: String,
        /// Description of the disagreement.
        detail: String,
    },
    /// The executor met an operator it has no kernel for.
    UnsupportedOp {
        /// Node name.
        node: String,
        /// Operator mnemonic.
        op: String,
    },
    /// An MVM node has no partition entry in the compiled model.
    MissingPartition {
        /// Node name.
        node: String,
    },
    /// The compiled mapping does not cover the partitioning: a
    /// replica/slice with no Array-Group instance, a duplicate
    /// instance, an out-of-range index, or a geometry field that
    /// disagrees with the hardware (truncated or tampered artifact).
    MappingIncomplete {
        /// Description of the hole or inconsistency.
        detail: String,
    },
    /// A mapped Array Group names a core outside the target.
    CoreOutOfRange {
        /// The core index.
        core: usize,
        /// Cores on the target.
        total: usize,
    },
    /// A multi-epoch `weight_reload` artifact whose epoch plan cannot
    /// be reconstructed or disagrees with its mapping.
    ReloadPlanMismatch {
        /// Description of the disagreement.
        detail: String,
    },
    /// The quantization configuration is invalid.
    InvalidQuant {
        /// Underlying description.
        detail: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NodeOutOfRange { node, id, count } => write!(
                f,
                "node `{node}` references node id {id} but the graph has {count} nodes"
            ),
            ExecError::InvalidGraph { detail } => write!(f, "graph is not executable: {detail}"),
            ExecError::SymbolicShape { model } => write!(
                f,
                "model `{model}` has a symbolic sequence dimension; bind it before executing"
            ),
            ExecError::ShapeMismatch { node, detail } => {
                write!(f, "shape mismatch at node `{node}`: {detail}")
            }
            ExecError::UnsupportedOp { node, op } => {
                write!(
                    f,
                    "no functional kernel for operator `{op}` (node `{node}`)"
                )
            }
            ExecError::MissingPartition { node } => {
                write!(f, "MVM node `{node}` has no partition entry")
            }
            ExecError::MappingIncomplete { detail } => {
                write!(f, "mapping does not cover the partitioning: {detail}")
            }
            ExecError::CoreOutOfRange { core, total } => {
                write!(
                    f,
                    "mapped core {core} is outside the target ({total} cores)"
                )
            }
            ExecError::ReloadPlanMismatch { detail } => {
                write!(f, "weight-reload epoch plan mismatch: {detail}")
            }
            ExecError::InvalidQuant { detail } => {
                write!(f, "invalid quantization configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}
