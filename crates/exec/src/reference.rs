//! The reference MVM strategy: a direct f32 matrix multiply, summing
//! each output element over the full contraction length in ascending
//! index order. This is the numeric gold standard the mapped executor
//! is differentially tested against.

use crate::engine::{MvmBackend, MvmJob};
use crate::error::ExecError;

/// Computes MVM nodes as plain dense matmuls.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReferenceBackend;

impl MvmBackend for ReferenceBackend {
    fn mvm(&mut self, job: &MvmJob) -> Result<Vec<f32>, ExecError> {
        let mut out = vec![0.0f32; job.windows * job.width];
        for w in 0..job.windows {
            for c in 0..job.width {
                let row = job.row(job.group_of(c), w);
                out[w * job.width + c] = dot(row, job.weights.col(c));
            }
        }
        Ok(out)
    }
}

/// Ascending-index f32 dot product — the one summation order every
/// executor path derives from.
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}
