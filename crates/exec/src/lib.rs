//! Functional executor: verify that compiled mappings compute the
//! right tensors.
//!
//! Everything upstream of this crate reasons about *where* weights go
//! and *when* crossbars fire; nothing checks that the layout still
//! computes the model. This crate closes that loop with two executors
//! over the same IR graph:
//!
//! * [`ReferenceBackend`] — plain f32 kernels (im2col convolution,
//!   dense matmul, attention, layer norm, …) computing the gold
//!   numerics.
//! * [`MappedBackend`] — the same inputs pushed through a
//!   [`CompiledModel`]'s per-crossbar layout: weights split by
//!   Array-Group row slices and column groups, windows divided across
//!   replicas, partial sums accumulated per the core mapping, reload
//!   epoch plans cross-checked.
//!
//! Both run the graph with [`run_graph`]; [`verify_model`]
//! differentially compares them. Inputs, weights and biases are
//! synthesized deterministically from a seed
//! ([`pimcomp_ir::synth`]), so a `(graph, seed)` pair fully determines
//! every tensor — goldens are reproducible bytes.
//!
//! With a [`QuantConfig`] the mapped executor also models the analog
//! datapath (weight bit-slicing, ADC clipping); [`verify_model`] then
//! reports `output_rmse` / `top1_match`, which the DSE sweep exposes
//! as accuracy metrics.
//!
//! Per the repo's panic policy, artifact-loaded data is never indexed
//! raw: hostile or truncated artifacts surface as [`ExecError`]s.

mod engine;
mod error;
mod mapped;
mod reference;
mod tensor;

pub use engine::{
    run_graph, synth_bias, synth_input, synth_weights, MvmBackend, MvmJob, WeightMatrix,
};
pub use error::ExecError;
pub use mapped::{slice_cells, MappedBackend};
pub use reference::ReferenceBackend;
pub use tensor::Tensor;

use pimcomp_arch::QuantConfig;
use pimcomp_core::CompiledModel;
use pimcomp_ir::Graph;

/// Runs the reference interpreter over `graph` with seed-synthesized
/// inputs and weights, returning the graph's output tensors (nodes no
/// other node consumes) in ascending node-id order.
///
/// # Errors
///
/// Any [`ExecError`] a malformed or symbolic graph produces.
pub fn reference_outputs(graph: &Graph, seed: u64) -> Result<Vec<(String, Tensor)>, ExecError> {
    let mut backend = ReferenceBackend;
    run_graph(graph, seed, &mut backend)
}

/// Runs the same seed-synthesized inference through the compiled
/// per-crossbar layout, optionally under crossbar quantization.
///
/// # Errors
///
/// Any [`ExecError`], including the mapping-coverage and reload-plan
/// validation errors of [`MappedBackend::new`].
pub fn mapped_outputs(
    model: &CompiledModel,
    seed: u64,
    quant: Option<QuantConfig>,
) -> Result<Vec<(String, Tensor)>, ExecError> {
    let mut backend = MappedBackend::new(model, quant)?;
    run_graph(&model.graph, seed, &mut backend)
}

/// The result of differentially verifying a compiled model against the
/// reference interpreter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyOutcome {
    /// Root-mean-square error between the mapped and reference output
    /// tensors (concatenated in ascending node-id order). Exactly 0.0
    /// for unquantized runs where the layout preserves summation
    /// order (single Array Group per replica); otherwise a few
    /// f32-roundoff ULPs.
    pub output_rmse: f64,
    /// Whether the index of the largest output element (first strict
    /// maximum) agrees between mapped and reference — a 1-sample
    /// top-1 accuracy proxy.
    pub top1_match: bool,
    /// Total output elements compared.
    pub output_len: usize,
}

/// Differentially verifies a compiled model: runs the reference
/// interpreter and the mapped executor on the same seed-synthesized
/// inference and compares outputs.
///
/// # Errors
///
/// Any [`ExecError`] from either executor, plus
/// [`ExecError::ShapeMismatch`] if the two executors disagree on
/// output structure (which would itself be a compiler bug).
pub fn verify_model(
    model: &CompiledModel,
    seed: u64,
    quant: Option<QuantConfig>,
) -> Result<VerifyOutcome, ExecError> {
    let reference = reference_outputs(&model.graph, seed)?;
    let mapped = mapped_outputs(model, seed, quant)?;
    if reference.len() != mapped.len() {
        return Err(ExecError::ShapeMismatch {
            node: model.graph.name().to_string(),
            detail: format!(
                "reference produced {} outputs, mapped produced {}",
                reference.len(),
                mapped.len()
            ),
        });
    }
    let mut ref_all = Vec::new();
    let mut map_all = Vec::new();
    for ((rn, rt), (mn, mt)) in reference.iter().zip(&mapped) {
        if rn != mn || rt.dims != mt.dims {
            return Err(ExecError::ShapeMismatch {
                node: rn.clone(),
                detail: format!(
                    "reference output `{rn}` {:?} vs mapped `{mn}` {:?}",
                    rt.dims, mt.dims
                ),
            });
        }
        ref_all.extend_from_slice(&rt.data);
        map_all.extend_from_slice(&mt.data);
    }
    Ok(VerifyOutcome {
        output_rmse: rmse(&map_all, &ref_all),
        top1_match: top1(&map_all) == top1(&ref_all),
        output_len: ref_all.len(),
    })
}

/// Root-mean-square error between two equal-length f32 slices,
/// accumulated in f64 in ascending index order (deterministic). Empty
/// slices yield 0.0.
pub fn rmse(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| {
            let d = f64::from(*x) - f64::from(*y);
            d * d
        })
        .sum();
    (sum / a.len() as f64).sqrt()
}

/// Index of the first strict maximum (ties resolve to the lowest
/// index); `None` for an empty slice.
pub fn top1(v: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in v.iter().enumerate() {
        match best {
            Some((_, bx)) if x <= bx => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_basics() {
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        let r = rmse(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((r - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn top1_first_strict_max() {
        assert_eq!(top1(&[]), None);
        assert_eq!(top1(&[1.0]), Some(0));
        assert_eq!(top1(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(top1(&[-5.0, -2.0, -3.0]), Some(1));
    }
}
