//! Property tests for the crash-resume journal: replay must be
//! idempotent under arbitrary duplication and interleaving of entries
//! — the exact traffic a reclaimed-then-completed lease produces.

use pimcomp_dse::PointRecord;
use pimcomp_serve::{
    replay, spec_fingerprint, Journal, JournalEntry, JournalHeader, JOURNAL_VERSION,
};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn case_path() -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "pimcomp-journal-prop-{}-{case}.jsonl",
        std::process::id()
    ))
}

fn header(points: u64) -> JournalHeader {
    JournalHeader {
        version: JOURNAL_VERSION,
        job: "prop".into(),
        spec_fingerprint: spec_fingerprint("{\"prop\":true}"),
        points,
    }
}

/// The deterministic record for a point index — duplicates on the wire
/// and in the journal always carry identical payloads, which is the
/// precondition the last-wins replay rule relies on.
fn record(index: u64) -> PointRecord {
    PointRecord {
        model: format!("model{}", index % 3),
        mode: if index.is_multiple_of(2) { "HT" } else { "LL" }.into(),
        hardware: "small_test".into(),
        policy: "naive".into(),
        batch: 1 + index % 4,
        seed: index,
        weight_reload: "off".into(),
        seq_len: if index.is_multiple_of(3) {
            None
        } else {
            Some(32 * (1 + index % 4))
        },
        quantization: if index.is_multiple_of(4) { Some(8) } else { None },
        rung: 0,
        budget: 2,
        pruned_at: None,
        ok: index % 5 != 4,
        error: if index % 5 == 4 {
            Some("synthetic failure".into())
        } else {
            None
        },
        metrics: None,
        pareto: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Appending any sequence of (possibly heavily duplicated) entries
    /// replays to exactly one record per distinct index, and replaying
    /// a journal with every record appended *again* changes nothing.
    #[test]
    fn replay_is_idempotent_under_duplicate_records(
        points in 1u64..12,
        picks in proptest::collection::vec(0u64..12, 1..40),
    ) {
        let picks: Vec<u64> = picks.into_iter().map(|i| i % points).collect();
        let path = case_path();
        let header = header(points);

        let mut journal = Journal::create(&path, &header).unwrap();
        for &index in &picks {
            journal.append(&JournalEntry { index, record: record(index) }).unwrap();
        }
        journal.sync().unwrap();
        drop(journal);

        let first = replay(&path, &header).unwrap();
        let distinct: BTreeSet<u64> = picks.iter().copied().collect();
        prop_assert_eq!(first.records.len(), distinct.len());
        for &index in &distinct {
            prop_assert_eq!(&first.records[&index], &record(index));
        }

        // Re-journal every replayed record (a full round of straggler
        // duplicates) and replay again: byte-for-byte the same map.
        let mut journal = Journal::open_append(&path, &first).unwrap();
        for (&index, rec) in &first.records {
            journal.append(&JournalEntry { index, record: rec.clone() }).unwrap();
        }
        journal.sync().unwrap();
        drop(journal);
        let second = replay(&path, &header).unwrap();
        prop_assert_eq!(&second.records, &first.records);

        std::fs::remove_file(&path).ok();
    }

    /// Truncating the journal after any byte count at least the header
    /// either replays cleanly (dropping at most the torn final entry)
    /// or — never — panics; and resuming the truncated file with
    /// `open_append` repairs it so a further replay still succeeds.
    #[test]
    fn truncation_never_panics_and_resume_repairs(
        points in 1u64..8,
        cut_back in 0usize..200,
    ) {
        let path = case_path();
        let header = header(points);
        let mut journal = Journal::create(&path, &header).unwrap();
        for index in 0..points {
            journal.append(&JournalEntry { index, record: record(index) }).unwrap();
        }
        journal.sync().unwrap();
        drop(journal);

        let text = std::fs::read_to_string(&path).unwrap();
        let header_len = text.lines().next().unwrap().len() + 1;
        let cut = text.len().saturating_sub(cut_back).max(header_len);
        std::fs::write(&path, &text[..cut]).unwrap();

        // A cut can land mid-line (torn tail, dropped) or on a line
        // boundary (clean prefix); both must replay without panicking.
        let replayed = replay(&path, &header).unwrap();
        prop_assert!(replayed.records.len() as u64 <= points);

        // Resume over the damaged file, append one fresh entry, and
        // the journal must still replay end to end.
        let mut journal = Journal::open_append(&path, &replayed).unwrap();
        journal.append(&JournalEntry { index: 0, record: record(0) }).unwrap();
        journal.sync().unwrap();
        drop(journal);
        let repaired = replay(&path, &header).unwrap();
        prop_assert!(repaired.records.contains_key(&0));
        prop_assert!(repaired.records.len() >= replayed.records.len());

        std::fs::remove_file(&path).ok();
    }
}
