//! The distributed determinism gate: coordinator + {1, 2, 4} workers —
//! including crash/resume and lease re-issue schedules — must produce
//! reports byte-identical to a single-process `ExploreEngine` run of
//! the same spec. These tests run everything in-process over loopback
//! sockets; the `serve-smoke` CI job repeats the drill across real
//! processes.

use pimcomp_dse::{ExploreEngine, SweepSpec};
use pimcomp_serve::{run_worker, Coordinator, CoordinatorConfig, ServeError, WorkerConfig};
use std::path::PathBuf;
use std::time::Duration;

/// The committed smoke fixture, shared with `pimcomp explore` CI runs.
fn smoke_spec() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../bench/fixtures/smoke_sweep.json");
    std::fs::read_to_string(path).expect("smoke fixture")
}

/// The axes fixture exercises auto hardware, both modes, the policy
/// and batch axes, and an `.onnx` model — whose path must be rebased
/// from the repository root to this test's working directory.
fn axes_spec() -> String {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../bench/fixtures/smoke_sweep_axes.json");
    let onnx = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../bench/fixtures/tiny_mlp.onnx");
    std::fs::read_to_string(path)
        .expect("axes fixture")
        .replace(
            "crates/bench/fixtures/tiny_mlp.onnx",
            &onnx.to_string_lossy(),
        )
}

fn single_process_json(spec_json: &str) -> String {
    let spec = SweepSpec::from_json(spec_json).expect("fixture spec parses");
    let outcome = ExploreEngine::new()
        .with_threads(2)
        .run(&spec)
        .expect("engine run");
    outcome.report.to_json().expect("report serializes")
}

/// Runs a coordinator with `workers` concurrent in-process workers and
/// returns (report JSON, outcome) — the distributed half of the gate.
fn distributed_json(
    spec_json: &str,
    cfg: CoordinatorConfig,
    workers: Vec<WorkerConfig>,
) -> (String, pimcomp_serve::ServeOutcome) {
    let coordinator = Coordinator::bind(spec_json, cfg).expect("bind");
    let addr = coordinator.local_addr().expect("addr");
    let coordinator_thread = std::thread::spawn(move || coordinator.run());
    let worker_threads: Vec<_> = workers
        .into_iter()
        .map(|mut wc| {
            wc.connect = addr.to_string();
            std::thread::spawn(move || run_worker(&wc))
        })
        .collect();
    for handle in worker_threads {
        // Workers configured to die early return Ok(stopped_early).
        handle.join().expect("worker thread").expect("worker run");
    }
    let outcome = coordinator_thread
        .join()
        .expect("coordinator thread")
        .expect("coordinator run");
    let json = outcome.report.to_json().expect("report serializes");
    (json, outcome)
}

fn n_workers(n: usize) -> Vec<WorkerConfig> {
    (0..n)
        .map(|i| {
            let mut wc = WorkerConfig::connect_to("placeholder");
            wc.name = format!("w{i}");
            wc
        })
        .collect()
}

#[test]
fn smoke_report_is_byte_identical_for_1_2_4_workers() {
    let spec = smoke_spec();
    let expected = single_process_json(&spec);
    for count in [1, 2, 4] {
        let (json, outcome) =
            distributed_json(&spec, CoordinatorConfig::default(), n_workers(count));
        assert_eq!(
            json, expected,
            "{count}-worker report diverged from single-process bytes"
        );
        assert_eq!(outcome.evaluated_points, 4);
        assert_eq!(outcome.resumed_points, 0);
    }
}

#[test]
fn axes_report_is_byte_identical_for_2_workers_with_lease_size_1() {
    let spec = axes_spec();
    let expected = single_process_json(&spec);
    let cfg = CoordinatorConfig {
        lease_size: 1,
        ..CoordinatorConfig::default()
    };
    let (json, outcome) = distributed_json(&spec, cfg, n_workers(2));
    assert_eq!(json, expected, "axes report diverged under lease_size=1");
    // HT: 2 models x 2 hw x 2 policies x 2 batches = 16; LL collapses
    // the batch axis: 2 x 2 x 2 = 8.
    assert_eq!(outcome.evaluated_points, 24);
}

#[test]
fn killed_worker_leases_are_reissued_and_bytes_survive() {
    let spec = smoke_spec();
    let expected = single_process_json(&spec);
    // Worker w0 dies mid-lease after one point; w1 (slightly delayed
    // by throttle ordering) picks up the reclaimed remainder.
    let mut dying = WorkerConfig::connect_to("placeholder");
    dying.name = "w0-dies".into();
    dying.max_points = Some(1);
    let mut survivor = WorkerConfig::connect_to("placeholder");
    survivor.name = "w1".into();
    let cfg = CoordinatorConfig {
        lease_size: 4, // one lease covers the whole grid: death is mid-lease
        ..CoordinatorConfig::default()
    };
    let (json, outcome) = distributed_json(&spec, cfg, vec![dying, survivor]);
    assert_eq!(
        json, expected,
        "report diverged after a mid-lease worker death"
    );
    assert!(
        outcome.leases_reclaimed >= 1,
        "the dead worker's lease was never reclaimed: {outcome:?}"
    );
    assert_eq!(outcome.evaluated_points, 4);
}

#[test]
fn crash_resume_from_truncated_journal_is_byte_identical() {
    let dir = std::env::temp_dir().join(format!("pimcomp-serve-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("sweep.journal.jsonl");
    let spec = smoke_spec();
    let expected = single_process_json(&spec);

    // Uninterrupted journaled run (1 worker, lease_size 1: one journal
    // line per point, so truncation cuts at point granularity).
    let cfg = CoordinatorConfig {
        lease_size: 1,
        journal: Some(journal.clone()),
        ..CoordinatorConfig::default()
    };
    let (full_json, _) = distributed_json(&spec, cfg.clone(), n_workers(1));
    assert_eq!(full_json, expected);

    // Simulate a coordinator crash after 2 of 4 records: keep the
    // header + 2 entries, then a torn partial write.
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 5, "header + 4 entries expected: {text}");
    let truncated = format!(
        "{}\n{}\n{}\n{{\"index\":2,\"rec",
        lines[0], lines[1], lines[2]
    );
    std::fs::write(&journal, truncated).unwrap();

    // Resume: replay leases only the unfinished points; the final
    // report must still match the uninterrupted bytes.
    let (resumed_json, outcome) = distributed_json(&spec, cfg, n_workers(1));
    assert_eq!(resumed_json, expected, "resumed report diverged");
    assert_eq!(outcome.resumed_points, 2);
    assert_eq!(outcome.evaluated_points, 2);

    // A third run resumes a *complete* journal: nothing to evaluate,
    // no worker needed, same bytes again.
    let cfg_done = CoordinatorConfig {
        lease_size: 1,
        journal: Some(journal.clone()),
        ..CoordinatorConfig::default()
    };
    let coordinator = Coordinator::bind(&spec, cfg_done).expect("bind over complete journal");
    let outcome = coordinator.run().expect("run over complete journal");
    assert_eq!(outcome.report.to_json().unwrap(), expected);
    assert_eq!(outcome.resumed_points, 4);
    assert_eq!(outcome.evaluated_points, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_for_a_different_spec_is_refused() {
    let dir = std::env::temp_dir().join(format!("pimcomp-serve-mismatch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("sweep.journal.jsonl");
    let cfg = CoordinatorConfig {
        journal: Some(journal.clone()),
        ..CoordinatorConfig::default()
    };
    let (_, _) = distributed_json(&smoke_spec(), cfg.clone(), n_workers(1));
    // Same journal, different spec text: refused, not silently mixed.
    let err = Coordinator::bind(&axes_spec(), cfg)
        .err()
        .expect("bind must fail");
    assert!(matches!(err, ServeError::Journal { .. }), "{err:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn halving_specs_are_rejected_with_a_structured_error() {
    let spec = r#"{"models":["tiny_mlp"],"modes":["ht"],
        "hardware":{"base":"small_test","parallelism":[2,4]},
        "ga":{"population":4,"iterations":4},
        "search":{"strategy":"halving","rungs":[1,4],"keep_fraction":0.5}}"#;
    let err = Coordinator::bind(spec, CoordinatorConfig::default())
        .err()
        .expect("halving must be rejected");
    assert!(matches!(err, ServeError::Unsupported { .. }), "{err:?}");
}

#[test]
fn workers_share_a_content_addressed_cache() {
    let dir = std::env::temp_dir().join(format!("pimcomp-serve-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = smoke_spec();
    let expected = single_process_json(&spec);

    let mut cold = n_workers(2);
    for wc in &mut cold {
        wc.cache_dir = Some(dir.clone());
    }
    let (cold_json, _) = distributed_json(&spec, CoordinatorConfig::default(), cold);
    assert_eq!(cold_json, expected);

    // A second fleet replays every point from the shared store.
    let mut warm = n_workers(2);
    for wc in &mut warm {
        wc.cache_dir = Some(dir.clone());
    }
    let coordinator = Coordinator::bind(&spec, CoordinatorConfig::default()).expect("bind");
    let addr = coordinator.local_addr().expect("addr");
    let coordinator_thread = std::thread::spawn(move || coordinator.run());
    let hits: usize = warm
        .into_iter()
        .map(|mut wc| {
            wc.connect = addr.to_string();
            std::thread::spawn(move || run_worker(&wc))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap().unwrap().cache_hits)
        .sum();
    let outcome = coordinator_thread.join().unwrap().unwrap();
    assert_eq!(outcome.report.to_json().unwrap(), expected);
    assert_eq!(hits, 4, "warm fleet must replay every point from cache");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn throttled_workers_interleave_without_byte_drift() {
    // Slow workers + tiny leases force many grant/complete cycles and
    // worker interleavings; bytes must not care.
    let spec = smoke_spec();
    let expected = single_process_json(&spec);
    let cfg = CoordinatorConfig {
        lease_size: 1,
        ..CoordinatorConfig::default()
    };
    let mut workers = n_workers(4);
    for wc in &mut workers {
        wc.throttle = Some(Duration::from_millis(10));
    }
    let (json, _) = distributed_json(&spec, cfg, workers);
    assert_eq!(json, expected);
}
