//! Distributed, resumable sweep service for the PIMCOMP exploration
//! engine: a coordinator/worker fan-out that shards a
//! [`SweepSpec`](pimcomp_dse::SweepSpec)'s point grid across processes
//! while preserving the single-process determinism contract.
//!
//! # Architecture
//!
//! ```text
//!             pimcomp serve --spec sweep.json          pimcomp work --connect HOST:PORT
//!            ┌──────────────────────────────┐         ┌──────────────────────────┐
//!            │ Coordinator                  │  TCP /  │ Worker (any number)      │
//!            │  spec → SweepPlan (N points) │  JSONL  │  HelloAck → same         │
//!            │  lease ranges to workers     │◄───────►│  SweepPlan from the      │
//!            │  journal PointRecords        │         │  shipped spec; evaluates │
//!            │  reduce journal → report     │         │  leased points via the   │
//!            └──────────────────────────────┘         │  ExploreEngine machinery │
//!                                                     └──────────────────────────┘
//! ```
//!
//! * The **protocol** ([`protocol`]) is versioned line-delimited JSON
//!   over `std::net` — one message per line, vendored `serde_json` as
//!   the wire format, no external dependencies.
//! * The **journal** ([`journal`]) is an append-only JSONL file of
//!   completed point records, fsynced per lease batch. Crash-resume
//!   replays it and leases only the unfinished points.
//! * The **coordinator** ([`coordinator`]) leases contiguous index
//!   ranges, re-issues leases on worker death or timeout, and reduces
//!   the journal in canonical point order.
//! * **Workers** ([`worker`]) evaluate points with
//!   [`SweepPlan::evaluate_final`](pimcomp_dse::SweepPlan::evaluate_final),
//!   sharing the content-addressed artifact cache (optionally
//!   size-bounded) and streaming per-point progress back.
//!
//! # Determinism
//!
//! A point's record is a pure function of the spec and the point's
//! index — never of which process evaluated it, when, or from what
//! cache state. The coordinator reduces records in index order through
//! [`SweepPlan::reduce`](pimcomp_dse::SweepPlan::reduce), so the final
//! report is **byte-identical** to a single-process `pimcomp explore`
//! run for any worker count, lease size, or crash/resume schedule.
//! `docs/DISTRIBUTED.md` in the repository spells out the full
//! argument and the protocol schema.
//!
//! # Example (in-process, one worker)
//!
//! ```
//! use pimcomp_serve::{Coordinator, CoordinatorConfig, WorkerConfig, run_worker};
//!
//! # fn main() -> Result<(), pimcomp_serve::ServeError> {
//! let spec_json = r#"{
//!     "models": ["tiny_mlp"], "modes": ["ht"],
//!     "hardware": { "base": "small_test", "parallelism": [4, 8] },
//!     "ga": { "population": 4, "iterations": 2 }, "master_seed": 7
//! }"#;
//! let coordinator = Coordinator::bind(spec_json, CoordinatorConfig::default())?;
//! let addr = coordinator.local_addr()?;
//! let handle = std::thread::spawn(move || coordinator.run());
//! run_worker(&WorkerConfig::connect_to(addr.to_string()))?;
//! let outcome = handle.join().expect("coordinator thread")?;
//! assert_eq!(outcome.report.points.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod journal;
pub mod protocol;
pub mod worker;

pub use coordinator::{Coordinator, CoordinatorConfig, ServeOutcome};
pub use journal::{
    replay, spec_fingerprint, Journal, JournalEntry, JournalHeader, Replayed, JOURNAL_VERSION,
};
pub use protocol::{CoordMsg, WorkerMsg, PROTOCOL_VERSION};
pub use worker::{run_worker, WorkerConfig, WorkerSummary};

use pimcomp_dse::ExploreError;
use std::fmt;

/// Errors raised by the distributed sweep service. Everything a socket
/// or a journal file can throw at the service lands here as a
/// structured variant — per the repository's standing policy, no input
/// (wire bytes, journal lines, spec files) can panic the service.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Socket or file I/O failed.
    Io {
        /// Underlying description.
        detail: String,
    },
    /// A peer sent a malformed or out-of-place protocol message.
    Protocol {
        /// What was wrong with the message.
        detail: String,
    },
    /// The peers disagree on the protocol version.
    Handshake {
        /// Version negotiation detail.
        detail: String,
    },
    /// The journal file is corrupt or belongs to a different sweep.
    Journal {
        /// What was wrong with the journal.
        detail: String,
    },
    /// The requested configuration is outside what the service
    /// supports (e.g. successive-halving specs).
    Unsupported {
        /// What is unsupported, and what to use instead.
        detail: String,
    },
    /// Spec parsing, model resolution, or point evaluation failed.
    Explore(ExploreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { detail } => write!(f, "serve I/O failed: {detail}"),
            ServeError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            ServeError::Handshake { detail } => write!(f, "handshake failed: {detail}"),
            ServeError::Journal { detail } => write!(f, "journal error: {detail}"),
            ServeError::Unsupported { detail } => write!(f, "unsupported: {detail}"),
            ServeError::Explore(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ExploreError> for ServeError {
    fn from(e: ExploreError) -> Self {
        ServeError::Explore(e)
    }
}
