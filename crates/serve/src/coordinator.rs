//! The sweep coordinator: owns the canonical point grid, leases index
//! ranges to workers, journals completed records, and reduces the
//! journal — in canonical order — to the byte-identical sweep report.
//!
//! # Lease lifecycle
//!
//! ```text
//! pending ──grant──► leased ──PointDone──► done (journaled)
//!    ▲                  │
//!    └──── reclaim ─────┘   (worker disconnect, or lease timeout)
//! ```
//!
//! A lease is a contiguous range of unfinished indices. Reclaim
//! returns only the *unfinished* part of a lease to the pending set;
//! finished points stay done. A straggler that completes a reclaimed
//! point after re-issue is harmless: records are deterministic, so the
//! duplicate journal entry carries an identical payload and replay is
//! idempotent.

use crate::journal::{replay, spec_fingerprint, Journal, JournalEntry, JournalHeader};
use crate::protocol::{read_msg, write_msg, CoordMsg, WorkerMsg, PROTOCOL_VERSION};
use crate::ServeError;
use pimcomp_dse::{PointRecord, SearchStrategy, SweepPlan, SweepReport, SweepSpec};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How the coordinator listens, leases, and journals.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinatorConfig {
    /// Listen address; port 0 picks a free port (see
    /// [`Coordinator::local_addr`]).
    pub listen: String,
    /// Points per lease. Small leases spread work and shrink the
    /// re-do window on worker death; large leases amortize round
    /// trips. Clamped to at least 1.
    pub lease_size: usize,
    /// A lease older than this is reclaimed even if its worker is
    /// still connected (hung workers). Disconnects reclaim
    /// immediately, independent of this timeout.
    pub lease_timeout: Duration,
    /// Journal path; `None` journals nothing (no crash-resume).
    pub journal: Option<PathBuf>,
    /// Print per-point progress to stderr.
    pub progress: bool,
    /// Job label, echoed in the handshake and the journal header.
    pub job: String,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            listen: "127.0.0.1:0".to_string(),
            lease_size: 4,
            lease_timeout: Duration::from_secs(60),
            journal: None,
            progress: false,
            job: "sweep".to_string(),
        }
    }
}

/// What a finished coordinator run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// The sweep report — byte-identical to a single-process
    /// exhaustive run of the same spec.
    pub report: SweepReport,
    /// Points recovered from the journal before any worker connected.
    pub resumed_points: usize,
    /// Points evaluated (journaled) during this run.
    pub evaluated_points: usize,
    /// Leases granted during this run.
    pub leases_issued: usize,
    /// Leases reclaimed from dead or hung workers and re-issued.
    pub leases_reclaimed: usize,
    /// Worker connections accepted.
    pub workers_seen: usize,
}

struct ActiveLease {
    conn: u64,
    worker: String,
    issued: Instant,
    outstanding: BTreeSet<usize>,
}

#[derive(Default)]
struct Stats {
    leases_issued: usize,
    leases_reclaimed: usize,
    workers_seen: usize,
    evaluated_points: usize,
}

struct State {
    pending: BTreeSet<usize>,
    leases: Vec<ActiveLease>,
    done: BTreeMap<usize, PointRecord>,
    journal: Option<Journal>,
    unsynced: usize,
    stats: Stats,
}

struct Shared {
    cfg: CoordinatorConfig,
    spec_json: String,
    keys: Vec<String>,
    n: usize,
    resumed_points: usize,
    state: Mutex<State>,
    all_done: AtomicBool,
}

impl Shared {
    /// Locks the state, recovering from a poisoned mutex: the state is
    /// a monotonic ledger (pending shrinks, done grows), so a panic in
    /// one handler thread cannot leave it half-updated in a way that
    /// corrupts the sweep — worst case a lease leaks until timeout.
    fn lock(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn progress(&self, line: &str) {
        if self.cfg.progress {
            eprintln!("[serve:{}] {line}", self.cfg.job);
        }
    }

    /// Returns unfinished indices of every lease matching `which` to
    /// the pending set.
    fn reclaim(&self, state: &mut State, which: impl Fn(&ActiveLease) -> bool, why: &str) {
        let mut reclaimed = Vec::new();
        state.leases.retain(|lease| {
            if which(lease) {
                reclaimed.push((lease.worker.clone(), lease.outstanding.clone()));
                false
            } else {
                true
            }
        });
        for (worker, outstanding) in reclaimed {
            if outstanding.is_empty() {
                continue;
            }
            state.stats.leases_reclaimed += 1;
            self.progress(&format!(
                "reclaimed {} point(s) from {worker} ({why})",
                outstanding.len()
            ));
            state.pending.extend(outstanding);
        }
    }

    /// Journals and records one completed point. Duplicates (a
    /// straggler finishing a reclaimed point) are accepted and
    /// ignored; a record whose key does not match the canonical grid
    /// is a protocol violation.
    fn record_done(
        &self,
        index: u64,
        cache_hit: bool,
        record: PointRecord,
        worker: &str,
    ) -> Result<(), ServeError> {
        let index_usize = usize::try_from(index).unwrap_or(usize::MAX);
        let Some(expected_key) = self.keys.get(index_usize) else {
            return Err(ServeError::Protocol {
                detail: format!(
                    "worker {worker} reported point {index}, outside the {}-point grid",
                    self.n
                ),
            });
        };
        if record.key() != *expected_key {
            return Err(ServeError::Protocol {
                detail: format!(
                    "worker {worker} reported key `{}` for point {index} \
                     (canonical key `{expected_key}`) — spec disagreement",
                    record.key()
                ),
            });
        }

        let mut state = self.lock();
        // Drop the point from whichever lease holds it (if any — the
        // lease may already have been reclaimed).
        for lease in &mut state.leases {
            lease.outstanding.remove(&index_usize);
        }
        state.leases.retain(|lease| !lease.outstanding.is_empty());
        state.pending.remove(&index_usize);

        if state.done.contains_key(&index_usize) {
            // Deterministic duplicate from a straggler; nothing to do.
            return Ok(());
        }
        if let Some(journal) = &mut state.journal {
            journal.append(&JournalEntry {
                index,
                record: record.clone(),
            })?;
            state.unsynced += 1;
            // Per-batch durability: fsync every lease_size entries and
            // at completion, bounding crash loss to one batch.
            if state.unsynced >= self.cfg.lease_size.max(1) {
                if let Some(journal) = &mut state.journal {
                    journal.sync()?;
                }
                state.unsynced = 0;
            }
        }
        state.done.insert(index_usize, record);
        state.stats.evaluated_points += 1;
        let done = state.done.len();
        self.progress(&format!(
            "{done}/{} {expected_key} worker={worker} ({})",
            self.n,
            if cache_hit { "cache hit" } else { "compiled" }
        ));
        if done == self.n {
            if let Some(journal) = &mut state.journal {
                journal.sync()?;
            }
            state.unsynced = 0;
            self.all_done.store(true, Ordering::SeqCst);
        }
        Ok(())
    }
}

/// The coordinator half of the distributed sweep service. See the
/// [crate docs](crate) for the architecture and an in-process example.
pub struct Coordinator {
    listener: TcpListener,
    plan: SweepPlan,
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Parses and validates the spec, replays the journal if one is
    /// configured and present, and binds the listen socket. No worker
    /// traffic is accepted until [`Coordinator::run`].
    ///
    /// # Errors
    ///
    /// * [`ServeError::Explore`] when the spec is invalid (same rules
    ///   as `pimcomp explore`),
    /// * [`ServeError::Unsupported`] for successive-halving specs —
    ///   the service shards *exhaustive* grids; halving's between-rung
    ///   barriers would serialize the fleet,
    /// * [`ServeError::Journal`] when an existing journal is corrupt
    ///   or belongs to a different sweep,
    /// * [`ServeError::Io`] when the socket cannot be bound.
    pub fn bind(spec_json: &str, cfg: CoordinatorConfig) -> Result<Coordinator, ServeError> {
        let spec = SweepSpec::from_json(spec_json)?;
        if !matches!(spec.search, SearchStrategy::Exhaustive) {
            return Err(ServeError::Unsupported {
                detail: "distributed sweeps support exhaustive specs only; \
                         drop the `search` section or run `pimcomp explore`"
                    .to_string(),
            });
        }
        let plan = SweepPlan::new(&spec)?;
        let n = plan.len();
        let keys: Vec<String> = plan.points().iter().map(|p| p.key()).collect();

        let header = JournalHeader {
            version: crate::JOURNAL_VERSION,
            job: cfg.job.clone(),
            spec_fingerprint: spec_fingerprint(spec_json),
            points: n as u64,
        };
        let mut done: BTreeMap<usize, PointRecord> = BTreeMap::new();
        let journal = match &cfg.journal {
            None => None,
            Some(path) if path.exists() => {
                let replayed = replay(path, &header)?;
                for (index, record) in &replayed.records {
                    done.insert(*index as usize, record.clone());
                }
                Some(Journal::open_append(path, &replayed)?)
            }
            Some(path) => Some(Journal::create(path, &header)?),
        };
        let resumed = done.len();
        let pending: BTreeSet<usize> = (0..n).filter(|i| !done.contains_key(i)).collect();

        let listener = TcpListener::bind(&cfg.listen).map_err(|e| ServeError::Io {
            detail: format!("binding {}: {e}", cfg.listen),
        })?;

        let all_done = AtomicBool::new(pending.is_empty());
        let shared = Arc::new(Shared {
            cfg,
            spec_json: spec_json.to_string(),
            keys,
            n,
            resumed_points: resumed,
            state: Mutex::new(State {
                pending,
                leases: Vec::new(),
                done,
                journal,
                unsynced: 0,
                stats: Stats::default(),
            }),
            all_done,
        });
        if resumed > 0 {
            shared.progress(&format!("resumed {resumed}/{n} point(s) from the journal"));
        }
        Ok(Coordinator {
            listener,
            plan,
            shared,
        })
    }

    /// The bound listen address — the one workers connect to. With
    /// `listen: "127.0.0.1:0"` this is where the picked port shows up.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the socket cannot report its address.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener.local_addr().map_err(|e| ServeError::Io {
            detail: format!("reading listener address: {e}"),
        })
    }

    /// Serves until every point is journaled, then reduces and returns
    /// the report. Worker connections may come and go freely; their
    /// leases are reclaimed on disconnect or timeout and re-issued.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on listener failure, [`ServeError::Journal`]
    /// on journal write failure (surfaced at the next completion), and
    /// [`ServeError::Explore`] if reduction fails — which, given a
    /// validated plan and key-checked records, indicates a bug, not an
    /// input problem.
    pub fn run(self) -> Result<ServeOutcome, ServeError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io {
                detail: format!("configuring listener: {e}"),
            })?;
        let mut next_conn: u64 = 0;
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.all_done.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    handlers.push(self.spawn_handler(stream, &mut next_conn));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => {
                    return Err(ServeError::Io {
                        detail: format!("accepting connection: {e}"),
                    });
                }
            }
            handlers.retain(|handle| !handle.is_finished());
            {
                let mut state = self.shared.lock();
                let timeout = self.shared.cfg.lease_timeout;
                self.shared.reclaim(
                    &mut state,
                    |l| l.issued.elapsed() > timeout,
                    "lease timeout",
                );
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        // Drain before dropping the listener: a worker whose connection
        // is still in the accept queue when the last point lands would
        // otherwise get a connection reset instead of a handshake and
        // `Finished`. Keep accepting and let every live handler see its
        // worker disconnect; the deadline only guards against a peer
        // that hangs without ever closing.
        let deadline = Instant::now() + self.shared.cfg.lease_timeout;
        loop {
            let idle = match self.listener.accept() {
                Ok((stream, _peer)) => {
                    handlers.push(self.spawn_handler(stream, &mut next_conn));
                    false
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => true,
                Err(_) => true,
            };
            handlers.retain(|handle| !handle.is_finished());
            if idle && handlers.is_empty() {
                break;
            }
            if Instant::now() >= deadline {
                // A hung connection; its handler thread detaches when
                // the Vec drops and dies with the worker's socket.
                self.shared
                    .progress("shutdown drain timed out with worker connections still open");
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }

        let mut state = self.shared.lock();
        if let Some(journal) = &mut state.journal {
            journal.sync()?;
        }
        let records: Vec<PointRecord> = std::mem::take(&mut state.done).into_values().collect();
        let stats = std::mem::take(&mut state.stats);
        drop(state);

        // Canonical reduction: BTreeMap iteration is index order, and
        // `reduce` re-checks count and keys before assembling.
        let report = self.plan.reduce(records)?;
        Ok(ServeOutcome {
            report,
            resumed_points: self.shared.resumed_points,
            evaluated_points: stats.evaluated_points,
            leases_issued: stats.leases_issued,
            leases_reclaimed: stats.leases_reclaimed,
            workers_seen: stats.workers_seen,
        })
    }

    /// Spawns the handler thread for one accepted connection. Each
    /// handler exits on disconnect or after sending `Finished`, and
    /// reclaims its leases on the way out.
    fn spawn_handler(&self, stream: TcpStream, next_conn: &mut u64) -> std::thread::JoinHandle<()> {
        let conn = *next_conn;
        *next_conn += 1;
        let shared = Arc::clone(&self.shared);
        {
            let mut state = shared.lock();
            state.stats.workers_seen += 1;
        }
        std::thread::spawn(move || {
            let result = handle_worker(&shared, conn, stream);
            let mut state = shared.lock();
            shared.reclaim(&mut state, |l| l.conn == conn, "disconnect");
            drop(state);
            if let Err(e) = result {
                shared.progress(&format!("worker connection {conn} ended: {e}"));
            }
        })
    }
}

/// One worker connection: handshake, then serve NeedWork/PointDone
/// until the worker disconnects or the sweep finishes.
fn handle_worker(shared: &Shared, conn: u64, stream: TcpStream) -> Result<(), ServeError> {
    stream.set_nodelay(true).ok();
    let reader_stream = stream.try_clone().map_err(|e| ServeError::Io {
        detail: format!("cloning connection stream: {e}"),
    })?;
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);

    let worker = match read_msg::<WorkerMsg, _>(&mut reader)? {
        None => return Ok(()),
        Some(WorkerMsg::Hello { protocol, worker }) => {
            if protocol != PROTOCOL_VERSION {
                let detail = format!(
                    "worker {worker} speaks protocol v{protocol}, \
                     coordinator speaks v{PROTOCOL_VERSION}"
                );
                write_msg(
                    &mut writer,
                    &CoordMsg::Error {
                        detail: detail.clone(),
                    },
                )
                .ok();
                return Err(ServeError::Handshake { detail });
            }
            worker
        }
        Some(other) => {
            let detail = format!("expected Hello, got {other:?}");
            write_msg(
                &mut writer,
                &CoordMsg::Error {
                    detail: detail.clone(),
                },
            )
            .ok();
            return Err(ServeError::Protocol { detail });
        }
    };
    write_msg(
        &mut writer,
        &CoordMsg::HelloAck {
            protocol: PROTOCOL_VERSION,
            job: shared.cfg.job.clone(),
            points: shared.n as u64,
            spec_json: shared.spec_json.clone(),
        },
    )?;
    shared.progress(&format!("worker {worker} connected"));

    loop {
        let msg = match read_msg::<WorkerMsg, _>(&mut reader)? {
            None => return Ok(()), // disconnect; caller reclaims
            Some(msg) => msg,
        };
        match msg {
            WorkerMsg::NeedWork => {
                // Decide under the lock, write after releasing it. The
                // done *flag* (not the map) answers Finished: it
                // outlives `run`'s reduction, so a worker polling
                // after the report is already reduced still gets its
                // Finished instead of waiting forever.
                let reply = {
                    let mut state = shared.lock();
                    if shared.all_done.load(Ordering::SeqCst) {
                        CoordMsg::Finished
                    } else if let Some(first) = state.pending.iter().next().copied() {
                        let lease_size = shared.cfg.lease_size.max(1);
                        let mut end = first + 1;
                        while end - first < lease_size && state.pending.contains(&end) {
                            end += 1;
                        }
                        let outstanding: BTreeSet<usize> = (first..end).collect();
                        for index in &outstanding {
                            state.pending.remove(index);
                        }
                        state.leases.push(ActiveLease {
                            conn,
                            worker: worker.clone(),
                            issued: Instant::now(),
                            outstanding,
                        });
                        state.stats.leases_issued += 1;
                        CoordMsg::Lease {
                            start: first as u64,
                            end: end as u64,
                        }
                    } else {
                        // Everything is leased out; the worker polls
                        // until a lease completes or is reclaimed.
                        CoordMsg::Wait { retry_ms: 50 }
                    }
                };
                let finished = matches!(reply, CoordMsg::Finished);
                write_msg(&mut writer, &reply)?;
                if finished {
                    return Ok(());
                }
            }
            WorkerMsg::PointStart { index, key } => {
                shared.progress(&format!("start {index}: {key} worker={worker}"));
            }
            WorkerMsg::Progress { index, stage } => {
                shared.progress(&format!("point {index}: {stage} worker={worker}"));
            }
            WorkerMsg::PointDone {
                index,
                cache_hit,
                record,
            } => {
                if let Err(e) = shared.record_done(index, cache_hit, record, &worker) {
                    write_msg(
                        &mut writer,
                        &CoordMsg::Error {
                            detail: e.to_string(),
                        },
                    )
                    .ok();
                    return Err(e);
                }
            }
            WorkerMsg::Hello { .. } => {
                let detail = format!("worker {worker} sent a second Hello");
                write_msg(
                    &mut writer,
                    &CoordMsg::Error {
                        detail: detail.clone(),
                    },
                )
                .ok();
                return Err(ServeError::Protocol { detail });
            }
        }
    }
}
