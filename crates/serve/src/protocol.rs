//! The coordinator ⇄ worker wire protocol: versioned, line-delimited
//! JSON over a TCP stream.
//!
//! Every message is one JSON value on one line (`\n`-terminated), in
//! the vendored `serde` derive's externally-tagged enum encoding —
//! unit variants are a bare string, payload variants a single-key map:
//!
//! ```text
//! worker → coordinator                 coordinator → worker
//! ────────────────────                 ────────────────────
//! {"Hello":{"protocol":1,...}}         {"HelloAck":{"protocol":1,...}}
//! "NeedWork"                           {"Lease":{"start":0,"end":4}}
//! {"PointStart":{"index":0,...}}       {"Wait":{"retry_ms":50}}
//! {"Progress":{"index":0,...}}         "Finished"
//! {"PointDone":{"index":0,...}}        {"Error":{"detail":"..."}}
//! ```
//!
//! The handshake carries [`PROTOCOL_VERSION`] both ways; either side
//! rejects a peer from a different version with a structured error
//! rather than guessing at field drift. The full schema, message by
//! message, is documented in `docs/DISTRIBUTED.md`.

use crate::ServeError;
use pimcomp_dse::PointRecord;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// The wire-protocol version; bump on any breaking change to the
/// message set or field shapes.
pub const PROTOCOL_VERSION: u32 = 1;

/// Messages a worker sends to the coordinator.
// `PointDone` dwarfs the other variants, but boxing its record would
// leak into the wire encoding produced by the vendored serde derive;
// these values are short-lived and never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerMsg {
    /// Opens the session; must be the first message on the connection.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Worker display name (for the coordinator's progress view).
        worker: String,
    },
    /// Asks for a lease; the coordinator answers with
    /// [`CoordMsg::Lease`], [`CoordMsg::Wait`], or
    /// [`CoordMsg::Finished`].
    NeedWork,
    /// The worker started evaluating a point (progress only).
    PointStart {
        /// Point index in the canonical grid.
        index: u64,
        /// The point's stable key.
        key: String,
    },
    /// A compile stage finished for a point (progress only, wired off
    /// the core `CompileObserver`).
    Progress {
        /// Point index in the canonical grid.
        index: u64,
        /// Human-readable stage label.
        stage: String,
    },
    /// A point evaluation finished; carries the full deterministic
    /// record the coordinator journals.
    PointDone {
        /// Point index in the canonical grid.
        index: u64,
        /// Whether the shared artifact cache answered (progress only —
        /// never journaled, never in the report).
        cache_hit: bool,
        /// The point's record, byte-equivalent to what a
        /// single-process run would produce.
        record: PointRecord,
    },
}

/// Messages the coordinator sends to a worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoordMsg {
    /// Accepts the handshake and ships the job.
    HelloAck {
        /// The coordinator's [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Job label (for logs).
        job: String,
        /// Points in the expanded grid; the worker cross-checks its
        /// own expansion against this.
        points: u64,
        /// The sweep spec, verbatim; the worker re-expands it into the
        /// identical deterministic point grid.
        spec_json: String,
    },
    /// A lease over the contiguous index range `start..end`.
    Lease {
        /// First leased index (inclusive).
        start: u64,
        /// One past the last leased index.
        end: u64,
    },
    /// No work is available right now (other leases are in flight);
    /// ask again after `retry_ms`.
    Wait {
        /// Suggested retry delay in milliseconds.
        retry_ms: u64,
    },
    /// Every point is complete; the worker should disconnect.
    Finished,
    /// The coordinator rejects the session or a message.
    Error {
        /// Why.
        detail: String,
    },
}

/// Writes one message as one JSON line and flushes it.
///
/// # Errors
///
/// [`ServeError::Io`] when the stream write fails (a dead peer),
/// [`ServeError::Protocol`] when the message cannot be encoded.
pub fn write_msg<T: Serialize, W: Write>(writer: &mut W, msg: &T) -> Result<(), ServeError> {
    let line = serde_json::to_string(msg).map_err(|e| ServeError::Protocol {
        detail: format!("encoding message: {e}"),
    })?;
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| ServeError::Io {
            detail: format!("writing message: {e}"),
        })
}

/// Reads the next message line. Returns `Ok(None)` on clean EOF (the
/// peer disconnected between messages); blank lines are skipped.
///
/// # Errors
///
/// [`ServeError::Io`] when the read fails, [`ServeError::Protocol`]
/// when a line is not valid JSON for `T` — wire bytes never panic.
pub fn read_msg<T: Deserialize, R: BufRead>(reader: &mut R) -> Result<Option<T>, ServeError> {
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| ServeError::Io {
            detail: format!("reading message: {e}"),
        })?;
        if n == 0 {
            return Ok(None);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        return serde_json::from_str(trimmed)
            .map(Some)
            .map_err(|e| ServeError::Protocol {
                detail: format!(
                    "malformed message `{}`: {e}",
                    &trimmed[..trimmed.len().min(120)]
                ),
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn round_trip_worker(msg: WorkerMsg) {
        let mut buf = Vec::new();
        write_msg(&mut buf, &msg).unwrap();
        let mut reader = BufReader::new(&buf[..]);
        let back: WorkerMsg = read_msg(&mut reader).unwrap().unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn worker_messages_round_trip() {
        round_trip_worker(WorkerMsg::Hello {
            protocol: PROTOCOL_VERSION,
            worker: "w1".into(),
        });
        round_trip_worker(WorkerMsg::NeedWork);
        round_trip_worker(WorkerMsg::PointStart {
            index: 3,
            key: "tiny_mlp/HT/small_test+par4/naive/b1/seed1".into(),
        });
        round_trip_worker(WorkerMsg::Progress {
            index: 3,
            stage: "replicating + mapping".into(),
        });
    }

    #[test]
    fn coord_messages_round_trip_including_embedded_spec_json() {
        // The spec travels as a JSON string *inside* a one-line
        // message: quotes and newlines must survive the line framing.
        let spec = "{\n  \"models\": [\"tiny_mlp\"]\n}";
        let msg = CoordMsg::HelloAck {
            protocol: PROTOCOL_VERSION,
            job: "smoke".into(),
            points: 4,
            spec_json: spec.into(),
        };
        let mut buf = Vec::new();
        write_msg(&mut buf, &msg).unwrap();
        assert_eq!(
            buf.iter().filter(|&&b| b == b'\n').count(),
            1,
            "one message must be exactly one line"
        );
        let mut reader = BufReader::new(&buf[..]);
        let back: CoordMsg = read_msg(&mut reader).unwrap().unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn malformed_line_is_a_structured_error() {
        let mut reader = BufReader::new(&b"{definitely not json\n"[..]);
        let err = read_msg::<CoordMsg, _>(&mut reader).unwrap_err();
        assert!(matches!(err, ServeError::Protocol { .. }), "{err:?}");
    }

    #[test]
    fn wrong_variant_shape_is_a_structured_error() {
        let mut reader = BufReader::new(&b"{\"Lease\":{\"start\":\"zero\"}}\n"[..]);
        let err = read_msg::<CoordMsg, _>(&mut reader).unwrap_err();
        assert!(matches!(err, ServeError::Protocol { .. }), "{err:?}");
    }

    #[test]
    fn eof_between_messages_is_clean() {
        let mut reader = BufReader::new(&b""[..]);
        assert!(read_msg::<WorkerMsg, _>(&mut reader).unwrap().is_none());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut reader = BufReader::new(&b"\n\n\"NeedWork\"\n"[..]);
        let msg: WorkerMsg = read_msg(&mut reader).unwrap().unwrap();
        assert_eq!(msg, WorkerMsg::NeedWork);
    }
}
