//! The sweep worker: connects to a coordinator, re-expands the shipped
//! spec into the identical deterministic point grid, and evaluates
//! leased points through the exploration engine's per-point API.
//!
//! Workers are stateless and interchangeable: any worker may evaluate
//! any point, any number may join or leave mid-sweep, and a worker
//! that dies mid-lease costs only the re-evaluation of its unfinished
//! points. Pointing several workers at one shared cache directory
//! turns it into a content-addressed artifact store — entries are
//! keyed by fingerprints, so concurrent writers produce identical
//! bytes for the same key and a cache race is never a correctness
//! problem.

use crate::protocol::{read_msg, write_msg, CoordMsg, WorkerMsg, PROTOCOL_VERSION};
use crate::ServeError;
use pimcomp_core::{CompileObserver, CompileStage};
use pimcomp_dse::{cache, SweepPlan, SweepSpec};
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// How a worker connects and evaluates.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub connect: String,
    /// Display name, shown in the coordinator's progress view.
    pub name: String,
    /// Artifact cache directory shared with other workers; `None`
    /// compiles every point from scratch.
    pub cache_dir: Option<PathBuf>,
    /// Size bound for the cache in megabytes; eviction runs after
    /// each lease ([`pimcomp_dse::cache::enforce_cache_limit`]).
    pub cache_max_mb: Option<u64>,
    /// Stop (dropping the connection, mid-lease if need be) after
    /// evaluating this many points. The crash-resume tests and the CI
    /// worker-kill drill use this to die deterministically; production
    /// workers leave it `None`.
    pub max_points: Option<usize>,
    /// Sleep this long after each point — a throttle so tests can
    /// overlap worker lifetimes deterministically.
    pub throttle: Option<Duration>,
}

impl WorkerConfig {
    /// A worker that connects to `addr` with defaults everywhere else
    /// (no cache, no limits).
    pub fn connect_to(addr: impl Into<String>) -> Self {
        WorkerConfig {
            connect: addr.into(),
            name: format!("worker-{}", std::process::id()),
            cache_dir: None,
            cache_max_mb: None,
            max_points: None,
            throttle: None,
        }
    }
}

/// What one worker session did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSummary {
    /// The worker's name.
    pub worker: String,
    /// Points evaluated and reported.
    pub points_evaluated: usize,
    /// How many of those replayed from the artifact cache.
    pub cache_hits: usize,
    /// Leases received.
    pub leases: usize,
    /// True when the worker stopped at
    /// [`WorkerConfig::max_points`] rather than the coordinator's
    /// `Finished`.
    pub stopped_early: bool,
}

/// Streams compile-stage transitions for one point back to the
/// coordinator. Best-effort by design: a lost progress line never
/// fails an evaluation — the PointDone write afterwards surfaces real
/// connection problems.
struct StageStream<'a, W: Write> {
    writer: &'a mut W,
    index: u64,
}

impl<W: Write> CompileObserver for StageStream<'_, W> {
    fn on_stage_finish(&mut self, stage: CompileStage, _elapsed: Duration) {
        write_msg(
            self.writer,
            &WorkerMsg::Progress {
                index: self.index,
                stage: stage.label().to_string(),
            },
        )
        .ok();
    }
}

/// Runs one worker session to completion: handshake, lease loop,
/// disconnect. Returns when the coordinator reports the sweep
/// finished, or early at [`WorkerConfig::max_points`].
///
/// # Errors
///
/// * [`ServeError::Io`] when the coordinator is unreachable or the
///   connection drops,
/// * [`ServeError::Handshake`] on a protocol-version mismatch,
/// * [`ServeError::Protocol`] on malformed traffic, a point-count
///   disagreement, or a coordinator-side rejection,
/// * [`ServeError::Explore`] when the shipped spec does not validate
///   or the cache directory cannot be created.
pub fn run_worker(cfg: &WorkerConfig) -> Result<WorkerSummary, ServeError> {
    let stream = TcpStream::connect(&cfg.connect).map_err(|e| ServeError::Io {
        detail: format!("connecting to coordinator {}: {e}", cfg.connect),
    })?;
    stream.set_nodelay(true).ok();
    let reader_stream = stream.try_clone().map_err(|e| ServeError::Io {
        detail: format!("cloning connection stream: {e}"),
    })?;
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);

    write_msg(
        &mut writer,
        &WorkerMsg::Hello {
            protocol: PROTOCOL_VERSION,
            worker: cfg.name.clone(),
        },
    )?;
    let (points, spec_json) = match read_msg::<CoordMsg, _>(&mut reader)? {
        Some(CoordMsg::HelloAck {
            protocol,
            points,
            spec_json,
            ..
        }) => {
            if protocol != PROTOCOL_VERSION {
                return Err(ServeError::Handshake {
                    detail: format!(
                        "coordinator speaks protocol v{protocol}, \
                         worker speaks v{PROTOCOL_VERSION}"
                    ),
                });
            }
            (points, spec_json)
        }
        Some(CoordMsg::Error { detail }) => return Err(ServeError::Protocol { detail }),
        Some(other) => {
            return Err(ServeError::Protocol {
                detail: format!("expected HelloAck, got {other:?}"),
            })
        }
        None => {
            return Err(ServeError::Io {
                detail: "coordinator closed the connection during the handshake".to_string(),
            })
        }
    };

    // Re-expand the shipped spec; expansion is deterministic, so every
    // worker and the coordinator hold the identical grid. The count
    // cross-check catches version skew before any work is wasted.
    let spec = SweepSpec::from_json(&spec_json)?;
    let plan = SweepPlan::new(&spec)?;
    if plan.len() as u64 != points {
        return Err(ServeError::Protocol {
            detail: format!(
                "coordinator announced {points} points but the spec expands to {} on this worker \
             — mismatched builds?",
                plan.len()
            ),
        });
    }
    if let Some(dir) = &cfg.cache_dir {
        std::fs::create_dir_all(dir).map_err(|e| ServeError::Io {
            detail: format!("creating cache dir {}: {e}", dir.display()),
        })?;
    }

    let mut summary = WorkerSummary {
        worker: cfg.name.clone(),
        points_evaluated: 0,
        cache_hits: 0,
        leases: 0,
        stopped_early: false,
    };
    'session: loop {
        write_msg(&mut writer, &WorkerMsg::NeedWork)?;
        match read_msg::<CoordMsg, _>(&mut reader)? {
            Some(CoordMsg::Lease { start, end }) => {
                summary.leases += 1;
                let mut touched = Vec::new();
                for index in start..end {
                    if cfg
                        .max_points
                        .is_some_and(|max| summary.points_evaluated >= max)
                    {
                        // Deliberate mid-lease death: drop the
                        // connection so the coordinator reclaims the
                        // rest of this lease.
                        summary.stopped_early = true;
                        break 'session;
                    }
                    let key = plan
                        .points()
                        .get(index as usize)
                        .map(|p| p.key())
                        .unwrap_or_default();
                    write_msg(&mut writer, &WorkerMsg::PointStart { index, key })?;
                    let mut observer = StageStream {
                        writer: &mut writer,
                        index,
                    };
                    let outcome = plan.evaluate_final_observed(
                        index as usize,
                        cfg.cache_dir.as_deref(),
                        &mut observer,
                    )?;
                    if outcome.cache_hit {
                        summary.cache_hits += 1;
                    }
                    if let Some(name) = &outcome.cache_file {
                        touched.push(name.clone());
                    }
                    write_msg(
                        &mut writer,
                        &WorkerMsg::PointDone {
                            index,
                            cache_hit: outcome.cache_hit,
                            record: outcome.record,
                        },
                    )?;
                    summary.points_evaluated += 1;
                    if let Some(pause) = cfg.throttle {
                        std::thread::sleep(pause);
                    }
                }
                // Bound the shared store after each lease, stamping
                // this lease's artifacts most-recent.
                if let (Some(dir), Some(max_mb)) = (&cfg.cache_dir, cfg.cache_max_mb) {
                    touched.sort_unstable();
                    touched.dedup();
                    cache::enforce_cache_limit(dir, max_mb.saturating_mul(1024 * 1024), &touched)?;
                }
            }
            Some(CoordMsg::Wait { retry_ms }) => {
                std::thread::sleep(Duration::from_millis(retry_ms.min(1_000)));
            }
            Some(CoordMsg::Finished) => break,
            Some(CoordMsg::Error { detail }) => return Err(ServeError::Protocol { detail }),
            Some(other) => {
                return Err(ServeError::Protocol {
                    detail: format!("expected Lease/Wait/Finished, got {other:?}"),
                })
            }
            None => {
                return Err(ServeError::Io {
                    detail: "coordinator closed the connection mid-session".to_string(),
                })
            }
        }
    }
    Ok(summary)
}
