//! The append-only sweep journal: one JSON line per completed point,
//! preceded by a header line binding the file to its sweep.
//!
//! ```text
//! {"version":1,"job":"smoke","spec_fingerprint":...,"points":16}
//! {"index":0,"record":{...}}
//! {"index":3,"record":{...}}
//! ...
//! ```
//!
//! The coordinator appends an entry as each `PointDone` arrives and
//! fsyncs once per lease batch, so a crash loses at most the entries
//! of the batch in flight. [`replay`] tolerates exactly the damage a
//! crash can cause — a truncated *final* line without a trailing
//! newline — and rejects everything else as corruption. Replay is
//! idempotent under duplicate entries: records are deterministic, so
//! re-journaling an index (a re-issued lease whose original worker
//! also finished) overwrites an identical value.

use crate::ServeError;
use pimcomp_dse::PointRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// The journal format version; bump on any breaking change to the
/// header or entry shape.
pub const JOURNAL_VERSION: u32 = 1;

/// The first line of every journal: which sweep this file belongs to.
/// Resume refuses a journal whose fingerprint or point count disagrees
/// with the spec being served — replaying someone else's records into
/// a report would be silently wrong.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// [`JOURNAL_VERSION`] at write time.
    pub version: u32,
    /// Job label (informational).
    pub job: String,
    /// [`spec_fingerprint`] of the spec JSON this journal records.
    pub spec_fingerprint: u64,
    /// Points in the expanded grid.
    pub points: u64,
}

/// One completed point: its canonical index and deterministic record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Point index in the canonical grid.
    pub index: u64,
    /// The point's record.
    pub record: PointRecord,
}

/// FNV-1a over the spec JSON bytes: a stable, dependency-free
/// fingerprint binding a journal to the exact spec text it was
/// recorded under. Reformatting the spec file changes the fingerprint
/// on purpose — resume must not guess whether two spellings expand
/// identically.
pub fn spec_fingerprint(spec_json: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in spec_json.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An open journal being appended to by a live coordinator.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Creates a fresh journal at `path` (truncating any existing
    /// file), writes the header, and syncs it to disk.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on any file operation,
    /// [`ServeError::Journal`] if the header cannot be encoded.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Self, ServeError> {
        let file = File::create(path).map_err(|e| ServeError::Io {
            detail: format!("creating journal {}: {e}", path.display()),
        })?;
        let mut journal = Journal {
            file,
            path: path.to_path_buf(),
        };
        let line = serde_json::to_string(header).map_err(|e| ServeError::Journal {
            detail: format!("encoding journal header: {e}"),
        })?;
        journal.write_line(&line)?;
        journal.sync()?;
        Ok(journal)
    }

    /// Opens an existing journal for appending, after [`replay`] has
    /// validated it against `header`. The `replayed` summary says
    /// where the durable history ends: a torn final line is truncated
    /// away (appending after it would corrupt the next entry), and a
    /// valid final line missing its newline gets one before any new
    /// entry lands.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the file cannot be opened or repaired.
    pub fn open_append(path: &Path, replayed: &Replayed) -> Result<Self, ServeError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| ServeError::Io {
                detail: format!("opening journal {}: {e}", path.display()),
            })?;
        file.set_len(replayed.durable_len)
            .map_err(|e| ServeError::Io {
                detail: format!(
                    "truncating journal {} to its durable {} byte(s): {e}",
                    path.display(),
                    replayed.durable_len
                ),
            })?;
        let mut journal = Journal {
            file,
            path: path.to_path_buf(),
        };
        if replayed.needs_newline {
            journal.file.write_all(b"\n").map_err(|e| ServeError::Io {
                detail: format!(
                    "terminating the final journal line in {}: {e}",
                    path.display()
                ),
            })?;
        }
        Ok(journal)
    }

    /// Appends one entry (buffered in the OS; call [`Journal::sync`]
    /// to make a batch durable).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] / [`ServeError::Journal`] on write or encode
    /// failure.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), ServeError> {
        let line = serde_json::to_string(entry).map_err(|e| ServeError::Journal {
            detail: format!("encoding journal entry {}: {e}", entry.index),
        })?;
        self.write_line(&line)
    }

    /// Fsyncs everything appended so far — the per-batch durability
    /// point.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the sync fails.
    pub fn sync(&mut self) -> Result<(), ServeError> {
        self.file.sync_data().map_err(|e| ServeError::Io {
            detail: format!("syncing journal {}: {e}", self.path.display()),
        })
    }

    fn write_line(&mut self, line: &str) -> Result<(), ServeError> {
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .map_err(|e| ServeError::Io {
                detail: format!("appending to journal {}: {e}", self.path.display()),
            })
    }
}

/// What [`replay`] recovered, plus where the durable history ends —
/// [`Journal::open_append`] uses the boundary to repair the one kind
/// of damage a crash can leave (a torn final line) before appending.
#[derive(Debug, Clone, PartialEq)]
pub struct Replayed {
    /// Recovered records keyed by point index.
    pub records: BTreeMap<u64, PointRecord>,
    /// Bytes of parseable history; anything past this offset is a torn
    /// final line that must be truncated before appending resumes.
    pub durable_len: u64,
    /// True when the durable tail is a valid line missing its trailing
    /// newline; a newline must be written before the next entry.
    pub needs_newline: bool,
}

/// Replays a journal: validates the header, parses every entry, and
/// returns the recovered records keyed by point index, along with the
/// durable-byte boundary [`Journal::open_append`] needs.
///
/// Duplicate indices are idempotent (last entry wins — records are
/// deterministic, so duplicates carry identical payloads). A truncated
/// final line with no trailing newline — the one artifact a crash
/// mid-append can leave — is dropped; its entry was never made durable
/// as a unit. Any other malformed line is corruption and errors.
///
/// # Errors
///
/// * [`ServeError::Io`] when the file cannot be read,
/// * [`ServeError::Journal`] when the header is missing, malformed,
///   from another version, or for a different sweep (`expect` supplies
///   the fingerprint and point count being served); when a non-final
///   line is malformed; or when an entry's index is out of range.
pub fn replay(path: &Path, expect: &JournalHeader) -> Result<Replayed, ServeError> {
    let text = std::fs::read_to_string(path).map_err(|e| ServeError::Io {
        detail: format!("reading journal {}: {e}", path.display()),
    })?;
    let complete_tail = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    let Some((first, rest)) = lines.split_first() else {
        return Err(ServeError::Journal {
            detail: format!("journal {} is empty (no header)", path.display()),
        });
    };

    let header: JournalHeader = serde_json::from_str(first).map_err(|e| ServeError::Journal {
        detail: format!("journal {} has a malformed header: {e}", path.display()),
    })?;
    if header.version != JOURNAL_VERSION {
        return Err(ServeError::Journal {
            detail: format!(
                "journal {} is version {} (this build reads v{JOURNAL_VERSION})",
                path.display(),
                header.version
            ),
        });
    }
    if header.spec_fingerprint != expect.spec_fingerprint || header.points != expect.points {
        return Err(ServeError::Journal {
            detail: format!(
                "journal {} records a different sweep \
                 (fingerprint {:016x}/{} points vs spec {:016x}/{} points); \
                 refusing to mix results",
                path.display(),
                header.spec_fingerprint,
                header.points,
                expect.spec_fingerprint,
                expect.points
            ),
        });
    }

    let mut records = BTreeMap::new();
    // Walk entries tracking byte offsets, so a torn final line leaves
    // `durable_len` at the boundary the append path must truncate to.
    let mut pos = first.len() + usize::from(!rest.is_empty() || complete_tail);
    let mut durable_len = pos;
    let mut needs_newline = rest.is_empty() && !complete_tail;
    for (i, line) in rest.iter().enumerate() {
        let is_final_line = i + 1 == rest.len();
        let terminated = !is_final_line || complete_tail;
        let line_end = pos + line.len() + usize::from(terminated);
        if line.trim().is_empty() {
            pos = line_end;
            durable_len = line_end;
            needs_newline = !terminated;
            continue;
        }
        match serde_json::from_str::<JournalEntry>(line) {
            Ok(entry) => {
                if entry.index >= header.points {
                    return Err(ServeError::Journal {
                        detail: format!(
                            "journal {} entry index {} out of range for {} points",
                            path.display(),
                            entry.index,
                            header.points
                        ),
                    });
                }
                records.insert(entry.index, entry.record);
                pos = line_end;
                durable_len = line_end;
                needs_newline = !terminated;
            }
            Err(e) => {
                if is_final_line && !complete_tail {
                    // Crash mid-append: the batch in flight was never
                    // durable; the points re-run under a fresh lease.
                    break;
                }
                return Err(ServeError::Journal {
                    detail: format!("journal {} line {} is corrupt: {e}", path.display(), i + 2),
                });
            }
        }
    }
    Ok(Replayed {
        records,
        durable_len: durable_len as u64,
        needs_newline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "pimcomp-journal-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    fn header() -> JournalHeader {
        JournalHeader {
            version: JOURNAL_VERSION,
            job: "test".into(),
            spec_fingerprint: spec_fingerprint("{}"),
            points: 8,
        }
    }

    fn record(seed: u64) -> PointRecord {
        PointRecord {
            model: "tiny_mlp".into(),
            mode: "HT".into(),
            hardware: "small_test".into(),
            policy: "naive".into(),
            batch: 1,
            seed,
            weight_reload: "off".into(),
            seq_len: None,
            quantization: None,
            rung: 0,
            budget: 2,
            pruned_at: None,
            ok: true,
            error: None,
            metrics: None,
            pareto: false,
        }
    }

    #[test]
    fn append_replay_round_trips() {
        let path = temp_path("roundtrip");
        let mut journal = Journal::create(&path, &header()).unwrap();
        for index in [0u64, 3, 5] {
            journal
                .append(&JournalEntry {
                    index,
                    record: record(index),
                })
                .unwrap();
        }
        journal.sync().unwrap();
        let replayed = replay(&path, &header()).unwrap();
        assert_eq!(replayed.records.len(), 3);
        assert_eq!(replayed.records[&3].seed, 3);
        let on_disk = std::fs::metadata(&path).unwrap().len();
        assert_eq!(replayed.durable_len, on_disk);
        assert!(!replayed.needs_newline);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_final_line_is_dropped_not_fatal() {
        let path = temp_path("truncated");
        let mut journal = Journal::create(&path, &header()).unwrap();
        journal
            .append(&JournalEntry {
                index: 0,
                record: record(0),
            })
            .unwrap();
        journal.sync().unwrap();
        // Simulate a crash mid-append: garbage with no trailing newline.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let durable = text.len() as u64;
        text.push_str("{\"index\":1,\"rec");
        std::fs::write(&path, &text).unwrap();
        let replayed = replay(&path, &header()).unwrap();
        assert_eq!(replayed.records.len(), 1);
        assert!(replayed.records.contains_key(&0));
        assert_eq!(
            replayed.durable_len, durable,
            "torn line must not be durable"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_append_truncates_a_torn_tail_before_appending() {
        let path = temp_path("repair");
        let mut journal = Journal::create(&path, &header()).unwrap();
        journal
            .append(&JournalEntry {
                index: 0,
                record: record(0),
            })
            .unwrap();
        drop(journal);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"index\":1,\"rec");
        std::fs::write(&path, &text).unwrap();

        // Resume: replay, repair, append a fresh entry — the file must
        // replay cleanly again with both real entries and no glue.
        let replayed = replay(&path, &header()).unwrap();
        let mut journal = Journal::open_append(&path, &replayed).unwrap();
        journal
            .append(&JournalEntry {
                index: 1,
                record: record(1),
            })
            .unwrap();
        journal.sync().unwrap();
        let replayed = replay(&path, &header()).unwrap();
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.records[&1], record(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_append_terminates_an_unterminated_valid_final_line() {
        let path = temp_path("newline");
        let mut journal = Journal::create(&path, &header()).unwrap();
        journal
            .append(&JournalEntry {
                index: 0,
                record: record(0),
            })
            .unwrap();
        drop(journal);
        // Strip the final newline: the last entry is valid JSON but a
        // raw append would glue the next entry onto it.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.trim_end_matches('\n')).unwrap();

        let replayed = replay(&path, &header()).unwrap();
        assert!(replayed.needs_newline);
        assert_eq!(replayed.records.len(), 1);
        let mut journal = Journal::open_append(&path, &replayed).unwrap();
        journal
            .append(&JournalEntry {
                index: 2,
                record: record(2),
            })
            .unwrap();
        drop(journal);
        let replayed = replay(&path, &header()).unwrap();
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.records[&0], record(0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_middle_line_is_a_structured_error() {
        let path = temp_path("corrupt");
        let mut journal = Journal::create(&path, &header()).unwrap();
        journal
            .append(&JournalEntry {
                index: 0,
                record: record(0),
            })
            .unwrap();
        drop(journal);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{garbage}\n");
        text.push_str(
            &(serde_json::to_string(&JournalEntry {
                index: 1,
                record: record(1),
            })
            .unwrap()
                + "\n"),
        );
        std::fs::write(&path, &text).unwrap();
        let err = replay(&path, &header()).unwrap_err();
        assert!(matches!(err, ServeError::Journal { .. }), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_sweep_journal_is_refused() {
        let path = temp_path("wrongspec");
        let journal = Journal::create(&path, &header()).unwrap();
        drop(journal);
        let mut other = header();
        other.spec_fingerprint ^= 1;
        let err = replay(&path, &other).unwrap_err();
        assert!(matches!(err, ServeError::Journal { .. }), "{err:?}");
        let mut other = header();
        other.points = 9;
        let err = replay(&path, &other).unwrap_err();
        assert!(matches!(err, ServeError::Journal { .. }), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_index_is_refused() {
        let path = temp_path("range");
        let mut journal = Journal::create(&path, &header()).unwrap();
        journal
            .append(&JournalEntry {
                index: 8,
                record: record(8),
            })
            .unwrap();
        drop(journal);
        let err = replay(&path, &header()).unwrap_err();
        assert!(matches!(err, ServeError::Journal { .. }), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_entries_replay_idempotently() {
        let path = temp_path("dup");
        let mut journal = Journal::create(&path, &header()).unwrap();
        for _ in 0..3 {
            journal
                .append(&JournalEntry {
                    index: 2,
                    record: record(2),
                })
                .unwrap();
        }
        drop(journal);
        let replayed = replay(&path, &header()).unwrap();
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.records[&2], record(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_is_text_sensitive() {
        assert_ne!(
            spec_fingerprint("{\"a\":1}"),
            spec_fingerprint("{\"a\": 1}")
        );
        assert_eq!(spec_fingerprint("x"), spec_fingerprint("x"));
    }
}
