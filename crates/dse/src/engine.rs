//! The exploration engine: deterministic fan-out of sweep points over
//! the core worker pool, with per-point artifact caching and an
//! optional guided (successive-halving) search mode.

use crate::cache::{self, EvictionStats};
use crate::report::{PointMetrics, PointRecord, SweepReport};
use crate::spec::{HalvingSpec, ReloadSetting, SearchStrategy, SweepPoint, SweepSpec};
use crate::{resolve_model, ExploreError};
use pimcomp_arch::PipelineMode;
use pimcomp_core::{
    graph_fingerprint, hardware_fingerprint, options_fingerprint, run_indexed, CompileObserver,
    CompileOptions, CompileSession, CompiledArtifact, CompiledModel, GaParams, NullObserver,
};
use pimcomp_ir::Graph;
use pimcomp_sim::Simulator;
use std::collections::BTreeMap;
use std::fmt;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The result of one sweep: the deterministic report plus the run's
/// cache statistics and budget accounting.
///
/// Cache statistics live *outside* [`SweepReport`] on purpose: whether
/// a point was compiled or replayed from a cached artifact changes
/// wall-clock time only, never the report bytes, so two runs of the
/// same spec — cold or warm, 1 thread or 16 — emit identical reports.
/// The [`BudgetSummary`] is deterministic (it counts evaluations, not
/// wall-clock) but stays outside the report as well so the report shape
/// depends only on per-point outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreOutcome {
    /// The versioned sweep report.
    pub report: SweepReport,
    /// Points replayed from the artifact cache.
    pub cache_hits: usize,
    /// Points compiled from scratch this run.
    pub cache_misses: usize,
    /// Evaluation accounting: what the search strategy spent versus
    /// what an exhaustive sweep would have.
    pub budget: BudgetSummary,
    /// Cache-eviction accounting when a size limit is configured
    /// ([`ExploreEngine::with_cache_limit_mb`]); `None` otherwise.
    /// Like the hit/miss counters this never affects the report bytes.
    pub eviction: Option<EvictionStats>,
}

/// What one search rung evaluated and dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct RungSummary {
    /// GA generation budget of this rung.
    pub budget: usize,
    /// Points evaluated at this rung.
    pub evaluated: usize,
    /// Points that failed to compile or simulate at this rung (they do
    /// not advance).
    pub failed: usize,
    /// Points dropped by dominance pruning after this rung.
    pub pruned: usize,
    /// Points dropped by the keep-fraction cut after this rung.
    pub halved: usize,
}

/// Deterministic evaluation accounting for a sweep: how many GA
/// generations the strategy spent and how many full-budget evaluations
/// it performed, against the exhaustive baseline on the same spec.
/// Printed by `pimcomp explore --budget-summary`.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetSummary {
    /// The strategy that produced this sweep (`exhaustive` /
    /// `halving`).
    pub strategy: String,
    /// Points in the expanded sweep.
    pub points: usize,
    /// Per-rung accounting, in rung order.
    pub rungs: Vec<RungSummary>,
    /// Points that compiled at the first rung. Compile failures depend
    /// only on (model, hardware) — never on the GA budget — so this is
    /// exactly the number of full-budget GA runs an exhaustive sweep of
    /// the same spec performs, and the baseline
    /// [`BudgetSummary::full_budget_evaluations_saved`] measures
    /// against.
    pub compilable_points: usize,
    /// Points whose GA actually ran at the full budget (the final
    /// rung); compile failures never run their GA and are not counted,
    /// keeping this consistent with [`BudgetSummary::generations_spent`].
    /// Exhaustive sweeps run every compilable point at full budget;
    /// halving runs strictly fewer whenever anything was halved or
    /// pruned.
    pub full_budget_evaluations: usize,
    /// GA generations spent across every (point, rung) evaluation.
    pub generations_spent: u64,
    /// GA generations an exhaustive sweep of the same spec spends
    /// (`compilable_points × ga.iterations` — compile failures skip
    /// their GA under every strategy).
    pub exhaustive_generations: u64,
}

impl BudgetSummary {
    /// Full-budget evaluations avoided versus the exhaustive sweep:
    /// [`BudgetSummary::compilable_points`] (what exhaustive would run
    /// at full budget) minus what this run actually ran. Zero for
    /// exhaustive sweeps by construction — compile failures are not
    /// savings.
    pub fn full_budget_evaluations_saved(&self) -> usize {
        self.compilable_points
            .saturating_sub(self.full_budget_evaluations)
    }

    /// Net GA generations saved versus the exhaustive sweep. Negative
    /// when the cheap rungs cost more than the halving recovered
    /// (e.g. `keep_fraction` 1.0 with no pruning).
    pub fn generations_saved(&self) -> i64 {
        self.exhaustive_generations as i64 - self.generations_spent as i64
    }
}

impl fmt::Display for BudgetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "search strategy: {}", self.strategy)?;
        for (i, r) in self.rungs.iter().enumerate() {
            writeln!(
                f,
                "  rung {i}: {} evaluated at budget {} ({} failed, {} pruned, {} halved)",
                r.evaluated, r.budget, r.failed, r.pruned, r.halved
            )?;
        }
        writeln!(
            f,
            "full-budget evaluations: {} of {} compilable points ({} saved vs exhaustive)",
            self.full_budget_evaluations,
            self.compilable_points,
            self.full_budget_evaluations_saved()
        )?;
        let pct = if self.exhaustive_generations > 0 {
            self.generations_saved() as f64 / self.exhaustive_generations as f64 * 100.0
        } else {
            0.0
        };
        writeln!(
            f,
            "GA generations: {} spent vs {} exhaustive ({pct:+.1}% saved)",
            self.generations_spent, self.exhaustive_generations
        )
    }
}

/// One point's per-evaluation completion event, streamed through
/// [`ExploreEngine::with_progress`] (and over the wire by the
/// distributed sweep service) as soon as the evaluation finishes.
///
/// Events fire from worker threads in completion order, so their
/// *sequence* is scheduling-dependent — only the report reduction is
/// ordered. Consumers must treat them as advisory progress, never as
/// data.
#[derive(Debug, Clone, PartialEq)]
pub struct PointEvent {
    /// The point's index in the expanded grid.
    pub index: usize,
    /// Points in the expanded grid.
    pub total: usize,
    /// The point's stable key ([`PointRecord::key`] shape).
    pub key: String,
    /// The rung this evaluation ran at (0 for exhaustive sweeps).
    pub rung: u32,
    /// The GA generation budget of this evaluation.
    pub iterations: usize,
    /// Whether the point compiled and simulated successfully.
    pub ok: bool,
    /// Whether the artifact cache answered.
    pub cache_hit: bool,
}

/// A per-point progress callback; invoked from worker threads, so it
/// must be `Send + Sync`.
pub type ProgressSink = Arc<dyn Fn(&PointEvent) + Send + Sync>;

/// The result of evaluating a single sweep point: the record plus the
/// cache/bookkeeping facts the engine's counters (and the distributed
/// coordinator's journal) are built from.
#[derive(Debug, Clone, PartialEq)]
pub struct PointOutcome {
    /// The point's report record.
    pub record: PointRecord,
    /// Whether the artifact cache answered.
    pub cache_hit: bool,
    /// Whether a compiled model was obtained at all (compile failures
    /// never ran their GA, so their budget must not be charged).
    pub compiled: bool,
    /// The cache file name (within the cache dir) this evaluation read
    /// or wrote; `None` when caching is off.
    pub cache_file: Option<String>,
}

/// A resolved sweep: the spec plus every model graph, fingerprint, and
/// expanded point — the unit of work the distributed sweep service
/// shards across workers.
///
/// [`ExploreEngine::run`] builds one of these internally; building it
/// directly exposes the engine's per-point execution so an external
/// driver (the `pimcomp-serve` coordinator/worker, a notebook, a
/// custom scheduler) can evaluate points one at a time and still
/// reduce to the byte-identical report via [`SweepPlan::reduce`].
/// Determinism carries over: a point's record depends only on the spec
/// and the point's index, never on which process evaluated it.
pub struct SweepPlan {
    spec: SweepSpec,
    graphs: Vec<Graph>,
    graph_fps: Vec<u64>,
    graph_idx: Vec<usize>,
    points: Vec<SweepPoint>,
}

impl SweepPlan {
    /// Resolves a spec into an executable plan: models are loaded,
    /// auto hardware is sized, and the point grid is expanded — all
    /// exactly once, in spec order.
    ///
    /// # Errors
    ///
    /// Same as [`ExploreEngine::run`]'s resolution phase:
    /// [`ExploreError::InvalidSpec`], [`ExploreError::UnknownModel`],
    /// [`ExploreError::Io`] / [`ExploreError::Onnx`].
    pub fn new(spec: &SweepSpec) -> Result<Self, ExploreError> {
        // Resolve every model once, up front: an unknown name or an
        // unreadable .onnx file is a spec bug and should abort before
        // any compilation starts. The resolved graphs also feed auto
        // hardware sizing and the per-model cache fingerprint, so an
        // .onnx file is read exactly once per sweep — its content
        // cannot drift between sizing and evaluation.
        let graphs: Vec<Graph> = spec
            .models
            .iter()
            .map(|name| resolve_model(name))
            .collect::<Result<_, _>>()?;
        let graph_fps: Vec<u64> = graphs.iter().map(graph_fingerprint).collect();

        let points = spec.points_for(&graphs)?;
        // Pre-resolve each point's graph index so workers never index
        // blindly; a point naming a model outside the spec cannot come
        // out of `points()`, but surface a structured error rather than
        // panicking if that invariant ever breaks.
        let graph_idx: Vec<usize> = points
            .iter()
            .map(|pt| {
                spec.models
                    .iter()
                    .position(|m| m == &pt.model)
                    .ok_or_else(|| ExploreError::InvalidSpec {
                        detail: format!(
                            "point `{}` references a model absent from the spec",
                            pt.key()
                        ),
                    })
            })
            .collect::<Result<_, _>>()?;

        Ok(SweepPlan {
            spec: spec.clone(),
            graphs,
            graph_fps,
            graph_idx,
            points,
        })
    }

    /// The spec this plan was resolved from.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// The expanded point grid, in canonical spec-expansion order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Points in the plan.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan has no points (specs reject empty expansions,
    /// so this is false for any plan built by [`SweepPlan::new`]).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Evaluates one point at an explicit GA generation budget,
    /// optionally replaying from / writing to the artifact cache.
    ///
    /// The returned record carries `rung: 0, budget: 0, pruned_at:
    /// None`; multi-rung drivers stamp provenance themselves (that is
    /// what [`ExploreEngine`] does). Per-point compile/simulate
    /// failures are recorded in the record, not raised.
    ///
    /// # Errors
    ///
    /// [`ExploreError::InvalidSpec`] when `index` is out of range.
    pub fn evaluate(
        &self,
        index: usize,
        iterations: usize,
        cache_dir: Option<&Path>,
    ) -> Result<PointOutcome, ExploreError> {
        self.evaluate_observed(index, iterations, cache_dir, &mut NullObserver)
    }

    /// [`SweepPlan::evaluate`] with compile-stage progress callbacks
    /// (cache hits replay without compiling, so a hit observes
    /// nothing).
    ///
    /// # Errors
    ///
    /// Same as [`SweepPlan::evaluate`].
    pub fn evaluate_observed(
        &self,
        index: usize,
        iterations: usize,
        cache_dir: Option<&Path>,
        observer: &mut dyn CompileObserver,
    ) -> Result<PointOutcome, ExploreError> {
        let point = self
            .points
            .get(index)
            .ok_or_else(|| ExploreError::InvalidSpec {
                detail: format!(
                    "point index {index} out of range for a {}-point sweep",
                    self.points.len()
                ),
            })?;
        Ok(evaluate_point(
            point,
            &self.graphs[self.graph_idx[index]],
            self.graph_fps[self.graph_idx[index]],
            &self.spec,
            iterations,
            cache_dir,
            observer,
        ))
    }

    /// Evaluates one point exactly as a single-process **exhaustive**
    /// sweep would: full GA budget, provenance stamped (`rung` 0,
    /// `budget` charged only when the point compiled). Distributed
    /// workers call this, which is what makes a sharded exhaustive
    /// sweep reduce to the byte-identical report.
    ///
    /// # Errors
    ///
    /// Same as [`SweepPlan::evaluate`].
    pub fn evaluate_final(
        &self,
        index: usize,
        cache_dir: Option<&Path>,
    ) -> Result<PointOutcome, ExploreError> {
        self.evaluate_final_observed(index, cache_dir, &mut NullObserver)
    }

    /// [`SweepPlan::evaluate_final`] with compile-stage progress
    /// callbacks.
    ///
    /// # Errors
    ///
    /// Same as [`SweepPlan::evaluate`].
    pub fn evaluate_final_observed(
        &self,
        index: usize,
        cache_dir: Option<&Path>,
        observer: &mut dyn CompileObserver,
    ) -> Result<PointOutcome, ExploreError> {
        let iterations = self.spec.ga_iterations;
        let mut outcome = self.evaluate_observed(index, iterations, cache_dir, observer)?;
        outcome.record.rung = 0;
        outcome.record.budget = if outcome.compiled {
            iterations as u64
        } else {
            0
        };
        outcome.record.pruned_at = None;
        Ok(outcome)
    }

    /// Reduces per-point records — e.g. replayed from a coordinator's
    /// journal — to the sweep report, in canonical point order. Given
    /// the records an exhaustive [`ExploreEngine::run`] would produce,
    /// the report is byte-identical to the engine's, regardless of who
    /// evaluated which point.
    ///
    /// # Errors
    ///
    /// [`ExploreError::InvalidSpec`] when the record count does not
    /// match the plan or a record's key does not match its point — a
    /// journal/spec mismatch, not a recoverable state.
    pub fn reduce(&self, records: Vec<PointRecord>) -> Result<SweepReport, ExploreError> {
        if records.len() != self.points.len() {
            return Err(ExploreError::InvalidSpec {
                detail: format!(
                    "cannot reduce {} records over a {}-point plan",
                    records.len(),
                    self.points.len()
                ),
            });
        }
        for (record, point) in records.iter().zip(&self.points) {
            if record.key() != point.key() {
                return Err(ExploreError::InvalidSpec {
                    detail: format!(
                        "record key `{}` does not match plan point `{}` — \
                         journal and spec disagree",
                        record.key(),
                        point.key()
                    ),
                });
            }
        }
        Ok(SweepReport::assemble(self.spec.master_seed, records))
    }
}

/// Runs sweep specs: compile + simulate every point under the spec's
/// search strategy, reduce to a Pareto frontier.
///
/// See the [crate docs](crate) for the determinism contract and an
/// end-to-end example.
#[derive(Clone, Default)]
pub struct ExploreEngine {
    threads: usize,
    cache_dir: Option<PathBuf>,
    cache_max_bytes: Option<u64>,
    progress: Option<ProgressSink>,
}

impl fmt::Debug for ExploreEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExploreEngine")
            .field("threads", &self.threads)
            .field("cache_dir", &self.cache_dir)
            .field("cache_max_bytes", &self.cache_max_bytes)
            .field("progress", &self.progress.as_ref().map(|_| "<sink>"))
            .finish()
    }
}

impl ExploreEngine {
    /// An engine with one worker thread and no cache.
    pub fn new() -> Self {
        ExploreEngine {
            threads: 1,
            cache_dir: None,
            cache_max_bytes: None,
            progress: None,
        }
    }

    /// Sets the worker-thread count (clamped to at least 1). Any value
    /// produces a bit-identical report.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables per-point artifact caching under `dir` (created on
    /// demand). Re-running the same or a widened sweep replays cached
    /// points instead of recompiling them; under successive halving,
    /// every (point, rung budget) pair gets its own entry, so a guided
    /// rerun — or the final full-budget rung of a sweep whose
    /// exhaustive twin already ran — replays from cache too.
    ///
    /// Entries are keyed by graph + hardware + options fingerprints and
    /// the artifact format version, which guards against spec changes,
    /// edited `.onnx` model files, and serialization drift — **not**
    /// against compiler-behavior changes that keep the artifact shape.
    /// After upgrading the compiler, clear the directory so warm reruns
    /// cannot mix old and new results.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Bounds the cache directory to `max_mb` megabytes: after each
    /// run the least-recently-used entries beyond the budget are
    /// evicted ([`crate::cache::enforce_cache_limit`]). No effect
    /// without [`ExploreEngine::with_cache_dir`]. Eviction changes
    /// wall-clock time on later runs only, never report bytes.
    #[must_use]
    pub fn with_cache_limit_mb(mut self, max_mb: u64) -> Self {
        self.cache_max_bytes = Some(max_mb.saturating_mul(1024 * 1024));
        self
    }

    /// Streams one [`PointEvent`] per (point, rung) evaluation to
    /// `sink`, from worker threads, as evaluations complete. Progress
    /// is advisory: the sink sees completion order, the report keeps
    /// canonical order.
    #[must_use]
    pub fn with_progress(mut self, sink: ProgressSink) -> Self {
        self.progress = Some(sink);
        self
    }

    /// Runs a sweep: expands the spec, evaluates points under the
    /// spec's search strategy (compile → simulate, cache-aware), and
    /// assembles the report.
    ///
    /// Exhaustive sweeps evaluate every point once at the full GA
    /// budget. Successive halving evaluates every point at the first
    /// rung's cheap budget, drops dominated and low-ranked points per
    /// (model, mode) group between rungs, and re-evaluates survivors at
    /// each next budget; only final-rung survivors carry full-budget
    /// metrics and compete for the Pareto frontier. Either way the
    /// report is byte-identical for any thread count and cache state.
    ///
    /// Per-point compile/simulation failures are recorded in the
    /// report, not raised — a 500-point sweep survives one bad point.
    ///
    /// # Errors
    ///
    /// * [`ExploreError::InvalidSpec`] when the spec expands to no or
    ///   too many points, or auto hardware sizing fails,
    /// * [`ExploreError::UnknownModel`] naming the available models,
    /// * [`ExploreError::Io`] / [`ExploreError::Onnx`] when an `.onnx`
    ///   sweep model cannot be read or imported,
    /// * [`ExploreError::Io`] when the cache directory cannot be
    ///   created.
    pub fn run(&self, spec: &SweepSpec) -> Result<ExploreOutcome, ExploreError> {
        let plan = SweepPlan::new(spec)?;

        if let Some(dir) = &self.cache_dir {
            std::fs::create_dir_all(dir).map_err(|e| ExploreError::Io {
                detail: format!("creating cache dir {}: {e}", dir.display()),
            })?;
        }

        let default_halving = HalvingSpec {
            rungs: vec![spec.ga_iterations],
            keep_fraction: 1.0,
            prune_margin: 0.0,
        };
        let halving = match &spec.search {
            SearchStrategy::Exhaustive => &default_halving,
            SearchStrategy::Halving(h) => h,
        };
        let mut touched = Vec::new();
        let mut outcome = self.run_rungs(&plan, halving, &mut touched)?;

        // Size-bounded store maintenance runs after the sweep, with
        // this run's working set stamped most-recent, so the files a
        // warm rerun needs are the last to go.
        if let (Some(dir), Some(max_bytes)) = (&self.cache_dir, self.cache_max_bytes) {
            touched.sort_unstable();
            touched.dedup();
            outcome.eviction = Some(cache::enforce_cache_limit(dir, max_bytes, &touched)?);
        }
        Ok(outcome)
    }

    /// The multi-round core: evaluates `points` over the rung ladder,
    /// halving between rungs. An exhaustive sweep is the degenerate
    /// one-rung ladder at full budget with `keep_fraction` 1.0.
    fn run_rungs(
        &self,
        plan: &SweepPlan,
        halving: &HalvingSpec,
        touched: &mut Vec<String>,
    ) -> Result<ExploreOutcome, ExploreError> {
        let spec = &plan.spec;
        let points = &plan.points;
        let n = points.len();
        let mut latest: Vec<Option<PointRecord>> = (0..n).map(|_| None).collect();
        let mut rung_of = vec![0u32; n];
        let mut budget_of = vec![0u64; n];
        let mut pruned_at: Vec<Option<u32>> = vec![None; n];
        let mut active: Vec<usize> = (0..n).collect();

        let mut cache_hits = 0;
        let mut cache_misses = 0;
        let mut rungs = Vec::with_capacity(halving.rungs.len());
        let mut generations_spent = 0u64;
        let mut compilable_points = 0;
        let mut full_budget_evaluations = 0;

        for (r, &iters) in halving.rungs.iter().enumerate() {
            if active.is_empty() {
                break;
            }
            let evaluated = run_indexed(self.threads.min(active.len()), active.len(), |i| {
                let idx = active[i];
                let outcome = evaluate_point(
                    &points[idx],
                    &plan.graphs[plan.graph_idx[idx]],
                    plan.graph_fps[plan.graph_idx[idx]],
                    spec,
                    iters,
                    self.cache_dir.as_deref(),
                    &mut NullObserver,
                );
                if let Some(sink) = &self.progress {
                    sink(&PointEvent {
                        index: idx,
                        total: n,
                        key: points[idx].key(),
                        rung: r as u32,
                        iterations: iters,
                        ok: outcome.record.ok,
                        cache_hit: outcome.cache_hit,
                    });
                }
                outcome
            });

            // Index-ordered reduction: store results and tally in the
            // active list's (ascending) order, independent of threads.
            let mut failed = 0;
            let mut ga_runs = 0;
            for (i, outcome) in evaluated.into_iter().enumerate() {
                let PointOutcome {
                    record,
                    cache_hit: hit,
                    compiled,
                    cache_file,
                } = outcome;
                let idx = active[i];
                if let Some(name) = cache_file {
                    touched.push(name);
                }
                if hit {
                    cache_hits += 1;
                } else {
                    cache_misses += 1;
                }
                if !record.ok {
                    failed += 1;
                }
                rung_of[idx] = r as u32;
                // GA generations are only charged when a model was
                // obtained: a point that fails to compile never ran its
                // GA, so neither its provenance row nor the summary may
                // claim the rung's budget. (Cache replays still charge —
                // the ledger is deterministic across cache states.)
                if compiled {
                    budget_of[idx] += iters as u64;
                    generations_spent += iters as u64;
                    ga_runs += 1;
                    // Rung 0 sees every point, and compilability does
                    // not depend on the GA budget, so this is also the
                    // exhaustive baseline's full-budget run count.
                    if r == 0 {
                        compilable_points += 1;
                    }
                }
                latest[idx] = Some(record);
            }

            if r + 1 == halving.rungs.len() {
                full_budget_evaluations = ga_runs;
                rungs.push(RungSummary {
                    budget: iters,
                    evaluated: active.len(),
                    failed,
                    pruned: 0,
                    halved: 0,
                });
                break;
            }

            let before = active.len();
            let (survivors, pruned) =
                select_survivors(&latest, &active, halving, r as u32, &mut pruned_at);
            rungs.push(RungSummary {
                budget: iters,
                evaluated: before,
                failed,
                pruned,
                halved: before - failed - pruned - survivors.len(),
            });
            active = survivors;
        }

        let records: Vec<PointRecord> = latest
            .into_iter()
            .enumerate()
            .map(|(idx, record)| {
                // Every point is evaluated at rung 0 (the active set
                // starts full), so this fallback is unreachable; keep a
                // structured record rather than an unwrap regardless.
                let mut record = record.unwrap_or_else(|| PointRecord {
                    model: points[idx].model.clone(),
                    mode: points[idx].mode.to_string(),
                    hardware: points[idx].hw_label.clone(),
                    policy: crate::policy_spec_name(points[idx].policy).to_string(),
                    batch: points[idx].batch as u64,
                    seed: points[idx].seed,
                    weight_reload: points[idx].reload.label(),
                    seq_len: points[idx].seq.map(|s| s as u64),
                    quantization: points[idx].quant.map(u64::from),
                    rung: 0,
                    budget: 0,
                    pruned_at: None,
                    ok: false,
                    error: Some("internal: point was never evaluated".to_string()),
                    metrics: None,
                    pareto: false,
                });
                record.rung = rung_of[idx];
                record.budget = budget_of[idx];
                record.pruned_at = pruned_at[idx];
                record
            })
            .collect();

        Ok(ExploreOutcome {
            report: SweepReport::assemble(spec.master_seed, records),
            cache_hits,
            cache_misses,
            budget: BudgetSummary {
                strategy: spec.search.name().to_string(),
                points: n,
                rungs,
                compilable_points,
                full_budget_evaluations,
                generations_spent,
                exhaustive_generations: compilable_points as u64 * spec.ga_iterations as u64,
            },
            eviction: None,
        })
    }
}

/// Applies the between-rung filters to the active set: per
/// (model, mode) group, failed points are dropped, margin-dominated
/// points are pruned (recorded in `pruned_at`), and the best
/// `keep_fraction` of the rest — ranked by Pareto rank, then crowding
/// distance, then index — survives to the next rung. Returns the
/// ascending survivor list and the pruned count. Fully deterministic:
/// everything runs over the index-ordered reduction state.
///
/// Any rung failure drops the point, including simulation failures —
/// which, unlike compile failures, depend on the rung's chromosome and
/// could in principle clear up at a larger budget. Treating a
/// cheap-budget failure as refutation is the standard
/// successive-halving trade (a configuration that breaks at any budget
/// is a poor bet for more budget); like a halved point, such a point
/// keeps its failure record with rung provenance, and the possibility
/// of losing it from the frontier is part of the guided-search
/// trade-off the frontier-subset quality gates bound on the committed
/// fixtures.
fn select_survivors(
    latest: &[Option<PointRecord>],
    active: &[usize],
    halving: &HalvingSpec,
    rung: u32,
    pruned_at: &mut [Option<u32>],
) -> (Vec<usize>, usize) {
    let mut groups: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for &idx in active {
        let Some(record) = &latest[idx] else { continue };
        if record.ok && record.metrics.is_some() {
            groups
                .entry((record.model.as_str(), record.mode.as_str()))
                .or_default()
                .push(idx);
        }
    }
    let metrics_of = |idx: usize| -> Option<&PointMetrics> {
        latest[idx].as_ref().and_then(|r| r.metrics.as_ref())
    };

    let mut survivors = Vec::new();
    let mut pruned_total = 0;
    for members in groups.values() {
        // One objective vector per member, computed once — the pairwise
        // pruning scan below must not rebuild them per probe.
        let member_objectives: Vec<[f64; 4]> = members
            .iter()
            .map(|&i| {
                metrics_of(i)
                    .map(|m| m.objectives())
                    .unwrap_or([f64::INFINITY; 4])
            })
            .collect();
        // Dominance pruning: drop points decisively dominated inside
        // their group at this rung's (cheap) budget.
        let mut candidates = Vec::with_capacity(members.len());
        let mut candidate_objectives = Vec::with_capacity(members.len());
        for (k, &i) in members.iter().enumerate() {
            let dominated = (0..members.len()).any(|j| {
                j != k
                    && crate::report::margin_dominates(
                        &member_objectives[j],
                        &member_objectives[k],
                        halving.prune_margin,
                    )
            });
            if dominated {
                pruned_at[i] = Some(rung);
                pruned_total += 1;
            } else {
                candidates.push(i);
                candidate_objectives.push(member_objectives[k]);
            }
        }
        if candidates.is_empty() {
            continue;
        }
        // Successive halving: keep the top fraction by Pareto rank +
        // crowding, at least one point per group.
        let keep = ((candidates.len() as f64 * halving.keep_fraction).ceil() as usize)
            .clamp(1, candidates.len());
        let order = rank_and_crowding_order(&candidate_objectives);
        survivors.extend(order.into_iter().take(keep).map(|pos| candidates[pos]));
    }
    survivors.sort_unstable();
    (survivors, pruned_total)
}

/// NSGA-II-style ordering of objective vectors: positions sorted by
/// non-dominated rank (ascending), then crowding distance (descending),
/// then position — so a keep-fraction cut retains frontier coverage
/// instead of clustering on one objective. Deterministic: all ties
/// break on position.
fn rank_and_crowding_order(objectives: &[[f64; 4]]) -> Vec<usize> {
    let n = objectives.len();
    // Plain Pareto dominance is margin dominance at zero slack; one
    // predicate, one objective-encoding convention.
    let dominates = |a: &[f64; 4], b: &[f64; 4]| crate::report::margin_dominates(a, b, 0.0);

    // Fast non-dominated sort: one O(g²) pass records who dominates
    // whom, then peeling runs on domination counts — a near-totally-
    // ordered 10k-point group must not degenerate into an O(g³) scan
    // (that is the blow-up class the grouped `pareto_frontier` fix
    // removed from the report side).
    let mut dominator_count = vec![0usize; n];
    let mut dominated: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in i + 1..n {
            if dominates(&objectives[i], &objectives[j]) {
                dominated[i].push(j);
                dominator_count[j] += 1;
            } else if dominates(&objectives[j], &objectives[i]) {
                dominated[j].push(i);
                dominator_count[i] += 1;
            }
        }
    }
    let mut rank = vec![usize::MAX; n];
    let mut current = 0;
    let mut front: Vec<usize> = (0..n).filter(|&i| dominator_count[i] == 0).collect();
    while !front.is_empty() {
        let mut next = Vec::new();
        for &i in &front {
            rank[i] = current;
        }
        for &i in &front {
            for &j in &dominated[i] {
                dominator_count[j] -= 1;
                if dominator_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        next.sort_unstable();
        front = next;
        current += 1;
    }

    // Crowding distance within each rank.
    let mut crowding = vec![0.0f64; n];
    for level in 0..current {
        let members: Vec<usize> = (0..n).filter(|&i| rank[i] == level).collect();
        if members.len() <= 2 {
            for &i in &members {
                crowding[i] = f64::INFINITY;
            }
            continue;
        }
        // `dim` addresses one objective across *several* vectors, so an
        // iterator over `objectives` cannot replace the index here.
        #[allow(clippy::needless_range_loop)]
        for dim in 0..4 {
            let mut by_dim = members.clone();
            by_dim.sort_by(|&a, &b| {
                objectives[a][dim]
                    .total_cmp(&objectives[b][dim])
                    .then(a.cmp(&b))
            });
            let lo = objectives[by_dim[0]][dim];
            let hi = objectives[by_dim[by_dim.len() - 1]][dim];
            crowding[by_dim[0]] = f64::INFINITY;
            crowding[by_dim[by_dim.len() - 1]] = f64::INFINITY;
            if hi > lo && hi.is_finite() && lo.is_finite() {
                for w in 1..by_dim.len() - 1 {
                    crowding[by_dim[w]] += (objectives[by_dim[w + 1]][dim]
                        - objectives[by_dim[w - 1]][dim])
                        / (hi - lo);
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        rank[a]
            .cmp(&rank[b])
            .then(crowding[b].total_cmp(&crowding[a]))
            .then(a.cmp(&b))
    });
    order
}

/// Compile options for one point at the given GA generation budget (GA
/// runs serially inside a point; the sweep parallelizes across points
/// instead). Budgeted runs keep the point's seed-stream discipline —
/// see [`CompileOptions::with_ga_budget`].
fn point_options(point: &SweepPoint, spec: &SweepSpec, iterations: usize) -> CompileOptions {
    let ga = GaParams {
        population: spec.ga_population,
        iterations: spec.ga_iterations,
        seed: point.seed,
        parallelism: Some(NonZeroUsize::MIN),
        ..GaParams::default()
    };
    // Point expansion already collapsed the batch axis for LL points
    // (batch 1), so the options always pass CompileOptions::validate.
    debug_assert!(point.mode == PipelineMode::HighThroughput || point.batch == 1);
    let mut opts = CompileOptions::new(point.mode)
        .with_ga(ga)
        .with_policy(point.policy)
        .with_batch(point.batch)
        // The rung budget overrides the spec's full budget through the
        // same public API any budgeted driver would use.
        .with_ga_budget(iterations);
    if let ReloadSetting::On(budget) = point.reload {
        opts = opts.with_weight_reload(budget);
    }
    if let Some(seq) = point.seq {
        opts = opts.with_seq_len(seq);
    }
    opts
}

/// The cache file for a point: keyed by graph fingerprint, hardware
/// fingerprint, options fingerprint (GA seed, iteration budget, memory
/// policy, and HT batch included; thread count excluded), a sanitized
/// model tag, and the artifact format version. Distinct rung budgets,
/// policies, and batches therefore key distinct entries. The version
/// component rejects entries whose *serialized shape* predates this
/// build; it cannot detect compiler-behavior changes that keep the
/// shape — clear the cache directory after upgrading the compiler (see
/// [`ExploreEngine::with_cache_dir`]).
fn cache_path(dir: &Path, point: &SweepPoint, opts: &CompileOptions, graph_fp: u64) -> PathBuf {
    // Model names may be .onnx paths; keep a short human-readable tag
    // in the filename (the fingerprints disambiguate collisions).
    let tag: String = point
        .model
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .take(48)
        .collect();
    let key = format!(
        "v{}-{}-{:016x}-{:016x}-{:016x}",
        CompiledArtifact::FORMAT_VERSION,
        tag,
        graph_fp,
        hardware_fingerprint(&point.hw),
        options_fingerprint(opts),
    );
    dir.join(format!("{key}.pimc.json"))
}

/// Evaluates one point at one rung budget. Returns the record plus the
/// cache/compile bookkeeping ([`PointOutcome`]); compile failures never
/// ran the GA, so their rung budget must not be charged. Stage
/// callbacks reach `observer` only when the point actually compiles —
/// cache hits replay silently.
fn evaluate_point(
    point: &SweepPoint,
    graph: &Graph,
    graph_fp: u64,
    spec: &SweepSpec,
    iterations: usize,
    cache_dir: Option<&Path>,
    observer: &mut dyn CompileObserver,
) -> PointOutcome {
    let opts = point_options(point, spec, iterations);
    let record = |ok, error, metrics| PointRecord {
        model: point.model.clone(),
        mode: point.mode.to_string(),
        hardware: point.hw_label.clone(),
        policy: crate::policy_spec_name(point.policy).to_string(),
        batch: point.batch as u64,
        seed: point.seed,
        weight_reload: point.reload.label(),
        seq_len: point.seq.map(|s| s as u64),
        quantization: point.quant.map(u64::from),
        rung: 0,
        budget: 0,
        pruned_at: None,
        ok,
        error,
        metrics,
        pareto: false,
    };

    // Cache probe: a valid artifact for this exact (hardware, options,
    // model) key replays instead of recompiling. Any load or
    // fingerprint problem — including a corrupt or truncated cache
    // file, which `CompiledArtifact::load` reports as a structured
    // error, never a panic — silently falls back to compilation.
    let path = cache_dir.map(|dir| cache_path(dir, point, &opts, graph_fp));
    let cache_file = path
        .as_ref()
        .and_then(|p| p.file_name())
        .map(|name| name.to_string_lossy().into_owned());
    let cached: Option<CompiledModel> = path.as_ref().and_then(|p| {
        let artifact = CompiledArtifact::load(p).ok()?;
        artifact.verify_hardware(&point.hw).ok()?;
        Some(artifact.into_model_unchecked())
    });
    let hit = cached.is_some();
    let outcome = |record, compiled| PointOutcome {
        record,
        cache_hit: hit,
        compiled,
        cache_file: cache_file.clone(),
    };

    let model = match cached {
        Some(model) => model,
        None => {
            let compiled = CompileSession::new(point.hw.clone(), graph, opts)
                .and_then(|session| session.run_observed(observer));
            match compiled {
                Ok(model) => {
                    if let Some(p) = &path {
                        // Best-effort: a failed cache write costs a
                        // recompile next run, never a wrong result.
                        let _ = CompiledArtifact::new(model.clone()).save(p);
                    }
                    model
                }
                Err(e) => {
                    return outcome(record(false, Some(format!("compile: {e}")), None), false)
                }
            }
        }
    };

    let sim = Simulator::new(point.hw.clone());
    let sim_result = sim.run(&model);
    match sim_result {
        Ok(r) => {
            // Functional verification, when the quantization axis asks
            // for it: run the compiled mapping through the executor and
            // record accuracy metrics. `0` is the unquantized check,
            // anything else the ADC bit-width. Exec errors fail the
            // point like compile/simulate errors do.
            let (output_rmse, top1_match) = match point.quant {
                None => (None, None),
                Some(bits) => {
                    let quant = if bits == 0 {
                        None
                    } else {
                        match pimcomp_arch::QuantConfig::for_hardware(&point.hw, bits) {
                            Ok(q) => Some(q),
                            Err(e) => {
                                return outcome(
                                    record(false, Some(format!("verify: {e}")), None),
                                    true,
                                )
                            }
                        }
                    };
                    match pimcomp_exec::verify_model(&model, point.seed, quant) {
                        Ok(v) => (Some(v.output_rmse), Some(v.top1_match)),
                        Err(e) => {
                            return outcome(record(false, Some(format!("verify: {e}")), None), true)
                        }
                    }
                }
            };
            let metrics = PointMetrics {
                cycles: r.total_cycles,
                throughput_inf_per_s: r.throughput_inf_per_s,
                latency_us: r.latency_us,
                energy_uj: r.energy.total_pj() / 1e6,
                dynamic_uj: r.energy.dynamic_pj() / 1e6,
                leakage_uj: r.energy.leakage_pj / 1e6,
                crossbar_utilization: model.report.crossbars_used as f64
                    / point.hw.total_crossbars() as f64,
                core_utilization: r.active_cores as f64 / point.hw.total_cores() as f64,
                avg_local_kb: r.memory.avg_local_bytes / 1024.0,
                global_traffic_kb: r.memory.global_traffic_bytes as f64 / 1024.0,
                active_cores: r.active_cores,
                crossbars_used: model.report.crossbars_used,
                reload_stall_cycles: r.reload_stall_cycles,
                output_rmse,
                top1_match,
            };
            outcome(record(true, None, Some(metrics)), true)
        }
        Err(e) => outcome(record(false, Some(format!("simulate: {e}")), None), true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(json_hw: &str) -> SweepSpec {
        SweepSpec::from_json(&format!(
            r#"{{"models":["tiny_mlp","tiny_cnn"],"modes":["ht","ll"],
                 "hardware":{json_hw},
                 "ga":{{"population":4,"iterations":2}},"master_seed":5}}"#
        ))
        .unwrap()
    }

    fn halving_spec(keep: f64, margin: f64) -> SweepSpec {
        SweepSpec::from_json(&format!(
            r#"{{"models":["tiny_mlp","tiny_cnn"],"modes":["ht"],
                 "hardware":{{"base":"small_test","parallelism":[2,4,8]}},
                 "ga":{{"population":4,"iterations":4}},"master_seed":5,
                 "search":{{"strategy":"halving","rungs":[1,4],
                            "keep_fraction":{keep},"prune_margin":{margin}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let spec = tiny_spec(r#"{"base":"small_test","parallelism":[4,8]}"#);
        let serial = ExploreEngine::new().run(&spec).unwrap();
        let parallel = ExploreEngine::new().with_threads(4).run(&spec).unwrap();
        assert_eq!(serial.report, parallel.report);
        assert_eq!(
            serial.report.to_json().unwrap(),
            parallel.report.to_json().unwrap()
        );
        assert_eq!(serial.report.points.len(), 8);
        assert_eq!(serial.report.failures(), 0);
        assert!(!serial.report.frontier.is_empty());
        // Exhaustive budget accounting: everything at full budget.
        assert_eq!(serial.budget.strategy, "exhaustive");
        assert_eq!(serial.budget.full_budget_evaluations, 8);
        assert_eq!(serial.budget.full_budget_evaluations_saved(), 0);
        assert_eq!(serial.budget.generations_spent, 8 * 2);
        assert_eq!(serial.budget.generations_saved(), 0);
        assert!(serial
            .report
            .points
            .iter()
            .all(|p| p.rung == 0 && p.budget == 2 && p.pruned_at.is_none()));
    }

    #[test]
    fn quantization_axis_carries_accuracy_metrics_thread_invariantly() {
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"modes":["ht"],
                 "hardware":{"base":"small_test"},
                 "ga":{"population":4,"iterations":2},"master_seed":5,
                 "quantization":[0,6,32]}"#,
        )
        .unwrap();
        let serial = ExploreEngine::new().run(&spec).unwrap();
        let parallel = ExploreEngine::new().with_threads(4).run(&spec).unwrap();
        assert_eq!(
            serial.report.to_json().unwrap(),
            parallel.report.to_json().unwrap()
        );
        assert_eq!(serial.report.points.len(), 3);
        assert_eq!(serial.report.failures(), 0);
        let metric = |i: usize| serial.report.points[i].metrics.as_ref().unwrap();
        // q0: unquantized functional check — layout agrees tightly.
        assert_eq!(serial.report.points[0].quantization, Some(0));
        assert!(metric(0).output_rmse.unwrap() <= 1e-4);
        assert_eq!(metric(0).top1_match, Some(true));
        // q6: full ADC model — an error is reported, never NaN.
        assert_eq!(serial.report.points[1].quantization, Some(6));
        assert!(metric(1).output_rmse.unwrap().is_finite());
        // q32: ideal converter — only weight quantization remains, so
        // the error is no larger than the 6-bit point's.
        assert_eq!(serial.report.points[2].quantization, Some(32));
        assert!(metric(2).output_rmse.unwrap() <= metric(1).output_rmse.unwrap());
        // The axis tags keys and the CSV carries the new columns.
        assert!(serial.report.points[1].key().ends_with("/q6"));
        let csv = serial.report.to_csv();
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .contains("output_rmse,top1_match"));
    }

    #[test]
    fn halving_saves_full_budget_evaluations_and_is_thread_invariant() {
        let spec = halving_spec(0.5, 0.0);
        let serial = ExploreEngine::new().run(&spec).unwrap();
        let parallel = ExploreEngine::new().with_threads(4).run(&spec).unwrap();
        assert_eq!(
            serial.report.to_json().unwrap(),
            parallel.report.to_json().unwrap()
        );
        assert_eq!(serial.budget, parallel.budget);
        // 6 points in 2 (model, mode) groups of 3: rung 0 evaluates all
        // 6 cheaply, the final rung strictly fewer.
        assert_eq!(serial.budget.strategy, "halving");
        assert_eq!(serial.budget.points, 6);
        assert_eq!(serial.budget.rungs.len(), 2);
        assert_eq!(serial.budget.rungs[0].evaluated, 6);
        assert!(serial.budget.full_budget_evaluations < 6);
        assert!(serial.budget.full_budget_evaluations >= 2);
        assert!(serial.budget.full_budget_evaluations_saved() > 0);
        // Provenance: survivors reached rung 1 with budget 1 + 4;
        // dropped points stopped at rung 0 with budget 1.
        for p in &serial.report.points {
            if p.rung == 1 {
                assert_eq!(p.budget, 5);
                assert_eq!(p.pruned_at, None);
            } else {
                assert_eq!(p.budget, 1);
            }
        }
        // Frontier members are always final-rung survivors.
        for p in serial.report.frontier_records() {
            assert_eq!(p.rung, 1);
        }
    }

    #[test]
    fn aggressive_pruning_records_pruned_at() {
        // Margin 0.0 prunes every dominated point at the cheap rung;
        // with keep_fraction 1.0 the only drops are prunes, so any
        // saved evaluation must carry a pruned_at marker.
        let spec = halving_spec(1.0, 0.0);
        let outcome = ExploreEngine::new().with_threads(2).run(&spec).unwrap();
        let pruned: Vec<_> = outcome
            .report
            .points
            .iter()
            .filter(|p| p.pruned_at.is_some())
            .collect();
        let halved: usize = outcome.budget.rungs.iter().map(|r| r.halved).sum();
        assert_eq!(halved, 0, "keep_fraction 1.0 must not halve anything");
        assert_eq!(
            pruned.len(),
            outcome.budget.compilable_points - outcome.budget.full_budget_evaluations
        );
        for p in pruned {
            assert_eq!(p.pruned_at, Some(0));
            assert_eq!(p.rung, 0);
            assert!(!p.pareto);
        }
    }

    #[test]
    fn halving_replays_from_cache_byte_identically() {
        let dir =
            std::env::temp_dir().join(format!("pimcomp-dse-halving-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = halving_spec(0.5, 0.25);
        let engine = ExploreEngine::new().with_cache_dir(&dir);
        let cold = engine.run(&spec).unwrap();
        assert_eq!(cold.cache_hits, 0);
        let warm = engine.with_threads(3).run(&spec).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        // Every (point, rung) evaluation replays on the warm run.
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.cache_hits, cold.cache_misses);
        assert_eq!(
            cold.report.to_json().unwrap(),
            warm.report.to_json().unwrap()
        );
        assert_eq!(cold.budget, warm.budget);
    }

    #[test]
    fn halving_final_rung_frontier_is_a_subset_of_exhaustive() {
        // keep 0.5 on groups of 3 keeps 2: the cut is real, so the
        // subset property is actually exercised.
        let guided = halving_spec(0.5, 0.25);
        let mut exhaustive = guided.clone();
        exhaustive.search = SearchStrategy::Exhaustive;
        let g = ExploreEngine::new().with_threads(2).run(&guided).unwrap();
        let e = ExploreEngine::new()
            .with_threads(2)
            .run(&exhaustive)
            .unwrap();
        let exhaustive_frontier: Vec<String> =
            e.report.frontier_records().map(|p| p.key()).collect();
        for p in g.report.frontier_records() {
            assert!(
                exhaustive_frontier.contains(&p.key()),
                "halving frontier point {} is not on the exhaustive frontier {:?}",
                p.key(),
                exhaustive_frontier
            );
        }
    }

    #[test]
    fn rank_and_crowding_prefers_low_rank_then_spread() {
        // Two fronts: {0, 1, 2} (incomparable) and {3} (dominated).
        let objectives = vec![
            [1.0, 9.0, 0.0, 0.0],
            [5.0, 5.0, 0.0, 0.0],
            [9.0, 1.0, 0.0, 0.0],
            [10.0, 10.0, 0.0, 0.0],
        ];
        let order = rank_and_crowding_order(&objectives);
        // Boundary points of the first front outrank the crowded
        // middle; the dominated point comes last.
        assert_eq!(order[3], 3);
        assert!(order[..2].contains(&0));
        assert!(order[..2].contains(&2));
        assert_eq!(order[2], 1);
    }

    #[test]
    fn infeasible_points_fail_without_aborting_the_sweep() {
        // One crossbar per core on one core: tiny_cnn cannot fit, but
        // the feasible half of the sweep still completes.
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"modes":["ht"],
                "hardware":{"base":"small_test",
                             "cores_per_chip":[1,16],"crossbars_per_core":[1,16]},
                "ga":{"population":4,"iterations":2}}"#,
        )
        .unwrap();
        let outcome = ExploreEngine::new().with_threads(2).run(&spec).unwrap();
        assert_eq!(outcome.report.points.len(), 4);
        let failures = outcome.report.failures();
        assert!(failures > 0, "expected at least one infeasible point");
        assert!(failures < 4, "expected at least one feasible point");
        for p in &outcome.report.points {
            if !p.ok {
                assert!(p.error.as_deref().unwrap().starts_with("compile:"));
                assert_eq!(p.budget, 0, "compile failures never ran the GA");
            } else {
                assert_eq!(p.budget, 2);
            }
        }
        // Compile failures are not "savings": an exhaustive sweep with
        // failing points still reports zero saved.
        assert_eq!(outcome.budget.compilable_points, 4 - failures);
        assert_eq!(outcome.budget.full_budget_evaluations, 4 - failures);
        assert_eq!(outcome.budget.full_budget_evaluations_saved(), 0);
        assert_eq!(
            outcome.budget.generations_spent,
            outcome.budget.exhaustive_generations
        );
    }

    #[test]
    fn cache_replays_points_with_an_identical_report() {
        let dir =
            std::env::temp_dir().join(format!("pimcomp-dse-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_spec(r#"{"base":"small_test","parallelism":[4,8]}"#);
        let engine = ExploreEngine::new().with_cache_dir(&dir);
        let cold = engine.run(&spec).unwrap();
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.cache_misses, 8);
        let warm = engine.with_threads(3).run(&spec).unwrap();
        assert_eq!(warm.cache_hits, 8);
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(
            cold.report.to_json().unwrap(),
            warm.report.to_json().unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn progress_sink_sees_every_point_in_canonical_order_metadata() {
        let spec = tiny_spec(r#"{"base":"small_test","parallelism":[4,8]}"#);
        let events: Arc<std::sync::Mutex<Vec<PointEvent>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let outcome = ExploreEngine::new()
            .with_threads(2)
            .with_progress(Arc::new(move |e: &PointEvent| {
                sink.lock().unwrap().push(e.clone());
            }))
            .run(&spec)
            .unwrap();
        let mut events = events.lock().unwrap().clone();
        events.sort_by_key(|e| e.index);
        assert_eq!(events.len(), 8);
        let plan = SweepPlan::new(&spec).unwrap();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.index, i);
            assert_eq!(e.total, 8);
            assert_eq!(e.key, plan.points()[i].key());
            assert_eq!(e.rung, 0);
            assert!(e.ok);
            assert!(!e.cache_hit);
        }
        // The sink is observation only: the report matches a silent run.
        let silent = ExploreEngine::new().with_threads(2).run(&spec).unwrap();
        assert_eq!(
            outcome.report.to_json().unwrap(),
            silent.report.to_json().unwrap()
        );
    }

    #[test]
    fn cache_limit_evicts_but_never_changes_bytes() {
        let dir =
            std::env::temp_dir().join(format!("pimcomp-dse-limit-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_spec(r#"{"base":"small_test","parallelism":[4,8]}"#);
        let unbounded = ExploreEngine::new().with_cache_dir(&dir);
        let cold = unbounded.run(&spec).unwrap();
        assert_eq!(cold.eviction, None, "no limit, no eviction pass");

        // Eight tiny artifacts fit in a megabyte, so drive the bound
        // down to the byte level (the builder's MB granularity is for
        // real stores) — the post-run sweep must now evict.
        let mut bounded = unbounded.clone().with_cache_limit_mb(1);
        bounded.cache_max_bytes = Some(1024);
        let warm = bounded.run(&spec).unwrap();
        let stats = warm.eviction.expect("bounded run reports eviction");
        assert!(stats.evicted_files > 0, "{stats:?}");
        assert!(stats.kept_bytes <= 1024, "{stats:?}");
        assert_eq!(
            cold.report.to_json().unwrap(),
            warm.report.to_json().unwrap()
        );

        // Evicted artifacts just recompile: bytes still identical.
        let after = bounded.run(&spec).unwrap();
        assert!(after.cache_misses > 0, "eviction forces recompiles");
        assert_eq!(
            cold.report.to_json().unwrap(),
            after.report.to_json().unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cache_index_is_a_structured_error_not_a_panic() {
        let dir =
            std::env::temp_dir().join(format!("pimcomp-dse-corrupt-idx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(cache::CACHE_INDEX_FILE), "{not json").unwrap();
        let spec = tiny_spec(r#"{"base":"small_test","parallelism":[4]}"#);
        let err = ExploreEngine::new()
            .with_cache_dir(&dir)
            .with_cache_limit_mb(1)
            .run(&spec)
            .unwrap_err();
        match err {
            ExploreError::Serialization { detail } => {
                assert!(detail.contains("cache index"), "{detail}");
            }
            other => panic!("expected Serialization, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn widened_sweep_compiles_only_new_points() {
        let dir =
            std::env::temp_dir().join(format!("pimcomp-dse-widen-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let narrow = tiny_spec(r#"{"base":"small_test","parallelism":[4]}"#);
        let wide = tiny_spec(r#"{"base":"small_test","parallelism":[4,8]}"#);
        let engine = ExploreEngine::new().with_cache_dir(&dir);
        engine.run(&narrow).unwrap();
        let widened = engine.run(&wide).unwrap();
        assert_eq!(widened.cache_hits, 4);
        assert_eq!(widened.cache_misses, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_model_lists_alternatives() {
        // Zoo typos are now rejected at parse time; the engine keeps
        // the same structured error for hand-built specs that bypass
        // `from_json`.
        let mut spec =
            SweepSpec::from_json(r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"}}"#)
                .unwrap();
        spec.models = vec!["alexnet".to_string()];
        let err = ExploreEngine::new().run(&spec).unwrap_err();
        match err {
            ExploreError::UnknownModel { name, available } => {
                assert_eq!(name, "alexnet");
                assert!(available.iter().any(|m| m == "vgg16"));
                assert!(available.iter().any(|m| m == "tiny_cnn"));
            }
            other => panic!("expected UnknownModel, got {other:?}"),
        }
    }

    #[test]
    fn policy_and_batch_axes_are_thread_invariant_and_distinct() {
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"modes":["ht","ll"],
                "hardware":{"base":"small_test"},
                "memory_policies":["naive","ag"],"ht_batches":[1,2],
                "ga":{"population":4,"iterations":2},"master_seed":5}"#,
        )
        .unwrap();
        let serial = ExploreEngine::new().run(&spec).unwrap();
        let parallel = ExploreEngine::new().with_threads(4).run(&spec).unwrap();
        assert_eq!(
            serial.report.to_json().unwrap(),
            parallel.report.to_json().unwrap()
        );
        // HT: 2 policies x 2 batches; LL collapses the batch axis.
        assert_eq!(serial.report.points.len(), 4 + 2);
        assert_eq!(serial.report.failures(), 0);
        // The knobs land in the records and the key.
        let p = &serial.report.points[0];
        assert_eq!((p.policy.as_str(), p.batch), ("naive", 1));
        assert!(p.key().contains("/naive/b1/"), "{}", p.key());
        // The naive and AG policies must actually produce different
        // memory behavior somewhere in the sweep (the axis is live).
        let traffic: Vec<f64> = serial
            .report
            .points
            .iter()
            .filter_map(|p| p.metrics.as_ref().map(|m| m.avg_local_kb))
            .collect();
        assert!(
            traffic.iter().any(|&t| (t - traffic[0]).abs() > 1e-9),
            "policy/batch axes produced identical memory metrics: {traffic:?}"
        );
    }

    #[test]
    fn weight_reload_sweeps_are_thread_and_cache_invariant() {
        let dir =
            std::env::temp_dir().join(format!("pimcomp-dse-reload-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Two constrained budgets plus the unconstrained baseline of
        // the same point: the reload axis must be live (stall cycles
        // appear under the budgets) and byte-identical across thread
        // counts and cache states.
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_cnn"],"modes":["ht"],
                "hardware":{"base":"small_test"},"seeds":[1],
                "ga":{"population":4,"iterations":2},
                "weight_reload":{"budgets":[32,64],"include_off":true}}"#,
        )
        .unwrap();
        let engine = ExploreEngine::new().with_cache_dir(&dir);
        let cold = engine.run(&spec).unwrap();
        assert_eq!(cold.cache_hits, 0);
        let warm = engine.with_threads(4).run(&spec).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(warm.cache_misses, 0, "budgets must key distinct entries");
        assert_eq!(
            cold.report.to_json().unwrap(),
            warm.report.to_json().unwrap()
        );
        let serial = ExploreEngine::new().run(&spec).unwrap();
        assert_eq!(
            cold.report.to_json().unwrap(),
            serial.report.to_json().unwrap()
        );

        assert_eq!(cold.report.points.len(), 3);
        assert_eq!(cold.report.failures(), 0);
        let by_reload = |label: &str| {
            cold.report
                .points
                .iter()
                .find(|p| p.weight_reload == label)
                .unwrap_or_else(|| panic!("no point with weight_reload `{label}`"))
        };
        let off = by_reload("off");
        assert!(!off.key().contains("reload"), "{}", off.key());
        assert_eq!(off.metrics.as_ref().unwrap().reload_stall_cycles, 0);
        for label in ["32", "64"] {
            let p = by_reload(label);
            assert!(
                p.key().ends_with(&format!("/reload-{label}")),
                "{}",
                p.key()
            );
            let m = p.metrics.as_ref().unwrap();
            assert!(
                m.reload_stall_cycles > 0,
                "budget {label} should force reload stalls"
            );
            assert!(
                m.cycles > off.metrics.as_ref().unwrap().cycles,
                "constrained budget {label} must cost cycles over unconstrained"
            );
        }
        // Tighter budgets rewrite at least as much.
        assert!(
            by_reload("32")
                .metrics
                .as_ref()
                .unwrap()
                .reload_stall_cycles
                >= by_reload("64")
                    .metrics
                    .as_ref()
                    .unwrap()
                    .reload_stall_cycles
        );
    }

    #[test]
    fn auto_hardware_sweeps_compile_and_replay_from_cache() {
        let dir =
            std::env::temp_dir().join(format!("pimcomp-dse-auto-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp","tiny_cnn"],
                "hardware":{"auto":true,"base":"small_test","parallelism":[2,4]},
                "ga":{"population":4,"iterations":2}}"#,
        )
        .unwrap();
        let engine = ExploreEngine::new().with_cache_dir(&dir);
        let cold = engine.run(&spec).unwrap();
        assert_eq!(cold.cache_misses, 4);
        assert_eq!(cold.report.failures(), 0);
        for p in &cold.report.points {
            assert!(
                p.hardware.starts_with("auto-small_test+chips"),
                "{}",
                p.hardware
            );
        }
        let warm = engine.with_threads(3).run(&spec).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(warm.cache_hits, 4);
        assert_eq!(
            cold.report.to_json().unwrap(),
            warm.report.to_json().unwrap()
        );
    }
}
