//! The exploration engine: deterministic fan-out of sweep points over
//! the core worker pool, with per-point artifact caching.

use crate::report::{PointMetrics, PointRecord, SweepReport};
use crate::spec::{SweepPoint, SweepSpec};
use crate::{resolve_model, ExploreError};
use pimcomp_arch::PipelineMode;
use pimcomp_core::{
    hardware_fingerprint, options_fingerprint, run_indexed, CompileOptions, CompileSession,
    CompiledArtifact, CompiledModel, GaParams,
};
use pimcomp_ir::Graph;
use pimcomp_sim::Simulator;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};

/// The result of one sweep: the deterministic report plus the run's
/// cache statistics.
///
/// Cache statistics live *outside* [`SweepReport`] on purpose: whether
/// a point was compiled or replayed from a cached artifact changes
/// wall-clock time only, never the report bytes, so two runs of the
/// same spec — cold or warm, 1 thread or 16 — emit identical reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreOutcome {
    /// The versioned sweep report.
    pub report: SweepReport,
    /// Points replayed from the artifact cache.
    pub cache_hits: usize,
    /// Points compiled from scratch this run.
    pub cache_misses: usize,
}

/// Runs sweep specs: compile + simulate every point, reduce to a
/// Pareto frontier.
///
/// See the [crate docs](crate) for the determinism contract and an
/// end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct ExploreEngine {
    threads: usize,
    cache_dir: Option<PathBuf>,
}

impl ExploreEngine {
    /// An engine with one worker thread and no cache.
    pub fn new() -> Self {
        ExploreEngine {
            threads: 1,
            cache_dir: None,
        }
    }

    /// Sets the worker-thread count (clamped to at least 1). Any value
    /// produces a bit-identical report.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables per-point artifact caching under `dir` (created on
    /// demand). Re-running the same or a widened sweep replays cached
    /// points instead of recompiling them.
    ///
    /// Entries are keyed by hardware + options fingerprints and the
    /// artifact format version, which guards against spec changes and
    /// serialization drift — **not** against compiler-behavior changes
    /// that keep the artifact shape. After upgrading the compiler,
    /// clear the directory so warm reruns cannot mix old and new
    /// results.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Runs a sweep: expands the spec, evaluates every point
    /// (compile → simulate, cache-aware), and assembles the report.
    ///
    /// Per-point compile/simulation failures are recorded in the
    /// report, not raised — a 500-point sweep survives one bad point.
    ///
    /// # Errors
    ///
    /// * [`ExploreError::InvalidSpec`] when the spec expands to no or
    ///   too many points,
    /// * [`ExploreError::UnknownModel`] naming the available models,
    /// * [`ExploreError::Io`] when the cache directory cannot be
    ///   created.
    pub fn run(&self, spec: &SweepSpec) -> Result<ExploreOutcome, ExploreError> {
        // Resolve every model once, up front: an unknown name is a spec
        // bug and should abort before any compilation starts.
        let graphs: Vec<Graph> = spec
            .models
            .iter()
            .map(|name| resolve_model(name))
            .collect::<Result<_, _>>()?;
        let graph_of = |model: &str| -> &Graph {
            let idx = spec
                .models
                .iter()
                .position(|m| m == model)
                .expect("points reference spec models");
            &graphs[idx]
        };

        let points = spec.points()?;
        if let Some(dir) = &self.cache_dir {
            std::fs::create_dir_all(dir).map_err(|e| ExploreError::Io {
                detail: format!("creating cache dir {}: {e}", dir.display()),
            })?;
        }

        let evaluated = run_indexed(self.threads.min(points.len()), points.len(), |i| {
            evaluate_point(
                &points[i],
                graph_of(&points[i].model),
                spec,
                self.cache_dir.as_deref(),
            )
        });

        let cache_hits = evaluated.iter().filter(|(_, hit)| *hit).count();
        let cache_misses = evaluated.len() - cache_hits;
        let records = evaluated.into_iter().map(|(r, _)| r).collect();
        Ok(ExploreOutcome {
            report: SweepReport::assemble(spec.master_seed, records),
            cache_hits,
            cache_misses,
        })
    }
}

/// Compile options for one point (GA runs serially inside a point; the
/// sweep parallelizes across points instead).
fn point_options(point: &SweepPoint, spec: &SweepSpec) -> CompileOptions {
    let ga = GaParams {
        population: spec.ga_population,
        iterations: spec.ga_iterations,
        seed: point.seed,
        parallelism: Some(NonZeroUsize::MIN),
        ..GaParams::default()
    };
    let batch = match point.mode {
        PipelineMode::HighThroughput => spec.batch,
        PipelineMode::LowLatency => 1,
    };
    CompileOptions::new(point.mode)
        .with_ga(ga)
        .with_policy(spec.policy)
        .with_batch(batch)
}

/// The cache file for a point: keyed by hardware fingerprint, options
/// fingerprint (GA seed included, thread count excluded), model name,
/// and the artifact format version. The version component rejects
/// entries whose *serialized shape* predates this build; it cannot
/// detect compiler-behavior changes that keep the shape — clear the
/// cache directory after upgrading the compiler (see
/// [`ExploreEngine::with_cache_dir`]).
fn cache_path(dir: &Path, point: &SweepPoint, opts: &CompileOptions) -> PathBuf {
    let key = format!(
        "v{}-{}-{:016x}-{:016x}",
        CompiledArtifact::FORMAT_VERSION,
        point.model,
        hardware_fingerprint(&point.hw),
        options_fingerprint(opts),
    );
    dir.join(format!("{key}.pimc.json"))
}

fn evaluate_point(
    point: &SweepPoint,
    graph: &Graph,
    spec: &SweepSpec,
    cache_dir: Option<&Path>,
) -> (PointRecord, bool) {
    let opts = point_options(point, spec);
    let record = |ok, error, metrics| PointRecord {
        model: point.model.clone(),
        mode: point.mode.to_string(),
        hardware: point.hw_label.clone(),
        seed: point.seed,
        ok,
        error,
        metrics,
        pareto: false,
    };

    // Cache probe: a valid artifact for this exact (hardware, options,
    // model) key replays instead of recompiling. Any load or
    // fingerprint problem silently falls back to compilation.
    let path = cache_dir.map(|dir| cache_path(dir, point, &opts));
    let cached: Option<CompiledModel> = path.as_ref().and_then(|p| {
        let artifact = CompiledArtifact::load(p).ok()?;
        artifact.verify_hardware(&point.hw).ok()?;
        Some(artifact.into_model_unchecked())
    });
    let hit = cached.is_some();

    let model = match cached {
        Some(model) => model,
        None => {
            let compiled = CompileSession::new(point.hw.clone(), graph, opts)
                .and_then(|session| session.run());
            match compiled {
                Ok(model) => {
                    if let Some(p) = &path {
                        // Best-effort: a failed cache write costs a
                        // recompile next run, never a wrong result.
                        let _ = CompiledArtifact::new(model.clone()).save(p);
                    }
                    model
                }
                Err(e) => return (record(false, Some(format!("compile: {e}")), None), hit),
            }
        }
    };

    let sim = Simulator::new(point.hw.clone());
    match sim.run(&model) {
        Ok(r) => {
            let metrics = PointMetrics {
                cycles: r.total_cycles,
                throughput_inf_per_s: r.throughput_inf_per_s,
                latency_us: r.latency_us,
                energy_uj: r.energy.total_pj() / 1e6,
                dynamic_uj: r.energy.dynamic_pj() / 1e6,
                leakage_uj: r.energy.leakage_pj / 1e6,
                crossbar_utilization: model.report.crossbars_used as f64
                    / point.hw.total_crossbars() as f64,
                core_utilization: r.active_cores as f64 / point.hw.total_cores() as f64,
                avg_local_kb: r.memory.avg_local_bytes / 1024.0,
                global_traffic_kb: r.memory.global_traffic_bytes as f64 / 1024.0,
                active_cores: r.active_cores,
                crossbars_used: model.report.crossbars_used,
            };
            (record(true, None, Some(metrics)), hit)
        }
        Err(e) => (record(false, Some(format!("simulate: {e}")), None), hit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(json_hw: &str) -> SweepSpec {
        SweepSpec::from_json(&format!(
            r#"{{"models":["tiny_mlp","tiny_cnn"],"modes":["ht","ll"],
                 "hardware":{json_hw},
                 "ga":{{"population":4,"iterations":2}},"master_seed":5}}"#
        ))
        .unwrap()
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let spec = tiny_spec(r#"{"base":"small_test","parallelism":[4,8]}"#);
        let serial = ExploreEngine::new().run(&spec).unwrap();
        let parallel = ExploreEngine::new().with_threads(4).run(&spec).unwrap();
        assert_eq!(serial.report, parallel.report);
        assert_eq!(
            serial.report.to_json().unwrap(),
            parallel.report.to_json().unwrap()
        );
        assert_eq!(serial.report.points.len(), 8);
        assert_eq!(serial.report.failures(), 0);
        assert!(!serial.report.frontier.is_empty());
    }

    #[test]
    fn infeasible_points_fail_without_aborting_the_sweep() {
        // One crossbar per core on one core: tiny_cnn cannot fit, but
        // the feasible half of the sweep still completes.
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"modes":["ht"],
                "hardware":{"base":"small_test",
                             "cores_per_chip":[1,16],"crossbars_per_core":[1,16]},
                "ga":{"population":4,"iterations":2}}"#,
        )
        .unwrap();
        let outcome = ExploreEngine::new().with_threads(2).run(&spec).unwrap();
        assert_eq!(outcome.report.points.len(), 4);
        let failures = outcome.report.failures();
        assert!(failures > 0, "expected at least one infeasible point");
        assert!(failures < 4, "expected at least one feasible point");
        for p in &outcome.report.points {
            if !p.ok {
                assert!(p.error.as_deref().unwrap().starts_with("compile:"));
            }
        }
    }

    #[test]
    fn cache_replays_points_with_an_identical_report() {
        let dir =
            std::env::temp_dir().join(format!("pimcomp-dse-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_spec(r#"{"base":"small_test","parallelism":[4,8]}"#);
        let engine = ExploreEngine::new().with_cache_dir(&dir);
        let cold = engine.run(&spec).unwrap();
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.cache_misses, 8);
        let warm = engine.with_threads(3).run(&spec).unwrap();
        assert_eq!(warm.cache_hits, 8);
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(
            cold.report.to_json().unwrap(),
            warm.report.to_json().unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn widened_sweep_compiles_only_new_points() {
        let dir =
            std::env::temp_dir().join(format!("pimcomp-dse-widen-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let narrow = tiny_spec(r#"{"base":"small_test","parallelism":[4]}"#);
        let wide = tiny_spec(r#"{"base":"small_test","parallelism":[4,8]}"#);
        let engine = ExploreEngine::new().with_cache_dir(&dir);
        engine.run(&narrow).unwrap();
        let widened = engine.run(&wide).unwrap();
        assert_eq!(widened.cache_hits, 4);
        assert_eq!(widened.cache_misses, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_model_lists_alternatives() {
        let err =
            SweepSpec::from_json(r#"{"models":["alexnet"],"hardware":{"base":"small_test"}}"#)
                .map(|spec| ExploreEngine::new().run(&spec))
                .unwrap()
                .unwrap_err();
        match err {
            ExploreError::UnknownModel { name, available } => {
                assert_eq!(name, "alexnet");
                assert!(available.iter().any(|m| m == "vgg16"));
                assert!(available.iter().any(|m| m == "tiny_cnn"));
            }
            other => panic!("expected UnknownModel, got {other:?}"),
        }
    }
}
