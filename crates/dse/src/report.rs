//! Versioned sweep reports: per-point records, the Pareto frontier,
//! JSON/CSV emission, and report-to-report diffs.

use crate::ExploreError;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// The report format this build writes (and the only one it reads).
/// Bump on any breaking change to [`SweepReport`]'s serialized shape.
///
/// v2: [`PointRecord`] gained the guided-search provenance fields
/// (`rung`, `budget`, `pruned_at`).
///
/// v3: [`PointRecord`] gained the compiler-knob axes (`policy`,
/// `batch`), which also entered the point key and the CSV columns.
///
/// v4: [`PointRecord`] gained the `weight_reload` axis (entering the
/// point key for reload-on points and the CSV columns) and
/// [`PointMetrics`] gained `reload_stall_cycles`.
///
/// v5: [`PointRecord`] gained the `seq_len` axis (entering the point
/// key for sequence-bound points and the CSV columns).
///
/// v6: [`PointRecord`] gained the `quantization` axis (entering the
/// point key for quantized points and the CSV columns) and
/// [`PointMetrics`] gained the functional-verification accuracy
/// metrics `output_rmse` / `top1_match`.
pub const SWEEP_FORMAT_VERSION: u32 = 6;

/// Deterministic metrics of one successfully compiled and simulated
/// sweep point. Everything here is a pure function of (model, mode,
/// hardware, seed) — no wall-clock quantities — which is what makes
/// reports byte-identical across thread counts and cache states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointMetrics {
    /// HT: steady-state pipeline interval; LL: single-inference
    /// latency. In cycles.
    pub cycles: u64,
    /// Steady-state throughput in inferences/second.
    pub throughput_inf_per_s: f64,
    /// Latency in microseconds.
    pub latency_us: f64,
    /// Total energy per inference in µJ.
    pub energy_uj: f64,
    /// Dynamic energy in µJ.
    pub dynamic_uj: f64,
    /// Leakage energy in µJ.
    pub leakage_uj: f64,
    /// Fraction of the accelerator's crossbars holding weights.
    pub crossbar_utilization: f64,
    /// Fraction of cores doing any work.
    pub core_utilization: f64,
    /// Mean local-memory working set in kB.
    pub avg_local_kb: f64,
    /// Global-memory traffic per inference in kB.
    pub global_traffic_kb: f64,
    /// Cores that did any work.
    pub active_cores: usize,
    /// Crossbars occupied by weights.
    pub crossbars_used: usize,
    /// Cycles the pipeline stalled rewriting crossbar weights between
    /// mapping epochs. Zero for every point that fit its budget (or
    /// compiled without `weight_reload`). Folded into `cycles`, so the
    /// objective vector needs no fifth axis.
    pub reload_stall_cycles: u64,
    /// Root-mean-square error of the mapped execution against the
    /// reference interpreter, from the functional verification a
    /// `quantization` axis requests. `None` for unverified points.
    /// Deterministic: a pure function of (graph, seed, quantization
    /// setting), like every other metric here.
    pub output_rmse: Option<f64>,
    /// Whether the mapped execution's top-1 output index matches the
    /// reference interpreter's (1-sample accuracy proxy). `None` for
    /// unverified points.
    pub top1_match: Option<bool>,
}

impl PointMetrics {
    /// The minimization objective vector of the Pareto reduction:
    /// latency (cycles), energy, negated throughput, negated crossbar
    /// utilization. Non-finite components are pushed to `+inf` so a
    /// degenerate point can never dominate a healthy one.
    pub(crate) fn objectives(&self) -> [f64; 4] {
        let clean = |v: f64| if v.is_finite() { v } else { f64::INFINITY };
        [
            clean(self.cycles as f64),
            clean(self.energy_uj),
            clean(-self.throughput_inf_per_s),
            clean(-self.crossbar_utilization),
        ]
    }

    /// `true` when `self` Pareto-dominates `other`: no objective worse,
    /// at least one strictly better.
    pub fn dominates(&self, other: &PointMetrics) -> bool {
        let a = self.objectives();
        let b = other.objectives();
        a.iter().zip(&b).all(|(x, y)| x <= y) && a.iter().zip(&b).any(|(x, y)| x < y)
    }

    /// `true` when `self` dominates `other` *decisively*: on every
    /// objective, `self` is better by at least `margin` relative to
    /// `other`'s magnitude (and [`PointMetrics::dominates`] holds).
    ///
    /// The guided-search engine prunes with this rather than plain
    /// dominance because cheap-rung metrics are noisy proxies for the
    /// full-budget result — a borderline-dominated point may still win
    /// at the full budget, but one dominated with slack rarely does.
    /// `margin = 0.0` degenerates to [`PointMetrics::dominates`].
    pub fn dominates_with_margin(&self, other: &PointMetrics, margin: f64) -> bool {
        margin_dominates(&self.objectives(), &other.objectives(), margin)
    }
}

/// [`PointMetrics::dominates_with_margin`] on pre-computed objective
/// vectors, for hot loops (the engine's per-rung pruning scan computes
/// each point's objectives once instead of per pairwise probe).
pub(crate) fn margin_dominates(a: &[f64; 4], b: &[f64; 4], margin: f64) -> bool {
    if !margin.is_finite() || margin < 0.0 {
        return false;
    }
    let dominates = a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y);
    dominates && a.iter().zip(b).all(|(x, y)| x + margin * y.abs() <= *y)
}

/// One evaluated sweep point: identity, outcome, metrics, and whether
/// it sits on its (model, mode) group's Pareto frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointRecord {
    /// Model name.
    pub model: String,
    /// Pipeline mode (`HT` / `LL`).
    pub mode: String,
    /// Hardware configuration label (from the grid expansion or the
    /// auto sizing).
    pub hardware: String,
    /// Memory-reuse policy, by spec name (`naive` / `add` / `ag`).
    pub policy: String,
    /// HT transfer batch (always 1 for LL points).
    pub batch: u64,
    /// GA seed of this point.
    pub seed: u64,
    /// Weight-reload setting of this point: `off`, `full` (reload mode
    /// at the target's full crossbar capacity), or the explicit
    /// crossbar budget.
    pub weight_reload: String,
    /// Sequence-length binding of this point (`None` = unbound, the
    /// only possibility for specs without a `seq_lens` axis).
    pub seq_len: Option<u64>,
    /// Quantization setting of this point (`None` = no functional
    /// verification, the only possibility for specs without a
    /// `quantization` axis; `0` = unquantized check; otherwise the ADC
    /// bit-width).
    pub quantization: Option<u64>,
    /// Highest search rung this point was evaluated at (0-based).
    /// Exhaustive sweeps have a single rung, so this is always 0 there;
    /// under successive halving a value below the final rung means the
    /// point was halved or pruned early and `metrics` holds its
    /// cheap-budget result.
    pub rung: u32,
    /// Total GA generations spent on this point across all rungs it was
    /// evaluated at. Points that fail before the GA runs (compile
    /// errors) are not charged their rung's budget.
    pub budget: u64,
    /// The rung after which dominance pruning dropped this point
    /// (its cheap-rung metrics were Pareto-dominated by the configured
    /// margin); `None` for points that were halved or survived.
    pub pruned_at: Option<u32>,
    /// `true` when the point compiled and simulated.
    pub ok: bool,
    /// The structured failure, when `ok` is false. A failed point never
    /// aborts the sweep.
    pub error: Option<String>,
    /// Metrics, when `ok`.
    pub metrics: Option<PointMetrics>,
    /// `true` when the point is on the Pareto frontier of its
    /// (model, mode) group.
    pub pareto: bool,
}

impl PointRecord {
    /// Stable identity (`model/mode/hardware/policy/bBATCH/seedSEED`),
    /// the key diffs join on. Reload-on points carry a trailing
    /// `/reload-BUDGET` segment, sequence-bound points a trailing
    /// `/seqN` segment, and quantized points a final `/qB` segment,
    /// matching [`SweepPoint::key`](crate::SweepPoint::key).
    pub fn key(&self) -> String {
        let mut key = format!(
            "{}/{}/{}/{}/b{}/seed{}",
            self.model, self.mode, self.hardware, self.policy, self.batch, self.seed
        );
        if self.weight_reload != "off" {
            key.push_str("/reload-");
            key.push_str(&self.weight_reload);
        }
        if let Some(seq) = self.seq_len {
            key.push_str(&format!("/seq{seq}"));
        }
        if let Some(q) = self.quantization {
            key.push_str(&format!("/q{q}"));
        }
        key
    }
}

/// A complete sweep result: every point in spec order plus the Pareto
/// frontier, versioned for persistence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Report format version ([`SWEEP_FORMAT_VERSION`]).
    pub format_version: u32,
    /// The sweep's master seed.
    pub master_seed: u64,
    /// Every point, in spec expansion order.
    pub points: Vec<PointRecord>,
    /// Indices into `points` of frontier members, ascending.
    pub frontier: Vec<usize>,
}

impl SweepReport {
    /// Assembles a report from evaluated points: computes each
    /// (model, mode) group's Pareto frontier and flags the members.
    pub fn assemble(master_seed: u64, mut points: Vec<PointRecord>) -> Self {
        let frontier = pareto_frontier(&points);
        for &i in &frontier {
            points[i].pareto = true;
        }
        SweepReport {
            format_version: SWEEP_FORMAT_VERSION,
            master_seed,
            points,
            frontier,
        }
    }

    /// The frontier's records, in index order.
    pub fn frontier_records(&self) -> impl Iterator<Item = &PointRecord> {
        self.frontier.iter().map(|&i| &self.points[i])
    }

    /// Number of failed points.
    pub fn failures(&self) -> usize {
        self.points.iter().filter(|p| !p.ok).count()
    }

    /// Serializes as pretty JSON (deterministic: field order is
    /// declaration order, floats use shortest-round-trip formatting).
    ///
    /// # Errors
    ///
    /// [`ExploreError::Serialization`] when encoding fails.
    pub fn to_json(&self) -> Result<String, ExploreError> {
        serde_json::to_string_pretty(self).map_err(|e| ExploreError::Serialization {
            detail: e.to_string(),
        })
    }

    /// Deserializes a report, checking the format version before
    /// decoding the full shape.
    ///
    /// # Errors
    ///
    /// [`ExploreError::UnsupportedVersion`] /
    /// [`ExploreError::Serialization`].
    pub fn from_json(json: &str) -> Result<Self, ExploreError> {
        let value = serde_json::parse_value(json).map_err(|e| ExploreError::Serialization {
            detail: e.to_string(),
        })?;
        let found = value
            .get("format_version")
            .and_then(|v| match v {
                Value::Int(i) => u32::try_from(*i).ok(),
                _ => None,
            })
            .ok_or_else(|| ExploreError::Serialization {
                detail: "report is missing `format_version`".to_string(),
            })?;
        if found != SWEEP_FORMAT_VERSION {
            return Err(ExploreError::UnsupportedVersion {
                found,
                supported: SWEEP_FORMAT_VERSION,
            });
        }
        Deserialize::from_value(&value).map_err(|e| ExploreError::Serialization {
            detail: e.to_string(),
        })
    }

    /// Reads a report from a JSON file.
    ///
    /// # Errors
    ///
    /// [`ExploreError::Io`] plus the [`SweepReport::from_json`] errors.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, ExploreError> {
        let json = std::fs::read_to_string(path.as_ref()).map_err(|e| ExploreError::Io {
            detail: format!("reading {}: {e}", path.as_ref().display()),
        })?;
        Self::from_json(&json)
    }

    /// Renders the report as CSV, one row per point in spec order.
    /// Deterministic like [`SweepReport::to_json`].
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "model,mode,hardware,policy,batch,seed,weight_reload,seq_len,quantization,rung,\
             budget,pruned_at,\
             ok,pareto,cycles,throughput_inf_per_s,latency_us,energy_uj,dynamic_uj,leakage_uj,\
             crossbar_utilization,core_utilization,avg_local_kb,global_traffic_kb,\
             active_cores,crossbars_used,reload_stall_cycles,output_rmse,top1_match,error\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},",
                csv_field(&p.model),
                csv_field(&p.mode),
                csv_field(&p.hardware),
                csv_field(&p.policy),
                p.batch,
                p.seed,
                csv_field(&p.weight_reload),
                p.seq_len.map(|s| s.to_string()).unwrap_or_default(),
                p.quantization.map(|q| q.to_string()).unwrap_or_default(),
                p.rung,
                p.budget,
                p.pruned_at.map(|r| r.to_string()).unwrap_or_default(),
                p.ok,
                p.pareto
            ));
            match &p.metrics {
                Some(m) => out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},",
                    m.cycles,
                    m.throughput_inf_per_s,
                    m.latency_us,
                    m.energy_uj,
                    m.dynamic_uj,
                    m.leakage_uj,
                    m.crossbar_utilization,
                    m.core_utilization,
                    m.avg_local_kb,
                    m.global_traffic_kb,
                    m.active_cores,
                    m.crossbars_used,
                    m.reload_stall_cycles,
                    m.output_rmse.map(|v| v.to_string()).unwrap_or_default(),
                    m.top1_match.map(|v| v.to_string()).unwrap_or_default()
                )),
                None => out.push_str(",,,,,,,,,,,,,,,"),
            }
            out.push_str(&csv_field(p.error.as_deref().unwrap_or("")));
            out.push('\n');
        }
        out
    }

    /// Structural diff against a newer report: which points appeared,
    /// vanished, changed metrics, changed outcome, or moved on/off the
    /// Pareto frontier. Points are joined on [`PointRecord::key`].
    pub fn diff(&self, newer: &SweepReport) -> SweepDiff {
        let index = |r: &SweepReport| -> Vec<(String, usize)> {
            r.points
                .iter()
                .enumerate()
                .map(|(i, p)| (p.key(), i))
                .collect()
        };
        let old_keys = index(self);
        let new_keys = index(newer);
        let old_map: std::collections::BTreeMap<&str, usize> =
            old_keys.iter().map(|(k, i)| (k.as_str(), *i)).collect();
        let new_map: std::collections::BTreeMap<&str, usize> =
            new_keys.iter().map(|(k, i)| (k.as_str(), *i)).collect();

        let mut diff = SweepDiff::default();
        for (key, &i) in &new_map {
            if !old_map.contains_key(key) {
                diff.added.push((*key).to_string());
                continue;
            }
            let old = &self.points[old_map[key]];
            let new = &newer.points[i];
            match (old.ok, new.ok) {
                (true, false) => diff.now_failing.push((*key).to_string()),
                (false, true) => diff.now_passing.push((*key).to_string()),
                _ => {}
            }
            if old.metrics != new.metrics && old.ok && new.ok {
                diff.changed.push(PointChange {
                    key: (*key).to_string(),
                    before: old.metrics.clone().expect("ok point has metrics"),
                    after: new.metrics.clone().expect("ok point has metrics"),
                });
            }
            match (old.pareto, new.pareto) {
                (false, true) => diff.entered_frontier.push((*key).to_string()),
                (true, false) => diff.left_frontier.push((*key).to_string()),
                _ => {}
            }
        }
        for key in old_map.keys() {
            if !new_map.contains_key(key) {
                diff.removed.push((*key).to_string());
            }
        }
        diff
    }
}

/// What changed between two evaluations of the same point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointChange {
    /// The point's key (`model/mode/hardware/seed`).
    pub key: String,
    /// Metrics in the older report.
    pub before: PointMetrics,
    /// Metrics in the newer report.
    pub after: PointMetrics,
}

/// The result of [`SweepReport::diff`]. All lists are sorted by point
/// key (the maps driving the diff are ordered), so diffs themselves are
/// deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepDiff {
    /// Points only in the newer report.
    pub added: Vec<String>,
    /// Points only in the older report.
    pub removed: Vec<String>,
    /// Points whose metrics changed (both runs succeeded).
    pub changed: Vec<PointChange>,
    /// Points that failed before and succeed now.
    pub now_passing: Vec<String>,
    /// Points that succeeded before and fail now.
    pub now_failing: Vec<String>,
    /// Points that joined the Pareto frontier.
    pub entered_frontier: Vec<String>,
    /// Points that dropped off the Pareto frontier.
    pub left_frontier: Vec<String>,
}

impl SweepDiff {
    /// `true` when the two reports are equivalent point for point.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.removed.is_empty()
            && self.changed.is_empty()
            && self.now_passing.is_empty()
            && self.now_failing.is_empty()
            && self.entered_frontier.is_empty()
            && self.left_frontier.is_empty()
    }
}

impl fmt::Display for SweepDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "reports are identical");
        }
        let list = |f: &mut fmt::Formatter<'_>, title: &str, keys: &[String]| -> fmt::Result {
            if !keys.is_empty() {
                writeln!(f, "{title} ({}):", keys.len())?;
                for k in keys {
                    writeln!(f, "  {k}")?;
                }
            }
            Ok(())
        };
        list(f, "added", &self.added)?;
        list(f, "removed", &self.removed)?;
        list(f, "now passing", &self.now_passing)?;
        list(f, "now failing", &self.now_failing)?;
        if !self.changed.is_empty() {
            writeln!(f, "changed metrics ({}):", self.changed.len())?;
            for c in &self.changed {
                let pct = |before: f64, after: f64| {
                    if before == 0.0 {
                        0.0
                    } else {
                        (after - before) / before * 100.0
                    }
                };
                writeln!(
                    f,
                    "  {}: cycles {} -> {} ({:+.1}%), energy {:.2} -> {:.2} uJ ({:+.1}%)",
                    c.key,
                    c.before.cycles,
                    c.after.cycles,
                    pct(c.before.cycles as f64, c.after.cycles as f64),
                    c.before.energy_uj,
                    c.after.energy_uj,
                    pct(c.before.energy_uj, c.after.energy_uj),
                )?;
            }
        }
        list(f, "entered Pareto frontier", &self.entered_frontier)?;
        list(f, "left Pareto frontier", &self.left_frontier)?;
        Ok(())
    }
}

/// Indices of the points on their (model, mode) group's Pareto
/// frontier, ascending. Failed points never make the frontier; points
/// are only compared within their group (comparing latency across
/// different workloads or objectives across modes is meaningless), and
/// only points evaluated at the final search rung compete — under
/// successive halving, a point halted at a cheap rung carries
/// cheap-budget metrics that must not be ranked against full-budget
/// survivors. (Exhaustive sweeps have a single rung, so every point is
/// eligible there.)
///
/// Points are grouped *before* the pairwise dominance scan, so the cost
/// is quadratic in the largest group, not in the whole report — a
/// 10k-point sweep over a handful of (model, mode) groups stays in the
/// millions of comparisons instead of ~10⁸.
pub(crate) fn pareto_frontier(points: &[PointRecord]) -> Vec<usize> {
    let final_rung = points.iter().map(|p| p.rung).max().unwrap_or(0);
    let mut groups: std::collections::BTreeMap<(&str, &str), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, p) in points.iter().enumerate() {
        if p.metrics.is_some() && p.rung == final_rung {
            groups
                .entry((p.model.as_str(), p.mode.as_str()))
                .or_default()
                .push(i);
        }
    }
    let mut frontier = Vec::new();
    for members in groups.values() {
        for &i in members {
            let Some(m) = &points[i].metrics else {
                continue;
            };
            let dominated = members
                .iter()
                .any(|&j| i != j && points[j].metrics.as_ref().is_some_and(|n| n.dominates(m)));
            if !dominated {
                frontier.push(i);
            }
        }
    }
    frontier.sort_unstable();
    frontier
}

/// Quotes a CSV field when it contains a separator, quote, or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(cycles: u64, energy: f64, util: f64) -> PointMetrics {
        PointMetrics {
            cycles,
            throughput_inf_per_s: 1e9 / cycles as f64,
            latency_us: cycles as f64 / 1e3,
            energy_uj: energy,
            dynamic_uj: energy * 0.6,
            leakage_uj: energy * 0.4,
            crossbar_utilization: util,
            core_utilization: util,
            avg_local_kb: 4.0,
            global_traffic_kb: 16.0,
            active_cores: 4,
            crossbars_used: 32,
            reload_stall_cycles: 0,
            output_rmse: None,
            top1_match: None,
        }
    }

    fn record(model: &str, mode: &str, hw: &str, m: Option<PointMetrics>) -> PointRecord {
        PointRecord {
            model: model.into(),
            mode: mode.into(),
            hardware: hw.into(),
            policy: "ag".into(),
            batch: 2,
            seed: 1,
            weight_reload: "off".into(),
            seq_len: None,
            quantization: None,
            rung: 0,
            budget: 4,
            pruned_at: None,
            ok: m.is_some(),
            error: if m.is_some() {
                None
            } else {
                Some("boom".into())
            },
            metrics: m,
            pareto: false,
        }
    }

    #[test]
    fn dominance_is_strict_and_nan_safe() {
        let a = metrics(100, 1.0, 0.5);
        let b = metrics(200, 2.0, 0.25);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a));
        let mut nan = metrics(50, 0.5, 0.9);
        nan.energy_uj = f64::NAN;
        assert!(!nan.dominates(&b));
    }

    #[test]
    fn frontier_is_per_model_mode_group_and_skips_failures() {
        let points = vec![
            record("m1", "HT", "a", Some(metrics(100, 1.0, 0.5))),
            record("m1", "HT", "b", Some(metrics(200, 2.0, 0.25))), // dominated
            record("m1", "LL", "a", Some(metrics(900, 9.0, 0.1))),  // own group
            record("m2", "HT", "a", Some(metrics(300, 3.0, 0.2))),  // own group
            record("m1", "HT", "c", None),                          // failed
        ];
        assert_eq!(pareto_frontier(&points), vec![0, 2, 3]);
    }

    #[test]
    fn margin_dominance_needs_slack_on_every_objective() {
        let a = metrics(100, 1.0, 0.5);
        let b = metrics(200, 2.0, 0.25);
        assert!(a.dominates_with_margin(&b, 0.0));
        // cycles 100 vs 200 is 50% slack, but utilization 0.5 vs 0.25
        // (objective -0.5 vs -0.25) is exactly 100% — margin 0.4 passes
        // on every axis, margin 2.0 fails the cycles axis.
        assert!(a.dominates_with_margin(&b, 0.4));
        assert!(!a.dominates_with_margin(&b, 2.0));
        // Margin-dominance implies dominance.
        assert!(!b.dominates_with_margin(&a, 0.0));
        // Degenerate margins never prune.
        assert!(!a.dominates_with_margin(&b, -1.0));
        assert!(!a.dominates_with_margin(&b, f64::NAN));
    }

    #[test]
    fn grouped_frontier_matches_the_naive_quadratic_scan() {
        // Regression for the O(n²)-over-all-points frontier: the
        // grouped implementation must select exactly the indices the
        // original one-pass quadratic reference selects.
        fn naive_frontier(points: &[PointRecord]) -> Vec<usize> {
            let mut frontier = Vec::new();
            for (i, p) in points.iter().enumerate() {
                let Some(m) = &p.metrics else { continue };
                let dominated = points.iter().enumerate().any(|(j, q)| {
                    i != j
                        && q.model == p.model
                        && q.mode == p.mode
                        && q.metrics.as_ref().is_some_and(|n| n.dominates(m))
                });
                if !dominated {
                    frontier.push(i);
                }
            }
            frontier
        }
        // A deterministic pseudo-random population over 3 models × 2
        // modes, with some failures sprinkled in.
        let mut points = Vec::new();
        let mut state = 0x9E37_79B9u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for model in ["m1", "m2", "m3"] {
            for mode in ["HT", "LL"] {
                for k in 0..40 {
                    let m = (next() % 7 != 0).then(|| {
                        metrics(
                            100 + next() % 400,
                            (next() % 50) as f64 / 10.0,
                            0.1 + (next() % 80) as f64 / 100.0,
                        )
                    });
                    points.push(record(model, mode, &format!("hw{k}"), m));
                }
            }
        }
        assert_eq!(pareto_frontier(&points), naive_frontier(&points));
    }

    #[test]
    fn frontier_only_ranks_final_rung_points() {
        // A halved point with spectacular cheap-budget metrics must not
        // outrank full-budget survivors.
        let mut cheap = record("m", "HT", "halved", Some(metrics(10, 0.1, 0.9)));
        cheap.rung = 0;
        let mut survivor = record("m", "HT", "kept", Some(metrics(200, 2.0, 0.3)));
        survivor.rung = 1;
        let points = vec![cheap, survivor];
        assert_eq!(pareto_frontier(&points), vec![1]);
    }

    #[test]
    fn incomparable_points_share_the_frontier() {
        let points = vec![
            record("m", "HT", "fast_hot", Some(metrics(100, 5.0, 0.5))),
            record("m", "HT", "slow_cool", Some(metrics(500, 1.0, 0.5))),
        ];
        assert_eq!(pareto_frontier(&points), vec![0, 1]);
    }

    #[test]
    fn report_json_round_trips_and_gates_on_version() {
        let report = SweepReport::assemble(
            7,
            vec![
                record("m", "HT", "a", Some(metrics(100, 1.0, 0.5))),
                record("m", "HT", "b", None),
            ],
        );
        assert_eq!(report.frontier, vec![0]);
        assert!(report.points[0].pareto);
        assert_eq!(report.failures(), 1);
        let json = report.to_json().unwrap();
        let back = SweepReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        let bad = json.replacen(
            &format!("\"format_version\": {SWEEP_FORMAT_VERSION}"),
            "\"format_version\": 999",
            1,
        );
        assert!(matches!(
            SweepReport::from_json(&bad),
            Err(ExploreError::UnsupportedVersion { found: 999, .. })
        ));
    }

    #[test]
    fn csv_has_one_row_per_point_and_quotes_errors() {
        let mut failed = record("m", "HT", "b", None);
        failed.error = Some("bad, \"quoted\"".into());
        let report = SweepReport::assemble(
            1,
            vec![record("m", "HT", "a", Some(metrics(100, 1.0, 0.5))), failed],
        );
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with(
            "model,mode,hardware,policy,batch,seed,weight_reload,seq_len,quantization,rung,\
             budget,pruned_at,ok,pareto"
        ));
        // policy ag, batch 2, seed 1, reload off, empty seq_len, empty
        // quantization, rung 0, budget 4, empty pruned_at, ok, pareto,
        // cycles.
        assert!(lines[1].contains("ag,2,1,off,,,0,4,,true,true,100"));
        assert!(lines[2].contains("\"bad, \"\"quoted\"\"\""));
    }

    #[test]
    fn diff_reports_all_transition_kinds() {
        let old = SweepReport::assemble(
            1,
            vec![
                record("m", "HT", "a", Some(metrics(100, 1.0, 0.5))),
                record("m", "HT", "b", Some(metrics(50, 0.5, 0.9))),
                record("m", "HT", "gone", Some(metrics(400, 4.0, 0.1))),
                record("m", "HT", "flaky", None),
            ],
        );
        let new = SweepReport::assemble(
            1,
            vec![
                record("m", "HT", "a", Some(metrics(90, 0.9, 0.5))),
                record("m", "HT", "b", None),
                record("m", "HT", "fresh", Some(metrics(10, 0.1, 0.9))),
                record("m", "HT", "flaky", Some(metrics(70, 0.7, 0.3))),
            ],
        );
        let diff = old.diff(&new);
        assert_eq!(diff.added, vec!["m/HT/fresh/ag/b2/seed1"]);
        assert_eq!(diff.removed, vec!["m/HT/gone/ag/b2/seed1"]);
        assert_eq!(diff.now_failing, vec!["m/HT/b/ag/b2/seed1"]);
        assert_eq!(diff.now_passing, vec!["m/HT/flaky/ag/b2/seed1"]);
        assert_eq!(diff.changed.len(), 1);
        assert_eq!(diff.changed[0].key, "m/HT/a/ag/b2/seed1");
        assert!(!diff.is_empty());
        let rendered = diff.to_string();
        assert!(rendered.contains("m/HT/fresh/ag/b2/seed1"));
        assert!(rendered.contains("changed metrics"));
        assert!(old.diff(&old).is_empty());
    }
}
