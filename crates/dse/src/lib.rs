//! Deterministic design-space exploration (DSE) for the PIMCOMP
//! compiler — the evaluation harness the paper's comparison tables
//! imply: sweep models × pipeline modes × hardware configurations ×
//! memory policies × HT batches × GA seeds in one declarative run, and
//! reduce the results to a Pareto frontier over latency, throughput,
//! energy, and resource utilization.
//!
//! # Pipeline
//!
//! ```text
//! SweepSpec (JSON) ──► points (models × modes × hardware
//!        │                      × policies × batches × seeds)
//!        │                       │  fan-out over the deterministic
//!        │                       ▼  worker pool (pimcomp-core)
//!        │             CompileSession → Simulator  (per point,
//!        │                       │      artifact-cached on disk)
//!        ▼                       ▼
//!   validation          SweepReport: records + Pareto frontier,
//!                       versioned JSON / CSV, diffable
//! ```
//!
//! # Sweep axes
//!
//! * **models** — zoo names, synthetic test models, or paths to
//!   `.onnx` files (imported with [`pimcomp_onnx`], so any exporter's
//!   models sweep exactly like the built-ins);
//! * **modes** — high-throughput / low-latency;
//! * **hardware** — explicit [`HardwareGrid`](pimcomp_arch::HardwareGrid)
//!   cross-products, or `"auto"` per-model sizing via the shared
//!   headroom heuristic ([`pimcomp_core::sized_chips`]) with a
//!   sweepable parallelism list ([`AutoHardware`]);
//! * **memory_policies** — the paper's reuse-policy ablation
//!   (naive / ADD-reuse / AG-reuse) as a first-class axis;
//! * **ht_batches** — the HT transfer batch (Fig. 10's protocol
//!   value); low-latency points always run batch 1, so the axis
//!   collapses for LL modes instead of duplicating points;
//! * **seeds** — explicit GA seeds or `num_seeds` split from the
//!   master seed.
//!
//! `docs/SWEEP_SPEC.md` in the repository documents every spec field,
//! default, and validation rule.
//!
//! # Determinism contract
//!
//! A sweep's result is **bit-identical for any worker-thread count**:
//!
//! * each point's GA seed is either taken from the spec's explicit
//!   `seeds` axis or split from `master_seed` with the same
//!   SplitMix64 discipline the GA uses internally
//!   ([`pimcomp_core::split_stream_seed`]), so it depends only on the
//!   point's position in the sweep, never on scheduling;
//! * points are evaluated over [`pimcomp_core::run_indexed`], which
//!   reduces results in index order;
//! * reports carry no wall-clock quantities.
//!
//! Re-running a widened sweep with a cache directory recompiles only
//! the new points: finished points are persisted as versioned
//! [`CompiledArtifact`](pimcomp_core::CompiledArtifact)s keyed by
//! (graph fingerprint, hardware fingerprint, options fingerprint —
//! memory policy and HT batch included), and cache hits are
//! re-simulated from the artifact, which round-trips bit-for-bit. The
//! graph fingerprint means an `.onnx` sweep model edited in place can
//! never replay a stale artifact.
//!
//! # Guided search
//!
//! A spec may opt into **successive halving** with a `search` section
//! ([`SearchStrategy`] / [`HalvingSpec`]): every point is first
//! evaluated at a cheap GA generation budget, then each (model, mode)
//! group is filtered — points Pareto-dominated by a configurable margin
//! are pruned, and only the best `keep_fraction` (by Pareto rank, then
//! crowding distance) re-runs at the next, larger budget — until the
//! final rung runs at the spec's full `ga.iterations`. Because the GA's
//! RNG streams are keyed by `(seed, generation, slot)`, a cheap-budget
//! run is a strict prefix of the full-budget run on the same point
//! ([`pimcomp_core::CompileOptions::with_ga_budget`]), so the rungs
//! triage the *same* trajectory they later finish. Only final-rung
//! survivors compete for the Pareto frontier; every dropped point keeps
//! its cheap-rung record in the report with provenance
//! ([`PointRecord::rung`], [`PointRecord::budget`],
//! [`PointRecord::pruned_at`]). The determinism contract is unchanged:
//! guided reports are byte-identical for any thread count and cache
//! state, and [`ExploreOutcome::budget`] accounts for the evaluations
//! saved versus the exhaustive sweep.
//!
//! # Example
//!
//! ```
//! use pimcomp_dse::{ExploreEngine, SweepSpec};
//!
//! # fn main() -> Result<(), pimcomp_dse::ExploreError> {
//! let spec = SweepSpec::from_json(
//!     r#"{
//!         "models": ["tiny_mlp"],
//!         "modes": ["ht"],
//!         "hardware": { "base": "small_test", "parallelism": [4, 8] },
//!         "memory_policies": ["naive", "ag"],
//!         "ht_batches": [2],
//!         "seeds": [1],
//!         "ga": { "population": 4, "iterations": 2 }
//!     }"#,
//! )?;
//! // 1 model x 1 mode x 2 hardware x 2 policies x 1 batch x 1 seed.
//! let outcome = ExploreEngine::new().with_threads(2).run(&spec)?;
//! assert_eq!(outcome.report.points.len(), 4);
//! assert!(!outcome.report.frontier.is_empty());
//! // Every record carries its compiler knobs and a stable key.
//! let p = &outcome.report.points[0];
//! assert_eq!(p.key(), "tiny_mlp/HT/small_test+par4/naive/b2/seed1");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod engine;
mod report;
mod spec;

pub use cache::{enforce_cache_limit, EvictionStats, CACHE_INDEX_FILE};
pub use engine::{
    BudgetSummary, ExploreEngine, ExploreOutcome, PointEvent, PointOutcome, ProgressSink,
    RungSummary, SweepPlan,
};
pub use report::{PointMetrics, PointRecord, SweepDiff, SweepReport, SWEEP_FORMAT_VERSION};
pub use spec::{
    policy_names, policy_spec_name, AutoHardware, HalvingSpec, HardwareAxis, ReloadSetting,
    SearchStrategy, SweepPoint, SweepSpec, EXAMPLE_SPEC, MAX_SWEEP_POINTS,
};

use std::fmt;

/// Errors raised by the exploration engine.
///
/// Per-point compilation or simulation failures are **not** errors:
/// a batch sweep must survive one bad point, so those are recorded in
/// the report ([`PointRecord::error`]) and the sweep continues.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExploreError {
    /// The sweep spec is malformed (unknown field, bad type, empty
    /// axis, invalid hardware value, too many points, …).
    InvalidSpec {
        /// What is wrong with the spec.
        detail: String,
    },
    /// A spec references a model name the zoo does not know (and that
    /// is not an `.onnx` path).
    UnknownModel {
        /// The unresolvable name.
        name: String,
        /// Every name that would have resolved.
        available: Vec<String>,
    },
    /// An `.onnx` sweep model failed to import.
    Onnx {
        /// The model path from the spec.
        path: String,
        /// The underlying [`pimcomp_onnx::OnnxError`].
        detail: String,
    },
    /// Filesystem I/O failed (spec file, cache directory, report).
    Io {
        /// Underlying description.
        detail: String,
    },
    /// A report could not be (de)serialized.
    Serialization {
        /// Underlying description.
        detail: String,
    },
    /// A report was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the report.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::InvalidSpec { detail } => write!(f, "invalid sweep spec: {detail}"),
            ExploreError::UnknownModel { name, available } => write!(
                f,
                "unknown model `{name}`; available models: {} \
                 (or a path ending in .onnx)",
                available.join(", ")
            ),
            ExploreError::Onnx { path, detail } => {
                write!(f, "ONNX model `{path}` failed to import: {detail}")
            }
            ExploreError::Io { detail } => write!(f, "sweep I/O failed: {detail}"),
            ExploreError::Serialization { detail } => {
                write!(f, "sweep report serialization failed: {detail}")
            }
            ExploreError::UnsupportedVersion { found, supported } => write!(
                f,
                "sweep report format version {found} is not supported \
                 (this build reads v{supported})"
            ),
        }
    }
}

impl std::error::Error for ExploreError {}

/// Every model name a sweep spec may reference by name: the zoo
/// networks plus the small synthetic test models. Paths ending in
/// `.onnx` are additionally accepted and resolved through the ONNX
/// importer.
pub fn available_models() -> Vec<String> {
    pimcomp_ir::models::ZOO
        .iter()
        .chain(pimcomp_ir::models::TEST_MODELS.iter())
        .map(|s| s.to_string())
        .collect()
}

/// Resolves a sweep model: names ending in `.onnx` are read from disk
/// and imported ([`pimcomp_onnx::import_bytes`]); anything else is
/// looked up in the zoo and the test models.
///
/// # Errors
///
/// * [`ExploreError::UnknownModel`] listing [`available_models`] for an
///   unresolvable name,
/// * [`ExploreError::Io`] when an `.onnx` path cannot be read,
/// * [`ExploreError::Onnx`] when the file is not a loadable ONNX model.
pub fn resolve_model(name: &str) -> Result<pimcomp_ir::Graph, ExploreError> {
    if name.ends_with(".onnx") {
        let bytes = std::fs::read(name).map_err(|e| ExploreError::Io {
            detail: format!("reading ONNX model `{name}`: {e}"),
        })?;
        return pimcomp_onnx::import_bytes(&bytes).map_err(|e| ExploreError::Onnx {
            path: name.to_string(),
            detail: e.to_string(),
        });
    }
    pimcomp_ir::models::test_model(name)
        .or_else(|| pimcomp_ir::models::by_name(name))
        .ok_or_else(|| ExploreError::UnknownModel {
            name: name.to_string(),
            available: available_models(),
        })
}
