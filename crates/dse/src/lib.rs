//! Deterministic design-space exploration (DSE) for the PIMCOMP
//! compiler — the evaluation harness the paper's comparison tables
//! imply: sweep models × pipeline modes × hardware configurations ×
//! GA seeds in one declarative run, and reduce the results to a Pareto
//! frontier over latency, throughput, energy, and resource utilization.
//!
//! # Pipeline
//!
//! ```text
//! SweepSpec (JSON) ──► points (models × modes × hardware × seeds)
//!        │                       │  fan-out over the deterministic
//!        │                       ▼  worker pool (pimcomp-core)
//!        │             CompileSession → Simulator  (per point,
//!        │                       │      artifact-cached on disk)
//!        ▼                       ▼
//!   validation          SweepReport: records + Pareto frontier,
//!                       versioned JSON / CSV, diffable
//! ```
//!
//! # Determinism contract
//!
//! A sweep's result is **bit-identical for any worker-thread count**:
//!
//! * each point's GA seed is either taken from the spec's explicit
//!   `seeds` axis or split from `master_seed` with the same
//!   SplitMix64 discipline the GA uses internally
//!   ([`pimcomp_core::split_stream_seed`]), so it depends only on the
//!   point's position in the sweep, never on scheduling;
//! * points are evaluated over [`pimcomp_core::run_indexed`], which
//!   reduces results in index order;
//! * reports carry no wall-clock quantities.
//!
//! Re-running a widened sweep with a cache directory recompiles only
//! the new points: finished points are persisted as versioned
//! [`CompiledArtifact`](pimcomp_core::CompiledArtifact)s keyed by
//! (hardware fingerprint, options fingerprint, model), and cache hits
//! are re-simulated from the artifact, which round-trips bit-for-bit.
//!
//! # Guided search
//!
//! A spec may opt into **successive halving** with a `search` section
//! ([`SearchStrategy`] / [`HalvingSpec`]): every point is first
//! evaluated at a cheap GA generation budget, then each (model, mode)
//! group is filtered — points Pareto-dominated by a configurable margin
//! are pruned, and only the best `keep_fraction` (by Pareto rank, then
//! crowding distance) re-runs at the next, larger budget — until the
//! final rung runs at the spec's full `ga.iterations`. Because the GA's
//! RNG streams are keyed by `(seed, generation, slot)`, a cheap-budget
//! run is a strict prefix of the full-budget run on the same point
//! ([`pimcomp_core::CompileOptions::with_ga_budget`]), so the rungs
//! triage the *same* trajectory they later finish. Only final-rung
//! survivors compete for the Pareto frontier; every dropped point keeps
//! its cheap-rung record in the report with provenance
//! ([`PointRecord::rung`], [`PointRecord::budget`],
//! [`PointRecord::pruned_at`]). The determinism contract is unchanged:
//! guided reports are byte-identical for any thread count and cache
//! state, and [`ExploreOutcome::budget`] accounts for the evaluations
//! saved versus the exhaustive sweep.
//!
//! # Example
//!
//! ```
//! use pimcomp_dse::{ExploreEngine, SweepSpec};
//!
//! # fn main() -> Result<(), pimcomp_dse::ExploreError> {
//! let spec = SweepSpec::from_json(
//!     r#"{
//!         "models": ["tiny_mlp"],
//!         "modes": ["ht"],
//!         "hardware": { "base": "small_test", "parallelism": [4, 8] },
//!         "ga": { "population": 4, "iterations": 2 }
//!     }"#,
//! )?;
//! let outcome = ExploreEngine::new().with_threads(2).run(&spec)?;
//! assert_eq!(outcome.report.points.len(), 2);
//! assert!(!outcome.report.frontier.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod report;
mod spec;

pub use engine::{BudgetSummary, ExploreEngine, ExploreOutcome, RungSummary};
pub use report::{PointMetrics, PointRecord, SweepDiff, SweepReport, SWEEP_FORMAT_VERSION};
pub use spec::{
    HalvingSpec, SearchStrategy, SweepPoint, SweepSpec, EXAMPLE_SPEC, MAX_SWEEP_POINTS,
};

use std::fmt;

/// Errors raised by the exploration engine.
///
/// Per-point compilation or simulation failures are **not** errors:
/// a batch sweep must survive one bad point, so those are recorded in
/// the report ([`PointRecord::error`]) and the sweep continues.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExploreError {
    /// The sweep spec is malformed (unknown field, bad type, empty
    /// axis, invalid hardware value, too many points, …).
    InvalidSpec {
        /// What is wrong with the spec.
        detail: String,
    },
    /// A spec references a model name the zoo does not know.
    UnknownModel {
        /// The unresolvable name.
        name: String,
        /// Every name that would have resolved.
        available: Vec<String>,
    },
    /// Filesystem I/O failed (spec file, cache directory, report).
    Io {
        /// Underlying description.
        detail: String,
    },
    /// A report could not be (de)serialized.
    Serialization {
        /// Underlying description.
        detail: String,
    },
    /// A report was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the report.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::InvalidSpec { detail } => write!(f, "invalid sweep spec: {detail}"),
            ExploreError::UnknownModel { name, available } => write!(
                f,
                "unknown model `{name}`; available models: {}",
                available.join(", ")
            ),
            ExploreError::Io { detail } => write!(f, "sweep I/O failed: {detail}"),
            ExploreError::Serialization { detail } => {
                write!(f, "sweep report serialization failed: {detail}")
            }
            ExploreError::UnsupportedVersion { found, supported } => write!(
                f,
                "sweep report format version {found} is not supported \
                 (this build reads v{supported})"
            ),
        }
    }
}

impl std::error::Error for ExploreError {}

/// Every model name a sweep spec may reference: the zoo networks plus
/// the small synthetic test models.
pub fn available_models() -> Vec<String> {
    pimcomp_ir::models::ZOO
        .iter()
        .chain(pimcomp_ir::models::TEST_MODELS.iter())
        .map(|s| s.to_string())
        .collect()
}

/// Resolves a model name against the zoo and the test models.
///
/// # Errors
///
/// [`ExploreError::UnknownModel`] listing [`available_models`].
pub fn resolve_model(name: &str) -> Result<pimcomp_ir::Graph, ExploreError> {
    pimcomp_ir::models::test_model(name)
        .or_else(|| pimcomp_ir::models::by_name(name))
        .ok_or_else(|| ExploreError::UnknownModel {
            name: name.to_string(),
            available: available_models(),
        })
}
