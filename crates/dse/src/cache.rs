//! Size-bounded maintenance for the per-point artifact cache.
//!
//! The cache directory is a content-addressed store: every entry is a
//! `*.pimc.json` artifact whose file name encodes the graph, hardware,
//! and options fingerprints ([`crate::ExploreEngine::with_cache_dir`]),
//! so distinct sweep points never collide and identical points share
//! one file — including across concurrent worker processes pointed at
//! the same directory.
//!
//! Left alone, the store grows without bound (every new model, budget,
//! or hardware point adds a file forever). [`enforce_cache_limit`]
//! bounds it with LRU eviction: a small JSON index
//! ([`CACHE_INDEX_FILE`]) records a logical last-used tick per entry —
//! a monotonic counter bumped once per sweep, deliberately not the
//! filesystem atime, which `noatime`/`relatime` mounts make useless —
//! and when the store exceeds the byte budget, the least-recently-used
//! entries are deleted first.
//!
//! Eviction is always safe: an evicted entry costs a recompile on the
//! next run, never a wrong result, and sweep reports are byte-identical
//! with or without it. Concurrent writers may race on the index; the
//! last writer wins, which only perturbs recency metadata.

use crate::ExploreError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// The recency index maintained next to the cached artifacts.
pub const CACHE_INDEX_FILE: &str = "cache_index.json";

/// Index format version; bump on any breaking change to the schema.
/// An index written by an *older* version is discarded and rebuilt
/// (it is recency metadata only), so the constant gates forward drift.
const INDEX_VERSION: u32 = 1;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct IndexEntry {
    file: String,
    last_used: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct IndexFile {
    version: u32,
    clock: u64,
    entries: Vec<IndexEntry>,
}

/// What one [`enforce_cache_limit`] pass deleted and kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvictionStats {
    /// Cache entries deleted this pass.
    pub evicted_files: usize,
    /// Bytes reclaimed by eviction.
    pub evicted_bytes: u64,
    /// Cache entries surviving the pass.
    pub kept_files: usize,
    /// Bytes still held by surviving entries.
    pub kept_bytes: u64,
}

/// Bounds the artifact cache under `dir` to `max_bytes`, evicting
/// least-recently-used entries first.
///
/// `touched` names the cache files (file names, not paths) this run
/// read or wrote; they are stamped with the new logical tick before
/// eviction ranks entries, so the working set of the current sweep is
/// evicted last. Entries on disk that the index has never seen rank
/// oldest. Ties break on file name, so a pass over the same state is
/// deterministic.
///
/// # Errors
///
/// * [`ExploreError::Serialization`] when the index file exists but is
///   not valid JSON for the current schema — the file is surfaced, not
///   silently clobbered, because corruption here may mean the directory
///   is not actually a cache; delete the file to rebuild it,
/// * [`ExploreError::Io`] when the directory cannot be scanned or the
///   index cannot be rewritten.
pub fn enforce_cache_limit(
    dir: &Path,
    max_bytes: u64,
    touched: &[String],
) -> Result<EvictionStats, ExploreError> {
    let index_path = dir.join(CACHE_INDEX_FILE);
    let mut clock = 0u64;
    let mut last_used: BTreeMap<String, u64> = BTreeMap::new();
    match std::fs::read_to_string(&index_path) {
        Ok(text) => {
            let parsed: IndexFile =
                serde_json::from_str(&text).map_err(|e| ExploreError::Serialization {
                    detail: format!(
                        "corrupt cache index {}: {e}; delete the file to rebuild it",
                        index_path.display()
                    ),
                })?;
            // An old-version index is plain recency metadata: discard
            // and rebuild rather than refusing to run.
            if parsed.version == INDEX_VERSION {
                clock = parsed.clock;
                for entry in parsed.entries {
                    last_used.insert(entry.file, entry.last_used);
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => {
            return Err(ExploreError::Io {
                detail: format!("reading cache index {}: {e}", index_path.display()),
            })
        }
    }

    clock = clock.saturating_add(1);
    for name in touched {
        last_used.insert(name.clone(), clock);
    }

    // Scan the store: only `*.pimc.json` artifacts participate; the
    // index itself and any foreign files are left alone.
    let mut sizes: BTreeMap<String, u64> = BTreeMap::new();
    let read_dir = std::fs::read_dir(dir).map_err(|e| ExploreError::Io {
        detail: format!("scanning cache dir {}: {e}", dir.display()),
    })?;
    for entry in read_dir {
        let entry = entry.map_err(|e| ExploreError::Io {
            detail: format!("scanning cache dir {}: {e}", dir.display()),
        })?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.ends_with(".pimc.json") {
            continue;
        }
        // A file deleted by a concurrent worker between the scan and
        // the stat is simply no longer part of the store.
        if let Ok(meta) = entry.metadata() {
            if meta.is_file() {
                sizes.insert(name, meta.len());
            }
        }
    }

    // Forget index rows whose files are gone; files the index has
    // never seen rank oldest (tick 0) unless touched this run.
    last_used.retain(|name, _| sizes.contains_key(name));
    for name in sizes.keys() {
        last_used.entry(name.clone()).or_insert(0);
    }

    let mut total: u64 = sizes.values().sum();
    let mut stats = EvictionStats::default();
    if total > max_bytes {
        let mut by_age: Vec<(&String, &u64)> = last_used.iter().collect();
        by_age.sort_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(b.0)));
        let victims: Vec<String> = by_age.into_iter().map(|(name, _)| name.clone()).collect();
        for name in victims {
            if total <= max_bytes {
                break;
            }
            let size = sizes.remove(&name).unwrap_or(0);
            last_used.remove(&name);
            match std::fs::remove_file(dir.join(&name)) {
                Ok(()) | Err(_) => {
                    // A remove that failed (e.g. a concurrent worker
                    // already evicted it) still leaves the file out of
                    // this pass's accounting; the next pass re-scans.
                }
            }
            total = total.saturating_sub(size);
            stats.evicted_files += 1;
            stats.evicted_bytes += size;
        }
    }
    stats.kept_files = sizes.len();
    stats.kept_bytes = total;

    let index = IndexFile {
        version: INDEX_VERSION,
        clock,
        entries: last_used
            .iter()
            .map(|(file, &tick)| IndexEntry {
                file: file.clone(),
                last_used: tick,
            })
            .collect(),
    };
    let text = serde_json::to_string_pretty(&index).map_err(|e| ExploreError::Serialization {
        detail: format!("encoding cache index: {e}"),
    })?;
    // Write-then-rename so a crash mid-write can never leave a corrupt
    // index behind (a missing index only resets recency).
    let tmp = dir.join(format!("{CACHE_INDEX_FILE}.tmp"));
    std::fs::write(&tmp, text).map_err(|e| ExploreError::Io {
        detail: format!("writing cache index {}: {e}", tmp.display()),
    })?;
    std::fs::rename(&tmp, &index_path).map_err(|e| ExploreError::Io {
        detail: format!("replacing cache index {}: {e}", index_path.display()),
    })?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pimcomp-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn put(dir: &Path, name: &str, bytes: usize) {
        std::fs::write(dir.join(name), vec![b'x'; bytes]).unwrap();
    }

    #[test]
    fn evicts_oldest_untouched_entries_first() {
        let dir = temp_dir("lru");
        put(&dir, "a.pimc.json", 100);
        put(&dir, "b.pimc.json", 100);
        put(&dir, "c.pimc.json", 100);
        // Tick 1: a + b are live; c is never touched.
        enforce_cache_limit(&dir, 1_000, &["a.pimc.json".into(), "b.pimc.json".into()]).unwrap();
        // Tick 2: only b is live; budget forces one eviction — c (never
        // used) goes first.
        let stats = enforce_cache_limit(&dir, 250, &["b.pimc.json".into()]).unwrap();
        assert_eq!(stats.evicted_files, 1);
        assert_eq!(stats.kept_files, 2);
        assert!(!dir.join("c.pimc.json").exists());
        assert!(dir.join("a.pimc.json").exists());
        // Tick 3: a tighter budget now drops a (older tick than b).
        let stats = enforce_cache_limit(&dir, 150, &[]).unwrap();
        assert_eq!(stats.evicted_files, 1);
        assert!(!dir.join("a.pimc.json").exists());
        assert!(dir.join("b.pimc.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn touched_files_survive_even_over_budget_history() {
        let dir = temp_dir("touch");
        put(&dir, "old.pimc.json", 400);
        put(&dir, "hot.pimc.json", 400);
        enforce_cache_limit(&dir, 10_000, &["old.pimc.json".into()]).unwrap();
        let stats = enforce_cache_limit(&dir, 500, &["hot.pimc.json".into()]).unwrap();
        assert_eq!(stats.evicted_files, 1);
        assert!(dir.join("hot.pimc.json").exists());
        assert!(!dir.join("old.pimc.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_index_is_a_structured_error() {
        let dir = temp_dir("corrupt");
        put(&dir, "a.pimc.json", 10);
        std::fs::write(dir.join(CACHE_INDEX_FILE), "{not json").unwrap();
        let err = enforce_cache_limit(&dir, 1_000, &[]).unwrap_err();
        match err {
            ExploreError::Serialization { detail } => {
                assert!(detail.contains("corrupt cache index"), "{detail}");
            }
            other => panic!("expected Serialization, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_files_are_never_deleted() {
        let dir = temp_dir("foreign");
        put(&dir, "a.pimc.json", 500);
        std::fs::write(dir.join("notes.txt"), "keep me").unwrap();
        let stats = enforce_cache_limit(&dir, 100, &[]).unwrap();
        assert_eq!(stats.evicted_files, 1);
        assert!(dir.join("notes.txt").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn under_budget_store_is_untouched_and_index_round_trips() {
        let dir = temp_dir("roundtrip");
        put(&dir, "a.pimc.json", 10);
        let s1 = enforce_cache_limit(&dir, 1_000, &["a.pimc.json".into()]).unwrap();
        assert_eq!(s1.evicted_files, 0);
        assert_eq!(s1.kept_bytes, 10);
        assert!(dir.join(CACHE_INDEX_FILE).exists());
        let s2 = enforce_cache_limit(&dir, 1_000, &[]).unwrap();
        assert_eq!(s2.evicted_files, 0);
        assert_eq!(s2.kept_files, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
