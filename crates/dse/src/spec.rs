//! Declarative sweep specifications: the JSON the `pimcomp explore`
//! subcommand consumes, parsed with structured errors (never panics on
//! malformed input) and expanded into a deterministic point list.
//!
//! The complete field-by-field schema reference (every default,
//! validation rule, and the exact error each malformed shape produces)
//! lives in `docs/SWEEP_SPEC.md` at the repository root.

use crate::ExploreError;
use pimcomp_arch::{preset, preset_names, HardwareConfig, HardwareGrid, PipelineMode};
use pimcomp_core::{split_stream_seed, ReusePolicy};
use pimcomp_ir::Graph;
use serde::Value;

/// Hard cap on the number of points one sweep may expand to, so a typo
/// in a grid axis fails fast instead of queueing years of compilation.
pub const MAX_SWEEP_POINTS: usize = 10_000;

/// Seed-split stage tag for the seed axis (`split_stream_seed(master,
/// SEED_STAGE, i)`); distinct from every GA-internal stage by
/// construction because the GA mixes its own master seed, not ours.
const SEED_STAGE: u64 = 0;

/// A worked sweep spec, kept in sync with README and the test suite.
///
/// Axes: 2 models × 2 modes × (2 chips × 2 parallelism = 4 hardware
/// configurations) × 1 policy × 1 HT batch × 1 seed = 16 points.
pub const EXAMPLE_SPEC: &str = r#"{
  "master_seed": 42,
  "models": ["tiny_cnn", "tiny_mlp"],
  "modes": ["ht", "ll"],
  "hardware": {
    "base": "small_test",
    "chips": [1, 2],
    "parallelism": [4, 8]
  },
  "memory_policies": ["ag"],
  "ht_batches": [2],
  "seeds": [1],
  "ga": { "population": 8, "iterations": 6 }
}"#;

/// The spec-file name of a memory-reuse policy (`naive` / `add` /
/// `ag`): the spelling `memory_policies` accepts and the one point
/// keys, reports, and CSVs carry.
pub fn policy_spec_name(policy: ReusePolicy) -> &'static str {
    match policy {
        ReusePolicy::Naive => "naive",
        ReusePolicy::AddReuse => "add",
        ReusePolicy::AgReuse => "ag",
    }
}

/// The policy names a sweep spec accepts, in [`ReusePolicy::ALL`] order.
pub fn policy_names() -> Vec<&'static str> {
    ReusePolicy::ALL
        .iter()
        .map(|&p| policy_spec_name(p))
        .collect()
}

/// How the engine walks the expanded point grid.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchStrategy {
    /// Evaluate every point once at the full GA budget (the PR 3
    /// behavior, and the default when the spec has no `search` section).
    Exhaustive,
    /// Successive halving: evaluate everything at a cheap GA budget,
    /// keep only the most promising fraction of each (model, mode)
    /// group, and re-evaluate survivors at the next budget until the
    /// final rung runs at the full budget. See [`HalvingSpec`].
    Halving(HalvingSpec),
}

impl SearchStrategy {
    /// The strategy's spec-file name (`exhaustive` / `halving`).
    pub fn name(&self) -> &'static str {
        match self {
            SearchStrategy::Exhaustive => "exhaustive",
            SearchStrategy::Halving(_) => "halving",
        }
    }
}

/// Parameters of the successive-halving strategy (PIMSYN/COMPASS-style
/// budgeted search over the sweep grid).
///
/// Between rungs two filters run per (model, mode) group:
///
/// 1. **Dominance pruning** drops every point whose metrics are
///    Pareto-dominated by another point in its group with at least
///    [`HalvingSpec::prune_margin`] relative slack on every objective —
///    cheap-rung metrics are noisy proxies, so only clearly dominated
///    points are discarded.
/// 2. **Halving** keeps the best `keep_fraction` of what remains
///    (at least one point), ranked by Pareto rank then crowding
///    distance (NSGA-II style), so survivors cover the frontier rather
///    than cluster on one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct HalvingSpec {
    /// Per-rung GA generation budgets, strictly increasing; the last
    /// rung must equal the spec's `ga.iterations` (the full budget).
    pub rungs: Vec<usize>,
    /// Fraction of each (model, mode) group kept per non-final rung,
    /// in `(0, 1]`.
    pub keep_fraction: f64,
    /// Relative dominance margin for pruning, `>= 0`. `0.0` prunes
    /// every dominated point; larger values prune only points that are
    /// decisively dominated on all objectives.
    pub prune_margin: f64,
}

impl HalvingSpec {
    /// Default keep fraction (top half of each group survives a rung).
    pub const DEFAULT_KEEP_FRACTION: f64 = 0.5;
    /// Default prune margin (points must be dominated with 25% slack on
    /// every objective before the cheap rung is trusted to drop them).
    pub const DEFAULT_PRUNE_MARGIN: f64 = 0.25;

    /// The default rung ladder for a full budget of `iterations`
    /// generations: divide by 3 until the budget bottoms out at 1, e.g.
    /// 24 → `[2, 8, 24]`, 6 → `[2, 6]`, 1 → `[1]`.
    pub fn default_rungs(iterations: usize) -> Vec<usize> {
        let mut rungs = vec![iterations.max(1)];
        let mut budget = iterations / 3;
        while budget >= 1 {
            rungs.push(budget);
            budget /= 3;
        }
        rungs.reverse();
        rungs.dedup();
        rungs
    }
}

/// Automatic per-model hardware sizing: the bench harness's headroom
/// heuristic ([`pimcomp_core::sized_chips`]) applied to each sweep
/// model, crossed with a sweepable parallelism list.
///
/// Spelled `"hardware": "auto"` (all defaults) or
/// `"hardware": { "auto": true, "base": "puma", "parallelism": [4, 8],
/// "headroom": 2.0 }` in a spec. Each model gets its own labelled
/// configurations (`auto-puma+chips3+par4`), so the chip count in the
/// label documents what the heuristic chose.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoHardware {
    /// Base preset the sizing starts from (`puma` / `small_test`).
    pub base: String,
    /// Parallelism degrees to sweep at the sized chip count.
    pub parallelism: Vec<usize>,
    /// Capacity headroom over the single-replica crossbar demand
    /// (`>= 1`; the bench harness default is 2.0, leaving room for
    /// weight replication).
    pub headroom: f64,
}

impl AutoHardware {
    /// Default headroom, matching the bench harness (`CHIP_HEADROOM`).
    pub const DEFAULT_HEADROOM: f64 = 2.0;
    /// Default parallelism list (the paper's default degree).
    pub const DEFAULT_PARALLELISM: usize = 20;
}

impl Default for AutoHardware {
    fn default() -> Self {
        AutoHardware {
            base: "puma".to_string(),
            parallelism: vec![Self::DEFAULT_PARALLELISM],
            headroom: Self::DEFAULT_HEADROOM,
        }
    }
}

/// One value of the `weight_reload` sweep axis: whether a point
/// compiles in reload mode, and under which crossbar budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReloadSetting {
    /// Ordinary compilation (the default axis value).
    Off,
    /// `weight_reload` mode: `None` uses the target's full crossbar
    /// count as the budget, `Some(b)` caps it at `b` crossbars.
    On(Option<usize>),
}

impl ReloadSetting {
    /// The value's report/CSV spelling: `off`, `full`, or the budget.
    pub fn label(&self) -> String {
        match self {
            ReloadSetting::Off => "off".to_string(),
            ReloadSetting::On(None) => "full".to_string(),
            ReloadSetting::On(Some(b)) => b.to_string(),
        }
    }
}

/// The hardware axis of a sweep: either explicit labelled
/// configurations (expanded from one or more [`HardwareGrid`]s) or
/// per-model automatic sizing ([`AutoHardware`]).
#[derive(Debug, Clone, PartialEq)]
pub enum HardwareAxis {
    /// Labelled configurations shared by every model.
    Explicit(Vec<(String, HardwareConfig)>),
    /// Per-model sized configurations (`"hardware": "auto"`).
    Auto(AutoHardware),
}

impl HardwareAxis {
    /// Number of hardware configurations each model is swept over.
    pub fn len(&self) -> usize {
        match self {
            HardwareAxis::Explicit(list) => list.len(),
            HardwareAxis::Auto(auto) => auto.parallelism.len(),
        }
    }

    /// `true` when the axis holds no configurations (never for a
    /// parsed spec — parsing rejects empty axes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` for the per-model automatic sizing variant.
    pub fn is_auto(&self) -> bool {
        matches!(self, HardwareAxis::Auto(_))
    }
}

/// A validated, fully resolved sweep specification.
///
/// Build one with [`SweepSpec::from_json`] (the CLI path) or construct
/// the fields directly (the programmatic path); [`SweepSpec::points`]
/// expands the cross-product.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Master seed; per-point GA seeds derive from it when `seeds` is
    /// not given explicitly.
    pub master_seed: u64,
    /// Model names (zoo names, test models, or `.onnx` file paths),
    /// one sweep axis.
    pub models: Vec<String>,
    /// Pipeline modes, one sweep axis.
    pub modes: Vec<PipelineMode>,
    /// The hardware axis: explicit labelled configurations or
    /// per-model automatic sizing.
    pub hardware: HardwareAxis,
    /// GA seeds, one sweep axis.
    pub seeds: Vec<u64>,
    /// GA population per point.
    pub ga_population: usize,
    /// GA generation count per point.
    pub ga_iterations: usize,
    /// Memory-reuse policies, one sweep axis (the paper's AG-reuse
    /// ablation).
    pub policies: Vec<ReusePolicy>,
    /// HT transfer batches, one sweep axis (the paper's Fig. 10
    /// protocol knob). Low-latency points always run batch 1 — the axis
    /// collapses for LL modes per
    /// [`CompileOptions::validate`](pimcomp_core::CompileOptions::validate).
    pub batches: Vec<usize>,
    /// Weight-reload settings, one sweep axis (default `[Off]` — every
    /// point compiles normally). Reload-on values compile in
    /// `weight_reload` mode under a crossbar budget, splitting
    /// over-budget models into serialized mapping epochs.
    pub weight_reload: Vec<ReloadSetting>,
    /// Sequence-length bindings, one sweep axis (default `[None]` — no
    /// binding). Each `Some(n)` compiles the point with symbolic `seq`
    /// dimensions bound to `n` tokens; fixed-shape models ignore the
    /// binding, symbolic models *require* one
    /// ([`CompileError::UnboundSeqLen`](pimcomp_core::CompileError::UnboundSeqLen)).
    pub seq_lens: Vec<Option<usize>>,
    /// Quantization settings, one sweep axis (default `[None]` — no
    /// functional verification). Each `Some(b)` runs the point's
    /// compiled mapping through the functional executor
    /// (`pimcomp-exec`) after simulation and records accuracy metrics:
    /// `b = 0` verifies unquantized f32 numerics, `b > 0` models the
    /// analog datapath with a `b`-bit ADC (`b = 32` is the ideal
    /// converter — weight quantization only).
    pub quantization: Vec<Option<u32>>,
    /// How the engine walks the grid (default: exhaustive).
    pub search: SearchStrategy,
}

/// One point of the expanded sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Model name (zoo name or `.onnx` path).
    pub model: String,
    /// Pipeline mode.
    pub mode: PipelineMode,
    /// Label of the hardware configuration (from the grid expansion or
    /// the auto sizing).
    pub hw_label: String,
    /// The hardware configuration itself.
    pub hw: HardwareConfig,
    /// Memory-reuse policy for this point.
    pub policy: ReusePolicy,
    /// HT transfer batch for this point (always 1 in LL mode).
    pub batch: usize,
    /// GA seed for this point.
    pub seed: u64,
    /// Weight-reload setting for this point.
    pub reload: ReloadSetting,
    /// Sequence length binding for this point (`None` = unbound).
    pub seq: Option<usize>,
    /// Quantization setting for this point (`None` = no functional
    /// verification, `Some(0)` = unquantized check, `Some(b)` = `b`-bit
    /// ADC model).
    pub quant: Option<u32>,
}

impl SweepPoint {
    /// Stable identity of the point inside a report
    /// (`model/mode/hardware/policy/bBATCH/seedSEED`), the key sweep
    /// diffs join on. Reload-on points append a `/reload-BUDGET`
    /// segment (`full` for the full-capacity budget); reload-off
    /// points keep the historical six-segment form, so keys from
    /// pre-reload reports still line up in diffs. Sequence-bound
    /// points likewise append a `/seqN` segment, and quantized points
    /// a final `/qB` segment; points without those axes stay
    /// unchanged.
    pub fn key(&self) -> String {
        let mut key = format!(
            "{}/{}/{}/{}/b{}/seed{}",
            self.model,
            self.mode,
            self.hw_label,
            policy_spec_name(self.policy),
            self.batch,
            self.seed
        );
        if self.reload != ReloadSetting::Off {
            key.push_str("/reload-");
            key.push_str(&self.reload.label());
        }
        if let Some(seq) = self.seq {
            key.push_str(&format!("/seq{seq}"));
        }
        if let Some(q) = self.quant {
            key.push_str(&format!("/q{q}"));
        }
        key
    }
}

impl SweepSpec {
    /// Parses and validates a spec from JSON text.
    ///
    /// Recognized fields (unknown fields are rejected so typos fail
    /// loudly):
    ///
    /// * `models` — required, non-empty array of model names: zoo
    ///   networks, test models, or paths ending in `.onnx` (routed
    ///   through the ONNX importer when the sweep runs). Non-path names
    ///   are validated against the zoo at parse time.
    /// * `hardware` — required: one grid object, an array of grid
    ///   objects, or the automatic per-model sizing. A grid has an
    ///   optional `base` preset name (`puma`, `small_test`) and
    ///   per-knob axes (`chips`, `cores_per_chip`,
    ///   `crossbars_per_core`, `crossbar_size`, `parallelism`,
    ///   `local_memory_kb`, `mvm_latency`, `noc_link_bw`), each a
    ///   scalar or an array. Automatic sizing is the string `"auto"`
    ///   or `{ "auto": true, "base": "puma", "parallelism": [4, 8],
    ///   "headroom": 2.0 }` — each model's chip count comes from the
    ///   bench headroom heuristic ([`pimcomp_core::sized_chips`]).
    /// * `modes` — optional array of `"ht"` / `"ll"` (default
    ///   `["ht"]`).
    /// * `master_seed` — optional integer (default 1).
    /// * `seeds` — optional array of GA seeds; when omitted,
    ///   `num_seeds` (default 1) seeds are split from `master_seed`.
    /// * `ga` — optional `{ "population": P, "iterations": I }`
    ///   (default 16×24, the fast test configuration).
    /// * `memory_policies` — optional non-empty array of
    ///   `"naive"` / `"add"` / `"ag"`, one sweep axis (default
    ///   `["ag"]`). The scalar `policy` form is still accepted but
    ///   cannot be combined with the axis.
    /// * `ht_batches` — optional non-empty array of positive HT
    ///   transfer batches, one sweep axis (default `[2]`). Requires an
    ///   `"ht"` entry in `modes`; low-latency points always run
    ///   batch 1, so for LL modes the axis collapses to a single
    ///   point. The scalar `batch` form is still accepted but cannot
    ///   be combined with the axis.
    /// * `weight_reload` — optional reload axis (default: off for
    ///   every point). `true` compiles every point in `weight_reload`
    ///   mode at the target's full crossbar capacity; `false` is the
    ///   default; the object form
    ///   `{ "budgets": [2304, 1152], "include_off": true }` sweeps one
    ///   reload point per crossbar budget, optionally alongside an
    ///   ordinary compilation of the same point.
    /// * `seq_lens` — optional non-empty array of positive sequence
    ///   lengths, one sweep axis (default: unbound). Each entry
    ///   compiles the point with symbolic `seq` dimensions bound to
    ///   that many tokens; required for transformer models such as
    ///   `tiny_bert`, ignored by fixed-shape CNNs.
    /// * `quantization` — optional non-empty array of integer ADC
    ///   bit-widths in 0..=32, one sweep axis (default: no functional
    ///   verification). Each entry runs the compiled mapping through
    ///   the functional executor and records `output_rmse` /
    ///   `top1_match` accuracy metrics: `0` verifies unquantized f32
    ///   numerics, `1..=31` model a that-many-bit ADC, `32` is the
    ///   ideal converter (weight quantization only).
    /// * `search` — optional strategy object (default exhaustive):
    ///   `{ "strategy": "exhaustive" }` or `{ "strategy": "halving",
    ///   "rungs": [2, 8, 24], "keep_fraction": 0.5,
    ///   "prune_margin": 0.25 }`. Halving rungs must be strictly
    ///   increasing GA generation budgets ending at `ga.iterations`;
    ///   when omitted they default to a divide-by-3 ladder
    ///   ([`HalvingSpec::default_rungs`]).
    ///
    /// # Errors
    ///
    /// [`ExploreError::InvalidSpec`] describing the offending field,
    /// or [`ExploreError::UnknownModel`] listing the valid model names.
    pub fn from_json(json: &str) -> Result<Self, ExploreError> {
        let value = serde_json::parse_value(json).map_err(|e| ExploreError::InvalidSpec {
            detail: format!("not valid JSON: {e}"),
        })?;
        Self::from_value(&value)
    }

    fn from_value(value: &Value) -> Result<Self, ExploreError> {
        let entries = as_object(value, "sweep spec")?;
        const KNOWN: [&str; 15] = [
            "master_seed",
            "models",
            "modes",
            "hardware",
            "seeds",
            "num_seeds",
            "ga",
            "policy",
            "memory_policies",
            "batch",
            "ht_batches",
            "weight_reload",
            "seq_lens",
            "quantization",
            "search",
        ];
        for (key, _) in entries {
            if !KNOWN.contains(&key.as_str()) {
                return Err(invalid(format!(
                    "unknown field `{key}` (known fields: {})",
                    KNOWN.join(", ")
                )));
            }
        }

        let master_seed = match value.get("master_seed") {
            Some(v) => as_u64(v, "master_seed")?,
            None => 1,
        };

        let models = match value.get("models") {
            Some(Value::Seq(items)) if !items.is_empty() => items
                .iter()
                .map(|v| as_string(v, "models entry"))
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) | None => {
                return Err(invalid(
                    "`models` must be a non-empty array of model names or .onnx paths",
                ))
            }
        };
        reject_duplicates(&models, "models")?;
        // Zoo names are validated at parse time so a typo fails with
        // the full list of alternatives; `.onnx` paths are only read
        // when the sweep runs, resolved against the process working
        // directory (not the spec file's location — see
        // docs/SWEEP_SPEC.md).
        for model in &models {
            if !model.ends_with(".onnx") && !crate::available_models().iter().any(|m| m == model) {
                return Err(ExploreError::UnknownModel {
                    name: model.clone(),
                    available: crate::available_models(),
                });
            }
        }

        let modes = match value.get("modes") {
            None => vec![PipelineMode::HighThroughput],
            Some(Value::Seq(items)) if !items.is_empty() => items
                .iter()
                .map(|v| parse_mode(&as_string(v, "modes entry")?))
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => {
                return Err(invalid(
                    "`modes` must be a non-empty array of \"ht\"/\"ll\"",
                ))
            }
        };
        let mode_names: Vec<String> = modes.iter().map(|m| m.to_string()).collect();
        reject_duplicates(&mode_names, "modes")?;

        let hardware = match value.get("hardware") {
            Some(Value::Str(s)) if s == "auto" => HardwareAxis::Auto(AutoHardware::default()),
            Some(Value::Str(other)) => {
                return Err(invalid(format!(
                    "`hardware` as a string must be \"auto\" (found `{other}`); \
                     use a grid object for explicit configurations"
                )))
            }
            Some(v @ Value::Map(_)) if v.get("auto").is_some() => {
                HardwareAxis::Auto(parse_auto(v)?)
            }
            Some(Value::Seq(grids)) if !grids.is_empty() => {
                let mut out = Vec::new();
                for g in grids {
                    out.extend(parse_grid(g)?);
                }
                HardwareAxis::Explicit(out)
            }
            Some(v @ Value::Map(_)) => HardwareAxis::Explicit(parse_grid(v)?),
            Some(_) | None => {
                return Err(invalid(
                    "`hardware` must be a grid object, a non-empty array of grid \
                     objects, or \"auto\"",
                ))
            }
        };
        if let HardwareAxis::Explicit(list) = &hardware {
            let hw_labels: Vec<String> = list.iter().map(|(l, _)| l.clone()).collect();
            reject_duplicates(&hw_labels, "hardware grid points")?;
        }

        let seeds = match (value.get("seeds"), value.get("num_seeds")) {
            (Some(_), Some(_)) => {
                return Err(invalid("give either `seeds` or `num_seeds`, not both"))
            }
            (Some(Value::Seq(items)), None) if !items.is_empty() => items
                .iter()
                .map(|v| as_u64(v, "seeds entry"))
                .collect::<Result<Vec<_>, _>>()?,
            (Some(_), None) => {
                return Err(invalid("`seeds` must be a non-empty array of integers"))
            }
            (None, num) => {
                let n = match num {
                    Some(v) => match as_u64(v, "num_seeds")? {
                        0 => return Err(invalid("`num_seeds` must be at least 1")),
                        n => n as usize,
                    },
                    None => 1,
                };
                (0..n as u64)
                    .map(|i| split_stream_seed(master_seed, SEED_STAGE, i))
                    .collect()
            }
        };
        let seed_names: Vec<String> = seeds.iter().map(u64::to_string).collect();
        reject_duplicates(&seed_names, "seeds")?;

        let (ga_population, ga_iterations) = match value.get("ga") {
            None => (16, 24),
            Some(v) => {
                let entries = as_object(v, "`ga`")?;
                for (key, _) in entries {
                    if key != "population" && key != "iterations" {
                        return Err(invalid(format!(
                            "unknown `ga` field `{key}` (known: population, iterations)"
                        )));
                    }
                }
                let pop = match v.get("population") {
                    Some(p) => as_u64(p, "ga.population")? as usize,
                    None => 16,
                };
                let iters = match v.get("iterations") {
                    Some(i) => as_u64(i, "ga.iterations")? as usize,
                    None => 24,
                };
                if pop == 0 || iters == 0 {
                    return Err(invalid(
                        "`ga.population` and `ga.iterations` must be positive",
                    ));
                }
                (pop, iters)
            }
        };

        let policies = match (value.get("policy"), value.get("memory_policies")) {
            (Some(_), Some(_)) => {
                return Err(invalid(
                    "give either `policy` or `memory_policies`, not both",
                ))
            }
            (Some(v), None) => vec![parse_policy(&as_string(v, "policy")?)?],
            (None, Some(Value::Seq(items))) if !items.is_empty() => items
                .iter()
                .map(|v| parse_policy(&as_string(v, "memory_policies entry")?))
                .collect::<Result<Vec<_>, _>>()?,
            (None, Some(_)) => {
                return Err(invalid(format!(
                    "`memory_policies` must be a non-empty array of policy names \
                     ({})",
                    policy_names().join(" | ")
                )))
            }
            (None, None) => vec![ReusePolicy::AgReuse],
        };
        let policy_labels: Vec<String> = policies
            .iter()
            .map(|&p| policy_spec_name(p).to_string())
            .collect();
        reject_duplicates(&policy_labels, "memory_policies")?;

        let (batch_field, batches) = match (value.get("batch"), value.get("ht_batches")) {
            (Some(_), Some(_)) => {
                return Err(invalid("give either `batch` or `ht_batches`, not both"))
            }
            (Some(v), None) => {
                let b = as_u64(v, "batch")? as usize;
                if b == 0 {
                    return Err(invalid("`batch` must be at least 1"));
                }
                ("batch", vec![b])
            }
            (None, Some(Value::Seq(items))) if !items.is_empty() => {
                let batches: Vec<usize> = items
                    .iter()
                    .map(|v| as_u64(v, "ht_batches entry").map(|b| b as usize))
                    .collect::<Result<Vec<_>, _>>()?;
                if batches.contains(&0) {
                    return Err(invalid("`ht_batches` entries must be at least 1"));
                }
                ("ht_batches", batches)
            }
            (None, Some(_)) => {
                return Err(invalid(
                    "`ht_batches` must be a non-empty array of positive integers",
                ))
            }
            // The default is never validated against the modes: an
            // LL-only sweep simply collapses it to batch 1.
            (None, None) => ("", vec![2]),
        };
        // Both spellings of the knob validate identically: an explicit
        // batch above 1 is meaningless without a high-throughput mode.
        if !batch_field.is_empty()
            && batches.iter().any(|&b| b > 1)
            && !modes.contains(&PipelineMode::HighThroughput)
        {
            return Err(invalid(format!(
                "`{batch_field}` only applies to high-throughput mode, but \
                 `modes` contains no \"ht\" (low-latency points always run batch 1)"
            )));
        }
        let batch_names: Vec<String> = batches.iter().map(usize::to_string).collect();
        reject_duplicates(&batch_names, "ht_batches")?;

        let weight_reload = match value.get("weight_reload") {
            None => vec![ReloadSetting::Off],
            Some(v) => parse_reload(v)?,
        };

        let seq_lens: Vec<Option<usize>> = match value.get("seq_lens") {
            None => vec![None],
            Some(Value::Seq(items)) if !items.is_empty() => {
                let lens: Vec<usize> = items
                    .iter()
                    .map(|v| as_u64(v, "seq_lens entry").map(|s| s as usize))
                    .collect::<Result<Vec<_>, _>>()?;
                if lens.contains(&0) {
                    return Err(invalid(
                        "`seq_lens` must be a non-empty array of positive integers",
                    ));
                }
                let len_names: Vec<String> = lens.iter().map(usize::to_string).collect();
                reject_duplicates(&len_names, "seq_lens")?;
                lens.into_iter().map(Some).collect()
            }
            Some(_) => {
                return Err(invalid(
                    "`seq_lens` must be a non-empty array of positive integers",
                ))
            }
        };

        let quantization: Vec<Option<u32>> = match value.get("quantization") {
            None => vec![None],
            Some(Value::Seq(items)) if !items.is_empty() => {
                let bits: Vec<u64> = items
                    .iter()
                    .map(|v| as_u64(v, "quantization entry"))
                    .collect::<Result<Vec<_>, _>>()?;
                if bits.iter().any(|&b| b > 32) {
                    return Err(invalid(
                        "`quantization` must be a non-empty array of integer ADC bit-widths \
                         in 0..=32",
                    ));
                }
                let bit_names: Vec<String> = bits.iter().map(u64::to_string).collect();
                reject_duplicates(&bit_names, "quantization")?;
                bits.into_iter().map(|b| Some(b as u32)).collect()
            }
            Some(_) => {
                return Err(invalid(
                    "`quantization` must be a non-empty array of integer ADC bit-widths \
                     in 0..=32",
                ))
            }
        };

        let search = match value.get("search") {
            None => SearchStrategy::Exhaustive,
            Some(v) => parse_search(v, ga_iterations)?,
        };

        let spec = SweepSpec {
            master_seed,
            models,
            modes,
            hardware,
            seeds,
            ga_population,
            ga_iterations,
            policies,
            batches,
            weight_reload,
            seq_lens,
            quantization,
            search,
        };
        // Cheap structural checks at parse time: oversized or empty
        // sweeps are rejected before any model is loaded or sized
        // (`len` never touches the filesystem, unlike `points` for
        // `.onnx` models or auto hardware).
        if spec.is_empty() {
            return Err(invalid("sweep has no points (an axis is empty)"));
        }
        if spec.len() > MAX_SWEEP_POINTS {
            return Err(invalid(format!(
                "sweep expands to {} points, more than the {MAX_SWEEP_POINTS} cap",
                spec.len()
            )));
        }
        Ok(spec)
    }

    /// Number of points the sweep expands to. Low-latency modes
    /// contribute one point per (model, hardware, policy, seed)
    /// regardless of the batch axis — LL always runs batch 1, so the
    /// axis collapses rather than duplicating identical points.
    pub fn len(&self) -> usize {
        let ht_modes = self
            .modes
            .iter()
            .filter(|&&m| m == PipelineMode::HighThroughput)
            .count();
        let ll_modes = self.modes.len() - ht_modes;
        let mode_batches = ht_modes * self.batches.len() + ll_modes;
        self.models.len()
            * self.hardware.len()
            * self.policies.len()
            * mode_batches
            * self.seeds.len()
            * self.weight_reload.len()
            * self.seq_lens.len()
            * self.quantization.len()
    }

    /// `true` when any axis is empty (the sweep has no points).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cross-product into points, in the fixed axis order
    /// models → modes → hardware → policies → batches → seeds →
    /// weight_reload → seq_lens → quantization. The order is part of
    /// the determinism
    /// contract:
    /// point index, and hence any master-seed derived quantity,
    /// depends only on the spec.
    ///
    /// With `hardware: "auto"` this resolves every model (loading
    /// `.onnx` paths from disk) to size its configurations; the engine
    /// uses [`SweepSpec::points_for`] with its already-resolved graphs
    /// instead, so each model is read exactly once per sweep.
    ///
    /// # Errors
    ///
    /// [`ExploreError::InvalidSpec`] when an axis is empty, the
    /// expansion exceeds [`MAX_SWEEP_POINTS`], or auto sizing fails;
    /// [`ExploreError::UnknownModel`] / [`ExploreError::Onnx`] /
    /// [`ExploreError::Io`] from model resolution under auto hardware.
    pub fn points(&self) -> Result<Vec<SweepPoint>, ExploreError> {
        match &self.hardware {
            HardwareAxis::Explicit(_) => self.points_for(&[]),
            HardwareAxis::Auto(_) => {
                let graphs: Vec<Graph> = self
                    .models
                    .iter()
                    .map(|name| crate::resolve_model(name))
                    .collect::<Result<_, _>>()?;
                self.points_for(&graphs)
            }
        }
    }

    /// [`SweepSpec::points`] over already-resolved model graphs
    /// (`graphs[i]` corresponds to `models[i]`). Only auto hardware
    /// consults the graphs — explicit sweeps may pass an empty slice.
    ///
    /// # Errors
    ///
    /// [`ExploreError::InvalidSpec`] as for [`SweepSpec::points`].
    pub fn points_for(&self, graphs: &[Graph]) -> Result<Vec<SweepPoint>, ExploreError> {
        if self.is_empty() {
            return Err(invalid("sweep has no points (an axis is empty)"));
        }
        if self.len() > MAX_SWEEP_POINTS {
            return Err(invalid(format!(
                "sweep expands to {} points, more than the {MAX_SWEEP_POINTS} cap",
                self.len()
            )));
        }
        if self.hardware.is_auto() && graphs.len() != self.models.len() {
            return Err(invalid(format!(
                "auto hardware sizing needs one resolved graph per model \
                 ({} models, {} graphs)",
                self.models.len(),
                graphs.len()
            )));
        }
        let mut out = Vec::with_capacity(self.len());
        for (mi, model) in self.models.iter().enumerate() {
            // Explicit configurations are shared by every model —
            // borrow them; only auto sizing builds a per-model list.
            let sized;
            let hw_list: &[(String, HardwareConfig)] = match &self.hardware {
                HardwareAxis::Explicit(list) => list,
                HardwareAxis::Auto(auto) => {
                    let max_seq = self.seq_lens.iter().flatten().max().copied();
                    sized = sized_hardware(auto, model, &graphs[mi], max_seq)?;
                    &sized
                }
            };
            for &mode in &self.modes {
                let batches: &[usize] = match mode {
                    PipelineMode::HighThroughput => &self.batches,
                    // LL always runs batch 1; the axis collapses so the
                    // grid never holds two identical LL points.
                    PipelineMode::LowLatency => &[1],
                };
                for (label, hw) in hw_list {
                    for &policy in &self.policies {
                        for &batch in batches {
                            for &seed in &self.seeds {
                                for &reload in &self.weight_reload {
                                    for &seq in &self.seq_lens {
                                        for &quant in &self.quantization {
                                            out.push(SweepPoint {
                                                model: model.clone(),
                                                mode,
                                                hw_label: label.clone(),
                                                hw: hw.clone(),
                                                policy,
                                                batch,
                                                seed,
                                                reload,
                                                seq,
                                                quant,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Expands an [`AutoHardware`] axis for one model: sizes the chip
/// count with the shared headroom heuristic, then enumerates the
/// parallelism list through a [`HardwareGrid`] so labels
/// (`auto-puma+chips3+par4`) and validation match explicit grids.
///
/// A model with a symbolic sequence dimension is sized at `max_seq`
/// (the largest entry of the sweep's `seq_lens` axis), so the chosen
/// chip count fits the worst-case point of the sweep. Without a
/// `seq_lens` axis such a model cannot be sized and the spec is
/// rejected with a structured error.
fn sized_hardware(
    auto: &AutoHardware,
    model: &str,
    graph: &Graph,
    max_seq: Option<usize>,
) -> Result<Vec<(String, HardwareConfig)>, ExploreError> {
    let base = preset(&auto.base).ok_or_else(|| {
        invalid(format!(
            "hardware.base: unknown hardware preset `{}` (available: {})",
            auto.base,
            preset_names().join(", ")
        ))
    })?;
    let bound;
    let graph = if graph.has_symbolic_dims() {
        let Some(len) = max_seq else {
            return Err(invalid(format!(
                "hardware auto-sizing failed for model `{model}`: the model \
                 has a symbolic sequence dimension; add a `seq_lens` axis to \
                 the sweep so it can be sized at the largest sequence length"
            )));
        };
        bound = pimcomp_ir::transform::bind_seq_len(graph, len).map_err(|e| {
            invalid(format!(
                "hardware auto-sizing failed for model `{model}`: {e}"
            ))
        })?;
        &bound
    } else {
        graph
    };
    let chips = pimcomp_core::sized_chips(graph, &base, auto.headroom).map_err(|e| {
        invalid(format!(
            "hardware auto-sizing failed for model `{model}`: {e}"
        ))
    })?;
    HardwareGrid::new(format!("auto-{}", auto.base), base)
        .with_chips(vec![chips])
        .with_parallelism(auto.parallelism.clone())
        .enumerate()
        .map_err(|e| invalid(format!("hardware auto-sizing for model `{model}`: {e}")))
}

fn invalid(detail: impl Into<String>) -> ExploreError {
    ExploreError::InvalidSpec {
        detail: detail.into(),
    }
}

fn as_object<'a>(v: &'a Value, ctx: &str) -> Result<&'a [(String, Value)], ExploreError> {
    match v {
        Value::Map(entries) => Ok(entries),
        other => Err(invalid(format!(
            "{ctx} must be an object, found {}",
            other.kind()
        ))),
    }
}

fn as_string(v: &Value, ctx: &str) -> Result<String, ExploreError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        other => Err(invalid(format!(
            "{ctx} must be a string, found {}",
            other.kind()
        ))),
    }
}

fn as_u64(v: &Value, ctx: &str) -> Result<u64, ExploreError> {
    match v {
        Value::Int(i) => u64::try_from(*i)
            .map_err(|_| invalid(format!("{ctx} must be a non-negative 64-bit integer"))),
        other => Err(invalid(format!(
            "{ctx} must be an integer, found {}",
            other.kind()
        ))),
    }
}

fn as_f64(v: &Value, ctx: &str) -> Result<f64, ExploreError> {
    match v {
        Value::Float(f) => Ok(*f),
        Value::Int(i) => Ok(*i as f64),
        other => Err(invalid(format!(
            "{ctx} must be a number, found {}",
            other.kind()
        ))),
    }
}

/// Accepts a scalar or an array for a grid axis.
fn usize_axis(v: &Value, ctx: &str) -> Result<Vec<usize>, ExploreError> {
    match v {
        Value::Seq(items) => items
            .iter()
            .map(|i| as_u64(i, ctx).map(|n| n as usize))
            .collect(),
        scalar => Ok(vec![as_u64(scalar, ctx)? as usize]),
    }
}

fn u64_axis(v: &Value, ctx: &str) -> Result<Vec<u64>, ExploreError> {
    match v {
        Value::Seq(items) => items.iter().map(|i| as_u64(i, ctx)).collect(),
        scalar => Ok(vec![as_u64(scalar, ctx)?]),
    }
}

fn f64_axis(v: &Value, ctx: &str) -> Result<Vec<f64>, ExploreError> {
    match v {
        Value::Seq(items) => items.iter().map(|i| as_f64(i, ctx)).collect(),
        scalar => Ok(vec![as_f64(scalar, ctx)?]),
    }
}

fn parse_mode(s: &str) -> Result<PipelineMode, ExploreError> {
    match s.to_ascii_lowercase().as_str() {
        "ht" | "high_throughput" => Ok(PipelineMode::HighThroughput),
        "ll" | "low_latency" => Ok(PipelineMode::LowLatency),
        other => Err(invalid(format!(
            "unknown pipeline mode `{other}` (ht | ll)"
        ))),
    }
}

fn parse_policy(s: &str) -> Result<ReusePolicy, ExploreError> {
    match s {
        "naive" => Ok(ReusePolicy::Naive),
        "add" => Ok(ReusePolicy::AddReuse),
        "ag" => Ok(ReusePolicy::AgReuse),
        other => Err(invalid(format!(
            "unknown memory policy `{other}` ({})",
            policy_names().join(" | ")
        ))),
    }
}

fn parse_auto(v: &Value) -> Result<AutoHardware, ExploreError> {
    let entries = as_object(v, "hardware")?;
    const KNOWN: [&str; 4] = ["auto", "base", "parallelism", "headroom"];
    for (key, _) in entries {
        if !KNOWN.contains(&key.as_str()) {
            return Err(invalid(format!(
                "unknown auto-hardware field `{key}` (known fields: {})",
                KNOWN.join(", ")
            )));
        }
    }
    match v.get("auto") {
        Some(Value::Bool(true)) => {}
        Some(_) => {
            return Err(invalid(
                "`hardware.auto` must be `true` (remove the key for an explicit grid)",
            ))
        }
        None => unreachable!("parse_auto is only called when `auto` is present"),
    }
    let base = match v.get("base") {
        Some(b) => as_string(b, "hardware.base")?,
        None => "puma".to_string(),
    };
    if preset(&base).is_none() {
        return Err(invalid(format!(
            "hardware.base: unknown hardware preset `{base}` (available: {})",
            preset_names().join(", ")
        )));
    }
    let parallelism = match v.get("parallelism") {
        Some(axis) => {
            let p = usize_axis(axis, "hardware.parallelism")?;
            if p.is_empty() || p.contains(&0) {
                return Err(invalid(
                    "`hardware.parallelism` must be a non-empty list of positive degrees",
                ));
            }
            let names: Vec<String> = p.iter().map(usize::to_string).collect();
            reject_duplicates(&names, "hardware.parallelism")?;
            p
        }
        None => vec![AutoHardware::DEFAULT_PARALLELISM],
    };
    let headroom = match v.get("headroom") {
        Some(h) => as_f64(h, "hardware.headroom")?,
        None => AutoHardware::DEFAULT_HEADROOM,
    };
    if !headroom.is_finite() || headroom < 1.0 {
        return Err(invalid("`hardware.headroom` must be a finite number >= 1"));
    }
    Ok(AutoHardware {
        base,
        parallelism,
        headroom,
    })
}

fn parse_grid(v: &Value) -> Result<Vec<(String, HardwareConfig)>, ExploreError> {
    let entries = as_object(v, "hardware grid")?;
    const KNOWN: [&str; 9] = [
        "base",
        "chips",
        "cores_per_chip",
        "crossbars_per_core",
        "crossbar_size",
        "parallelism",
        "local_memory_kb",
        "mvm_latency",
        "noc_link_bw",
    ];
    for (key, _) in entries {
        if !KNOWN.contains(&key.as_str()) {
            return Err(invalid(format!(
                "unknown hardware field `{key}` (known fields: {})",
                KNOWN.join(", ")
            )));
        }
    }
    let base = match v.get("base") {
        Some(b) => as_string(b, "hardware.base")?,
        None => "puma".to_string(),
    };
    let mut grid =
        HardwareGrid::over_preset(&base).map_err(|e| invalid(format!("hardware.base: {e}")))?;
    if let Some(axis) = v.get("chips") {
        grid.chips = usize_axis(axis, "hardware.chips")?;
    }
    if let Some(axis) = v.get("cores_per_chip") {
        grid.cores_per_chip = usize_axis(axis, "hardware.cores_per_chip")?;
    }
    if let Some(axis) = v.get("crossbars_per_core") {
        grid.crossbars_per_core = usize_axis(axis, "hardware.crossbars_per_core")?;
    }
    if let Some(axis) = v.get("crossbar_size") {
        grid.crossbar_size = usize_axis(axis, "hardware.crossbar_size")?;
    }
    if let Some(axis) = v.get("parallelism") {
        grid.parallelism = usize_axis(axis, "hardware.parallelism")?;
    }
    if let Some(axis) = v.get("local_memory_kb") {
        grid.local_memory_kb = usize_axis(axis, "hardware.local_memory_kb")?;
    }
    if let Some(axis) = v.get("mvm_latency") {
        grid.mvm_latency = u64_axis(axis, "hardware.mvm_latency")?;
    }
    if let Some(axis) = v.get("noc_link_bw") {
        grid.noc_link_bw = f64_axis(axis, "hardware.noc_link_bw")?;
    }
    grid.enumerate()
        .map_err(|e| invalid(format!("hardware grid: {e}")))
}

fn parse_reload(v: &Value) -> Result<Vec<ReloadSetting>, ExploreError> {
    match v {
        Value::Bool(false) => Ok(vec![ReloadSetting::Off]),
        Value::Bool(true) => Ok(vec![ReloadSetting::On(None)]),
        Value::Map(entries) => {
            const KNOWN: [&str; 2] = ["budgets", "include_off"];
            for (key, _) in entries {
                if !KNOWN.contains(&key.as_str()) {
                    return Err(invalid(format!(
                        "unknown `weight_reload` field `{key}` (known fields: {})",
                        KNOWN.join(", ")
                    )));
                }
            }
            let budgets: Vec<usize> = match v.get("budgets") {
                Some(Value::Seq(items)) if !items.is_empty() => items
                    .iter()
                    .map(|b| as_u64(b, "weight_reload.budgets entry").map(|b| b as usize))
                    .collect::<Result<_, _>>()?,
                Some(_) | None => {
                    return Err(invalid(
                        "`weight_reload.budgets` must be a non-empty array of \
                         positive crossbar budgets",
                    ))
                }
            };
            if budgets.contains(&0) {
                return Err(invalid(
                    "`weight_reload.budgets` entries must be at least 1",
                ));
            }
            let names: Vec<String> = budgets.iter().map(usize::to_string).collect();
            reject_duplicates(&names, "weight_reload.budgets")?;
            let include_off = match v.get("include_off") {
                None => false,
                Some(Value::Bool(b)) => *b,
                Some(other) => {
                    return Err(invalid(format!(
                        "`weight_reload.include_off` must be a boolean, found {}",
                        other.kind()
                    )))
                }
            };
            let mut axis = Vec::new();
            if include_off {
                axis.push(ReloadSetting::Off);
            }
            axis.extend(budgets.into_iter().map(|b| ReloadSetting::On(Some(b))));
            Ok(axis)
        }
        other => Err(invalid(format!(
            "`weight_reload` must be `true`, `false`, or an object \
             {{\"budgets\": [...], \"include_off\": bool}}, found {}",
            other.kind()
        ))),
    }
}

fn parse_search(v: &Value, ga_iterations: usize) -> Result<SearchStrategy, ExploreError> {
    let entries = as_object(v, "`search`")?;
    const KNOWN: [&str; 4] = ["strategy", "rungs", "keep_fraction", "prune_margin"];
    for (key, _) in entries {
        if !KNOWN.contains(&key.as_str()) {
            return Err(invalid(format!(
                "unknown `search` field `{key}` (known fields: {})",
                KNOWN.join(", ")
            )));
        }
    }
    let strategy = match v.get("strategy") {
        Some(s) => as_string(s, "search.strategy")?,
        None => {
            return Err(invalid(
                "`search` needs a `strategy` (exhaustive | halving)",
            ))
        }
    };
    match strategy.as_str() {
        "exhaustive" => {
            for key in ["rungs", "keep_fraction", "prune_margin"] {
                if v.get(key).is_some() {
                    return Err(invalid(format!(
                        "`search.{key}` only applies to the halving strategy"
                    )));
                }
            }
            Ok(SearchStrategy::Exhaustive)
        }
        "halving" => {
            let rungs = match v.get("rungs") {
                None => HalvingSpec::default_rungs(ga_iterations),
                Some(axis) => {
                    let rungs: Vec<usize> = u64_axis(axis, "search.rungs")?
                        .into_iter()
                        .map(|b| b as usize)
                        .collect();
                    if rungs.is_empty() || rungs[0] == 0 {
                        return Err(invalid(
                            "`search.rungs` must be a non-empty array of positive \
                             GA generation budgets",
                        ));
                    }
                    if !rungs.windows(2).all(|w| w[0] < w[1]) {
                        return Err(invalid("`search.rungs` must be strictly increasing"));
                    }
                    if rungs.last() != Some(&ga_iterations) {
                        return Err(invalid(format!(
                            "the final `search.rungs` entry must equal `ga.iterations` \
                             ({ga_iterations}) so survivors get the full budget"
                        )));
                    }
                    rungs
                }
            };
            let keep_fraction = match v.get("keep_fraction") {
                None => HalvingSpec::DEFAULT_KEEP_FRACTION,
                Some(f) => as_f64(f, "search.keep_fraction")?,
            };
            if !keep_fraction.is_finite() || keep_fraction <= 0.0 || keep_fraction > 1.0 {
                return Err(invalid("`search.keep_fraction` must be within (0, 1]"));
            }
            let prune_margin = match v.get("prune_margin") {
                None => HalvingSpec::DEFAULT_PRUNE_MARGIN,
                Some(f) => as_f64(f, "search.prune_margin")?,
            };
            if !prune_margin.is_finite() || prune_margin < 0.0 {
                return Err(invalid(
                    "`search.prune_margin` must be a non-negative number",
                ));
            }
            Ok(SearchStrategy::Halving(HalvingSpec {
                rungs,
                keep_fraction,
                prune_margin,
            }))
        }
        other => Err(invalid(format!(
            "unknown search strategy `{other}` (exhaustive | halving)"
        ))),
    }
}

fn reject_duplicates(items: &[String], what: &str) -> Result<(), ExploreError> {
    let mut seen = std::collections::HashSet::new();
    for item in items {
        if !seen.insert(item.as_str()) {
            return Err(invalid(format!("duplicate entry `{item}` in {what}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_spec_parses_to_sixteen_points() {
        let spec = SweepSpec::from_json(EXAMPLE_SPEC).unwrap();
        assert_eq!(spec.models.len(), 2);
        assert_eq!(spec.modes.len(), 2);
        assert_eq!(spec.hardware.len(), 4);
        assert_eq!(spec.policies, vec![ReusePolicy::AgReuse]);
        assert_eq!(spec.batches, vec![2]);
        assert_eq!(spec.seeds, vec![1]);
        let points = spec.points().unwrap();
        assert_eq!(points.len(), 16);
        assert_eq!(
            points[0].key(),
            "tiny_cnn/HT/small_test+chips1+par4/ag/b2/seed1"
        );
    }

    #[test]
    fn derived_seeds_split_from_master() {
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},
                "master_seed":9,"num_seeds":3}"#,
        )
        .unwrap();
        assert_eq!(spec.seeds.len(), 3);
        let rederived: Vec<u64> = (0..3).map(|i| split_stream_seed(9, 0, i)).collect();
        assert_eq!(spec.seeds, rederived);
        // Seeds depend on the master, so two sweeps never collide.
        let other = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},
                "master_seed":10,"num_seeds":3}"#,
        )
        .unwrap();
        assert_ne!(spec.seeds, other.seeds);
    }

    #[test]
    fn malformed_specs_are_structured_errors() {
        for (json, needle) in [
            ("[]", "must be an object"),
            ("{", "not valid JSON"),
            (r#"{"models":[],"hardware":{}}"#, "non-empty array"),
            (r#"{"models":["tiny_mlp"]}"#, "`hardware`"),
            (
                r#"{"models":["tiny_mlp"],"hardware":{"base":"tpu"}}"#,
                "unknown hardware preset",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{"chips":[0]}}"#,
                "hardware grid",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"modes":["fast"]}"#,
                "unknown pipeline mode",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"typo_field":1}"#,
                "unknown field `typo_field`",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"seeds":[1],"num_seeds":2}"#,
                "not both",
            ),
            (
                r#"{"models":["tiny_mlp","tiny_mlp"],"hardware":{}}"#,
                "duplicate entry",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"ga":{"population":0}}"#,
                "must be positive",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"batch":0}"#,
                "`batch`",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"num_seeds":0}"#,
                "`num_seeds` must be at least 1",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{"chips":-1}}"#,
                "non-negative",
            ),
        ] {
            let err = SweepSpec::from_json(json).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "spec {json} gave `{msg}`, expected to contain `{needle}`"
            );
        }
    }

    #[test]
    fn malformed_axis_fields_are_structured_errors() {
        for (json, needle) in [
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"memory_policies":[]}"#,
                "`memory_policies` must be a non-empty array",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"memory_policies":["lru"]}"#,
                "unknown memory policy `lru` (naive | add | ag)",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},
                    "memory_policies":["ag","ag"]}"#,
                "duplicate entry `ag` in memory_policies",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},
                    "policy":"ag","memory_policies":["naive"]}"#,
                "either `policy` or `memory_policies`",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"ht_batches":[]}"#,
                "`ht_batches` must be a non-empty array",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"ht_batches":[0]}"#,
                "`ht_batches` entries must be at least 1",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"ht_batches":[2,2]}"#,
                "duplicate entry `2` in ht_batches",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},
                    "batch":2,"ht_batches":[1,2]}"#,
                "either `batch` or `ht_batches`",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"modes":["ll"],
                    "ht_batches":[1,2]}"#,
                "`ht_batches` only applies to high-throughput mode",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"modes":["ll"],
                    "batch":4}"#,
                "`batch` only applies to high-throughput mode",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":"automatic"}"#,
                "must be \"auto\"",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{"auto":false}}"#,
                "`hardware.auto` must be `true`",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{"auto":true,"chips":[1]}}"#,
                "unknown auto-hardware field `chips`",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{"auto":true,"base":"tpu"}}"#,
                "unknown hardware preset `tpu`",
            ),
            (
                r#"{"models":["tiny_mlp"],
                    "hardware":{"auto":true,"parallelism":[0]}}"#,
                "`hardware.parallelism` must be a non-empty list of positive",
            ),
            (
                r#"{"models":["tiny_mlp"],
                    "hardware":{"auto":true,"parallelism":[4,4]}}"#,
                "duplicate entry `4` in hardware.parallelism",
            ),
            (
                r#"{"models":["tiny_mlp"],
                    "hardware":{"auto":true,"headroom":0.5}}"#,
                "`hardware.headroom` must be a finite number >= 1",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"weight_reload":"yes"}"#,
                "`weight_reload` must be `true`, `false`, or an object",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"weight_reload":{}}"#,
                "`weight_reload.budgets` must be a non-empty array of positive crossbar budgets",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},
                    "weight_reload":{"budgets":[]}}"#,
                "`weight_reload.budgets` must be a non-empty array of positive crossbar budgets",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},
                    "weight_reload":{"budgets":[0]}}"#,
                "`weight_reload.budgets` entries must be at least 1",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},
                    "weight_reload":{"budgets":[256,256]}}"#,
                "duplicate entry `256` in weight_reload.budgets",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},
                    "weight_reload":{"budgets":[256],"include_off":1}}"#,
                "`weight_reload.include_off` must be a boolean",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},
                    "weight_reload":{"caps":[256]}}"#,
                "unknown `weight_reload` field `caps`",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"seq_lens":[]}"#,
                "`seq_lens` must be a non-empty array of positive integers",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"seq_lens":64}"#,
                "`seq_lens` must be a non-empty array of positive integers",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"seq_lens":[0]}"#,
                "`seq_lens` must be a non-empty array of positive integers",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"seq_lens":[64,64]}"#,
                "duplicate entry `64` in seq_lens",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"quantization":[]}"#,
                "`quantization` must be a non-empty array of integer ADC bit-widths in 0..=32",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"quantization":8}"#,
                "`quantization` must be a non-empty array of integer ADC bit-widths in 0..=32",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"quantization":[33]}"#,
                "`quantization` must be a non-empty array of integer ADC bit-widths in 0..=32",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"quantization":[8,8]}"#,
                "duplicate entry `8` in quantization",
            ),
        ] {
            let err = SweepSpec::from_json(json).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "spec {json} gave `{msg}`, expected to contain `{needle}`"
            );
        }
    }

    #[test]
    fn unknown_model_names_fail_at_parse_listing_alternatives() {
        let err =
            SweepSpec::from_json(r#"{"models":["alexnet"],"hardware":{"base":"small_test"}}"#)
                .unwrap_err();
        match &err {
            ExploreError::UnknownModel { name, available } => {
                assert_eq!(name, "alexnet");
                assert!(available.iter().any(|m| m == "vgg16"));
                assert!(available.iter().any(|m| m == "tiny_cnn"));
            }
            other => panic!("expected UnknownModel, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("available models"), "{msg}");
        assert!(msg.contains(".onnx"), "{msg}");
        // `.onnx` paths are not resolved against the zoo at parse time.
        SweepSpec::from_json(r#"{"models":["anything.onnx"],"hardware":{"base":"small_test"}}"#)
            .unwrap();
    }

    #[test]
    fn seq_lens_axis_expands_innermost_and_tags_keys() {
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_bert"],"hardware":{"base":"small_test"},
                "seeds":[1],"seq_lens":[64,128]}"#,
        )
        .unwrap();
        assert_eq!(spec.seq_lens, vec![Some(64), Some(128)]);
        assert_eq!(spec.len(), 2);
        let points = spec.points().unwrap();
        assert_eq!(points[0].seq, Some(64));
        assert_eq!(points[1].seq, Some(128));
        assert!(points[0].key().ends_with("/seq64"), "{}", points[0].key());
        assert!(points[1].key().ends_with("/seq128"), "{}", points[1].key());

        // Without the axis, points stay unbound and keys keep the
        // historical form.
        let plain = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},"seeds":[1]}"#,
        )
        .unwrap();
        let points = plain.points().unwrap();
        assert_eq!(points[0].seq, None);
        assert!(!points[0].key().contains("/seq"), "{}", points[0].key());
    }

    #[test]
    fn quantization_axis_expands_innermost_and_tags_keys() {
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},
                "seeds":[1],"quantization":[0,8]}"#,
        )
        .unwrap();
        assert_eq!(spec.quantization, vec![Some(0), Some(8)]);
        assert_eq!(spec.len(), 2);
        let points = spec.points().unwrap();
        assert_eq!(points[0].quant, Some(0));
        assert_eq!(points[1].quant, Some(8));
        assert!(points[0].key().ends_with("/q0"), "{}", points[0].key());
        assert!(points[1].key().ends_with("/q8"), "{}", points[1].key());

        // Without the axis, points skip verification and keys keep the
        // historical form.
        let plain = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},"seeds":[1]}"#,
        )
        .unwrap();
        let points = plain.points().unwrap();
        assert_eq!(points[0].quant, None);
        assert!(!points[0].key().contains("/q"), "{}", points[0].key());
    }

    #[test]
    fn policy_and_batch_axes_cross_product_with_ll_collapsing() {
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"modes":["ht","ll"],
                "hardware":{"base":"small_test"},"seeds":[1],
                "memory_policies":["naive","ag"],"ht_batches":[1,4]}"#,
        )
        .unwrap();
        // HT: 2 policies x 2 batches; LL: 2 policies x 1 (collapsed).
        assert_eq!(spec.len(), 4 + 2);
        let points = spec.points().unwrap();
        assert_eq!(points.len(), 6);
        let keys: Vec<String> = points.iter().map(|p| p.key()).collect();
        assert_eq!(
            keys,
            [
                "tiny_mlp/HT/small_test/naive/b1/seed1",
                "tiny_mlp/HT/small_test/naive/b4/seed1",
                "tiny_mlp/HT/small_test/ag/b1/seed1",
                "tiny_mlp/HT/small_test/ag/b4/seed1",
                "tiny_mlp/LL/small_test/naive/b1/seed1",
                "tiny_mlp/LL/small_test/ag/b1/seed1",
            ]
        );
        assert!(points
            .iter()
            .filter(|p| p.mode == PipelineMode::LowLatency)
            .all(|p| p.batch == 1));
        // An explicit batch of 1 is harmless without an HT mode (both
        // spellings); only values above 1 require one.
        for json in [
            r#"{"models":["tiny_mlp"],"hardware":{},"modes":["ll"],"ht_batches":[1]}"#,
            r#"{"models":["tiny_mlp"],"hardware":{},"modes":["ll"],"batch":1}"#,
        ] {
            assert_eq!(SweepSpec::from_json(json).unwrap().batches, vec![1]);
        }
    }

    #[test]
    fn auto_hardware_sizes_per_model_with_labelled_parallelism() {
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp","tiny_cnn"],
                "hardware":{"auto":true,"base":"small_test",
                             "parallelism":[2,4]}}"#,
        )
        .unwrap();
        assert!(spec.hardware.is_auto());
        assert_eq!(spec.hardware.len(), 2);
        assert_eq!(spec.len(), 2 * 2);
        let points = spec.points().unwrap();
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(
                p.hw_label.starts_with("auto-small_test+chips"),
                "{}",
                p.hw_label
            );
            assert!(p.hw.chips >= 1);
            p.hw.validate().unwrap();
        }
        assert_eq!(points[0].hw.parallelism, 2);
        assert_eq!(points[1].hw.parallelism, 4);
        // The bare string form uses every default.
        let bare = SweepSpec::from_json(r#"{"models":["tiny_mlp"],"hardware":"auto"}"#).unwrap();
        match &bare.hardware {
            HardwareAxis::Auto(a) => {
                assert_eq!(a.base, "puma");
                assert_eq!(a.parallelism, vec![AutoHardware::DEFAULT_PARALLELISM]);
                assert_eq!(a.headroom, AutoHardware::DEFAULT_HEADROOM);
            }
            other => panic!("expected auto hardware, got {other:?}"),
        }
    }

    #[test]
    fn auto_hardware_sizes_symbolic_models_at_the_largest_seq_len() {
        // tiny_bert has a symbolic sequence dimension: auto sizing
        // binds the largest `seq_lens` entry so the chip count fits
        // the worst-case point of the sweep.
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_bert"],
                "hardware":{"auto":true,"base":"puma"},
                "seq_lens":[64, 128]}"#,
        )
        .unwrap();
        let points = spec.points().unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.hw_label.starts_with("auto-puma+chips"), "{}", p.hw_label);
            p.hw.validate().unwrap();
        }

        // Without the axis the model cannot be sized; the spec is
        // rejected with a structured error naming the fix.
        let bare = SweepSpec::from_json(r#"{"models":["tiny_bert"],"hardware":"auto"}"#).unwrap();
        let err = bare.points().unwrap_err();
        assert!(
            err.to_string().contains("add a `seq_lens` axis"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn weight_reload_axis_expands_and_keys_reload_points() {
        // Default: off for every point, no key suffix.
        let spec =
            SweepSpec::from_json(r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"}}"#)
                .unwrap();
        assert_eq!(spec.weight_reload, vec![ReloadSetting::Off]);
        assert!(!spec.points().unwrap()[0].key().contains("reload"));

        // `true`: every point compiles in reload mode at full capacity.
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},
                "seeds":[1],"weight_reload":true}"#,
        )
        .unwrap();
        assert_eq!(spec.weight_reload, vec![ReloadSetting::On(None)]);
        assert_eq!(
            spec.points().unwrap()[0].key(),
            "tiny_mlp/HT/small_test/ag/b2/seed1/reload-full"
        );

        // Budget list with include_off: off first, then one point per
        // budget, innermost in the expansion order.
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},
                "seeds":[1],
                "weight_reload":{"budgets":[256,128],"include_off":true}}"#,
        )
        .unwrap();
        assert_eq!(
            spec.weight_reload,
            vec![
                ReloadSetting::Off,
                ReloadSetting::On(Some(256)),
                ReloadSetting::On(Some(128)),
            ]
        );
        assert_eq!(spec.len(), 3);
        let keys: Vec<String> = spec.points().unwrap().iter().map(|p| p.key()).collect();
        assert_eq!(
            keys,
            [
                "tiny_mlp/HT/small_test/ag/b2/seed1",
                "tiny_mlp/HT/small_test/ag/b2/seed1/reload-256",
                "tiny_mlp/HT/small_test/ag/b2/seed1/reload-128",
            ]
        );

        // `false` is accepted and identical to omitting the field.
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},
                "weight_reload":false}"#,
        )
        .unwrap();
        assert_eq!(spec.weight_reload, vec![ReloadSetting::Off]);
    }

    #[test]
    fn oversized_sweeps_are_capped() {
        let json = format!(
            r#"{{"models":["tiny_mlp"],"hardware":{{"base":"small_test"}},"num_seeds":{}}}"#,
            MAX_SWEEP_POINTS + 1
        );
        assert!(matches!(
            SweepSpec::from_json(&json),
            Err(ExploreError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn search_section_parses_with_defaults_and_overrides() {
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},
                "ga":{"population":4,"iterations":24},
                "search":{"strategy":"halving"}}"#,
        )
        .unwrap();
        match &spec.search {
            SearchStrategy::Halving(h) => {
                assert_eq!(h.rungs, vec![2, 8, 24]);
                assert_eq!(h.keep_fraction, HalvingSpec::DEFAULT_KEEP_FRACTION);
                assert_eq!(h.prune_margin, HalvingSpec::DEFAULT_PRUNE_MARGIN);
            }
            other => panic!("expected halving, got {other:?}"),
        }
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},
                "ga":{"population":4,"iterations":6},
                "search":{"strategy":"halving","rungs":[1,6],
                          "keep_fraction":0.4,"prune_margin":0.0}}"#,
        )
        .unwrap();
        assert_eq!(
            spec.search,
            SearchStrategy::Halving(HalvingSpec {
                rungs: vec![1, 6],
                keep_fraction: 0.4,
                prune_margin: 0.0,
            })
        );
        // Default and explicit exhaustive are the same strategy.
        let default =
            SweepSpec::from_json(r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"}}"#)
                .unwrap();
        let explicit = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},
                "search":{"strategy":"exhaustive"}}"#,
        )
        .unwrap();
        assert_eq!(default.search, SearchStrategy::Exhaustive);
        assert_eq!(explicit.search, SearchStrategy::Exhaustive);
    }

    #[test]
    fn default_rung_ladders_end_at_the_full_budget() {
        assert_eq!(HalvingSpec::default_rungs(24), vec![2, 8, 24]);
        assert_eq!(HalvingSpec::default_rungs(200), vec![2, 7, 22, 66, 200]);
        assert_eq!(HalvingSpec::default_rungs(6), vec![2, 6]);
        assert_eq!(HalvingSpec::default_rungs(2), vec![2]);
        assert_eq!(HalvingSpec::default_rungs(1), vec![1]);
        assert_eq!(HalvingSpec::default_rungs(0), vec![1]);
        for i in 1..=64 {
            let rungs = HalvingSpec::default_rungs(i);
            assert!(rungs.windows(2).all(|w| w[0] < w[1]), "ladder for {i}");
            assert_eq!(rungs.last(), Some(&i));
        }
    }

    #[test]
    fn malformed_search_sections_are_structured_errors() {
        let base = |search: &str| {
            format!(
                r#"{{"models":["tiny_mlp"],"hardware":{{"base":"small_test"}},
                    "ga":{{"population":4,"iterations":6}},"search":{search}}}"#
            )
        };
        for (search, needle) in [
            (r#"{}"#, "needs a `strategy`"),
            (r#"{"strategy":"random"}"#, "unknown search strategy"),
            (
                r#"{"strategy":"halving","typo":1}"#,
                "unknown `search` field",
            ),
            (
                r#"{"strategy":"exhaustive","rungs":[1,6]}"#,
                "only applies to the halving strategy",
            ),
            (
                r#"{"strategy":"halving","rungs":[]}"#,
                "non-empty array of positive",
            ),
            (
                r#"{"strategy":"halving","rungs":[0,6]}"#,
                "non-empty array of positive",
            ),
            (
                r#"{"strategy":"halving","rungs":[4,2,6]}"#,
                "strictly increasing",
            ),
            (
                r#"{"strategy":"halving","rungs":[1,2]}"#,
                "must equal `ga.iterations` (6)",
            ),
            (
                r#"{"strategy":"halving","keep_fraction":0}"#,
                "within (0, 1]",
            ),
            (
                r#"{"strategy":"halving","keep_fraction":1.5}"#,
                "within (0, 1]",
            ),
            (
                r#"{"strategy":"halving","prune_margin":-0.5}"#,
                "non-negative",
            ),
        ] {
            let err = SweepSpec::from_json(&base(search)).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "search {search} gave `{msg}`, expected to contain `{needle}`"
            );
        }
    }

    #[test]
    fn hardware_accepts_scalar_axes_and_grid_arrays() {
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],
                "hardware":[{"base":"small_test","chips":1},
                            {"base":"small_test","chips":2,"parallelism":[4,8]}]}"#,
        )
        .unwrap();
        let HardwareAxis::Explicit(hardware) = &spec.hardware else {
            panic!("expected explicit hardware");
        };
        assert_eq!(hardware.len(), 3);
        assert_eq!(hardware[0].0, "small_test+chips1");
        assert_eq!(hardware[2].1.parallelism, 8);
    }
}
