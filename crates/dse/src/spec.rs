//! Declarative sweep specifications: the JSON the `pimcomp explore`
//! subcommand consumes, parsed with structured errors (never panics on
//! malformed input) and expanded into a deterministic point list.

use crate::ExploreError;
use pimcomp_arch::{HardwareConfig, HardwareGrid, PipelineMode};
use pimcomp_core::{split_stream_seed, ReusePolicy};
use serde::Value;

/// Hard cap on the number of points one sweep may expand to, so a typo
/// in a grid axis fails fast instead of queueing years of compilation.
pub const MAX_SWEEP_POINTS: usize = 10_000;

/// Seed-split stage tag for the seed axis (`split_stream_seed(master,
/// SEED_STAGE, i)`); distinct from every GA-internal stage by
/// construction because the GA mixes its own master seed, not ours.
const SEED_STAGE: u64 = 0;

/// A worked sweep spec, kept in sync with README and the test suite.
///
/// Axes: 2 models × 2 modes × (2 chips × 2 parallelism = 4 hardware
/// configurations) × 1 seed = 16 points.
pub const EXAMPLE_SPEC: &str = r#"{
  "master_seed": 42,
  "models": ["tiny_cnn", "tiny_mlp"],
  "modes": ["ht", "ll"],
  "hardware": {
    "base": "small_test",
    "chips": [1, 2],
    "parallelism": [4, 8]
  },
  "seeds": [1],
  "ga": { "population": 8, "iterations": 6 }
}"#;

/// How the engine walks the expanded point grid.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchStrategy {
    /// Evaluate every point once at the full GA budget (the PR 3
    /// behavior, and the default when the spec has no `search` section).
    Exhaustive,
    /// Successive halving: evaluate everything at a cheap GA budget,
    /// keep only the most promising fraction of each (model, mode)
    /// group, and re-evaluate survivors at the next budget until the
    /// final rung runs at the full budget. See [`HalvingSpec`].
    Halving(HalvingSpec),
}

impl SearchStrategy {
    /// The strategy's spec-file name (`exhaustive` / `halving`).
    pub fn name(&self) -> &'static str {
        match self {
            SearchStrategy::Exhaustive => "exhaustive",
            SearchStrategy::Halving(_) => "halving",
        }
    }
}

/// Parameters of the successive-halving strategy (PIMSYN/COMPASS-style
/// budgeted search over the sweep grid).
///
/// Between rungs two filters run per (model, mode) group:
///
/// 1. **Dominance pruning** drops every point whose metrics are
///    Pareto-dominated by another point in its group with at least
///    [`HalvingSpec::prune_margin`] relative slack on every objective —
///    cheap-rung metrics are noisy proxies, so only clearly dominated
///    points are discarded.
/// 2. **Halving** keeps the best `keep_fraction` of what remains
///    (at least one point), ranked by Pareto rank then crowding
///    distance (NSGA-II style), so survivors cover the frontier rather
///    than cluster on one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct HalvingSpec {
    /// Per-rung GA generation budgets, strictly increasing; the last
    /// rung must equal the spec's `ga.iterations` (the full budget).
    pub rungs: Vec<usize>,
    /// Fraction of each (model, mode) group kept per non-final rung,
    /// in `(0, 1]`.
    pub keep_fraction: f64,
    /// Relative dominance margin for pruning, `>= 0`. `0.0` prunes
    /// every dominated point; larger values prune only points that are
    /// decisively dominated on all objectives.
    pub prune_margin: f64,
}

impl HalvingSpec {
    /// Default keep fraction (top half of each group survives a rung).
    pub const DEFAULT_KEEP_FRACTION: f64 = 0.5;
    /// Default prune margin (points must be dominated with 25% slack on
    /// every objective before the cheap rung is trusted to drop them).
    pub const DEFAULT_PRUNE_MARGIN: f64 = 0.25;

    /// The default rung ladder for a full budget of `iterations`
    /// generations: divide by 3 until the budget bottoms out at 1, e.g.
    /// 24 → `[2, 8, 24]`, 6 → `[2, 6]`, 1 → `[1]`.
    pub fn default_rungs(iterations: usize) -> Vec<usize> {
        let mut rungs = vec![iterations.max(1)];
        let mut budget = iterations / 3;
        while budget >= 1 {
            rungs.push(budget);
            budget /= 3;
        }
        rungs.reverse();
        rungs.dedup();
        rungs
    }
}

/// A validated, fully resolved sweep specification.
///
/// Build one with [`SweepSpec::from_json`] (the CLI path) or construct
/// the fields directly (the programmatic path); [`SweepSpec::points`]
/// expands the cross-product.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Master seed; per-point GA seeds derive from it when `seeds` is
    /// not given explicitly.
    pub master_seed: u64,
    /// Model names (zoo or test models), one sweep axis.
    pub models: Vec<String>,
    /// Pipeline modes, one sweep axis.
    pub modes: Vec<PipelineMode>,
    /// Labelled hardware configurations, one sweep axis (already
    /// validated, typically expanded from a [`HardwareGrid`]).
    pub hardware: Vec<(String, HardwareConfig)>,
    /// GA seeds, one sweep axis.
    pub seeds: Vec<u64>,
    /// GA population per point.
    pub ga_population: usize,
    /// GA generation count per point.
    pub ga_iterations: usize,
    /// Memory-reuse policy for every point.
    pub policy: ReusePolicy,
    /// HT transfer batch (low-latency points always use 1).
    pub batch: usize,
    /// How the engine walks the grid (default: exhaustive).
    pub search: SearchStrategy,
}

/// One point of the expanded sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Model name.
    pub model: String,
    /// Pipeline mode.
    pub mode: PipelineMode,
    /// Label of the hardware configuration (from the grid expansion).
    pub hw_label: String,
    /// The hardware configuration itself.
    pub hw: HardwareConfig,
    /// GA seed for this point.
    pub seed: u64,
}

impl SweepPoint {
    /// Stable identity of the point inside a report
    /// (`model/mode/hardware/seed`), the key sweep diffs join on.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/seed{}",
            self.model, self.mode, self.hw_label, self.seed
        )
    }
}

impl SweepSpec {
    /// Parses and validates a spec from JSON text.
    ///
    /// Recognized fields (unknown fields are rejected so typos fail
    /// loudly):
    ///
    /// * `models` — required, non-empty array of model names.
    /// * `hardware` — required: one grid object or an array of grid
    ///   objects. A grid has an optional `base` preset name
    ///   (`puma`, `small_test`) and per-knob axes (`chips`,
    ///   `cores_per_chip`, `crossbars_per_core`, `crossbar_size`,
    ///   `parallelism`, `local_memory_kb`, `mvm_latency`,
    ///   `noc_link_bw`), each a scalar or an array.
    /// * `modes` — optional array of `"ht"` / `"ll"` (default
    ///   `["ht"]`).
    /// * `master_seed` — optional integer (default 1).
    /// * `seeds` — optional array of GA seeds; when omitted,
    ///   `num_seeds` (default 1) seeds are split from `master_seed`.
    /// * `ga` — optional `{ "population": P, "iterations": I }`
    ///   (default 16×24, the fast test configuration).
    /// * `policy` — optional `"naive"` / `"add"` / `"ag"` (default
    ///   `"ag"`).
    /// * `batch` — optional HT transfer batch (default 2).
    /// * `search` — optional strategy object (default exhaustive):
    ///   `{ "strategy": "exhaustive" }` or `{ "strategy": "halving",
    ///   "rungs": [2, 8, 24], "keep_fraction": 0.5,
    ///   "prune_margin": 0.25 }`. Halving rungs must be strictly
    ///   increasing GA generation budgets ending at `ga.iterations`;
    ///   when omitted they default to a divide-by-3 ladder
    ///   ([`HalvingSpec::default_rungs`]).
    ///
    /// # Errors
    ///
    /// [`ExploreError::InvalidSpec`] describing the offending field.
    pub fn from_json(json: &str) -> Result<Self, ExploreError> {
        let value = serde_json::parse_value(json).map_err(|e| ExploreError::InvalidSpec {
            detail: format!("not valid JSON: {e}"),
        })?;
        Self::from_value(&value)
    }

    fn from_value(value: &Value) -> Result<Self, ExploreError> {
        let entries = as_object(value, "sweep spec")?;
        const KNOWN: [&str; 10] = [
            "master_seed",
            "models",
            "modes",
            "hardware",
            "seeds",
            "num_seeds",
            "ga",
            "policy",
            "batch",
            "search",
        ];
        for (key, _) in entries {
            if !KNOWN.contains(&key.as_str()) {
                return Err(invalid(format!(
                    "unknown field `{key}` (known fields: {})",
                    KNOWN.join(", ")
                )));
            }
        }

        let master_seed = match value.get("master_seed") {
            Some(v) => as_u64(v, "master_seed")?,
            None => 1,
        };

        let models = match value.get("models") {
            Some(Value::Seq(items)) if !items.is_empty() => items
                .iter()
                .map(|v| as_string(v, "models entry"))
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) | None => {
                return Err(invalid("`models` must be a non-empty array of model names"))
            }
        };
        reject_duplicates(&models, "models")?;

        let modes = match value.get("modes") {
            None => vec![PipelineMode::HighThroughput],
            Some(Value::Seq(items)) if !items.is_empty() => items
                .iter()
                .map(|v| parse_mode(&as_string(v, "modes entry")?))
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => {
                return Err(invalid(
                    "`modes` must be a non-empty array of \"ht\"/\"ll\"",
                ))
            }
        };
        let mode_names: Vec<String> = modes.iter().map(|m| m.to_string()).collect();
        reject_duplicates(&mode_names, "modes")?;

        let hardware = match value.get("hardware") {
            Some(Value::Seq(grids)) if !grids.is_empty() => {
                let mut out = Vec::new();
                for g in grids {
                    out.extend(parse_grid(g)?);
                }
                out
            }
            Some(v @ Value::Map(_)) => parse_grid(v)?,
            Some(_) | None => {
                return Err(invalid(
                    "`hardware` must be a grid object or a non-empty array of grid objects",
                ))
            }
        };
        let hw_labels: Vec<String> = hardware.iter().map(|(l, _)| l.clone()).collect();
        reject_duplicates(&hw_labels, "hardware grid points")?;

        let seeds = match (value.get("seeds"), value.get("num_seeds")) {
            (Some(_), Some(_)) => {
                return Err(invalid("give either `seeds` or `num_seeds`, not both"))
            }
            (Some(Value::Seq(items)), None) if !items.is_empty() => items
                .iter()
                .map(|v| as_u64(v, "seeds entry"))
                .collect::<Result<Vec<_>, _>>()?,
            (Some(_), None) => {
                return Err(invalid("`seeds` must be a non-empty array of integers"))
            }
            (None, num) => {
                let n = match num {
                    Some(v) => match as_u64(v, "num_seeds")? {
                        0 => return Err(invalid("`num_seeds` must be at least 1")),
                        n => n as usize,
                    },
                    None => 1,
                };
                (0..n as u64)
                    .map(|i| split_stream_seed(master_seed, SEED_STAGE, i))
                    .collect()
            }
        };
        let seed_names: Vec<String> = seeds.iter().map(u64::to_string).collect();
        reject_duplicates(&seed_names, "seeds")?;

        let (ga_population, ga_iterations) = match value.get("ga") {
            None => (16, 24),
            Some(v) => {
                let entries = as_object(v, "`ga`")?;
                for (key, _) in entries {
                    if key != "population" && key != "iterations" {
                        return Err(invalid(format!(
                            "unknown `ga` field `{key}` (known: population, iterations)"
                        )));
                    }
                }
                let pop = match v.get("population") {
                    Some(p) => as_u64(p, "ga.population")? as usize,
                    None => 16,
                };
                let iters = match v.get("iterations") {
                    Some(i) => as_u64(i, "ga.iterations")? as usize,
                    None => 24,
                };
                if pop == 0 || iters == 0 {
                    return Err(invalid(
                        "`ga.population` and `ga.iterations` must be positive",
                    ));
                }
                (pop, iters)
            }
        };

        let policy = match value.get("policy") {
            None => ReusePolicy::AgReuse,
            Some(v) => match as_string(v, "policy")?.as_str() {
                "naive" => ReusePolicy::Naive,
                "add" => ReusePolicy::AddReuse,
                "ag" => ReusePolicy::AgReuse,
                other => {
                    return Err(invalid(format!(
                        "unknown policy `{other}` (naive | add | ag)"
                    )))
                }
            },
        };

        let batch = match value.get("batch") {
            Some(v) => {
                let b = as_u64(v, "batch")? as usize;
                if b == 0 {
                    return Err(invalid("`batch` must be at least 1"));
                }
                b
            }
            None => 2,
        };

        let search = match value.get("search") {
            None => SearchStrategy::Exhaustive,
            Some(v) => parse_search(v, ga_iterations)?,
        };

        let spec = SweepSpec {
            master_seed,
            models,
            modes,
            hardware,
            seeds,
            ga_population,
            ga_iterations,
            policy,
            batch,
            search,
        };
        // Expand once so oversized sweeps are rejected at parse time.
        spec.points()?;
        Ok(spec)
    }

    /// Number of points the sweep expands to.
    pub fn len(&self) -> usize {
        self.models.len() * self.modes.len() * self.hardware.len() * self.seeds.len()
    }

    /// `true` when any axis is empty (the sweep has no points).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cross-product into points, in the fixed axis order
    /// models → modes → hardware → seeds. The order is part of the
    /// determinism contract: point index, and hence any master-seed
    /// derived quantity, depends only on the spec.
    ///
    /// # Errors
    ///
    /// [`ExploreError::InvalidSpec`] when an axis is empty or the
    /// expansion exceeds [`MAX_SWEEP_POINTS`].
    pub fn points(&self) -> Result<Vec<SweepPoint>, ExploreError> {
        if self.is_empty() {
            return Err(invalid("sweep has no points (an axis is empty)"));
        }
        if self.len() > MAX_SWEEP_POINTS {
            return Err(invalid(format!(
                "sweep expands to {} points, more than the {MAX_SWEEP_POINTS} cap",
                self.len()
            )));
        }
        let mut out = Vec::with_capacity(self.len());
        for model in &self.models {
            for &mode in &self.modes {
                for (label, hw) in &self.hardware {
                    for &seed in &self.seeds {
                        out.push(SweepPoint {
                            model: model.clone(),
                            mode,
                            hw_label: label.clone(),
                            hw: hw.clone(),
                            seed,
                        });
                    }
                }
            }
        }
        Ok(out)
    }
}

fn invalid(detail: impl Into<String>) -> ExploreError {
    ExploreError::InvalidSpec {
        detail: detail.into(),
    }
}

fn as_object<'a>(v: &'a Value, ctx: &str) -> Result<&'a [(String, Value)], ExploreError> {
    match v {
        Value::Map(entries) => Ok(entries),
        other => Err(invalid(format!(
            "{ctx} must be an object, found {}",
            other.kind()
        ))),
    }
}

fn as_string(v: &Value, ctx: &str) -> Result<String, ExploreError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        other => Err(invalid(format!(
            "{ctx} must be a string, found {}",
            other.kind()
        ))),
    }
}

fn as_u64(v: &Value, ctx: &str) -> Result<u64, ExploreError> {
    match v {
        Value::Int(i) => u64::try_from(*i)
            .map_err(|_| invalid(format!("{ctx} must be a non-negative 64-bit integer"))),
        other => Err(invalid(format!(
            "{ctx} must be an integer, found {}",
            other.kind()
        ))),
    }
}

fn as_f64(v: &Value, ctx: &str) -> Result<f64, ExploreError> {
    match v {
        Value::Float(f) => Ok(*f),
        Value::Int(i) => Ok(*i as f64),
        other => Err(invalid(format!(
            "{ctx} must be a number, found {}",
            other.kind()
        ))),
    }
}

/// Accepts a scalar or an array for a grid axis.
fn usize_axis(v: &Value, ctx: &str) -> Result<Vec<usize>, ExploreError> {
    match v {
        Value::Seq(items) => items
            .iter()
            .map(|i| as_u64(i, ctx).map(|n| n as usize))
            .collect(),
        scalar => Ok(vec![as_u64(scalar, ctx)? as usize]),
    }
}

fn u64_axis(v: &Value, ctx: &str) -> Result<Vec<u64>, ExploreError> {
    match v {
        Value::Seq(items) => items.iter().map(|i| as_u64(i, ctx)).collect(),
        scalar => Ok(vec![as_u64(scalar, ctx)?]),
    }
}

fn f64_axis(v: &Value, ctx: &str) -> Result<Vec<f64>, ExploreError> {
    match v {
        Value::Seq(items) => items.iter().map(|i| as_f64(i, ctx)).collect(),
        scalar => Ok(vec![as_f64(scalar, ctx)?]),
    }
}

fn parse_mode(s: &str) -> Result<PipelineMode, ExploreError> {
    match s.to_ascii_lowercase().as_str() {
        "ht" | "high_throughput" => Ok(PipelineMode::HighThroughput),
        "ll" | "low_latency" => Ok(PipelineMode::LowLatency),
        other => Err(invalid(format!(
            "unknown pipeline mode `{other}` (ht | ll)"
        ))),
    }
}

fn parse_grid(v: &Value) -> Result<Vec<(String, HardwareConfig)>, ExploreError> {
    let entries = as_object(v, "hardware grid")?;
    const KNOWN: [&str; 9] = [
        "base",
        "chips",
        "cores_per_chip",
        "crossbars_per_core",
        "crossbar_size",
        "parallelism",
        "local_memory_kb",
        "mvm_latency",
        "noc_link_bw",
    ];
    for (key, _) in entries {
        if !KNOWN.contains(&key.as_str()) {
            return Err(invalid(format!(
                "unknown hardware field `{key}` (known fields: {})",
                KNOWN.join(", ")
            )));
        }
    }
    let base = match v.get("base") {
        Some(b) => as_string(b, "hardware.base")?,
        None => "puma".to_string(),
    };
    let mut grid =
        HardwareGrid::over_preset(&base).map_err(|e| invalid(format!("hardware.base: {e}")))?;
    if let Some(axis) = v.get("chips") {
        grid.chips = usize_axis(axis, "hardware.chips")?;
    }
    if let Some(axis) = v.get("cores_per_chip") {
        grid.cores_per_chip = usize_axis(axis, "hardware.cores_per_chip")?;
    }
    if let Some(axis) = v.get("crossbars_per_core") {
        grid.crossbars_per_core = usize_axis(axis, "hardware.crossbars_per_core")?;
    }
    if let Some(axis) = v.get("crossbar_size") {
        grid.crossbar_size = usize_axis(axis, "hardware.crossbar_size")?;
    }
    if let Some(axis) = v.get("parallelism") {
        grid.parallelism = usize_axis(axis, "hardware.parallelism")?;
    }
    if let Some(axis) = v.get("local_memory_kb") {
        grid.local_memory_kb = usize_axis(axis, "hardware.local_memory_kb")?;
    }
    if let Some(axis) = v.get("mvm_latency") {
        grid.mvm_latency = u64_axis(axis, "hardware.mvm_latency")?;
    }
    if let Some(axis) = v.get("noc_link_bw") {
        grid.noc_link_bw = f64_axis(axis, "hardware.noc_link_bw")?;
    }
    grid.enumerate()
        .map_err(|e| invalid(format!("hardware grid: {e}")))
}

fn parse_search(v: &Value, ga_iterations: usize) -> Result<SearchStrategy, ExploreError> {
    let entries = as_object(v, "`search`")?;
    const KNOWN: [&str; 4] = ["strategy", "rungs", "keep_fraction", "prune_margin"];
    for (key, _) in entries {
        if !KNOWN.contains(&key.as_str()) {
            return Err(invalid(format!(
                "unknown `search` field `{key}` (known fields: {})",
                KNOWN.join(", ")
            )));
        }
    }
    let strategy = match v.get("strategy") {
        Some(s) => as_string(s, "search.strategy")?,
        None => {
            return Err(invalid(
                "`search` needs a `strategy` (exhaustive | halving)",
            ))
        }
    };
    match strategy.as_str() {
        "exhaustive" => {
            for key in ["rungs", "keep_fraction", "prune_margin"] {
                if v.get(key).is_some() {
                    return Err(invalid(format!(
                        "`search.{key}` only applies to the halving strategy"
                    )));
                }
            }
            Ok(SearchStrategy::Exhaustive)
        }
        "halving" => {
            let rungs = match v.get("rungs") {
                None => HalvingSpec::default_rungs(ga_iterations),
                Some(axis) => {
                    let rungs: Vec<usize> = u64_axis(axis, "search.rungs")?
                        .into_iter()
                        .map(|b| b as usize)
                        .collect();
                    if rungs.is_empty() || rungs[0] == 0 {
                        return Err(invalid(
                            "`search.rungs` must be a non-empty array of positive \
                             GA generation budgets",
                        ));
                    }
                    if !rungs.windows(2).all(|w| w[0] < w[1]) {
                        return Err(invalid("`search.rungs` must be strictly increasing"));
                    }
                    if rungs.last() != Some(&ga_iterations) {
                        return Err(invalid(format!(
                            "the final `search.rungs` entry must equal `ga.iterations` \
                             ({ga_iterations}) so survivors get the full budget"
                        )));
                    }
                    rungs
                }
            };
            let keep_fraction = match v.get("keep_fraction") {
                None => HalvingSpec::DEFAULT_KEEP_FRACTION,
                Some(f) => as_f64(f, "search.keep_fraction")?,
            };
            if !keep_fraction.is_finite() || keep_fraction <= 0.0 || keep_fraction > 1.0 {
                return Err(invalid("`search.keep_fraction` must be within (0, 1]"));
            }
            let prune_margin = match v.get("prune_margin") {
                None => HalvingSpec::DEFAULT_PRUNE_MARGIN,
                Some(f) => as_f64(f, "search.prune_margin")?,
            };
            if !prune_margin.is_finite() || prune_margin < 0.0 {
                return Err(invalid(
                    "`search.prune_margin` must be a non-negative number",
                ));
            }
            Ok(SearchStrategy::Halving(HalvingSpec {
                rungs,
                keep_fraction,
                prune_margin,
            }))
        }
        other => Err(invalid(format!(
            "unknown search strategy `{other}` (exhaustive | halving)"
        ))),
    }
}

fn reject_duplicates(items: &[String], what: &str) -> Result<(), ExploreError> {
    let mut seen = std::collections::HashSet::new();
    for item in items {
        if !seen.insert(item.as_str()) {
            return Err(invalid(format!("duplicate entry `{item}` in {what}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_spec_parses_to_sixteen_points() {
        let spec = SweepSpec::from_json(EXAMPLE_SPEC).unwrap();
        assert_eq!(spec.models.len(), 2);
        assert_eq!(spec.modes.len(), 2);
        assert_eq!(spec.hardware.len(), 4);
        assert_eq!(spec.seeds, vec![1]);
        let points = spec.points().unwrap();
        assert_eq!(points.len(), 16);
        assert_eq!(points[0].key(), "tiny_cnn/HT/small_test+chips1+par4/seed1");
    }

    #[test]
    fn derived_seeds_split_from_master() {
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},
                "master_seed":9,"num_seeds":3}"#,
        )
        .unwrap();
        assert_eq!(spec.seeds.len(), 3);
        let rederived: Vec<u64> = (0..3).map(|i| split_stream_seed(9, 0, i)).collect();
        assert_eq!(spec.seeds, rederived);
        // Seeds depend on the master, so two sweeps never collide.
        let other = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},
                "master_seed":10,"num_seeds":3}"#,
        )
        .unwrap();
        assert_ne!(spec.seeds, other.seeds);
    }

    #[test]
    fn malformed_specs_are_structured_errors() {
        for (json, needle) in [
            ("[]", "must be an object"),
            ("{", "not valid JSON"),
            (r#"{"models":[],"hardware":{}}"#, "non-empty array"),
            (r#"{"models":["tiny_mlp"]}"#, "`hardware`"),
            (
                r#"{"models":["tiny_mlp"],"hardware":{"base":"tpu"}}"#,
                "unknown hardware preset",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{"chips":[0]}}"#,
                "hardware grid",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"modes":["fast"]}"#,
                "unknown pipeline mode",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"typo_field":1}"#,
                "unknown field `typo_field`",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"seeds":[1],"num_seeds":2}"#,
                "not both",
            ),
            (
                r#"{"models":["tiny_mlp","tiny_mlp"],"hardware":{}}"#,
                "duplicate entry",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"ga":{"population":0}}"#,
                "must be positive",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"batch":0}"#,
                "`batch`",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{},"num_seeds":0}"#,
                "`num_seeds` must be at least 1",
            ),
            (
                r#"{"models":["tiny_mlp"],"hardware":{"chips":-1}}"#,
                "non-negative",
            ),
        ] {
            let err = SweepSpec::from_json(json).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "spec {json} gave `{msg}`, expected to contain `{needle}`"
            );
        }
    }

    #[test]
    fn oversized_sweeps_are_capped() {
        let json = format!(
            r#"{{"models":["tiny_mlp"],"hardware":{{"base":"small_test"}},"num_seeds":{}}}"#,
            MAX_SWEEP_POINTS + 1
        );
        assert!(matches!(
            SweepSpec::from_json(&json),
            Err(ExploreError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn search_section_parses_with_defaults_and_overrides() {
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},
                "ga":{"population":4,"iterations":24},
                "search":{"strategy":"halving"}}"#,
        )
        .unwrap();
        match &spec.search {
            SearchStrategy::Halving(h) => {
                assert_eq!(h.rungs, vec![2, 8, 24]);
                assert_eq!(h.keep_fraction, HalvingSpec::DEFAULT_KEEP_FRACTION);
                assert_eq!(h.prune_margin, HalvingSpec::DEFAULT_PRUNE_MARGIN);
            }
            other => panic!("expected halving, got {other:?}"),
        }
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},
                "ga":{"population":4,"iterations":6},
                "search":{"strategy":"halving","rungs":[1,6],
                          "keep_fraction":0.4,"prune_margin":0.0}}"#,
        )
        .unwrap();
        assert_eq!(
            spec.search,
            SearchStrategy::Halving(HalvingSpec {
                rungs: vec![1, 6],
                keep_fraction: 0.4,
                prune_margin: 0.0,
            })
        );
        // Default and explicit exhaustive are the same strategy.
        let default =
            SweepSpec::from_json(r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"}}"#)
                .unwrap();
        let explicit = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],"hardware":{"base":"small_test"},
                "search":{"strategy":"exhaustive"}}"#,
        )
        .unwrap();
        assert_eq!(default.search, SearchStrategy::Exhaustive);
        assert_eq!(explicit.search, SearchStrategy::Exhaustive);
    }

    #[test]
    fn default_rung_ladders_end_at_the_full_budget() {
        assert_eq!(HalvingSpec::default_rungs(24), vec![2, 8, 24]);
        assert_eq!(HalvingSpec::default_rungs(200), vec![2, 7, 22, 66, 200]);
        assert_eq!(HalvingSpec::default_rungs(6), vec![2, 6]);
        assert_eq!(HalvingSpec::default_rungs(2), vec![2]);
        assert_eq!(HalvingSpec::default_rungs(1), vec![1]);
        assert_eq!(HalvingSpec::default_rungs(0), vec![1]);
        for i in 1..=64 {
            let rungs = HalvingSpec::default_rungs(i);
            assert!(rungs.windows(2).all(|w| w[0] < w[1]), "ladder for {i}");
            assert_eq!(rungs.last(), Some(&i));
        }
    }

    #[test]
    fn malformed_search_sections_are_structured_errors() {
        let base = |search: &str| {
            format!(
                r#"{{"models":["tiny_mlp"],"hardware":{{"base":"small_test"}},
                    "ga":{{"population":4,"iterations":6}},"search":{search}}}"#
            )
        };
        for (search, needle) in [
            (r#"{}"#, "needs a `strategy`"),
            (r#"{"strategy":"random"}"#, "unknown search strategy"),
            (
                r#"{"strategy":"halving","typo":1}"#,
                "unknown `search` field",
            ),
            (
                r#"{"strategy":"exhaustive","rungs":[1,6]}"#,
                "only applies to the halving strategy",
            ),
            (
                r#"{"strategy":"halving","rungs":[]}"#,
                "non-empty array of positive",
            ),
            (
                r#"{"strategy":"halving","rungs":[0,6]}"#,
                "non-empty array of positive",
            ),
            (
                r#"{"strategy":"halving","rungs":[4,2,6]}"#,
                "strictly increasing",
            ),
            (
                r#"{"strategy":"halving","rungs":[1,2]}"#,
                "must equal `ga.iterations` (6)",
            ),
            (
                r#"{"strategy":"halving","keep_fraction":0}"#,
                "within (0, 1]",
            ),
            (
                r#"{"strategy":"halving","keep_fraction":1.5}"#,
                "within (0, 1]",
            ),
            (
                r#"{"strategy":"halving","prune_margin":-0.5}"#,
                "non-negative",
            ),
        ] {
            let err = SweepSpec::from_json(&base(search)).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "search {search} gave `{msg}`, expected to contain `{needle}`"
            );
        }
    }

    #[test]
    fn hardware_accepts_scalar_axes_and_grid_arrays() {
        let spec = SweepSpec::from_json(
            r#"{"models":["tiny_mlp"],
                "hardware":[{"base":"small_test","chips":1},
                            {"base":"small_test","chips":2,"parallelism":[4,8]}]}"#,
        )
        .unwrap();
        assert_eq!(spec.hardware.len(), 3);
        assert_eq!(spec.hardware[0].0, "small_test+chips1");
        assert_eq!(spec.hardware[2].1.parallelism, 8);
    }
}
