//! ONNX → PIMCOMP IR import.
//!
//! Resolves the ONNX value-name dataflow into [`Graph`] edges, reading
//! layer hyper-parameters from node attributes and weight shapes from
//! initializer dims (weight *values* are irrelevant to compilation and
//! are ignored). Batch dimensions (symbolic or 1) are stripped: PIMCOMP
//! compiles single-sample inference.

use crate::proto::{GraphProto, ModelProto, NodeProto};
use crate::OnnxError;
use pimcomp_ir::{Activation, EltwiseKind, Graph, GraphBuilder, NodeId, Op, PoolKind};
use std::collections::HashMap;

/// Imports a decoded ONNX model into a validated IR graph.
///
/// # Errors
///
/// * [`OnnxError::MissingGraph`] — model without a graph.
/// * [`OnnxError::UnsupportedOp`] — operator outside the supported
///   DNN-inference subset.
/// * [`OnnxError::Import`] — structural problems (unknown value names,
///   unsupported attribute combinations, shape conflicts).
/// * [`OnnxError::InvalidGraph`] — the converted graph failed final
///   validation (no input, cycle, …).
pub fn import_model(model: &ModelProto) -> Result<Graph, OnnxError> {
    let graph = model.graph.as_ref().ok_or(OnnxError::MissingGraph)?;
    import_graph(graph)
}

/// Imports raw `.onnx` bytes.
///
/// # Errors
///
/// Wire-format and import failures as in [`import_model`].
pub fn import_bytes(bytes: &[u8]) -> Result<Graph, OnnxError> {
    import_model(&ModelProto::decode(bytes)?)
}

fn import_graph(g: &GraphProto) -> Result<Graph, OnnxError> {
    let mut b = GraphBuilder::new(if g.name.is_empty() {
        "onnx_model"
    } else {
        g.name.as_str()
    });

    // Weight dims by initializer name.
    let weights: HashMap<&str, &[i64]> = g
        .initializer
        .iter()
        .map(|t| (t.name.as_str(), t.dims.as_slice()))
        .collect();

    // Value name -> producing IR node.
    let mut value: HashMap<String, NodeId> = HashMap::new();

    // Graph inputs that are not initializers become IR inputs.
    for vi in &g.input {
        if weights.contains_key(vi.name.as_str()) {
            continue;
        }
        let dims: Vec<usize> = vi
            .shape
            .dims
            .iter()
            .filter_map(|d| d.map(|v| v as usize))
            .filter(|&v| v > 0)
            .collect();
        // Strip a leading batch of 1 when a 4-D NCHW shape remains.
        let id = match dims.len() {
            4 if dims[0] == 1 => b.input(&vi.name, [dims[1], dims[2], dims[3]]),
            3 => b.input(&vi.name, [dims[0], dims[1], dims[2]]),
            2 if dims[0] == 1 => b.input_flat(&vi.name, dims[1]),
            1 => b.input_flat(&vi.name, dims[0]),
            _ => {
                return Err(OnnxError::Import {
                    detail: format!(
                        "input `{}` has unsupported shape {:?}",
                        vi.name, vi.shape.dims
                    ),
                })
            }
        };
        value.insert(vi.name.clone(), id);
    }

    for (idx, node) in g.node.iter().enumerate() {
        let name = if node.name.is_empty() {
            format!("{}_{}", node.op_type.to_lowercase(), idx)
        } else {
            node.name.clone()
        };
        let id = import_node(&mut b, node, &name, &value, &weights)?;
        for out in &node.output {
            value.insert(out.clone(), id);
        }
    }

    b.finish().map_err(|e| OnnxError::InvalidGraph {
        detail: e.to_string(),
    })
}

fn data_input(
    node: &NodeProto,
    i: usize,
    value: &HashMap<String, NodeId>,
) -> Result<NodeId, OnnxError> {
    let name = node.input.get(i).ok_or_else(|| OnnxError::Import {
        detail: format!("node `{}` missing input {i}", node.op_type),
    })?;
    value.get(name).copied().ok_or_else(|| OnnxError::Import {
        detail: format!("unknown value `{name}` consumed by `{}`", node.op_type),
    })
}

fn pair(v: &[i64], default: usize) -> (usize, usize) {
    match v {
        [a] => (*a as usize, *a as usize),
        [a, b, ..] => (*a as usize, *b as usize),
        [] => (default, default),
    }
}

/// Symmetric `(ph, pw)` from an ONNX `pads` attribute
/// `[begin_h, begin_w, end_h, end_w]`.
fn sym_pads(node: &NodeProto) -> Result<(usize, usize), OnnxError> {
    let pads = node.attr_ints("pads");
    match pads {
        [] => Ok((0, 0)),
        [bh, bw, eh, ew] if bh == eh && bw == ew => Ok((*bh as usize, *bw as usize)),
        [b, e] if b == e => Ok((*b as usize, *b as usize)),
        other => Err(OnnxError::Import {
            detail: format!(
                "asymmetric padding {other:?} on `{}` is not supported",
                node.op_type
            ),
        }),
    }
}

fn import_node(
    b: &mut GraphBuilder,
    node: &NodeProto,
    name: &str,
    value: &HashMap<String, NodeId>,
    weights: &HashMap<&str, &[i64]>,
) -> Result<NodeId, OnnxError> {
    let err = |detail: String| OnnxError::Import { detail };
    let ir = |e: pimcomp_ir::IrError| OnnxError::Import {
        detail: e.to_string(),
    };

    match node.op_type.as_str() {
        "Conv" => {
            let x = data_input(node, 0, value)?;
            let wname = node
                .input
                .get(1)
                .ok_or_else(|| err(format!("Conv `{name}` has no weight input")))?;
            let wdims = weights.get(wname.as_str()).ok_or_else(|| {
                err(format!(
                    "Conv `{name}` weight `{wname}` is not an initializer"
                ))
            })?;
            if wdims.len() != 4 {
                return Err(err(format!(
                    "Conv `{name}` weight has {} dims, expected 4",
                    wdims.len()
                )));
            }
            let out_channels = wdims[0] as usize;
            let kernel = match node.attr_ints("kernel_shape") {
                [] => (wdims[2] as usize, wdims[3] as usize),
                ks => pair(ks, 1),
            };
            let strides = pair(node.attr_ints("strides"), 1);
            let padding = sym_pads(node)?;
            let groups = node.attr_i("group", 1) as usize;
            let dil = pair(node.attr_ints("dilations"), 1);
            if dil != (1, 1) {
                return Err(OnnxError::UnsupportedOp {
                    op: format!("Conv with dilation {dil:?}"),
                });
            }
            let in_channels = b.shape(x).channels();
            b.add(
                name,
                Op::Conv2d(pimcomp_ir::Conv2d {
                    in_channels,
                    out_channels,
                    kernel,
                    stride: strides,
                    padding,
                    groups,
                    bias: node.input.len() > 2,
                }),
                vec![x],
            )
            .map_err(ir)
        }
        "Gemm" | "MatMul" => {
            let x = data_input(node, 0, value)?;
            let wname = node
                .input
                .get(1)
                .ok_or_else(|| err(format!("Gemm `{name}` has no weight input")))?;
            let wdims = weights.get(wname.as_str()).ok_or_else(|| {
                err(format!(
                    "Gemm `{name}` weight `{wname}` is not an initializer"
                ))
            })?;
            if wdims.len() != 2 {
                return Err(err(format!("Gemm `{name}` weight must be 2-D")));
            }
            let trans_b = node.attr_i("transB", 0) != 0;
            let out_features = if trans_b { wdims[0] } else { wdims[1] } as usize;
            b.linear(name, x, out_features).map_err(ir)
        }
        "MaxPool" | "AveragePool" => {
            let x = data_input(node, 0, value)?;
            let kind = if node.op_type == "MaxPool" {
                PoolKind::Max
            } else {
                PoolKind::Avg
            };
            let kernel = pair(node.attr_ints("kernel_shape"), 1);
            let strides = pair(node.attr_ints("strides"), kernel.0);
            let padding = sym_pads(node)?;
            let ceil_mode = node.attr_i("ceil_mode", 0) != 0;
            b.pool(name, x, kind, kernel, strides, padding, ceil_mode)
                .map_err(ir)
        }
        "GlobalAveragePool" => {
            let x = data_input(node, 0, value)?;
            b.global_avg_pool(name, x).map_err(ir)
        }
        "Relu" => {
            let x = data_input(node, 0, value)?;
            b.activation(name, x, Activation::Relu).map_err(ir)
        }
        "Sigmoid" => {
            let x = data_input(node, 0, value)?;
            b.activation(name, x, Activation::Sigmoid).map_err(ir)
        }
        "Tanh" => {
            let x = data_input(node, 0, value)?;
            b.activation(name, x, Activation::Tanh).map_err(ir)
        }
        "Concat" => {
            let axis = node.attr_i("axis", 1);
            if axis != 1 {
                return Err(OnnxError::UnsupportedOp {
                    op: format!("Concat with axis {axis}"),
                });
            }
            let inputs: Result<Vec<NodeId>, OnnxError> = (0..node.input.len())
                .map(|i| data_input(node, i, value))
                .collect();
            b.concat(name, inputs?).map_err(ir)
        }
        "Add" | "Sum" => {
            let a = data_input(node, 0, value)?;
            let c = data_input(node, 1, value)?;
            b.add(name, Op::Eltwise(EltwiseKind::Add), vec![a, c])
                .map_err(ir)
        }
        "Mul" => {
            let a = data_input(node, 0, value)?;
            let c = data_input(node, 1, value)?;
            b.add(name, Op::Eltwise(EltwiseKind::Mul), vec![a, c])
                .map_err(ir)
        }
        "Flatten" | "Reshape" => {
            // Reshape in classification nets collapses to the FC input;
            // both are represented as Flatten (a zero-cost view).
            let x = data_input(node, 0, value)?;
            b.flatten(name, x).map_err(ir)
        }
        "Softmax" => {
            let x = data_input(node, 0, value)?;
            b.softmax(name, x).map_err(ir)
        }
        "BatchNormalization" => {
            let x = data_input(node, 0, value)?;
            b.batch_norm(name, x).map_err(ir)
        }
        "Dropout" | "Identity" => {
            let x = data_input(node, 0, value)?;
            b.dropout(name, x).map_err(ir)
        }
        "LRN" => {
            let x = data_input(node, 0, value)?;
            let size = node.attr_i("size", 5) as usize;
            b.lrn(name, x, size).map_err(ir)
        }
        "Pad" => {
            let x = data_input(node, 0, value)?;
            let (ph, pw) = sym_pads(node)?;
            b.pad(name, x, ph, pw).map_err(ir)
        }
        other => Err(OnnxError::UnsupportedOp { op: other.into() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::export_graph;

    #[test]
    fn unsupported_op_is_reported() {
        let mut g = GraphProto {
            name: "g".into(),
            ..Default::default()
        };
        g.input.push(crate::proto::ValueInfoProto {
            name: "x".into(),
            elem_type: 1,
            shape: crate::proto::TensorShapeProto {
                dims: vec![Some(1), Some(3), Some(8), Some(8)],
            },
        });
        g.node.push(NodeProto {
            input: vec!["x".into()],
            output: vec!["y".into()],
            name: "rnn".into(),
            op_type: "LSTM".into(),
            ..Default::default()
        });
        let model = ModelProto {
            graph: Some(g),
            ..Default::default()
        };
        assert!(matches!(
            import_model(&model),
            Err(OnnxError::UnsupportedOp { .. })
        ));
    }

    #[test]
    fn invalid_graph_is_an_error_not_a_panic() {
        // A deliberately malformed model: it decodes fine and every
        // node converts, but the assembled graph has no input node, so
        // final validation must reject it with a structured error.
        let g = GraphProto {
            name: "no_inputs".into(),
            ..Default::default()
        };
        let model = ModelProto {
            graph: Some(g),
            ..Default::default()
        };
        let err = import_model(&model).unwrap_err();
        assert!(matches!(err, OnnxError::InvalidGraph { .. }), "{err}");
        assert!(err.to_string().contains("validation"));

        // The same property holds end to end through the wire format.
        let bytes = model.encode();
        assert!(matches!(
            import_bytes(&bytes),
            Err(OnnxError::InvalidGraph { .. })
        ));
    }

    #[test]
    fn round_trip_preserves_tiny_cnn_structure() {
        let original = pimcomp_ir::models::tiny_cnn();
        let model = export_graph(&original);
        let bytes = model.encode();
        let back = import_bytes(&bytes).unwrap();
        assert_eq!(back.node_count(), original.node_count());
        // Same op multiset in topo order.
        let ops = |g: &Graph| -> Vec<String> {
            g.topo_order()
                .into_iter()
                .map(|id| g.node(id).op.mnemonic().to_string())
                .collect()
        };
        assert_eq!(ops(&back), ops(&original));
        // Same shapes at every node.
        for (a, z) in original.topo_order().iter().zip(back.topo_order()) {
            assert_eq!(original.node(*a).output_shape, back.node(z).output_shape);
        }
    }

    #[test]
    fn round_trip_preserves_branching_models() {
        for original in [
            pimcomp_ir::models::two_branch(),
            pimcomp_ir::models::squeezenet(),
            pimcomp_ir::models::resnet18(),
        ] {
            let model = export_graph(&original);
            let back = import_bytes(&model.encode())
                .unwrap_or_else(|e| panic!("{}: {e}", original.name()));
            assert_eq!(
                back.node_count(),
                original.node_count(),
                "{}",
                original.name()
            );
            let a = pimcomp_ir::GraphStats::of(&original);
            let z = pimcomp_ir::GraphStats::of(&back);
            assert_eq!(a.params, z.params, "{}", original.name());
            assert_eq!(a.macs, z.macs, "{}", original.name());
        }
    }
}
