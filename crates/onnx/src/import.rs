//! ONNX → PIMCOMP IR import.
//!
//! Resolves the ONNX value-name dataflow into [`Graph`] edges, reading
//! layer hyper-parameters from node attributes and weight shapes from
//! initializer dims (weight *values* are irrelevant to compilation and
//! are ignored). Batch dimensions (symbolic or 1) are stripped: PIMCOMP
//! compiles single-sample inference.

use crate::proto::{GraphProto, ModelProto, NodeProto};
use crate::OnnxError;
use pimcomp_ir::{Activation, Dim, EltwiseKind, Graph, GraphBuilder, NodeId, Op, PoolKind, Shape};
use std::collections::{HashMap, HashSet};

/// Imports a decoded ONNX model into a validated IR graph.
///
/// # Errors
///
/// * [`OnnxError::MissingGraph`] — model without a graph.
/// * [`OnnxError::UnsupportedOp`] — operator outside the supported
///   DNN-inference subset.
/// * [`OnnxError::Import`] — structural problems (unknown value names,
///   unsupported attribute combinations, shape conflicts).
/// * [`OnnxError::InvalidGraph`] — the converted graph failed final
///   validation (no input, cycle, …).
pub fn import_model(model: &ModelProto) -> Result<Graph, OnnxError> {
    let graph = model.graph.as_ref().ok_or(OnnxError::MissingGraph)?;
    import_graph(graph)
}

/// Imports raw `.onnx` bytes.
///
/// # Errors
///
/// Wire-format and import failures as in [`import_model`].
pub fn import_bytes(bytes: &[u8]) -> Result<Graph, OnnxError> {
    import_model(&ModelProto::decode(bytes)?)
}

fn import_graph(g: &GraphProto) -> Result<Graph, OnnxError> {
    let mut b = GraphBuilder::new(if g.name.is_empty() {
        "onnx_model"
    } else {
        g.name.as_str()
    });

    // Weight dims by initializer name.
    let weights: HashMap<&str, &[i64]> = g
        .initializer
        .iter()
        .map(|t| (t.name.as_str(), t.dims.as_slice()))
        .collect();

    // Value name -> producing IR node.
    let mut value: HashMap<String, NodeId> = HashMap::new();

    // Graph inputs that are not initializers become IR inputs.
    for vi in &g.input {
        if weights.contains_key(vi.name.as_str()) {
            continue;
        }
        // `dim_param` (None) and non-positive `dim_value`s are dynamic:
        // a leading dynamic dim is the batch (stripped — PIMCOMP
        // compiles single-sample inference), any other becomes the
        // symbolic sequence length.
        let raw: Vec<Option<usize>> = vi
            .shape
            .dims
            .iter()
            .map(|d| match d {
                Some(v) if *v > 0 => Some(*v as usize),
                _ => None,
            })
            .collect();
        let bad_shape = || OnnxError::Import {
            detail: format!(
                "input `{}` has unsupported shape {:?}",
                vi.name, vi.shape.dims
            ),
        };
        let id = match raw.as_slice() {
            // 4-D NCHW with a batch of 1 (or dynamic batch).
            [None | Some(1), Some(c), Some(h), Some(w)] => b.input(&vi.name, [*c, *h, *w]),
            // [batch, seq, hidden] token stream.
            [None | Some(1), None, Some(f)] => b.input_seq(&vi.name, *f),
            [Some(c), Some(h), Some(w)] => b.input(&vi.name, [*c, *h, *w]),
            [None, Some(f)] => b.input_seq(&vi.name, *f),
            [Some(1), Some(f)] => b.input_flat(&vi.name, *f),
            [Some(s), Some(f)] => {
                // A fixed [seq, hidden] token stream.
                b.add(
                    &vi.name,
                    Op::Input {
                        shape: Shape::new([*s, *f]),
                    },
                    vec![],
                )
                .map_err(|_| bad_shape())?
            }
            [Some(f)] => b.input_flat(&vi.name, *f),
            _ => return Err(bad_shape()),
        };
        value.insert(vi.name.clone(), id);
    }

    let nodes = fuse_erf_gelu(g);
    for (idx, node) in nodes.iter().enumerate() {
        let name = if node.name.is_empty() {
            format!("{}_{}", node.op_type.to_lowercase(), idx)
        } else {
            node.name.clone()
        };
        let id = import_node(&mut b, node, &name, &value, &weights)?;
        for out in &node.output {
            value.insert(out.clone(), id);
        }
    }

    b.finish().map_err(|e| OnnxError::InvalidGraph {
        detail: e.to_string(),
    })
}

/// Structurally fuses the exported-GELU subgraph
/// `Div(x, √2) → Erf → Add(·, 1) → Mul(·, x) [→ Mul(·, 0.5)]`
/// into a single synthetic `Gelu` node (the pattern HuggingFace-style
/// exporters emit; constant *values* are never materialized here, so the
/// match is purely structural).
///
/// Unmatched nodes pass through unchanged, in their original order; the
/// fused node takes the position (and final output) of the last node of
/// the pattern.
fn fuse_erf_gelu(g: &GraphProto) -> Vec<NodeProto> {
    // value name -> producing node index; node index -> consumer indices.
    let mut producer: HashMap<&str, usize> = HashMap::new();
    for (i, n) in g.node.iter().enumerate() {
        for out in &n.output {
            producer.insert(out.as_str(), i);
        }
    }
    let consumers = |val: &str| -> Vec<usize> {
        g.node
            .iter()
            .enumerate()
            .filter(|(_, n)| n.input.iter().any(|i| i == val))
            .map(|(i, _)| i)
            .collect()
    };

    let mut dropped: HashSet<usize> = HashSet::new();
    // last-node index -> replacement Gelu node.
    let mut fused: HashMap<usize, NodeProto> = HashMap::new();

    for (ei, erf) in g.node.iter().enumerate() {
        if erf.op_type != "Erf" || erf.input.len() != 1 || erf.output.len() != 1 {
            continue;
        }
        // Producer must be Div(x, const).
        let Some(&di) = producer.get(erf.input[0].as_str()) else {
            continue;
        };
        let div = &g.node[di];
        if div.op_type != "Div" || div.input.len() != 2 || consumers(&erf.input[0]).len() != 1 {
            continue;
        }
        let x = div.input[0].clone();
        // Sole consumer of the Erf must be an Add.
        let add_users = consumers(&erf.output[0]);
        let [ai] = add_users.as_slice() else { continue };
        let add = &g.node[*ai];
        if add.op_type != "Add" || add.output.len() != 1 {
            continue;
        }
        // Sole consumer of the Add must be a Mul tying back to x.
        let mul_users = consumers(&add.output[0]);
        let [mi] = mul_users.as_slice() else { continue };
        let mul = &g.node[*mi];
        if mul.op_type != "Mul" || !mul.input.contains(&x) || mul.output.len() != 1 {
            continue;
        }
        // Optional trailing Mul(·, 0.5).
        let (last, out) = match consumers(&mul.output[0]).as_slice() {
            [m2i]
                if g.node[*m2i].op_type == "Mul"
                    && g.node[*m2i].output.len() == 1
                    && g.node[*m2i]
                        .input
                        .iter()
                        .any(|i| !producer.contains_key(i.as_str())) =>
            {
                (*m2i, g.node[*m2i].output[0].clone())
            }
            _ => (*mi, mul.output[0].clone()),
        };
        let members = [di, ei, *ai, *mi, last];
        if members.iter().any(|m| dropped.contains(m)) {
            continue;
        }
        dropped.extend(members);
        let name = if erf.name.is_empty() {
            format!("gelu_{ei}")
        } else {
            format!("{}_gelu", erf.name)
        };
        fused.insert(
            last,
            NodeProto {
                name,
                op_type: "Gelu".into(),
                input: vec![x],
                output: vec![out],
                ..Default::default()
            },
        );
    }

    g.node
        .iter()
        .enumerate()
        .filter_map(|(i, n)| match fused.remove(&i) {
            Some(gelu) => Some(gelu),
            None if dropped.contains(&i) => None,
            None => Some(n.clone()),
        })
        .collect()
}

fn data_input(
    node: &NodeProto,
    i: usize,
    value: &HashMap<String, NodeId>,
) -> Result<NodeId, OnnxError> {
    let name = node.input.get(i).ok_or_else(|| OnnxError::Import {
        detail: format!("node `{}` missing input {i}", node.op_type),
    })?;
    value.get(name).copied().ok_or_else(|| OnnxError::Import {
        detail: format!("unknown value `{name}` consumed by `{}`", node.op_type),
    })
}

fn pair(v: &[i64], default: usize) -> (usize, usize) {
    match v {
        [a] => (*a as usize, *a as usize),
        [a, b, ..] => (*a as usize, *b as usize),
        [] => (default, default),
    }
}

/// Symmetric `(ph, pw)` from an ONNX `pads` attribute
/// `[begin_h, begin_w, end_h, end_w]`.
fn sym_pads(node: &NodeProto) -> Result<(usize, usize), OnnxError> {
    let pads = node.attr_ints("pads");
    match pads {
        [] => Ok((0, 0)),
        [bh, bw, eh, ew] if bh == eh && bw == ew => Ok((*bh as usize, *bw as usize)),
        [b, e] if b == e => Ok((*b as usize, *b as usize)),
        other => Err(OnnxError::Import {
            detail: format!(
                "asymmetric padding {other:?} on `{}` is not supported",
                node.op_type
            ),
        }),
    }
}

fn import_node(
    b: &mut GraphBuilder,
    node: &NodeProto,
    name: &str,
    value: &HashMap<String, NodeId>,
    weights: &HashMap<&str, &[i64]>,
) -> Result<NodeId, OnnxError> {
    let err = |detail: String| OnnxError::Import { detail };
    let ir = |e: pimcomp_ir::IrError| OnnxError::Import {
        detail: e.to_string(),
    };

    match node.op_type.as_str() {
        "Conv" => {
            let x = data_input(node, 0, value)?;
            let wname = node
                .input
                .get(1)
                .ok_or_else(|| err(format!("Conv `{name}` has no weight input")))?;
            let wdims = weights.get(wname.as_str()).ok_or_else(|| {
                err(format!(
                    "Conv `{name}` weight `{wname}` is not an initializer"
                ))
            })?;
            if wdims.len() != 4 {
                return Err(err(format!(
                    "Conv `{name}` weight has {} dims, expected 4",
                    wdims.len()
                )));
            }
            let out_channels = wdims[0] as usize;
            let kernel = match node.attr_ints("kernel_shape") {
                [] => (wdims[2] as usize, wdims[3] as usize),
                ks => pair(ks, 1),
            };
            let strides = pair(node.attr_ints("strides"), 1);
            let padding = sym_pads(node)?;
            let groups = node.attr_i("group", 1) as usize;
            let dil = pair(node.attr_ints("dilations"), 1);
            if dil != (1, 1) {
                return Err(err(format!(
                    "Conv `{name}` with dilation {dil:?} is not supported"
                )));
            }
            let in_channels = b.shape(x).channels();
            b.add(
                name,
                Op::Conv2d(pimcomp_ir::Conv2d {
                    in_channels,
                    out_channels,
                    kernel,
                    stride: strides,
                    padding,
                    groups,
                    bias: node.input.len() > 2,
                }),
                vec![x],
            )
            .map_err(ir)
        }
        "Gemm" => {
            let x = data_input(node, 0, value)?;
            let wname = node
                .input
                .get(1)
                .ok_or_else(|| err(format!("Gemm `{name}` has no weight input")))?;
            let wdims = weights.get(wname.as_str()).ok_or_else(|| {
                err(format!(
                    "Gemm `{name}` weight `{wname}` is not an initializer"
                ))
            })?;
            if wdims.len() != 2 {
                return Err(err(format!("Gemm `{name}` weight must be 2-D")));
            }
            let trans_b = node.attr_i("transB", 0) != 0;
            let out_features = if trans_b { wdims[0] } else { wdims[1] } as usize;
            b.linear(name, x, out_features).map_err(ir)
        }
        "MatMul" => {
            let x = data_input(node, 0, value)?;
            let second = node
                .input
                .get(1)
                .ok_or_else(|| err(format!("MatMul `{name}` has only one input")))?;
            match weights.get(second.as_str()) {
                // Activation @ stationary weight: crossbar-mapped matmul
                // applied per token row, `W` laid out `[in, out]`.
                Some(wdims) => {
                    if wdims.len() != 2 {
                        return Err(err(format!("MatMul `{name}` weight must be 2-D")));
                    }
                    b.add(
                        name,
                        Op::MatMul(pimcomp_ir::MatMul {
                            in_features: wdims[0] as usize,
                            out_features: wdims[1] as usize,
                            // Third input = bias initializer (exporter
                            // convention; plain ONNX MatMul has two).
                            bias: node.input.len() > 2,
                        }),
                        vec![x],
                    )
                    .map_err(ir)
                }
                // Activation @ activation: a VFU product. `transB` and
                // `scaled` ride along as attributes (our exporter's
                // encoding of the attention score product).
                None => {
                    let y = data_input(node, 1, value)?;
                    b.bmm(
                        name,
                        x,
                        y,
                        node.attr_i("transB", 0) != 0,
                        node.attr_i("scaled", 0) != 0,
                    )
                    .map_err(ir)
                }
            }
        }
        "MaxPool" | "AveragePool" => {
            let x = data_input(node, 0, value)?;
            let kind = if node.op_type == "MaxPool" {
                PoolKind::Max
            } else {
                PoolKind::Avg
            };
            let kernel = pair(node.attr_ints("kernel_shape"), 1);
            let strides = pair(node.attr_ints("strides"), kernel.0);
            let padding = sym_pads(node)?;
            let ceil_mode = node.attr_i("ceil_mode", 0) != 0;
            b.pool(name, x, kind, kernel, strides, padding, ceil_mode)
                .map_err(ir)
        }
        "GlobalAveragePool" => {
            let x = data_input(node, 0, value)?;
            b.global_avg_pool(name, x).map_err(ir)
        }
        "Relu" => {
            let x = data_input(node, 0, value)?;
            b.activation(name, x, Activation::Relu).map_err(ir)
        }
        "Sigmoid" => {
            let x = data_input(node, 0, value)?;
            b.activation(name, x, Activation::Sigmoid).map_err(ir)
        }
        "Tanh" => {
            let x = data_input(node, 0, value)?;
            b.activation(name, x, Activation::Tanh).map_err(ir)
        }
        "Gelu" => {
            let x = data_input(node, 0, value)?;
            b.activation(name, x, Activation::Gelu).map_err(ir)
        }
        "LayerNormalization" => {
            let x = data_input(node, 0, value)?;
            b.layer_norm(name, x).map_err(ir)
        }
        "Transpose" => {
            let x = data_input(node, 0, value)?;
            // Our Transpose swaps the last two dims; an explicit `perm`
            // must agree (the default reverses all dims, which for the
            // rank-2 streams we support is the same swap).
            let rank = b.shape(x).rank();
            let perm = node.attr_ints("perm");
            if !perm.is_empty() {
                let mut expect: Vec<i64> = (0..rank as i64).collect();
                if rank >= 2 {
                    expect.swap(rank - 2, rank - 1);
                }
                if perm != expect {
                    return Err(err(format!(
                        "Transpose `{name}` with perm {perm:?} is not a last-two-dims swap"
                    )));
                }
            }
            b.transpose(name, x).map_err(ir)
        }
        "Attention" => {
            let q = data_input(node, 0, value)?;
            let k = data_input(node, 1, value)?;
            let v = data_input(node, 2, value)?;
            let heads = node.attr_i("heads", 1) as usize;
            b.attention(name, q, k, v, heads).map_err(ir)
        }
        "Concat" => {
            let axis = node.attr_i("axis", 1);
            if axis != 1 {
                return Err(err(format!(
                    "Concat `{name}` with axis {axis} is not supported"
                )));
            }
            let inputs: Result<Vec<NodeId>, OnnxError> = (0..node.input.len())
                .map(|i| data_input(node, i, value))
                .collect();
            b.concat(name, inputs?).map_err(ir)
        }
        "Add" | "Sum" => {
            let a = data_input(node, 0, value)?;
            let c = data_input(node, 1, value)?;
            b.add(name, Op::Eltwise(EltwiseKind::Add), vec![a, c])
                .map_err(ir)
        }
        "Mul" => {
            let a = data_input(node, 0, value)?;
            let c = data_input(node, 1, value)?;
            b.add(name, Op::Eltwise(EltwiseKind::Mul), vec![a, c])
                .map_err(ir)
        }
        "Flatten" => {
            let x = data_input(node, 0, value)?;
            b.flatten(name, x).map_err(ir)
        }
        "Reshape" => {
            let x = data_input(node, 0, value)?;
            let dims = node.attr_ints("shape");
            if dims.is_empty() {
                // Reshape in classification nets collapses to the FC
                // input; without an explicit target it is represented as
                // Flatten (a zero-cost view).
                b.flatten(name, x).map_err(ir)
            } else {
                // Explicit target (our exporter's encoding): -1 is the
                // symbolic sequence length.
                let target: Result<Vec<Dim>, OnnxError> = dims
                    .iter()
                    .map(|&d| match d {
                        -1 => Ok(Dim::Seq),
                        v if v > 0 => Ok(Dim::Fixed(v as usize)),
                        v => Err(err(format!("Reshape `{name}` has invalid target dim {v}"))),
                    })
                    .collect();
                b.reshape(name, x, Shape::from_dims(target?)).map_err(ir)
            }
        }
        "Softmax" => {
            let x = data_input(node, 0, value)?;
            b.softmax(name, x).map_err(ir)
        }
        "BatchNormalization" => {
            let x = data_input(node, 0, value)?;
            b.batch_norm(name, x).map_err(ir)
        }
        "Dropout" | "Identity" => {
            let x = data_input(node, 0, value)?;
            b.dropout(name, x).map_err(ir)
        }
        "LRN" => {
            let x = data_input(node, 0, value)?;
            let size = node.attr_i("size", 5) as usize;
            b.lrn(name, x, size).map_err(ir)
        }
        "Pad" => {
            let x = data_input(node, 0, value)?;
            let (ph, pw) = sym_pads(node)?;
            b.pad(name, x, ph, pw).map_err(ir)
        }
        other => Err(OnnxError::UnsupportedOp {
            op_type: other.into(),
            node: name.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::export_graph;

    #[test]
    fn unsupported_op_is_reported() {
        let mut g = GraphProto {
            name: "g".into(),
            ..Default::default()
        };
        g.input.push(crate::proto::ValueInfoProto {
            name: "x".into(),
            elem_type: 1,
            shape: crate::proto::TensorShapeProto {
                dims: vec![Some(1), Some(3), Some(8), Some(8)],
            },
        });
        g.node.push(NodeProto {
            input: vec!["x".into()],
            output: vec!["y".into()],
            name: "rnn".into(),
            op_type: "LSTM".into(),
            ..Default::default()
        });
        let model = ModelProto {
            graph: Some(g),
            ..Default::default()
        };
        assert!(matches!(
            import_model(&model),
            Err(OnnxError::UnsupportedOp { .. })
        ));
    }

    #[test]
    fn invalid_graph_is_an_error_not_a_panic() {
        // A deliberately malformed model: it decodes fine and every
        // node converts, but the assembled graph has no input node, so
        // final validation must reject it with a structured error.
        let g = GraphProto {
            name: "no_inputs".into(),
            ..Default::default()
        };
        let model = ModelProto {
            graph: Some(g),
            ..Default::default()
        };
        let err = import_model(&model).unwrap_err();
        assert!(matches!(err, OnnxError::InvalidGraph { .. }), "{err}");
        assert!(err.to_string().contains("validation"));

        // The same property holds end to end through the wire format.
        let bytes = model.encode();
        assert!(matches!(
            import_bytes(&bytes),
            Err(OnnxError::InvalidGraph { .. })
        ));
    }

    #[test]
    fn round_trip_preserves_tiny_cnn_structure() {
        let original = pimcomp_ir::models::tiny_cnn();
        let model = export_graph(&original);
        let bytes = model.encode();
        let back = import_bytes(&bytes).unwrap();
        assert_eq!(back.node_count(), original.node_count());
        // Same op multiset in topo order.
        let ops = |g: &Graph| -> Vec<String> {
            g.topo_order()
                .into_iter()
                .map(|id| g.node(id).op.mnemonic().to_string())
                .collect()
        };
        assert_eq!(ops(&back), ops(&original));
        // Same shapes at every node.
        for (a, z) in original.topo_order().iter().zip(back.topo_order()) {
            assert_eq!(original.node(*a).output_shape, back.node(z).output_shape);
        }
    }

    #[test]
    fn round_trip_preserves_matmul_softmax_graph() {
        // A symbolic [seq, 64] stream through a weight matmul, the raw
        // score/softmax/context pattern, and a final projection.
        let mut b = pimcomp_ir::GraphBuilder::new("mm_softmax");
        let x = b.input_seq("x", 64);
        let q = b.matmul("q", x, 64).unwrap();
        let k = b.matmul("k", x, 64).unwrap();
        let s = b.bmm("scores", q, k, true, true).unwrap();
        let p = b.softmax("probs", s).unwrap();
        let v = b.matmul("v", x, 64).unwrap();
        let ctx = b.bmm("ctx", p, v, false, false).unwrap();
        let _out = b.matmul("proj", ctx, 32).unwrap();
        let original = b.finish().unwrap();

        let back = import_bytes(&export_graph(&original).encode()).unwrap();
        assert_eq!(back.node_count(), original.node_count());
        for (a, z) in original.topo_order().iter().zip(back.topo_order()) {
            let (na, nz) = (original.node(*a), back.node(z));
            assert_eq!(na.op, nz.op, "{}", na.name);
            assert_eq!(na.output_shape, nz.output_shape, "{}", na.name);
        }
        // The symbolic dim survived the wire format.
        assert!(back.has_symbolic_dims());
    }

    #[test]
    fn round_trip_preserves_tiny_bert() {
        let original = pimcomp_ir::models::tiny_bert();
        let back = import_bytes(&export_graph(&original).encode()).unwrap();
        assert_eq!(back.node_count(), original.node_count());
        for (a, z) in original.topo_order().iter().zip(back.topo_order()) {
            assert_eq!(original.node(*a).op, back.node(z).op);
        }
    }

    #[test]
    fn erf_gelu_pattern_fuses_to_one_gelu() {
        // x -> Div(x, c) -> Erf -> Add(., one) -> Mul(., x) -> Mul(., half)
        let mut g = GraphProto {
            name: "erf".into(),
            ..Default::default()
        };
        g.input.push(crate::proto::ValueInfoProto {
            name: "x".into(),
            elem_type: 1,
            shape: crate::proto::TensorShapeProto {
                dims: vec![Some(1), None, Some(16)],
            },
        });
        let n = |name: &str, op: &str, input: &[&str], output: &str| NodeProto {
            name: name.into(),
            op_type: op.into(),
            input: input.iter().map(|s| s.to_string()).collect(),
            output: vec![output.into()],
            ..Default::default()
        };
        g.node.push(n("div", "Div", &["x", "sqrt2"], "d"));
        g.node.push(n("erf", "Erf", &["d"], "e"));
        g.node.push(n("add", "Add", &["e", "one"], "a"));
        g.node.push(n("mul", "Mul", &["a", "x"], "m"));
        g.node.push(n("half", "Mul", &["m", "c05"], "y"));
        let model = ModelProto {
            graph: Some(g),
            ..Default::default()
        };
        let back = import_model(&model).unwrap();
        assert_eq!(back.node_count(), 2);
        let gelu = back
            .nodes()
            .iter()
            .find(|nd| matches!(nd.op, Op::Activation(Activation::Gelu)))
            .expect("fused gelu node");
        assert_eq!(gelu.output_shape, Shape::seq_features(16));
    }

    #[test]
    fn round_trip_preserves_branching_models() {
        for original in [
            pimcomp_ir::models::two_branch(),
            pimcomp_ir::models::squeezenet(),
            pimcomp_ir::models::resnet18(),
        ] {
            let model = export_graph(&original);
            let back = import_bytes(&model.encode())
                .unwrap_or_else(|e| panic!("{}: {e}", original.name()));
            assert_eq!(
                back.node_count(),
                original.node_count(),
                "{}",
                original.name()
            );
            let a = pimcomp_ir::GraphStats::of(&original);
            let z = pimcomp_ir::GraphStats::of(&back);
            assert_eq!(a.params, z.params, "{}", original.name());
            assert_eq!(a.macs, z.macs, "{}", original.name());
        }
    }
}
