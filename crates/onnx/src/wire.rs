//! Protobuf wire-format primitives (proto3 subset).
//!
//! ONNX models are protobuf messages; this module implements the wire
//! encoding from scratch — varints, length-delimited fields and the two
//! fixed widths — which is all the ONNX schema needs.

use crate::OnnxError;

/// Wire types of the protobuf encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireType {
    /// Varint-encoded integer (wire type 0).
    Varint,
    /// Little-endian 64-bit (wire type 1).
    Fixed64,
    /// Length-delimited bytes (wire type 2).
    LengthDelimited,
    /// Little-endian 32-bit (wire type 5).
    Fixed32,
}

impl WireType {
    fn from_bits(bits: u64) -> Result<Self, OnnxError> {
        match bits {
            0 => Ok(WireType::Varint),
            1 => Ok(WireType::Fixed64),
            2 => Ok(WireType::LengthDelimited),
            5 => Ok(WireType::Fixed32),
            other => Err(OnnxError::Malformed {
                detail: format!("unsupported wire type {other}"),
            }),
        }
    }

    fn bits(self) -> u64 {
        match self {
            WireType::Varint => 0,
            WireType::Fixed64 => 1,
            WireType::LengthDelimited => 2,
            WireType::Fixed32 => 5,
        }
    }
}

/// A streaming reader over a protobuf-encoded buffer.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// `true` when the buffer is exhausted.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Reads a field key; returns `(field_number, wire_type)`.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or an unsupported wire type.
    pub fn key(&mut self) -> Result<(u64, WireType), OnnxError> {
        let key = self.varint()?;
        Ok((key >> 3, WireType::from_bits(key & 0x7)?))
    }

    /// Reads a base-128 varint.
    ///
    /// # Errors
    ///
    /// Fails on truncation or a varint longer than 10 bytes.
    pub fn varint(&mut self) -> Result<u64, OnnxError> {
        let mut value: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(OnnxError::Malformed {
            detail: "varint exceeds 10 bytes".into(),
        })
    }

    /// Reads a varint as i64 (two's complement, as protobuf int64).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Reader::varint`].
    pub fn int64(&mut self) -> Result<i64, OnnxError> {
        Ok(self.varint()? as i64)
    }

    /// Reads a length-delimited byte slice.
    ///
    /// # Errors
    ///
    /// Fails when the declared length overruns the buffer.
    pub fn bytes(&mut self) -> Result<&'a [u8], OnnxError> {
        let len = self.varint()? as usize;
        if self.pos + len > self.buf.len() {
            return Err(OnnxError::Malformed {
                detail: format!(
                    "length-delimited field of {len} bytes overruns buffer ({} left)",
                    self.buf.len() - self.pos
                ),
            });
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads a length-delimited UTF-8 string (lossy).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Reader::bytes`].
    pub fn string(&mut self) -> Result<String, OnnxError> {
        Ok(String::from_utf8_lossy(self.bytes()?).into_owned())
    }

    /// Reads a 32-bit float (fixed32).
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn float(&mut self) -> Result<f32, OnnxError> {
        let mut le = [0u8; 4];
        for b in &mut le {
            *b = self.byte()?;
        }
        Ok(f32::from_le_bytes(le))
    }

    /// Reads a 64-bit double (fixed64).
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn double(&mut self) -> Result<f64, OnnxError> {
        let mut le = [0u8; 8];
        for b in &mut le {
            *b = self.byte()?;
        }
        Ok(f64::from_le_bytes(le))
    }

    /// Skips a field of the given wire type.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn skip(&mut self, wire: WireType) -> Result<(), OnnxError> {
        match wire {
            WireType::Varint => {
                self.varint()?;
            }
            WireType::Fixed64 => {
                for _ in 0..8 {
                    self.byte()?;
                }
            }
            WireType::LengthDelimited => {
                self.bytes()?;
            }
            WireType::Fixed32 => {
                for _ in 0..4 {
                    self.byte()?;
                }
            }
        }
        Ok(())
    }

    fn byte(&mut self) -> Result<u8, OnnxError> {
        if self.pos >= self.buf.len() {
            return Err(OnnxError::Malformed {
                detail: "unexpected end of buffer".into(),
            });
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }
}

/// An append-only protobuf writer.
#[derive(Debug, Clone, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Finishes and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a raw varint.
    pub fn varint(&mut self, mut v: u64) -> &mut Self {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return self;
            }
            self.buf.push(byte | 0x80);
        }
    }

    fn key(&mut self, field: u64, wire: WireType) -> &mut Self {
        self.varint((field << 3) | wire.bits())
    }

    /// Writes a varint field (skipped when `v == 0`, per proto3
    /// default-elision).
    pub fn field_varint(&mut self, field: u64, v: u64) -> &mut Self {
        if v != 0 {
            self.key(field, WireType::Varint).varint(v);
        }
        self
    }

    /// Writes an int64 field (always emitted, including zero, because
    /// readers of ONNX attributes distinguish present-zero from absent).
    pub fn field_int64_always(&mut self, field: u64, v: i64) -> &mut Self {
        self.key(field, WireType::Varint).varint(v as u64)
    }

    /// Writes a length-delimited bytes field.
    pub fn field_bytes(&mut self, field: u64, bytes: &[u8]) -> &mut Self {
        self.key(field, WireType::LengthDelimited)
            .varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Writes a string field (skipped when empty).
    pub fn field_string(&mut self, field: u64, s: &str) -> &mut Self {
        if !s.is_empty() {
            self.field_bytes(field, s.as_bytes());
        }
        self
    }

    /// Writes a float field.
    pub fn field_float(&mut self, field: u64, v: f32) -> &mut Self {
        if v != 0.0 {
            self.field_float_always(field, v);
        }
        self
    }

    /// Writes a float field including zero values (ONNX attribute
    /// payloads must be explicit).
    pub fn field_float_always(&mut self, field: u64, v: f32) -> &mut Self {
        self.key(field, WireType::Fixed32);
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a nested message field from another writer's bytes.
    pub fn field_message(&mut self, field: u64, inner: &Writer) -> &mut Self {
        self.field_bytes(field, &inner.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut w = Writer::new();
            w.varint(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.is_at_end());
        }
    }

    #[test]
    fn key_round_trip() {
        let mut w = Writer::new();
        w.field_varint(3, 42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let (field, wire) = r.key().unwrap();
        assert_eq!(field, 3);
        assert_eq!(wire, WireType::Varint);
        assert_eq!(r.varint().unwrap(), 42);
    }

    #[test]
    fn string_and_bytes_round_trip() {
        let mut w = Writer::new();
        w.field_string(4, "conv1");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let (field, wire) = r.key().unwrap();
        assert_eq!((field, wire), (4, WireType::LengthDelimited));
        assert_eq!(r.string().unwrap(), "conv1");
    }

    #[test]
    fn float_round_trip() {
        let mut w = Writer::new();
        w.field_float(2, 0.75);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let (field, wire) = r.key().unwrap();
        assert_eq!((field, wire), (2, WireType::Fixed32));
        assert_eq!(r.float().unwrap(), 0.75);
    }

    #[test]
    fn skip_passes_over_unknown_fields() {
        let mut w = Writer::new();
        w.field_varint(1, 7);
        w.field_bytes(2, b"junk");
        w.field_varint(3, 9);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let (f1, w1) = r.key().unwrap();
        assert_eq!(f1, 1);
        r.skip(w1).unwrap();
        let (f2, w2) = r.key().unwrap();
        assert_eq!(f2, 2);
        r.skip(w2).unwrap();
        let (f3, _) = r.key().unwrap();
        assert_eq!(f3, 3);
        assert_eq!(r.varint().unwrap(), 9);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut w = Writer::new();
        w.field_bytes(1, b"hello");
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 2);
        let mut r = Reader::new(&bytes);
        let (_, wire) = r.key().unwrap();
        assert_eq!(wire, WireType::LengthDelimited);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn zero_valued_proto3_fields_are_elided() {
        let mut w = Writer::new();
        w.field_varint(1, 0);
        w.field_string(2, "");
        w.field_float(3, 0.0);
        assert!(w.is_empty());
    }
}
