//! PIMCOMP IR → ONNX export.
//!
//! Produces a structurally complete `ModelProto`: nodes with canonical
//! ONNX operator names and attributes, value infos for graph inputs and
//! outputs, and weight initializers carrying correct *dims* with empty
//! payloads (compilation never reads weight values; see DESIGN.md).

use crate::proto::{
    AttributeProto, GraphProto, ModelProto, NodeProto, TensorProto, TensorShapeProto,
    ValueInfoProto,
};
use pimcomp_ir::{Activation, Dim, EltwiseKind, Graph, Op, PoolKind, Shape};

/// ONNX opset the exporter targets.
pub const EXPORT_OPSET: i64 = 13;

/// Exports a graph to an ONNX model.
pub fn export_graph(graph: &Graph) -> ModelProto {
    let mut g = GraphProto {
        name: graph.name().to_string(),
        ..Default::default()
    };

    let value_name = |id: pimcomp_ir::NodeId| -> String { format!("v_{}", graph.node(id).name) };

    for id in graph.topo_order() {
        let node = graph.node(id);
        match &node.op {
            Op::Input { shape } => {
                g.input.push(ValueInfoProto {
                    name: value_name(id),
                    elem_type: 1,
                    shape: nchw_shape(shape),
                });
            }
            op => {
                let mut n = NodeProto {
                    name: node.name.clone(),
                    output: vec![value_name(id)],
                    ..Default::default()
                };
                for &p in &node.inputs {
                    n.input.push(value_name(p));
                }
                fill_op(&mut n, &mut g, op, &node.name);
                g.node.push(n);
            }
        }
    }

    for id in graph.outputs() {
        g.output.push(ValueInfoProto {
            name: value_name(id),
            elem_type: 1,
            shape: nchw_shape(&graph.node(id).output_shape),
        });
    }

    ModelProto {
        ir_version: 8,
        producer_name: "pimcomp".into(),
        producer_version: env!("CARGO_PKG_VERSION").into(),
        opset_version: EXPORT_OPSET,
        graph: Some(g),
    }
}

fn nchw_shape(shape: &Shape) -> TensorShapeProto {
    let mut dims: Vec<Option<i64>> = vec![Some(1)];
    dims.extend(shape.dims().iter().map(|d| match d {
        Dim::Fixed(n) => Some(*n as i64),
        // Symbolic sequence length round-trips as a `dim_param`.
        Dim::Seq => None,
    }));
    TensorShapeProto { dims }
}

fn fill_op(n: &mut NodeProto, g: &mut GraphProto, op: &Op, name: &str) {
    match op {
        Op::Input { .. } => unreachable!("inputs handled by caller"),
        Op::Conv2d(c) => {
            n.op_type = "Conv".into();
            n.attribute = vec![
                AttributeProto::ints("kernel_shape", vec![c.kernel.0 as i64, c.kernel.1 as i64]),
                AttributeProto::ints("strides", vec![c.stride.0 as i64, c.stride.1 as i64]),
                AttributeProto::ints(
                    "pads",
                    vec![
                        c.padding.0 as i64,
                        c.padding.1 as i64,
                        c.padding.0 as i64,
                        c.padding.1 as i64,
                    ],
                ),
                AttributeProto::int("group", c.groups as i64),
            ];
            let wname = format!("{name}_weight");
            g.initializer.push(TensorProto {
                dims: vec![
                    c.out_channels as i64,
                    (c.in_channels / c.groups) as i64,
                    c.kernel.0 as i64,
                    c.kernel.1 as i64,
                ],
                data_type: 1,
                name: wname.clone(),
                raw_data: vec![],
            });
            n.input.push(wname);
            if c.bias {
                let bname = format!("{name}_bias");
                g.initializer.push(TensorProto {
                    dims: vec![c.out_channels as i64],
                    data_type: 1,
                    name: bname.clone(),
                    raw_data: vec![],
                });
                n.input.push(bname);
            }
        }
        Op::Linear(l) => {
            n.op_type = "Gemm".into();
            n.attribute = vec![AttributeProto::int("transB", 1)];
            let wname = format!("{name}_weight");
            g.initializer.push(TensorProto {
                dims: vec![l.out_features as i64, l.in_features as i64],
                data_type: 1,
                name: wname.clone(),
                raw_data: vec![],
            });
            n.input.push(wname);
            if l.bias {
                let bname = format!("{name}_bias");
                g.initializer.push(TensorProto {
                    dims: vec![l.out_features as i64],
                    data_type: 1,
                    name: bname.clone(),
                    raw_data: vec![],
                });
                n.input.push(bname);
            }
        }
        Op::Pool(p) => {
            n.op_type = match p.kind {
                PoolKind::Max => "MaxPool".into(),
                PoolKind::Avg => "AveragePool".into(),
            };
            n.attribute = vec![
                AttributeProto::ints("kernel_shape", vec![p.kernel.0 as i64, p.kernel.1 as i64]),
                AttributeProto::ints("strides", vec![p.stride.0 as i64, p.stride.1 as i64]),
                AttributeProto::ints(
                    "pads",
                    vec![
                        p.padding.0 as i64,
                        p.padding.1 as i64,
                        p.padding.0 as i64,
                        p.padding.1 as i64,
                    ],
                ),
                AttributeProto::int("ceil_mode", i64::from(p.ceil_mode)),
            ];
        }
        Op::GlobalAvgPool => n.op_type = "GlobalAveragePool".into(),
        Op::Activation(a) => {
            n.op_type = match a {
                Activation::Relu => "Relu".into(),
                Activation::Sigmoid => "Sigmoid".into(),
                Activation::Tanh => "Tanh".into(),
                Activation::Gelu => "Gelu".into(),
            }
        }
        Op::Concat => {
            n.op_type = "Concat".into();
            n.attribute = vec![AttributeProto::int("axis", 1)];
        }
        Op::Eltwise(e) => {
            n.op_type = match e {
                EltwiseKind::Add => "Add".into(),
                EltwiseKind::Mul => "Mul".into(),
            }
        }
        Op::Flatten => {
            n.op_type = "Flatten".into();
            n.attribute = vec![AttributeProto::int("axis", 1)];
        }
        Op::Softmax => {
            n.op_type = "Softmax".into();
            n.attribute = vec![AttributeProto::int("axis", 1)];
        }
        Op::BatchNorm => {
            n.op_type = "BatchNormalization".into();
            n.attribute = vec![AttributeProto::float("epsilon", 1e-5)];
        }
        Op::Dropout => n.op_type = "Dropout".into(),
        Op::Lrn(l) => {
            n.op_type = "LRN".into();
            n.attribute = vec![
                AttributeProto::int("size", l.size as i64),
                AttributeProto::float("alpha", l.alpha as f32),
                AttributeProto::float("beta", l.beta as f32),
            ];
        }
        Op::Pad(p) => {
            n.op_type = "Pad".into();
            n.attribute = vec![AttributeProto::ints(
                "pads",
                vec![
                    p.height as i64,
                    p.width as i64,
                    p.height as i64,
                    p.width as i64,
                ],
            )];
        }
        Op::MatMul(m) => {
            // Activation @ stationary weight, `W` laid out `[in, out]`.
            // An optional third bias input is this exporter's extension
            // (plain ONNX pairs MatMul with a following Add).
            n.op_type = "MatMul".into();
            let wname = format!("{name}_weight");
            g.initializer.push(TensorProto {
                dims: vec![m.in_features as i64, m.out_features as i64],
                data_type: 1,
                name: wname.clone(),
                raw_data: vec![],
            });
            n.input.push(wname);
            if m.bias {
                let bname = format!("{name}_bias");
                g.initializer.push(TensorProto {
                    dims: vec![m.out_features as i64],
                    data_type: 1,
                    name: bname.clone(),
                    raw_data: vec![],
                });
                n.input.push(bname);
            }
        }
        Op::Bmm(bm) => {
            // Activation @ activation; transpose/scale ride along as
            // attributes the importer understands.
            n.op_type = "MatMul".into();
            let mut attrs = Vec::new();
            if bm.transpose_b {
                attrs.push(AttributeProto::int("transB", 1));
            }
            if bm.scaled {
                attrs.push(AttributeProto::int("scaled", 1));
            }
            n.attribute = attrs;
        }
        Op::LayerNorm => {
            n.op_type = "LayerNormalization".into();
            n.attribute = vec![AttributeProto::float("epsilon", 1e-5)];
        }
        Op::Transpose => n.op_type = "Transpose".into(),
        Op::Reshape { shape } => {
            n.op_type = "Reshape".into();
            n.attribute = vec![AttributeProto::ints(
                "shape",
                shape
                    .dims()
                    .iter()
                    .map(|d| match d {
                        Dim::Fixed(v) => *v as i64,
                        Dim::Seq => -1,
                    })
                    .collect(),
            )];
        }
        Op::Attention(a) => {
            n.op_type = "Attention".into();
            n.attribute = vec![AttributeProto::int("heads", a.heads as i64)];
        }
        // `Op` is non-exhaustive; any future variant must be wired up
        // here. Exporting it as Identity keeps the file well-formed.
        _ => {
            debug_assert!(false, "unhandled op variant in ONNX export");
            n.op_type = "Identity".into();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimcomp_ir::models;

    #[test]
    fn export_emits_weight_initializers_with_dims() {
        let g = models::tiny_cnn();
        let model = export_graph(&g);
        let gp = model.graph.unwrap();
        let conv_w = gp
            .initializer
            .iter()
            .find(|t| t.name == "conv1_weight")
            .expect("conv1 weight exported");
        assert_eq!(conv_w.dims, vec![16, 3, 3, 3]);
        let fc_w = gp
            .initializer
            .iter()
            .find(|t| t.name == "fc1_weight")
            .expect("fc1 weight exported");
        assert_eq!(fc_w.dims, vec![128, 2048]);
    }

    #[test]
    fn export_declares_graph_io() {
        let g = models::tiny_mlp();
        let model = export_graph(&g);
        let gp = model.graph.unwrap();
        assert_eq!(gp.input.len(), 1);
        assert_eq!(gp.output.len(), 1);
        // Flat 256-input with an explicit batch of 1.
        assert_eq!(gp.input[0].shape.dims, vec![Some(1), Some(256)]);
    }

    #[test]
    fn exported_bytes_decode_back() {
        let g = models::two_branch();
        let bytes = export_graph(&g).encode();
        let model = crate::proto::ModelProto::decode(&bytes).unwrap();
        assert_eq!(model.opset_version, EXPORT_OPSET);
        assert_eq!(model.graph.unwrap().node.len(), g.node_count() - 1);
    }
}
