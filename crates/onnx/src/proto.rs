//! The ONNX message subset (from `onnx.proto3`) that DNN inference
//! graphs use, with hand-rolled decode/encode over the wire primitives.

use crate::wire::{Reader, WireType, Writer};
use crate::OnnxError;

/// `onnx.AttributeProto.AttributeType` values we understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttributeType {
    /// Unset/unknown.
    #[default]
    Undefined,
    /// Single float.
    Float,
    /// Single int64.
    Int,
    /// Byte string.
    String,
    /// Repeated float.
    Floats,
    /// Repeated int64.
    Ints,
}

impl AttributeType {
    fn from_i64(v: i64) -> Self {
        match v {
            1 => AttributeType::Float,
            2 => AttributeType::Int,
            3 => AttributeType::String,
            6 => AttributeType::Floats,
            7 => AttributeType::Ints,
            _ => AttributeType::Undefined,
        }
    }

    fn to_i64(self) -> i64 {
        match self {
            AttributeType::Undefined => 0,
            AttributeType::Float => 1,
            AttributeType::Int => 2,
            AttributeType::String => 3,
            AttributeType::Floats => 6,
            AttributeType::Ints => 7,
        }
    }
}

/// `onnx.AttributeProto`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttributeProto {
    /// Attribute name (`kernel_shape`, `strides`, …).
    pub name: String,
    /// Declared type.
    pub r#type: AttributeType,
    /// FLOAT payload.
    pub f: f32,
    /// INT payload.
    pub i: i64,
    /// STRING payload.
    pub s: Vec<u8>,
    /// FLOATS payload.
    pub floats: Vec<f32>,
    /// INTS payload.
    pub ints: Vec<i64>,
}

impl AttributeProto {
    /// Convenience constructor for an INT attribute.
    pub fn int(name: &str, v: i64) -> Self {
        AttributeProto {
            name: name.into(),
            r#type: AttributeType::Int,
            i: v,
            ..Default::default()
        }
    }

    /// Convenience constructor for an INTS attribute.
    pub fn ints(name: &str, v: Vec<i64>) -> Self {
        AttributeProto {
            name: name.into(),
            r#type: AttributeType::Ints,
            ints: v,
            ..Default::default()
        }
    }

    /// Convenience constructor for a FLOAT attribute.
    pub fn float(name: &str, v: f32) -> Self {
        AttributeProto {
            name: name.into(),
            r#type: AttributeType::Float,
            f: v,
            ..Default::default()
        }
    }

    fn decode(buf: &[u8]) -> Result<Self, OnnxError> {
        let mut r = Reader::new(buf);
        let mut a = AttributeProto::default();
        while !r.is_at_end() {
            let (field, wire) = r.key()?;
            match field {
                1 => a.name = r.string()?,
                2 => a.f = r.float()?,
                3 => a.i = r.int64()?,
                4 => a.s = r.bytes()?.to_vec(),
                7 => match wire {
                    // Packed or unpacked repeated float.
                    WireType::LengthDelimited => {
                        let bytes = r.bytes()?;
                        let mut rr = Reader::new(bytes);
                        while !rr.is_at_end() {
                            a.floats.push(rr.float()?);
                        }
                    }
                    _ => a.floats.push(r.float()?),
                },
                8 => match wire {
                    WireType::LengthDelimited => {
                        let bytes = r.bytes()?;
                        let mut rr = Reader::new(bytes);
                        while !rr.is_at_end() {
                            a.ints.push(rr.int64()?);
                        }
                    }
                    _ => a.ints.push(r.int64()?),
                },
                20 => a.r#type = AttributeType::from_i64(r.int64()?),
                _ => r.skip(wire)?,
            }
        }
        Ok(a)
    }

    fn encode(&self) -> Writer {
        let mut w = Writer::new();
        w.field_string(1, &self.name);
        match self.r#type {
            AttributeType::Float => {
                // Emit even when 0.0 so the value is unambiguous.
                w.field_float_always(2, self.f);
            }
            AttributeType::Int => {
                w.field_int64_always(3, self.i);
            }
            AttributeType::String => {
                w.field_bytes(4, &self.s);
            }
            AttributeType::Floats => {
                for &v in &self.floats {
                    w.field_float_always(7, v);
                }
            }
            AttributeType::Ints => {
                for &v in &self.ints {
                    w.field_int64_always(8, v);
                }
            }
            AttributeType::Undefined => {}
        }
        w.field_varint(20, self.r#type.to_i64() as u64);
        w
    }
}

/// `onnx.TensorProto` (dims + name are all the importer needs; weight
/// payloads are irrelevant to compilation and stay empty on export).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TensorProto {
    /// Tensor dimensions.
    pub dims: Vec<i64>,
    /// Element type (1 = float32).
    pub data_type: i64,
    /// Tensor name (matches a node input).
    pub name: String,
    /// Raw little-endian payload (may be empty).
    pub raw_data: Vec<u8>,
}

impl TensorProto {
    fn decode(buf: &[u8]) -> Result<Self, OnnxError> {
        let mut r = Reader::new(buf);
        let mut t = TensorProto::default();
        while !r.is_at_end() {
            let (field, wire) = r.key()?;
            match field {
                1 => match wire {
                    WireType::LengthDelimited => {
                        let bytes = r.bytes()?;
                        let mut rr = Reader::new(bytes);
                        while !rr.is_at_end() {
                            t.dims.push(rr.int64()?);
                        }
                    }
                    _ => t.dims.push(r.int64()?),
                },
                2 => t.data_type = r.int64()?,
                8 => t.name = r.string()?,
                9 => t.raw_data = r.bytes()?.to_vec(),
                _ => r.skip(wire)?,
            }
        }
        Ok(t)
    }

    fn encode(&self) -> Writer {
        let mut w = Writer::new();
        for &d in &self.dims {
            w.field_int64_always(1, d);
        }
        w.field_varint(2, self.data_type as u64);
        w.field_string(8, &self.name);
        if !self.raw_data.is_empty() {
            w.field_bytes(9, &self.raw_data);
        }
        w
    }
}

/// `onnx.TensorShapeProto` — dimensions with either a value or a
/// symbolic parameter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TensorShapeProto {
    /// Dimension values; `None` for symbolic dims (e.g. batch "N").
    pub dims: Vec<Option<i64>>,
}

impl TensorShapeProto {
    fn decode(buf: &[u8]) -> Result<Self, OnnxError> {
        let mut r = Reader::new(buf);
        let mut s = TensorShapeProto::default();
        while !r.is_at_end() {
            let (field, wire) = r.key()?;
            match field {
                1 => {
                    let bytes = r.bytes()?;
                    let mut rr = Reader::new(bytes);
                    let mut value: Option<i64> = None;
                    while !rr.is_at_end() {
                        let (f2, w2) = rr.key()?;
                        match f2 {
                            1 => value = Some(rr.int64()?),
                            _ => rr.skip(w2)?,
                        }
                    }
                    s.dims.push(value);
                }
                _ => r.skip(wire)?,
            }
        }
        Ok(s)
    }

    fn encode(&self) -> Writer {
        let mut w = Writer::new();
        for d in &self.dims {
            let mut dim = Writer::new();
            match d {
                Some(v) => {
                    dim.field_int64_always(1, *v);
                }
                None => {
                    dim.field_string(2, "N");
                }
            }
            w.field_message(1, &dim);
        }
        w
    }
}

/// `onnx.ValueInfoProto` with the tensor type flattened in.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ValueInfoProto {
    /// Value name.
    pub name: String,
    /// Element type (1 = float32).
    pub elem_type: i64,
    /// Shape.
    pub shape: TensorShapeProto,
}

impl ValueInfoProto {
    fn decode(buf: &[u8]) -> Result<Self, OnnxError> {
        let mut r = Reader::new(buf);
        let mut v = ValueInfoProto::default();
        while !r.is_at_end() {
            let (field, wire) = r.key()?;
            match field {
                1 => v.name = r.string()?,
                2 => {
                    // TypeProto -> tensor_type (field 1) -> {elem_type 1, shape 2}
                    let type_bytes = r.bytes()?;
                    let mut tr = Reader::new(type_bytes);
                    while !tr.is_at_end() {
                        let (tf, tw) = tr.key()?;
                        if tf == 1 {
                            let tt = tr.bytes()?;
                            let mut ttr = Reader::new(tt);
                            while !ttr.is_at_end() {
                                let (ttf, ttw) = ttr.key()?;
                                match ttf {
                                    1 => v.elem_type = ttr.int64()?,
                                    2 => v.shape = TensorShapeProto::decode(ttr.bytes()?)?,
                                    _ => ttr.skip(ttw)?,
                                }
                            }
                        } else {
                            tr.skip(tw)?;
                        }
                    }
                }
                _ => r.skip(wire)?,
            }
        }
        Ok(v)
    }

    fn encode(&self) -> Writer {
        let mut w = Writer::new();
        w.field_string(1, &self.name);
        let mut tensor_type = Writer::new();
        tensor_type.field_varint(1, self.elem_type as u64);
        tensor_type.field_message(2, &self.shape.encode());
        let mut type_proto = Writer::new();
        type_proto.field_message(1, &tensor_type);
        w.field_message(2, &type_proto);
        w
    }
}

/// `onnx.NodeProto`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeProto {
    /// Input value names.
    pub input: Vec<String>,
    /// Output value names.
    pub output: Vec<String>,
    /// Node name.
    pub name: String,
    /// Operator (`Conv`, `Gemm`, `Relu`, …).
    pub op_type: String,
    /// Attributes.
    pub attribute: Vec<AttributeProto>,
}

impl NodeProto {
    /// Finds an attribute by name.
    pub fn attr(&self, name: &str) -> Option<&AttributeProto> {
        self.attribute.iter().find(|a| a.name == name)
    }

    /// INT attribute value with a default.
    pub fn attr_i(&self, name: &str, default: i64) -> i64 {
        self.attr(name).map_or(default, |a| a.i)
    }

    /// INTS attribute values (empty slice when missing).
    pub fn attr_ints(&self, name: &str) -> &[i64] {
        self.attr(name).map_or(&[], |a| a.ints.as_slice())
    }

    fn decode(buf: &[u8]) -> Result<Self, OnnxError> {
        let mut r = Reader::new(buf);
        let mut n = NodeProto::default();
        while !r.is_at_end() {
            let (field, wire) = r.key()?;
            match field {
                1 => n.input.push(r.string()?),
                2 => n.output.push(r.string()?),
                3 => n.name = r.string()?,
                4 => n.op_type = r.string()?,
                5 => n.attribute.push(AttributeProto::decode(r.bytes()?)?),
                _ => r.skip(wire)?,
            }
        }
        Ok(n)
    }

    fn encode(&self) -> Writer {
        let mut w = Writer::new();
        for i in &self.input {
            w.field_bytes(1, i.as_bytes());
        }
        for o in &self.output {
            w.field_bytes(2, o.as_bytes());
        }
        w.field_string(3, &self.name);
        w.field_string(4, &self.op_type);
        for a in &self.attribute {
            w.field_message(5, &a.encode());
        }
        w
    }
}

/// `onnx.GraphProto`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GraphProto {
    /// Nodes in topological order.
    pub node: Vec<NodeProto>,
    /// Graph name.
    pub name: String,
    /// Weight tensors (dims matter; payloads may be empty).
    pub initializer: Vec<TensorProto>,
    /// Graph inputs (activations; initializers may also be listed).
    pub input: Vec<ValueInfoProto>,
    /// Graph outputs.
    pub output: Vec<ValueInfoProto>,
}

impl GraphProto {
    fn decode(buf: &[u8]) -> Result<Self, OnnxError> {
        let mut r = Reader::new(buf);
        let mut g = GraphProto::default();
        while !r.is_at_end() {
            let (field, wire) = r.key()?;
            match field {
                1 => g.node.push(NodeProto::decode(r.bytes()?)?),
                2 => g.name = r.string()?,
                5 => g.initializer.push(TensorProto::decode(r.bytes()?)?),
                11 => g.input.push(ValueInfoProto::decode(r.bytes()?)?),
                12 => g.output.push(ValueInfoProto::decode(r.bytes()?)?),
                _ => r.skip(wire)?,
            }
        }
        Ok(g)
    }

    fn encode(&self) -> Writer {
        let mut w = Writer::new();
        for n in &self.node {
            w.field_message(1, &n.encode());
        }
        w.field_string(2, &self.name);
        for t in &self.initializer {
            w.field_message(5, &t.encode());
        }
        for i in &self.input {
            w.field_message(11, &i.encode());
        }
        for o in &self.output {
            w.field_message(12, &o.encode());
        }
        w
    }
}

/// `onnx.ModelProto` — the top-level ONNX file content.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelProto {
    /// ONNX IR version.
    pub ir_version: i64,
    /// Producer tool name.
    pub producer_name: String,
    /// Producer tool version.
    pub producer_version: String,
    /// The graph.
    pub graph: Option<GraphProto>,
    /// Opset version (default domain).
    pub opset_version: i64,
}

impl ModelProto {
    /// Decodes a serialized `.onnx` payload.
    ///
    /// # Errors
    ///
    /// [`OnnxError::Malformed`] on wire-format violations.
    pub fn decode(buf: &[u8]) -> Result<Self, OnnxError> {
        let mut r = Reader::new(buf);
        let mut m = ModelProto::default();
        while !r.is_at_end() {
            let (field, wire) = r.key()?;
            match field {
                1 => m.ir_version = r.int64()?,
                2 => m.producer_name = r.string()?,
                3 => m.producer_version = r.string()?,
                7 => m.graph = Some(GraphProto::decode(r.bytes()?)?),
                8 => {
                    // OperatorSetIdProto { domain=1, version=2 }
                    let bytes = r.bytes()?;
                    let mut rr = Reader::new(bytes);
                    while !rr.is_at_end() {
                        let (f2, w2) = rr.key()?;
                        match f2 {
                            2 => m.opset_version = rr.int64()?,
                            _ => rr.skip(w2)?,
                        }
                    }
                }
                _ => r.skip(wire)?,
            }
        }
        Ok(m)
    }

    /// Encodes to serialized `.onnx` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.field_varint(1, self.ir_version as u64);
        w.field_string(2, &self.producer_name);
        w.field_string(3, &self.producer_version);
        if let Some(g) = &self.graph {
            w.field_message(7, &g.encode());
        }
        if self.opset_version != 0 {
            let mut opset = Writer::new();
            opset.field_int64_always(2, self.opset_version);
            w.field_message(8, &opset);
        }
        w.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> ModelProto {
        ModelProto {
            ir_version: 8,
            producer_name: "pimcomp".into(),
            producer_version: "0.1".into(),
            opset_version: 13,
            graph: Some(GraphProto {
                name: "g".into(),
                node: vec![NodeProto {
                    input: vec!["x".into(), "w".into()],
                    output: vec!["y".into()],
                    name: "conv1".into(),
                    op_type: "Conv".into(),
                    attribute: vec![
                        AttributeProto::ints("kernel_shape", vec![3, 3]),
                        AttributeProto::ints("pads", vec![1, 1, 1, 1]),
                        AttributeProto::ints("strides", vec![1, 1]),
                        AttributeProto::int("group", 1),
                    ],
                }],
                initializer: vec![TensorProto {
                    dims: vec![16, 3, 3, 3],
                    data_type: 1,
                    name: "w".into(),
                    raw_data: vec![],
                }],
                input: vec![ValueInfoProto {
                    name: "x".into(),
                    elem_type: 1,
                    shape: TensorShapeProto {
                        dims: vec![None, Some(3), Some(32), Some(32)],
                    },
                }],
                output: vec![ValueInfoProto {
                    name: "y".into(),
                    elem_type: 1,
                    shape: TensorShapeProto {
                        dims: vec![None, Some(16), Some(32), Some(32)],
                    },
                }],
            }),
        }
    }

    #[test]
    fn model_round_trip() {
        let m = sample_model();
        let bytes = m.encode();
        let m2 = ModelProto::decode(&bytes).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn attribute_accessors() {
        let m = sample_model();
        let node = &m.graph.unwrap().node[0];
        assert_eq!(node.attr_ints("kernel_shape"), &[3, 3]);
        assert_eq!(node.attr_i("group", 1), 1);
        assert_eq!(node.attr_i("missing", 7), 7);
    }

    #[test]
    fn unknown_fields_are_skipped() {
        let m = sample_model();
        let mut bytes = m.encode();
        // Append an unknown varint field (number 99).
        let mut w = Writer::new();
        w.field_varint(99, 1234);
        bytes.extend_from_slice(&w.into_bytes());
        let m2 = ModelProto::decode(&bytes).unwrap();
        assert_eq!(m2.producer_name, "pimcomp");
    }

    #[test]
    fn symbolic_batch_dim_survives() {
        let m = sample_model();
        let bytes = m.encode();
        let m2 = ModelProto::decode(&bytes).unwrap();
        let g = m2.graph.unwrap();
        assert_eq!(g.input[0].shape.dims[0], None);
        assert_eq!(g.input[0].shape.dims[1], Some(3));
    }
}
