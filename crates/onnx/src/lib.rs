//! Minimal from-scratch ONNX interchange for the PIMCOMP framework.
//!
//! The paper's front end "loads DNN model in ONNX format" (Section
//! IV-A). This crate implements the required slice of ONNX without any
//! protobuf dependency: a hand-rolled wire-format codec ([`wire`]), the
//! message subset inference graphs use ([`proto`]), and converters
//! to/from the PIMCOMP IR ([`import_bytes`], [`export_graph`]).
//!
//! Weight *values* are never materialized — the compiler consumes only
//! shapes and topology — so exported models carry initializer dims with
//! empty payloads, and imported models may come from any exporter.
//!
//! # Example
//!
//! ```
//! use pimcomp_onnx::{export_graph, import_bytes};
//!
//! # fn main() -> Result<(), pimcomp_onnx::OnnxError> {
//! let graph = pimcomp_ir::models::tiny_mlp();
//! let bytes = export_graph(&graph).encode();
//! let back = import_bytes(&bytes)?;
//! assert_eq!(back.node_count(), graph.node_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod import;
pub mod proto;
pub mod wire;

pub use export::{export_graph, EXPORT_OPSET};
pub use import::{import_bytes, import_model};

use std::fmt;

/// Every ONNX `op_type` the importer accepts, sorted alphabetically.
///
/// [`OnnxError::UnsupportedOp`] lists these so users of foreign models
/// can see at a glance what the supported inference subset is.
pub const SUPPORTED_OPS: [&str; 24] = [
    "Add",
    "Attention",
    "AveragePool",
    "BatchNormalization",
    "Concat",
    "Conv",
    "Dropout",
    "Flatten",
    "Gelu",
    "Gemm",
    "GlobalAveragePool",
    "Identity",
    "LRN",
    "LayerNormalization",
    "MatMul",
    "MaxPool",
    "Mul",
    "Pad",
    "Relu",
    "Reshape",
    "Sigmoid",
    "Softmax",
    "Sum",
    "Tanh",
];

/// ONNX interchange errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OnnxError {
    /// The wire format is invalid (truncated buffer, bad tag, …).
    Malformed {
        /// What went wrong.
        detail: String,
    },
    /// The model has no graph.
    MissingGraph,
    /// The graph uses an operator outside the supported inference
    /// subset. The display form lists every supported `op_type`
    /// ([`SUPPORTED_OPS`]) so the valid alternatives are never a guess.
    UnsupportedOp {
        /// The offending `op_type`.
        op_type: String,
        /// Name of the graph node using it.
        node: String,
    },
    /// The graph could not be converted to the IR.
    Import {
        /// What went wrong.
        detail: String,
    },
    /// Every node converted, but the assembled graph failed structural
    /// validation (cycle, missing input, dangling reference, …).
    /// Returned — never panicked — so batch importers survive one bad
    /// model.
    InvalidGraph {
        /// The underlying validation failure.
        detail: String,
    },
}

impl fmt::Display for OnnxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnnxError::Malformed { detail } => write!(f, "malformed onnx payload: {detail}"),
            OnnxError::MissingGraph => write!(f, "model contains no graph"),
            OnnxError::UnsupportedOp { op_type, node } => write!(
                f,
                "unsupported operator `{op_type}` at node `{node}`; supported operators: {}",
                SUPPORTED_OPS.join(", ")
            ),
            OnnxError::Import { detail } => write!(f, "import failed: {detail}"),
            OnnxError::InvalidGraph { detail } => {
                write!(f, "imported graph failed validation: {detail}")
            }
        }
    }
}

impl std::error::Error for OnnxError {}
