//! Graphviz DOT export for visual inspection of model graphs.

use crate::{Graph, Op};
use std::fmt::Write;

/// Renders the graph in Graphviz DOT syntax.
///
/// Node shapes encode the execution-model class: boxes for crossbar
/// MVM producers (conv/fc), ellipses for VFU work, plain text for
/// memory/reshape operators, and diamonds for inputs.
///
/// # Example
///
/// ```
/// let g = pimcomp_ir::models::tiny_mlp();
/// let dot = pimcomp_ir::to_dot(&g);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("fc1"));
/// ```
pub fn to_dot(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", graph.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"monospace\", fontsize=10];");
    for node in graph.nodes() {
        let shape = match &node.op {
            Op::Input { .. } => "diamond",
            op if op.is_mvm() => "box",
            op if op.is_vector() => "ellipse",
            _ => "plaintext",
        };
        let label = format!("{}\\n{} {}", node.name, node.op, node.output_shape);
        let _ = writeln!(
            out,
            "  n{} [label=\"{label}\", shape={shape}];",
            node.id.index()
        );
    }
    for node in graph.nodes() {
        for &p in graph.predecessors(node.id) {
            let _ = writeln!(out, "  n{} -> n{};", p.index(), node.id.index());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let g = models::two_branch();
        let dot = to_dot(&g);
        for node in g.nodes() {
            assert!(dot.contains(&format!("n{} [", node.id.index())));
        }
        let edge_count = dot.matches(" -> ").count();
        let expect: usize = g.nodes().iter().map(|n| n.inputs.len()).sum();
        assert_eq!(edge_count, expect);
    }

    #[test]
    fn dot_uses_class_shapes() {
        let g = models::tiny_cnn();
        let dot = to_dot(&g);
        assert!(dot.contains("shape=diamond")); // input
        assert!(dot.contains("shape=box")); // conv/fc
        assert!(dot.contains("shape=ellipse")); // relu/pool
    }

    #[test]
    fn dot_is_balanced() {
        let g = models::tiny_mlp();
        let dot = to_dot(&g);
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
