//! Per-operator output shape inference.

use crate::{Dim, IrError, Op, Shape};

/// Computes one spatial output extent for a sliding-window operator.
///
/// `floor((in + 2*pad - kernel) / stride) + 1`, or the ceiling variant
/// when `ceil_mode` is set (googlenet pools).
pub(crate) fn window_extent(
    input: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    ceil_mode: bool,
) -> Option<usize> {
    // Checked: an imported graph can carry a pad near usize::MAX, and
    // `input + 2*pad` must not wrap (or abort in debug builds).
    let padded = pad.checked_mul(2).and_then(|p| input.checked_add(p))?;
    if padded < kernel || stride == 0 {
        return None;
    }
    let span = padded - kernel;
    let out = if ceil_mode {
        span.div_ceil(stride) + 1
    } else {
        span / stride + 1
    };
    Some(out)
}

/// Infers the output shape of `op` given its input shapes.
///
/// `node` is used only for error messages.
///
/// # Errors
///
/// Returns [`IrError::ArityMismatch`] when the wrong number of inputs is
/// supplied, [`IrError::ShapeMismatch`] when an input shape is not
/// acceptable for the operator, and [`IrError::InvalidAttribute`] when an
/// attribute is out of domain (e.g. zero stride).
pub fn infer_output_shape(node: &str, op: &Op, inputs: &[&Shape]) -> Result<Shape, IrError> {
    let arity_err = |expected: usize| IrError::ArityMismatch {
        node: node.to_string(),
        expected,
        actual: inputs.len(),
    };
    let shape_err = |detail: String| IrError::ShapeMismatch {
        node: node.to_string(),
        detail,
    };
    let attr_err = |detail: String| IrError::InvalidAttribute {
        node: node.to_string(),
        detail,
    };

    match op {
        Op::Input { shape } => {
            if !inputs.is_empty() {
                return Err(arity_err(0));
            }
            Ok(shape.clone())
        }
        Op::Conv2d(c) => {
            let x = single(inputs).ok_or_else(|| arity_err(1))?;
            if !x.is_chw() {
                return Err(shape_err(format!("conv expects CxHxW input, got {x}")));
            }
            if x.channels() != c.in_channels {
                return Err(shape_err(format!(
                    "conv expects {} input channels, got {}",
                    c.in_channels,
                    x.channels()
                )));
            }
            if c.kernel.0 == 0 || c.kernel.1 == 0 {
                return Err(attr_err("kernel must be positive".into()));
            }
            if c.stride.0 == 0 || c.stride.1 == 0 {
                return Err(attr_err("stride must be positive".into()));
            }
            if c.groups == 0 || c.in_channels % c.groups != 0 || c.out_channels % c.groups != 0 {
                return Err(attr_err(format!(
                    "groups {} must divide Cin {} and Cout {}",
                    c.groups, c.in_channels, c.out_channels
                )));
            }
            let h = window_extent(x.height(), c.kernel.0, c.stride.0, c.padding.0, false)
                .ok_or_else(|| {
                    // Saturating: this message must not itself overflow
                    // on the adversarial padding it is reporting.
                    shape_err(format!(
                        "kernel {}x{} larger than padded input {}x{}",
                        c.kernel.0,
                        c.kernel.1,
                        x.height().saturating_add(c.padding.0.saturating_mul(2)),
                        x.width().saturating_add(c.padding.1.saturating_mul(2))
                    ))
                })?;
            let w = window_extent(x.width(), c.kernel.1, c.stride.1, c.padding.1, false)
                .ok_or_else(|| shape_err("kernel wider than padded input".into()))?;
            Ok(Shape::chw(c.out_channels, h, w))
        }
        Op::Linear(l) => {
            let x = single(inputs).ok_or_else(|| arity_err(1))?;
            let numel = x
                .try_numel()
                .ok_or_else(|| shape_err(format!("fc expects a fixed input shape, got {x}")))?;
            if numel != l.in_features {
                return Err(shape_err(format!(
                    "fc expects {} input features, got {numel} ({x})",
                    l.in_features,
                )));
            }
            Ok(Shape::flat(l.out_features))
        }
        Op::Pool(p) => {
            let x = single(inputs).ok_or_else(|| arity_err(1))?;
            if !x.is_chw() {
                return Err(shape_err(format!("pool expects CxHxW input, got {x}")));
            }
            if p.kernel.0 == 0 || p.kernel.1 == 0 {
                return Err(attr_err("kernel must be positive".into()));
            }
            if p.stride.0 == 0 || p.stride.1 == 0 {
                return Err(attr_err("stride must be positive".into()));
            }
            let h = window_extent(x.height(), p.kernel.0, p.stride.0, p.padding.0, p.ceil_mode)
                .ok_or_else(|| shape_err("pool kernel larger than padded input".into()))?;
            let w = window_extent(x.width(), p.kernel.1, p.stride.1, p.padding.1, p.ceil_mode)
                .ok_or_else(|| shape_err("pool kernel larger than padded input".into()))?;
            Ok(Shape::chw(x.channels(), h, w))
        }
        Op::GlobalAvgPool => {
            let x = single(inputs).ok_or_else(|| arity_err(1))?;
            if !x.is_chw() {
                return Err(shape_err(format!("gap expects CxHxW input, got {x}")));
            }
            Ok(Shape::chw(x.channels(), 1, 1))
        }
        Op::Activation(_) | Op::BatchNorm | Op::Dropout | Op::Softmax | Op::LayerNorm => {
            let x = single(inputs).ok_or_else(|| arity_err(1))?;
            Ok(x.clone())
        }
        Op::MatMul(m) => {
            let x = single(inputs).ok_or_else(|| arity_err(1))?;
            match x.dims().last() {
                Some(Dim::Fixed(f)) if *f == m.in_features => {}
                _ => {
                    return Err(shape_err(format!(
                        "matmul expects {} input features on the last axis, got {x}",
                        m.in_features
                    )));
                }
            }
            let mut dims = x.dims().to_vec();
            *dims.last_mut().expect("shape is never empty") = Dim::Fixed(m.out_features);
            Ok(Shape::from_dims(dims))
        }
        Op::Bmm(b) => {
            if inputs.len() != 2 {
                return Err(arity_err(2));
            }
            let (a, bb) = (inputs[0], inputs[1]);
            if a.rank() != 2 || bb.rank() != 2 {
                return Err(shape_err(format!(
                    "bmm expects rank-2 inputs, got {a} and {bb}"
                )));
            }
            // Contraction axis: last of A against last (transposed) or
            // first of B. A symbolic axis contracts against itself
            // (the seq-length context product), so equality of `Dim`s —
            // not fixedness — is what matters here.
            let (contract_a, contract_b, out) = if b.transpose_b {
                (a.dims()[1], bb.dims()[1], [a.dims()[0], bb.dims()[0]])
            } else {
                (a.dims()[1], bb.dims()[0], [a.dims()[0], bb.dims()[1]])
            };
            if contract_a != contract_b {
                return Err(shape_err(format!(
                    "bmm contraction axes must match: {a} vs {bb}{}",
                    if b.transpose_b { " (transposed)" } else { "" }
                )));
            }
            Ok(Shape::from_dims(out.to_vec()))
        }
        Op::Transpose => {
            let x = single(inputs).ok_or_else(|| arity_err(1))?;
            if x.rank() < 2 {
                return Err(shape_err(format!(
                    "transpose expects at least rank-2 input, got {x}"
                )));
            }
            let mut dims = x.dims().to_vec();
            dims.swap(x.rank() - 2, x.rank() - 1);
            Ok(Shape::from_dims(dims))
        }
        Op::Reshape { shape } => {
            let x = single(inputs).ok_or_else(|| arity_err(1))?;
            let seq_count = |s: &Shape| s.dims().iter().filter(|d| matches!(d, Dim::Seq)).count();
            let fixed_product =
                |s: &Shape| -> usize { s.dims().iter().filter_map(|d| d.fixed()).product() };
            if seq_count(x) != seq_count(shape) || fixed_product(x) != fixed_product(shape) {
                return Err(shape_err(format!(
                    "reshape must preserve the element count: {x} -> {shape}"
                )));
            }
            Ok(shape.clone())
        }
        Op::Attention(at) => {
            if inputs.len() != 3 {
                return Err(arity_err(3));
            }
            let q = inputs[0];
            for x in inputs {
                if x.rank() != 2 || **x != *q {
                    return Err(shape_err(format!(
                        "attention expects three equal rank-2 (seq x hidden) inputs, got {q} vs {x}"
                    )));
                }
            }
            let hidden = match q.dims()[1] {
                Dim::Fixed(h) => h,
                Dim::Seq => {
                    return Err(shape_err(format!(
                        "attention hidden width must be fixed, got {q}"
                    )));
                }
            };
            if at.heads == 0 || hidden % at.heads != 0 {
                return Err(attr_err(format!(
                    "attention heads {} must be positive and divide hidden width {hidden}",
                    at.heads
                )));
            }
            Ok(q.clone())
        }
        Op::Lrn(l) => {
            let x = single(inputs).ok_or_else(|| arity_err(1))?;
            if l.size == 0 {
                return Err(attr_err("lrn size must be positive".into()));
            }
            Ok(x.clone())
        }
        Op::Concat => {
            if inputs.len() < 2 {
                return Err(arity_err(2));
            }
            let first = inputs[0];
            if !first.is_chw() {
                return Err(shape_err(format!(
                    "concat expects CxHxW inputs, got {first}"
                )));
            }
            let (h, w) = (first.height(), first.width());
            let mut channels = 0usize;
            for x in inputs {
                if !x.is_chw() || x.height() != h || x.width() != w {
                    return Err(shape_err(format!(
                        "concat inputs must share spatial dims; got {first} vs {x}"
                    )));
                }
                channels = channels
                    .checked_add(x.channels())
                    .ok_or_else(|| shape_err("concat channel count overflows".into()))?;
            }
            Ok(Shape::chw(channels, h, w))
        }
        Op::Eltwise(_) => {
            if inputs.len() != 2 {
                return Err(arity_err(2));
            }
            if inputs[0] != inputs[1] {
                return Err(shape_err(format!(
                    "eltwise inputs must match: {} vs {}",
                    inputs[0], inputs[1]
                )));
            }
            Ok(inputs[0].clone())
        }
        Op::Flatten => {
            let x = single(inputs).ok_or_else(|| arity_err(1))?;
            let numel = x.try_numel().ok_or_else(|| {
                shape_err(format!("flatten expects a fixed input shape, got {x}"))
            })?;
            Ok(Shape::flat(numel))
        }
        Op::Pad(p) => {
            let x = single(inputs).ok_or_else(|| arity_err(1))?;
            if !x.is_chw() {
                return Err(shape_err(format!("pad expects CxHxW input, got {x}")));
            }
            let grow = |extent: usize, pad: usize| {
                pad.checked_mul(2)
                    .and_then(|twice| extent.checked_add(twice))
                    .ok_or_else(|| attr_err(format!("pad {pad} overflows the tensor extent")))
            };
            Ok(Shape::chw(
                x.channels(),
                grow(x.height(), p.height)?,
                grow(x.width(), p.width)?,
            ))
        }
    }
}

fn single<'a>(inputs: &[&'a Shape]) -> Option<&'a Shape> {
    if inputs.len() == 1 {
        Some(inputs[0])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, EltwiseKind, Linear, Pool, PoolKind};

    fn conv(cin: usize, cout: usize, k: usize, s: usize, p: usize) -> Op {
        Op::Conv2d(Conv2d {
            in_channels: cin,
            out_channels: cout,
            kernel: (k, k),
            stride: (s, s),
            padding: (p, p),
            groups: 1,
            bias: true,
        })
    }

    #[test]
    fn conv_same_padding_preserves_extent() {
        let x = Shape::chw(64, 56, 56);
        let y = infer_output_shape("c", &conv(64, 128, 3, 1, 1), &[&x]).unwrap();
        assert_eq!(y, Shape::chw(128, 56, 56));
    }

    #[test]
    fn conv_stride_two_halves_extent() {
        let x = Shape::chw(3, 224, 224);
        let y = infer_output_shape("c", &conv(3, 64, 7, 2, 3), &[&x]).unwrap();
        assert_eq!(y, Shape::chw(64, 112, 112));
    }

    #[test]
    fn conv_rejects_channel_mismatch() {
        let x = Shape::chw(3, 8, 8);
        let e = infer_output_shape("c", &conv(4, 8, 3, 1, 1), &[&x]).unwrap_err();
        assert!(matches!(e, IrError::ShapeMismatch { .. }));
    }

    #[test]
    fn conv_rejects_oversized_kernel() {
        let x = Shape::chw(3, 4, 4);
        let e = infer_output_shape("c", &conv(3, 8, 7, 1, 0), &[&x]).unwrap_err();
        assert!(matches!(e, IrError::ShapeMismatch { .. }));
    }

    #[test]
    fn asymmetric_conv_shapes() {
        let op = Op::Conv2d(Conv2d {
            in_channels: 128,
            out_channels: 192,
            kernel: (1, 7),
            stride: (1, 1),
            padding: (0, 3),
            groups: 1,
            bias: false,
        });
        let x = Shape::chw(128, 17, 17);
        let y = infer_output_shape("c", &op, &[&x]).unwrap();
        assert_eq!(y, Shape::chw(192, 17, 17));
    }

    #[test]
    fn pool_floor_vs_ceil() {
        // span = 12 - 3 = 9: floor(9/2)+1 = 5, ceil(9/2)+1 = 6.
        let x = Shape::chw(64, 12, 12);
        let floor = Op::Pool(Pool {
            kind: PoolKind::Max,
            kernel: (3, 3),
            stride: (2, 2),
            padding: (0, 0),
            ceil_mode: false,
        });
        let ceil = Op::Pool(Pool {
            kind: PoolKind::Max,
            kernel: (3, 3),
            stride: (2, 2),
            padding: (0, 0),
            ceil_mode: true,
        });
        assert_eq!(
            infer_output_shape("p", &floor, &[&x]).unwrap(),
            Shape::chw(64, 5, 5)
        );
        assert_eq!(
            infer_output_shape("p", &ceil, &[&x]).unwrap(),
            Shape::chw(64, 6, 6)
        );
    }

    #[test]
    fn linear_checks_feature_count() {
        let op = Op::Linear(Linear {
            in_features: 512,
            out_features: 10,
            bias: true,
        });
        let ok = Shape::flat(512);
        assert_eq!(
            infer_output_shape("fc", &op, &[&ok]).unwrap(),
            Shape::flat(10)
        );
        // A CxHxW input with matching element count is also accepted
        // (implicit flatten, as ONNX Gemm often sees).
        let chw = Shape::chw(512, 1, 1);
        assert_eq!(
            infer_output_shape("fc", &op, &[&chw]).unwrap(),
            Shape::flat(10)
        );
        let bad = Shape::flat(100);
        assert!(infer_output_shape("fc", &op, &[&bad]).is_err());
    }

    #[test]
    fn concat_sums_channels() {
        let a = Shape::chw(64, 28, 28);
        let b = Shape::chw(128, 28, 28);
        let c = Shape::chw(32, 28, 28);
        let y = infer_output_shape("cat", &Op::Concat, &[&a, &b, &c]).unwrap();
        assert_eq!(y, Shape::chw(224, 28, 28));
    }

    #[test]
    fn concat_rejects_spatial_mismatch() {
        let a = Shape::chw(64, 28, 28);
        let b = Shape::chw(64, 14, 14);
        assert!(infer_output_shape("cat", &Op::Concat, &[&a, &b]).is_err());
    }

    #[test]
    fn eltwise_requires_equal_shapes() {
        let a = Shape::chw(64, 28, 28);
        let b = Shape::chw(64, 28, 28);
        let y = infer_output_shape("add", &Op::Eltwise(EltwiseKind::Add), &[&a, &b]).unwrap();
        assert_eq!(y, a);
        let c = Shape::chw(32, 28, 28);
        assert!(infer_output_shape("add", &Op::Eltwise(EltwiseKind::Add), &[&a, &c]).is_err());
    }

    #[test]
    fn flatten_collapses() {
        let x = Shape::chw(512, 7, 7);
        let y = infer_output_shape("f", &Op::Flatten, &[&x]).unwrap();
        assert_eq!(y, Shape::flat(512 * 7 * 7));
    }

    /// Regression: adversarial attribute values from an imported graph
    /// used to overflow (`input + 2*pad` aborts in debug builds) or
    /// slip through unvalidated (zero-sized pool kernels); all of them
    /// must surface as structured errors instead.
    #[test]
    fn hostile_attributes_error_instead_of_panicking() {
        // Conv padding near usize::MAX: both the inference and its
        // error message must survive.
        let x = Shape::chw(3, 8, 8);
        let huge_pad = Op::Conv2d(Conv2d {
            in_channels: 3,
            out_channels: 8,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (usize::MAX / 2 + 1, usize::MAX / 2 + 1),
            groups: 1,
            bias: true,
        });
        let e = infer_output_shape("c", &huge_pad, &[&x]).unwrap_err();
        assert!(matches!(e, IrError::ShapeMismatch { .. }));

        // Pad op whose growth overflows the extent.
        let pad = Op::Pad(crate::Pad2d {
            height: usize::MAX / 2 + 1,
            width: 0,
        });
        let e = infer_output_shape("pad", &pad, &[&x]).unwrap_err();
        assert!(matches!(e, IrError::InvalidAttribute { .. }));

        // Zero-sized pool kernel used to be accepted silently.
        let pool = Op::Pool(Pool {
            kind: PoolKind::Max,
            kernel: (0, 3),
            stride: (1, 1),
            padding: (0, 0),
            ceil_mode: false,
        });
        let e = infer_output_shape("p", &pool, &[&x]).unwrap_err();
        assert!(matches!(e, IrError::InvalidAttribute { .. }));
    }

    #[test]
    fn matmul_preserves_leading_dims() {
        let op = Op::MatMul(crate::MatMul {
            in_features: 128,
            out_features: 256,
            bias: true,
        });
        // Symbolic leading dim flows through untouched.
        let x = Shape::seq_features(128);
        let y = infer_output_shape("mm", &op, &[&x]).unwrap();
        assert_eq!(y, Shape::from_dims(vec![Dim::Seq, Dim::Fixed(256)]));
        // Bound token stream.
        let x = Shape::new([64usize, 128]);
        let y = infer_output_shape("mm", &op, &[&x]).unwrap();
        assert_eq!(y, Shape::new([64usize, 256]));
        // Feature-width mismatch is structured.
        let bad = Shape::seq_features(100);
        let e = infer_output_shape("mm", &op, &[&bad]).unwrap_err();
        assert!(matches!(e, IrError::ShapeMismatch { .. }));
    }

    #[test]
    fn bmm_scores_and_context_shapes() {
        let scores = Op::Bmm(crate::Bmm {
            transpose_b: true,
            scaled: true,
        });
        let q = Shape::seq_features(128);
        let y = infer_output_shape("scores", &scores, &[&q, &q]).unwrap();
        assert_eq!(y, Shape::from_dims(vec![Dim::Seq, Dim::Seq]));

        let ctx = Op::Bmm(crate::Bmm {
            transpose_b: false,
            scaled: false,
        });
        // [seq, seq] x [seq, 128]: the symbolic axis contracts against
        // itself and the result stays symbolic in the leading dim.
        let v = Shape::seq_features(128);
        let y = infer_output_shape("ctx", &ctx, &[&y, &v]).unwrap();
        assert_eq!(y, Shape::from_dims(vec![Dim::Seq, Dim::Fixed(128)]));
        // A fixed axis against the symbolic one does not match.
        let bad = Shape::new([64usize, 128]);
        let sym = Shape::seq_features(128);
        let e = infer_output_shape("ctx", &ctx, &[&bad, &sym]).unwrap_err();
        assert!(matches!(e, IrError::ShapeMismatch { .. }));

        let bound = Shape::new([64usize, 64]);
        let v = Shape::new([64usize, 128]);
        let y = infer_output_shape("ctx", &ctx, &[&bound, &v]).unwrap();
        assert_eq!(y, Shape::new([64usize, 128]));
    }

    #[test]
    fn transpose_and_reshape() {
        let x = Shape::new([64usize, 128]);
        let y = infer_output_shape("t", &Op::Transpose, &[&x]).unwrap();
        assert_eq!(y, Shape::new([128usize, 64]));
        let e = infer_output_shape("t", &Op::Transpose, &[&Shape::flat(8)]).unwrap_err();
        assert!(matches!(e, IrError::ShapeMismatch { .. }));

        let re = Op::Reshape {
            shape: Shape::new([128usize, 64]),
        };
        assert!(infer_output_shape("r", &re, &[&x]).is_ok());
        let bad = Op::Reshape {
            shape: Shape::new([128usize, 63]),
        };
        assert!(infer_output_shape("r", &bad, &[&x]).is_err());
        // Symbolic reshapes must preserve both the fixed product and the
        // symbolic dim count.
        let sym = Shape::seq_features(128);
        let re_sym = Op::Reshape {
            shape: Shape::from_dims(vec![Dim::Fixed(128), Dim::Seq]),
        };
        assert!(infer_output_shape("r", &re_sym, &[&sym]).is_ok());
        let drop_seq = Op::Reshape {
            shape: Shape::flat(128),
        };
        assert!(infer_output_shape("r", &drop_seq, &[&sym]).is_err());
    }

    #[test]
    fn attention_validates_heads_and_inputs() {
        let op = Op::Attention(crate::Attention { heads: 4 });
        let q = Shape::seq_features(128);
        assert_eq!(infer_output_shape("at", &op, &[&q, &q, &q]).unwrap(), q);
        // Arity.
        let e = infer_output_shape("at", &op, &[&q, &q]).unwrap_err();
        assert!(matches!(e, IrError::ArityMismatch { expected: 3, .. }));
        // Mismatched K.
        let k = Shape::seq_features(64);
        assert!(infer_output_shape("at", &op, &[&q, &k, &q]).is_err());
        // Heads must divide hidden.
        let bad = Op::Attention(crate::Attention { heads: 3 });
        let e = infer_output_shape("at", &bad, &[&q, &q, &q]).unwrap_err();
        assert!(matches!(e, IrError::InvalidAttribute { .. }));
    }

    /// Regression (rank audit): ops that index into dims must reject
    /// hostile rank-1 / rank-4 / symbolic inputs with structured errors
    /// instead of panicking or silently mis-reading extents.
    #[test]
    fn hostile_ranks_error_instead_of_panicking() {
        let r1 = Shape::flat(7);
        let r4 = Shape::new([2usize, 3, 4, 5]);
        let sym = Shape::seq_features(16);

        for x in [&r1, &r4, &sym] {
            let e = infer_output_shape("g", &Op::GlobalAvgPool, &[x]).unwrap_err();
            assert!(matches!(e, IrError::ShapeMismatch { .. }), "gap on {x}");
            let e = infer_output_shape("cat", &Op::Concat, &[x, x]).unwrap_err();
            assert!(matches!(e, IrError::ShapeMismatch { .. }), "concat on {x}");
        }

        // Flatten accepts any fixed rank but must reject symbolic input.
        assert_eq!(
            infer_output_shape("f", &Op::Flatten, &[&r4]).unwrap(),
            Shape::flat(2 * 3 * 4 * 5)
        );
        let e = infer_output_shape("f", &Op::Flatten, &[&sym]).unwrap_err();
        assert!(matches!(e, IrError::ShapeMismatch { .. }));

        // Linear likewise needs a fixed element count.
        let fc = Op::Linear(Linear {
            in_features: 16,
            out_features: 4,
            bias: false,
        });
        let e = infer_output_shape("fc", &fc, &[&sym]).unwrap_err();
        assert!(matches!(e, IrError::ShapeMismatch { .. }));
    }

    #[test]
    fn window_extent_edge_cases() {
        // Kernel exactly covers the input: one window.
        assert_eq!(window_extent(3, 3, 1, 0, false), Some(1));
        // Kernel larger than padded input: no window.
        assert_eq!(window_extent(2, 3, 1, 0, false), None);
        // Padding rescues it.
        assert_eq!(window_extent(2, 3, 1, 1, false), Some(2));
        // Zero stride is invalid.
        assert_eq!(window_extent(8, 3, 0, 0, false), None);
    }
}
