//! Operator definitions.
//!
//! The operator set mirrors what the paper's benchmark networks need:
//! convolution and fully connected layers (the MVM producers mapped onto
//! crossbars), pooling, activation, element-wise, concat and a handful of
//! shape/normalization utilities handled by the VFU or local memory.

use serde::{Deserialize, Serialize};
use std::fmt;

/// 2-D convolution attributes.
///
/// Kernel, stride and padding are `(height, width)` pairs so that the
/// factorized 1×7 / 7×1 convolutions of inception-v3 are representable.
/// Padding is symmetric per dimension (pad `p` adds `p` rows/columns on
/// both sides), matching the benchmark networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2d {
    /// Input channel count `Cin`.
    pub in_channels: usize,
    /// Output channel count `Cout`.
    pub out_channels: usize,
    /// Kernel size `(kh, kw)`.
    pub kernel: (usize, usize),
    /// Stride `(sh, sw)`.
    pub stride: (usize, usize),
    /// Symmetric padding `(ph, pw)`.
    pub padding: (usize, usize),
    /// Channel groups (1 for all paper benchmarks; kept for generality).
    pub groups: usize,
    /// Whether a bias vector is added (handled by the VFU).
    pub bias: bool,
}

impl Conv2d {
    /// Height of the unfolded weight matrix: `kh * kw * Cin / groups`.
    ///
    /// This is the row count the node-partitioning stage slices into
    /// crossbar-height Array Groups (paper Fig. 4).
    pub fn weight_matrix_height(&self) -> usize {
        self.kernel.0 * self.kernel.1 * self.in_channels / self.groups
    }

    /// Width of the unfolded weight matrix: `Cout`.
    pub fn weight_matrix_width(&self) -> usize {
        self.out_channels
    }

    /// Total weight element count.
    pub fn weight_count(&self) -> usize {
        self.weight_matrix_height() * self.weight_matrix_width() * self.groups
    }
}

/// Fully connected (`Gemm` in ONNX) attributes.
///
/// Treated as a 1×1 convolution over a 1×1 feature map by the
/// node-partitioning stage (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Linear {
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
    /// Whether a bias vector is added.
    pub bias: bool,
}

impl Linear {
    /// Height of the weight matrix (`in_features`).
    pub fn weight_matrix_height(&self) -> usize {
        self.in_features
    }

    /// Width of the weight matrix (`out_features`).
    pub fn weight_matrix_width(&self) -> usize {
        self.out_features
    }
}

/// Weight-stationary matrix multiply applied per row of a token stream
/// (`[.., in] @ W[in, out] -> [.., out]`).
///
/// The weight matrix is mapped onto crossbars exactly like a fully
/// connected layer — the only difference is that every leading-dimension
/// row (e.g. every sequence position) streams through the same arrays,
/// so the operator produces `seq` windows instead of one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatMul {
    /// Contraction width (rows of the stationary weight matrix).
    pub in_features: usize,
    /// Output width (columns of the stationary weight matrix).
    pub out_features: usize,
    /// Whether a bias vector is added (handled by the VFU).
    pub bias: bool,
}

impl MatMul {
    /// Height of the weight matrix (`in_features`).
    pub fn weight_matrix_height(&self) -> usize {
        self.in_features
    }

    /// Width of the weight matrix (`out_features`).
    pub fn weight_matrix_width(&self) -> usize {
        self.out_features
    }
}

/// Activation-by-activation matrix multiply (`A @ B`), executed by the
/// VFU — neither operand is a stationary weight, so nothing is mapped
/// onto crossbars (attention score and context products).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bmm {
    /// Multiply by `B`ᵀ instead of `B` (the Q·Kᵀ score product).
    pub transpose_b: bool,
    /// Scale the product by `1/sqrt(k)` where `k` is the contraction
    /// width (scaled dot-product attention).
    pub scaled: bool,
}

/// Fused scaled-dot-product attention over `(Q, K, V)` token streams.
///
/// Built by the `fuse_attention` transform pass from the
/// `Bmm(transpose_b) → Softmax → Bmm` subgraph; executed by the VFU with
/// cost `2·s·d + s` multiply-accumulates per query row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attention {
    /// Number of attention heads (`hidden % heads == 0`).
    pub heads: usize,
}

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// 2-D pooling attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pool {
    /// Max or average.
    pub kind: PoolKind,
    /// Kernel size `(kh, kw)`.
    pub kernel: (usize, usize),
    /// Stride `(sh, sw)`.
    pub stride: (usize, usize),
    /// Symmetric padding `(ph, pw)`.
    pub padding: (usize, usize),
    /// Use ceiling instead of floor when computing the output extent
    /// (googlenet's 3×3/2 pools use ceil mode).
    pub ceil_mode: bool,
}

/// Activation function applied element-wise by the VFU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Gaussian error linear unit (transformer feed-forward blocks).
    Gelu,
}

/// Element-wise binary combination of equally-shaped inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EltwiseKind {
    /// Element-wise addition (resnet shortcut joins).
    Add,
    /// Element-wise multiplication.
    Mul,
}

/// Local response normalization (googlenet stem).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lrn {
    /// Neighbourhood size across channels.
    pub size: usize,
    /// Scale parameter α.
    pub alpha: f64,
    /// Exponent β.
    pub beta: f64,
}

/// Standalone zero-padding of a feature map (handled in local memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pad2d {
    /// Rows added on both top and bottom.
    pub height: usize,
    /// Columns added on both left and right.
    pub width: usize,
}

/// A graph operator.
///
/// Operators fall into the paper's execution-model classes:
///
/// * **MVM producers** mapped onto PIM crossbars: [`Op::Conv2d`],
///   [`Op::Linear`], [`Op::MatMul`].
/// * **VFU vector operations**: pooling, activation, element-wise, LRN,
///   batch-norm, softmax, layer-norm, activation-matmul, attention.
/// * **Local-memory data movement**: concat, flatten, pad, transpose,
///   reshape (no arithmetic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Op {
    /// Graph input carrying the initial feature map.
    Input {
        /// Shape of the input feature.
        shape: crate::Shape,
    },
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Fully connected layer.
    Linear(Linear),
    /// Max/average pooling.
    Pool(Pool),
    /// Global average pooling (spatial extent collapses to 1×1).
    GlobalAvgPool,
    /// Element-wise activation.
    Activation(Activation),
    /// Channel-axis concatenation of two or more inputs.
    Concat,
    /// Element-wise binary combination.
    Eltwise(EltwiseKind),
    /// Collapse `[C, H, W]` into `[C*H*W]`.
    Flatten,
    /// Softmax over the feature axis.
    Softmax,
    /// Batch normalization (foldable into the preceding convolution).
    BatchNorm,
    /// Dropout (identity at inference time; removable).
    Dropout,
    /// Local response normalization.
    Lrn(Lrn),
    /// Standalone zero padding.
    Pad(Pad2d),
    /// Weight-stationary per-row matrix multiply (crossbar-mapped).
    MatMul(MatMul),
    /// Activation-by-activation matrix multiply (VFU).
    Bmm(Bmm),
    /// Layer normalization over the feature axis.
    LayerNorm,
    /// Swap the last two dimensions (local-memory data movement).
    Transpose,
    /// Reinterpret the element stream under a new shape.
    Reshape {
        /// Target shape (must preserve the element count).
        shape: crate::Shape,
    },
    /// Fused scaled-dot-product attention over `(Q, K, V)`.
    Attention(Attention),
}

impl Op {
    /// Short lower-case mnemonic (stable; used in reports and traces).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Input { .. } => "input",
            Op::Conv2d(_) => "conv",
            Op::Linear(_) => "fc",
            Op::Pool(p) => match p.kind {
                PoolKind::Max => "maxpool",
                PoolKind::Avg => "avgpool",
            },
            Op::GlobalAvgPool => "gap",
            Op::Activation(a) => match a {
                Activation::Relu => "relu",
                Activation::Sigmoid => "sigmoid",
                Activation::Tanh => "tanh",
                Activation::Gelu => "gelu",
            },
            Op::Concat => "concat",
            Op::Eltwise(e) => match e {
                EltwiseKind::Add => "add",
                EltwiseKind::Mul => "mul",
            },
            Op::Flatten => "flatten",
            Op::Softmax => "softmax",
            Op::BatchNorm => "batchnorm",
            Op::Dropout => "dropout",
            Op::Lrn(_) => "lrn",
            Op::Pad(_) => "pad",
            Op::MatMul(_) => "matmul",
            Op::Bmm(_) => "bmm",
            Op::LayerNorm => "layernorm",
            Op::Transpose => "transpose",
            Op::Reshape { .. } => "reshape",
            Op::Attention(_) => "attention",
        }
    }

    /// `true` for operators whose weights are mapped onto crossbars and
    /// which therefore go through node partitioning / replication
    /// (convolution, fully connected, and weight-stationary matmul).
    pub fn is_mvm(&self) -> bool {
        matches!(self, Op::Conv2d(_) | Op::Linear(_) | Op::MatMul(_))
    }

    /// `true` for operators executed by the vector functional unit.
    pub fn is_vector(&self) -> bool {
        matches!(
            self,
            Op::Pool(_)
                | Op::GlobalAvgPool
                | Op::Activation(_)
                | Op::Eltwise(_)
                | Op::Softmax
                | Op::BatchNorm
                | Op::Lrn(_)
                | Op::Bmm(_)
                | Op::LayerNorm
                | Op::Attention(_)
        )
    }

    /// `true` for pure data-movement operators handled in local memory.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Op::Concat
                | Op::Flatten
                | Op::Pad(_)
                | Op::Dropout
                | Op::Transpose
                | Op::Reshape { .. }
        )
    }

    /// The `(height, width)` of the stationary weight matrix an MVM
    /// operator maps onto crossbars (the unfolded matrix the
    /// node-partitioning stage slices); `None` for non-MVM operators.
    /// Functional kernels synthesize and index weights by exactly this
    /// geometry.
    pub fn weight_matrix(&self) -> Option<(usize, usize)> {
        match self {
            Op::Conv2d(c) => Some((c.weight_matrix_height(), c.weight_matrix_width())),
            Op::Linear(l) => Some((l.weight_matrix_height(), l.weight_matrix_width())),
            Op::MatMul(m) => Some((m.weight_matrix_height(), m.weight_matrix_width())),
            _ => None,
        }
    }

    /// Whether an MVM operator adds a bias vector (one element per
    /// weight-matrix column, applied by the VFU after accumulation);
    /// `None` for non-MVM operators.
    pub fn has_bias(&self) -> Option<bool> {
        match self {
            Op::Conv2d(c) => Some(c.bias),
            Op::Linear(l) => Some(l.bias),
            Op::MatMul(m) => Some(m.bias),
            _ => None,
        }
    }

    /// Number of inputs this operator requires; `None` when variadic
    /// (concat accepts two or more).
    pub fn arity(&self) -> Option<usize> {
        match self {
            Op::Input { .. } => Some(0),
            Op::Eltwise(_) | Op::Bmm(_) => Some(2),
            Op::Attention(_) => Some(3),
            Op::Concat => None,
            _ => Some(1),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_weight_matrix_dims() {
        let c = Conv2d {
            in_channels: 64,
            out_channels: 128,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
            groups: 1,
            bias: true,
        };
        assert_eq!(c.weight_matrix_height(), 3 * 3 * 64);
        assert_eq!(c.weight_matrix_width(), 128);
        assert_eq!(c.weight_count(), 9 * 64 * 128);
    }

    #[test]
    fn asymmetric_kernel_weight_matrix() {
        let c = Conv2d {
            in_channels: 128,
            out_channels: 192,
            kernel: (1, 7),
            stride: (1, 1),
            padding: (0, 3),
            groups: 1,
            bias: false,
        };
        assert_eq!(c.weight_matrix_height(), 7 * 128);
    }

    #[test]
    fn grouped_conv_divides_height() {
        let c = Conv2d {
            in_channels: 64,
            out_channels: 64,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
            groups: 2,
            bias: false,
        };
        assert_eq!(c.weight_matrix_height(), 9 * 32);
    }

    #[test]
    fn classification_predicates_are_disjoint() {
        let ops = [
            Op::Conv2d(Conv2d {
                in_channels: 1,
                out_channels: 1,
                kernel: (1, 1),
                stride: (1, 1),
                padding: (0, 0),
                groups: 1,
                bias: false,
            }),
            Op::Linear(Linear {
                in_features: 1,
                out_features: 1,
                bias: false,
            }),
            Op::Pool(Pool {
                kind: PoolKind::Max,
                kernel: (2, 2),
                stride: (2, 2),
                padding: (0, 0),
                ceil_mode: false,
            }),
            Op::GlobalAvgPool,
            Op::Activation(Activation::Relu),
            Op::Concat,
            Op::Eltwise(EltwiseKind::Add),
            Op::Flatten,
            Op::Softmax,
            Op::BatchNorm,
            Op::Dropout,
            Op::Lrn(Lrn {
                size: 5,
                alpha: 1e-4,
                beta: 0.75,
            }),
            Op::Pad(Pad2d {
                height: 1,
                width: 1,
            }),
            Op::MatMul(MatMul {
                in_features: 1,
                out_features: 1,
                bias: false,
            }),
            Op::Bmm(Bmm {
                transpose_b: true,
                scaled: true,
            }),
            Op::LayerNorm,
            Op::Transpose,
            Op::Reshape {
                shape: crate::Shape::flat(1),
            },
            Op::Attention(Attention { heads: 1 }),
        ];
        for op in &ops {
            let classes = usize::from(op.is_mvm())
                + usize::from(op.is_vector())
                + usize::from(op.is_memory());
            assert_eq!(classes, 1, "op {op} must belong to exactly one class");
        }
    }

    #[test]
    fn arity_of_common_ops() {
        assert_eq!(Op::Eltwise(EltwiseKind::Add).arity(), Some(2));
        assert_eq!(Op::Concat.arity(), None);
        assert_eq!(Op::Flatten.arity(), Some(1));
        assert_eq!(
            Op::Bmm(Bmm {
                transpose_b: false,
                scaled: false
            })
            .arity(),
            Some(2)
        );
        assert_eq!(Op::Attention(Attention { heads: 4 }).arity(), Some(3));
        assert_eq!(
            Op::Input {
                shape: crate::Shape::flat(1)
            }
            .arity(),
            Some(0)
        );
    }
}
