use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a feature tensor flowing along a graph edge.
///
/// PIMCOMP compiles single-sample inference (the pipeline parallelism the
/// paper studies is *across* inferences, not across a batch dimension), so
/// shapes are stored batch-free:
///
/// * `[C, H, W]` for convolutional feature maps,
/// * `[F]` for flattened / fully-connected features.
///
/// # Example
///
/// ```
/// use pimcomp_ir::Shape;
///
/// let s = Shape::chw(64, 56, 56);
/// assert_eq!(s.channels(), 64);
/// assert_eq!(s.numel(), 64 * 56 * 56);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from raw dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any dimension is zero; a zero-sized
    /// tensor is never meaningful in this IR.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        let dims = dims.into();
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be positive, got {dims:?}"
        );
        Shape(dims)
    }

    /// Creates a `[C, H, W]` feature-map shape.
    pub fn chw(channels: usize, height: usize, width: usize) -> Self {
        Shape::new([channels, height, width])
    }

    /// Creates a flat `[F]` feature shape.
    pub fn flat(features: usize) -> Self {
        Shape::new([features])
    }

    /// The raw dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// `true` when this is a `[C, H, W]` feature map.
    pub fn is_chw(&self) -> bool {
        self.0.len() == 3
    }

    /// `true` when this is a flat `[F]` vector.
    pub fn is_flat(&self) -> bool {
        self.0.len() == 1
    }

    /// Channel count.
    ///
    /// For `[C, H, W]` this is `C`; for a flat `[F]` shape the whole
    /// vector is treated as `F` channels of a 1×1 feature map, which is
    /// how fully connected layers are viewed as special convolutions in
    /// the paper's node-partitioning stage (Section IV-B).
    pub fn channels(&self) -> usize {
        self.0[0]
    }

    /// Spatial height (1 for flat shapes).
    pub fn height(&self) -> usize {
        if self.is_chw() {
            self.0[1]
        } else {
            1
        }
    }

    /// Spatial width (1 for flat shapes).
    pub fn width(&self) -> usize {
        if self.is_chw() {
            self.0[2]
        } else {
            1
        }
    }
}

impl fmt::Display for Shape {
    /// Renders as `CxHxW` (e.g. `64x56x56`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for d in &self.0 {
            if !first {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chw_accessors() {
        let s = Shape::chw(3, 224, 224);
        assert_eq!(s.channels(), 3);
        assert_eq!(s.height(), 224);
        assert_eq!(s.width(), 224);
        assert_eq!(s.numel(), 3 * 224 * 224);
        assert!(s.is_chw());
        assert!(!s.is_flat());
    }

    #[test]
    fn flat_accessors() {
        let s = Shape::flat(4096);
        assert_eq!(s.channels(), 4096);
        assert_eq!(s.height(), 1);
        assert_eq!(s.width(), 1);
        assert!(s.is_flat());
    }

    #[test]
    fn display_renders_dims() {
        assert_eq!(Shape::chw(64, 7, 7).to_string(), "64x7x7");
        assert_eq!(Shape::flat(10).to_string(), "10");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = Shape::new([1, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_rejected() {
        let _ = Shape::new(Vec::new());
    }
}
