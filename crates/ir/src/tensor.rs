use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A single tensor dimension: either a fixed extent or the symbolic
/// sequence length `seq`.
///
/// Transformer graphs are traced with an unknown sequence length (ONNX
/// `dim_param`); the IR carries it symbolically until the compile session
/// binds it to a concrete value via `CompileOptions::with_seq_len` /
/// `--seq-len`. CNN graphs never contain a symbolic dimension, and every
/// shape that reaches partitioning/scheduling is fully fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// A concrete extent (always positive).
    Fixed(usize),
    /// The symbolic sequence length, bound at compile time.
    Seq,
}

impl Dim {
    /// The concrete extent, or `None` while still symbolic.
    pub fn fixed(self) -> Option<usize> {
        match self {
            Dim::Fixed(n) => Some(n),
            Dim::Seq => None,
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Fixed(n) => write!(f, "{n}"),
            Dim::Seq => f.write_str("seq"),
        }
    }
}

// A fixed dimension serializes exactly like the plain `usize` it replaced
// (an integer), so graphs saved before symbolic dims existed load
// unchanged and fully-bound graphs round-trip byte-identically.
impl Serialize for Dim {
    fn to_value(&self) -> Value {
        match self {
            Dim::Fixed(n) => Value::Int(*n as i128),
            Dim::Seq => Value::Str("seq".to_string()),
        }
    }
}

impl Deserialize for Dim {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(n) if *n > 0 && *n <= usize::MAX as i128 => Ok(Dim::Fixed(*n as usize)),
            Value::Str(s) if s == "seq" => Ok(Dim::Seq),
            other => Err(DeError::new(format!(
                "dimension must be a positive integer or \"seq\", found {}",
                other.kind()
            ))),
        }
    }
}

/// The shape of a feature tensor flowing along a graph edge.
///
/// PIMCOMP compiles single-sample inference (the pipeline parallelism the
/// paper studies is *across* inferences, not across a batch dimension), so
/// shapes are stored batch-free:
///
/// * `[C, H, W]` for convolutional feature maps,
/// * `[F]` for flattened / fully-connected features,
/// * `[seq, F]` (or any rank-N form) for transformer token streams, where
///   `seq` may stay symbolic until the session binds it.
///
/// # Example
///
/// ```
/// use pimcomp_ir::Shape;
///
/// let s = Shape::chw(64, 56, 56);
/// assert_eq!(s.channels(), 64);
/// assert_eq!(s.numel(), 64 * 56 * 56);
///
/// let t = Shape::seq_features(128);
/// assert!(t.is_symbolic());
/// assert_eq!(t.bind_seq(64).numel(), 64 * 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<Dim>);

impl Shape {
    /// Creates a fully fixed shape from raw dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any dimension is zero; a zero-sized
    /// tensor is never meaningful in this IR.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        let dims = dims.into();
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be positive, got {dims:?}"
        );
        Shape(dims.into_iter().map(Dim::Fixed).collect())
    }

    /// Creates a shape from possibly-symbolic dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any fixed dimension is zero.
    pub fn from_dims(dims: impl Into<Vec<Dim>>) -> Self {
        let dims = dims.into();
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(
            dims.iter().all(|d| !matches!(d, Dim::Fixed(0))),
            "shape dimensions must be positive"
        );
        Shape(dims)
    }

    /// Creates a `[C, H, W]` feature-map shape.
    pub fn chw(channels: usize, height: usize, width: usize) -> Self {
        Shape::new([channels, height, width])
    }

    /// Creates a flat `[F]` feature shape.
    pub fn flat(features: usize) -> Self {
        Shape::new([features])
    }

    /// Creates a `[seq, F]` token-stream shape with a symbolic sequence
    /// length (the usual input shape of a transformer encoder).
    pub fn seq_features(features: usize) -> Self {
        assert!(features > 0, "shape dimensions must be positive");
        Shape(vec![Dim::Seq, Dim::Fixed(features)])
    }

    /// The raw dimensions.
    pub fn dims(&self) -> &[Dim] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// `true` while any dimension is still the symbolic sequence length.
    pub fn is_symbolic(&self) -> bool {
        self.0.iter().any(|d| matches!(d, Dim::Seq))
    }

    /// Returns a copy with every symbolic dimension bound to `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn bind_seq(&self, len: usize) -> Shape {
        assert!(len > 0, "sequence length must be positive");
        Shape(
            self.0
                .iter()
                .map(|d| match d {
                    Dim::Seq => Dim::Fixed(len),
                    fixed => *fixed,
                })
                .collect(),
        )
    }

    /// Total element count, or `None` while a dimension is symbolic.
    pub fn try_numel(&self) -> Option<usize> {
        self.0
            .iter()
            .try_fold(1usize, |acc, d| d.fixed().and_then(|n| acc.checked_mul(n)))
    }

    /// Total element count.
    ///
    /// # Panics
    ///
    /// Panics on a symbolic shape; the compile session binds the sequence
    /// length (and errors otherwise) before any element count is taken.
    pub fn numel(&self) -> usize {
        self.try_numel()
            .unwrap_or_else(|| panic!("shape {self} is symbolic; bind the sequence length first"))
    }

    /// `true` when this is a fully fixed `[C, H, W]` feature map.
    pub fn is_chw(&self) -> bool {
        self.0.len() == 3 && !self.is_symbolic()
    }

    /// `true` when this is a fixed flat `[F]` vector.
    pub fn is_flat(&self) -> bool {
        self.0.len() == 1 && !self.is_symbolic()
    }

    fn fixed_at(&self, i: usize, role: &str) -> usize {
        match self.0[i] {
            Dim::Fixed(n) => n,
            Dim::Seq => {
                panic!("shape {self} has a symbolic {role}; bind the sequence length first")
            }
        }
    }

    /// Feature width of the tensor.
    ///
    /// For `[C, H, W]` this is `C`; for every other rank it is the
    /// innermost (last) dimension — for a flat `[F]` the whole vector is
    /// treated as `F` channels of a 1×1 feature map (how fully connected
    /// layers are viewed as special convolutions in the paper's
    /// node-partitioning stage, Section IV-B), and for a `[seq, F]` token
    /// stream it is the per-token hidden width `F`.
    pub fn channels(&self) -> usize {
        if self.is_chw() {
            self.fixed_at(0, "channel count")
        } else {
            self.fixed_at(self.0.len() - 1, "feature width")
        }
    }

    /// Row count streamed through the operator.
    ///
    /// `H` for `[C, H, W]`, 1 for flat shapes, and the product of all
    /// leading (non-feature) dimensions otherwise — `seq` for a bound
    /// `[seq, F]` token stream.
    pub fn height(&self) -> usize {
        if self.is_chw() {
            self.fixed_at(1, "height")
        } else if self.0.len() == 1 {
            1
        } else {
            self.0[..self.0.len() - 1]
                .iter()
                .enumerate()
                .map(|(i, _)| self.fixed_at(i, "leading extent"))
                .product()
        }
    }

    /// Spatial width (`W` for `[C, H, W]`, 1 otherwise).
    pub fn width(&self) -> usize {
        if self.is_chw() {
            self.fixed_at(2, "width")
        } else {
            1
        }
    }
}

impl fmt::Display for Shape {
    /// Renders as `CxHxW` (e.g. `64x56x56`), symbolic dims as `seq`
    /// (e.g. `seqx128`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for d in &self.0 {
            if !first {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chw_accessors() {
        let s = Shape::chw(3, 224, 224);
        assert_eq!(s.channels(), 3);
        assert_eq!(s.height(), 224);
        assert_eq!(s.width(), 224);
        assert_eq!(s.numel(), 3 * 224 * 224);
        assert!(s.is_chw());
        assert!(!s.is_flat());
        assert!(!s.is_symbolic());
    }

    #[test]
    fn flat_accessors() {
        let s = Shape::flat(4096);
        assert_eq!(s.channels(), 4096);
        assert_eq!(s.height(), 1);
        assert_eq!(s.width(), 1);
        assert!(s.is_flat());
    }

    #[test]
    fn seq_features_accessors() {
        let s = Shape::seq_features(128);
        assert!(s.is_symbolic());
        assert!(!s.is_chw());
        assert!(!s.is_flat());
        assert_eq!(s.rank(), 2);
        assert_eq!(s.try_numel(), None);

        let bound = s.bind_seq(64);
        assert!(!bound.is_symbolic());
        assert_eq!(bound.channels(), 128);
        assert_eq!(bound.height(), 64);
        assert_eq!(bound.width(), 1);
        assert_eq!(bound.numel(), 64 * 128);
    }

    #[test]
    fn bind_seq_leaves_fixed_dims_alone() {
        let s = Shape::chw(64, 7, 7);
        assert_eq!(s.bind_seq(99), s);
    }

    #[test]
    fn rank_two_fixed_accessors() {
        // A bound token stream: rows stream through, features are the
        // innermost dim.
        let s = Shape::new([64usize, 128]);
        assert_eq!(s.height(), 64);
        assert_eq!(s.channels(), 128);
        assert_eq!(s.width(), 1);
        assert!(!s.is_chw());
    }

    #[test]
    fn display_renders_dims() {
        assert_eq!(Shape::chw(64, 7, 7).to_string(), "64x7x7");
        assert_eq!(Shape::flat(10).to_string(), "10");
        assert_eq!(Shape::seq_features(128).to_string(), "seqx128");
    }

    #[test]
    fn serde_round_trip_fixed_and_symbolic() {
        let fixed = Shape::chw(64, 7, 7);
        let v = fixed.to_value();
        assert_eq!(Shape::from_value(&v).unwrap(), fixed);

        let sym = Shape::seq_features(128);
        let v = sym.to_value();
        assert_eq!(Shape::from_value(&v).unwrap(), sym);

        // Fixed dims stay plain integers on the wire (backward compat).
        let json = serde_json::to_string(&fixed).unwrap();
        assert_eq!(json, "[64,7,7]");
        let json = serde_json::to_string(&sym).unwrap();
        assert_eq!(json, "[\"seq\",128]");
    }

    #[test]
    fn dim_deserialize_rejects_garbage() {
        assert!(Dim::from_value(&Value::Int(0)).is_err());
        assert!(Dim::from_value(&Value::Int(-3)).is_err());
        assert!(Dim::from_value(&Value::Str("sequence".into())).is_err());
        assert!(Dim::from_value(&Value::Bool(true)).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = Shape::new([1, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_rejected() {
        let _ = Shape::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "symbolic")]
    fn numel_on_symbolic_panics() {
        let _ = Shape::seq_features(128).numel();
    }
}
