//! Ergonomic graph construction with on-the-fly shape inference.

use crate::graph::{Graph, Node, NodeId};
use crate::op::{
    Activation, Attention, Bmm, Conv2d, EltwiseKind, Linear, Lrn, MatMul, Op, Pad2d, Pool, PoolKind,
};
use crate::shape_infer::infer_output_shape;
use crate::{Dim, IrError, Shape};
use std::collections::HashSet;

/// Incrementally builds a validated [`Graph`].
///
/// Every `add`-style method performs shape inference immediately, so
/// errors surface at the offending layer rather than at `finish`.
///
/// # Example
///
/// ```
/// use pimcomp_ir::GraphBuilder;
///
/// # fn main() -> Result<(), pimcomp_ir::IrError> {
/// let mut b = GraphBuilder::new("lenet-ish");
/// let x = b.input("x", [1, 28, 28]);
/// let c1 = b.conv2d("c1", x, 6, (5, 5), (1, 1), (2, 2))?;
/// let r1 = b.relu("r1", c1)?;
/// let p1 = b.max_pool("p1", r1, (2, 2), (2, 2), (0, 0))?;
/// let f = b.flatten("flat", p1)?;
/// let fc = b.linear("fc", f, 10)?;
/// let sm = b.softmax("sm", fc)?;
/// let g = b.finish()?;
/// assert_eq!(g.node(sm).output_shape.numel(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    nodes: Vec<Node>,
    names: HashSet<String>,
}

impl GraphBuilder {
    /// Starts an empty graph with the given model name.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            name: name.into(),
            nodes: Vec::new(),
            names: HashSet::new(),
        }
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Output shape of an already-added node.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this builder. Fallible
    /// callers should use [`GraphBuilder::try_shape`] instead.
    pub fn shape(&self, id: NodeId) -> &Shape {
        &self.nodes[id.index()].output_shape
    }

    /// Output shape of an already-added node, or
    /// [`IrError::UnknownNode`] when `id` does not belong to this
    /// builder (e.g. a `NodeId` obtained from a different
    /// `GraphBuilder`). The shape-inferring helpers (`conv2d`,
    /// `linear`) go through this check, so a stale or foreign id
    /// surfaces as the builder's error type instead of a panic.
    ///
    /// # Errors
    ///
    /// [`IrError::UnknownNode`] for an out-of-range id.
    pub fn try_shape(&self, id: NodeId) -> Result<&Shape, IrError> {
        self.nodes
            .get(id.index())
            .map(|n| &n.output_shape)
            .ok_or(IrError::UnknownNode { id: id.index() })
    }

    /// Adds a graph input with shape `[C, H, W]` (or `[F]` via
    /// [`GraphBuilder::input_flat`]).
    pub fn input(&mut self, name: impl Into<String>, chw: [usize; 3]) -> NodeId {
        let shape = Shape::chw(chw[0], chw[1], chw[2]);
        self.push_unchecked(
            name.into(),
            Op::Input {
                shape: shape.clone(),
            },
            vec![],
            shape,
        )
    }

    /// Adds a flat graph input of `features` elements.
    pub fn input_flat(&mut self, name: impl Into<String>, features: usize) -> NodeId {
        let shape = Shape::flat(features);
        self.push_unchecked(
            name.into(),
            Op::Input {
                shape: shape.clone(),
            },
            vec![],
            shape,
        )
    }

    /// Adds a `[seq, features]` token-stream input with a symbolic
    /// sequence length (bound later by the compile session).
    pub fn input_seq(&mut self, name: impl Into<String>, features: usize) -> NodeId {
        let shape = Shape::seq_features(features);
        self.push_unchecked(
            name.into(),
            Op::Input {
                shape: shape.clone(),
            },
            vec![],
            shape,
        )
    }

    /// Adds an arbitrary operator; the general escape hatch behind the
    /// typed helpers.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures and duplicate-name errors.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        op: Op,
        inputs: Vec<NodeId>,
    ) -> Result<NodeId, IrError> {
        let name = name.into();
        if self.names.contains(&name) {
            return Err(IrError::DuplicateName { name });
        }
        for &i in &inputs {
            if i.index() >= self.nodes.len() {
                return Err(IrError::UnknownNode { id: i.index() });
            }
        }
        let input_shapes: Vec<&Shape> = inputs
            .iter()
            .map(|&i| &self.nodes[i.index()].output_shape)
            .collect();
        let shape = infer_output_shape(&name, &op, &input_shapes)?;
        Ok(self.push_unchecked(name, op, inputs, shape))
    }

    /// Adds a 2-D convolution with square-or-rectangular kernel.
    ///
    /// The input channel count is taken from the producer's shape.
    ///
    /// # Errors
    ///
    /// Fails if the producer is not a `CxHxW` feature map, the kernel
    /// does not fit, or `input` does not belong to this builder.
    pub fn conv2d(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        out_channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Result<NodeId, IrError> {
        let in_channels = self.try_shape(input)?.channels();
        self.add(
            name,
            Op::Conv2d(Conv2d {
                in_channels,
                out_channels,
                kernel,
                stride,
                padding,
                groups: 1,
                bias: true,
            }),
            vec![input],
        )
    }

    /// Adds a fully connected layer; the input feature count is inferred.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names or when `input` does not belong to this
    /// builder (the feature count always matches because it is
    /// inferred).
    pub fn linear(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        out_features: usize,
    ) -> Result<NodeId, IrError> {
        let in_features = self.try_shape(input)?.numel();
        self.add(
            name,
            Op::Linear(Linear {
                in_features,
                out_features,
                bias: true,
            }),
            vec![input],
        )
    }

    /// Adds a weight-stationary matrix multiply; the contraction width is
    /// taken from the producer's innermost (feature) dimension.
    ///
    /// # Errors
    ///
    /// Fails when the producer's feature dimension is symbolic, on
    /// duplicate names, or when `input` does not belong to this builder.
    pub fn matmul(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        out_features: usize,
    ) -> Result<NodeId, IrError> {
        let name = name.into();
        let in_features = match self.try_shape(input)?.dims().last() {
            Some(Dim::Fixed(f)) => *f,
            _ => {
                return Err(IrError::ShapeMismatch {
                    node: name,
                    detail: "matmul needs a fixed feature dimension on its input".into(),
                })
            }
        };
        self.add(
            name,
            Op::MatMul(MatMul {
                in_features,
                out_features,
                bias: true,
            }),
            vec![input],
        )
    }

    /// Adds an activation-by-activation matrix multiply (`A @ B`, or
    /// `A @ Bᵀ` when `transpose_b`).
    ///
    /// # Errors
    ///
    /// Fails when the contraction axes disagree or are symbolic.
    pub fn bmm(
        &mut self,
        name: impl Into<String>,
        a: NodeId,
        b: NodeId,
        transpose_b: bool,
        scaled: bool,
    ) -> Result<NodeId, IrError> {
        self.add(
            name,
            Op::Bmm(Bmm {
                transpose_b,
                scaled,
            }),
            vec![a, b],
        )
    }

    /// Adds a layer normalization over the feature axis.
    ///
    /// # Errors
    ///
    /// Fails only on duplicate names.
    pub fn layer_norm(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
    ) -> Result<NodeId, IrError> {
        self.add(name, Op::LayerNorm, vec![input])
    }

    /// Adds a GELU activation (transformer feed-forward blocks).
    ///
    /// # Errors
    ///
    /// Fails only on duplicate names.
    pub fn gelu(&mut self, name: impl Into<String>, input: NodeId) -> Result<NodeId, IrError> {
        self.activation(name, input, Activation::Gelu)
    }

    /// Adds a transpose of the last two dimensions.
    ///
    /// # Errors
    ///
    /// Fails when the input has rank below 2.
    pub fn transpose(&mut self, name: impl Into<String>, input: NodeId) -> Result<NodeId, IrError> {
        self.add(name, Op::Transpose, vec![input])
    }

    /// Adds a reshape to `shape`.
    ///
    /// # Errors
    ///
    /// Fails when the element count is not preserved.
    pub fn reshape(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        shape: Shape,
    ) -> Result<NodeId, IrError> {
        self.add(name, Op::Reshape { shape }, vec![input])
    }

    /// Adds a fused scaled-dot-product attention over `(q, k, v)`.
    ///
    /// # Errors
    ///
    /// Fails when the inputs are not three equal `[seq, hidden]` streams
    /// or `heads` does not divide the hidden width.
    pub fn attention(
        &mut self,
        name: impl Into<String>,
        q: NodeId,
        k: NodeId,
        v: NodeId,
        heads: usize,
    ) -> Result<NodeId, IrError> {
        self.add(name, Op::Attention(Attention { heads }), vec![q, k, v])
    }

    /// Adds a max-pooling layer.
    ///
    /// # Errors
    ///
    /// Fails if the kernel does not fit the input.
    pub fn max_pool(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Result<NodeId, IrError> {
        self.pool(name, input, PoolKind::Max, kernel, stride, padding, false)
    }

    /// Adds an average-pooling layer.
    ///
    /// # Errors
    ///
    /// Fails if the kernel does not fit the input.
    pub fn avg_pool(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Result<NodeId, IrError> {
        self.pool(name, input, PoolKind::Avg, kernel, stride, padding, false)
    }

    /// Adds a pooling layer with full attribute control.
    ///
    /// # Errors
    ///
    /// Fails if the kernel does not fit the input.
    #[allow(clippy::too_many_arguments)]
    pub fn pool(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        kind: PoolKind,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
        ceil_mode: bool,
    ) -> Result<NodeId, IrError> {
        self.add(
            name,
            Op::Pool(Pool {
                kind,
                kernel,
                stride,
                padding,
                ceil_mode,
            }),
            vec![input],
        )
    }

    /// Adds a global average pool.
    ///
    /// # Errors
    ///
    /// Fails if the producer is not a feature map.
    pub fn global_avg_pool(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
    ) -> Result<NodeId, IrError> {
        self.add(name, Op::GlobalAvgPool, vec![input])
    }

    /// Adds an activation.
    ///
    /// # Errors
    ///
    /// Fails only on duplicate names.
    pub fn activation(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        act: Activation,
    ) -> Result<NodeId, IrError> {
        self.add(name, Op::Activation(act), vec![input])
    }

    /// Adds a ReLU (the activation used by all five paper benchmarks).
    ///
    /// # Errors
    ///
    /// Fails only on duplicate names.
    pub fn relu(&mut self, name: impl Into<String>, input: NodeId) -> Result<NodeId, IrError> {
        self.activation(name, input, Activation::Relu)
    }

    /// Adds a channel concat over two or more producers.
    ///
    /// # Errors
    ///
    /// Fails if fewer than two inputs are given or spatial dims differ.
    pub fn concat(
        &mut self,
        name: impl Into<String>,
        inputs: Vec<NodeId>,
    ) -> Result<NodeId, IrError> {
        self.add(name, Op::Concat, inputs)
    }

    /// Adds an element-wise addition (resnet shortcut join).
    ///
    /// # Errors
    ///
    /// Fails if the two inputs have different shapes.
    pub fn eltwise_add(
        &mut self,
        name: impl Into<String>,
        a: NodeId,
        b: NodeId,
    ) -> Result<NodeId, IrError> {
        self.add(name, Op::Eltwise(EltwiseKind::Add), vec![a, b])
    }

    /// Adds a flatten.
    ///
    /// # Errors
    ///
    /// Fails only on duplicate names.
    pub fn flatten(&mut self, name: impl Into<String>, input: NodeId) -> Result<NodeId, IrError> {
        self.add(name, Op::Flatten, vec![input])
    }

    /// Adds a softmax.
    ///
    /// # Errors
    ///
    /// Fails only on duplicate names.
    pub fn softmax(&mut self, name: impl Into<String>, input: NodeId) -> Result<NodeId, IrError> {
        self.add(name, Op::Softmax, vec![input])
    }

    /// Adds an inference-time batch-norm node (foldable by
    /// [`transform::fold_batch_norm`](crate::transform::fold_batch_norm)).
    ///
    /// # Errors
    ///
    /// Fails only on duplicate names.
    pub fn batch_norm(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
    ) -> Result<NodeId, IrError> {
        self.add(name, Op::BatchNorm, vec![input])
    }

    /// Adds a dropout node (identity at inference).
    ///
    /// # Errors
    ///
    /// Fails only on duplicate names.
    pub fn dropout(&mut self, name: impl Into<String>, input: NodeId) -> Result<NodeId, IrError> {
        self.add(name, Op::Dropout, vec![input])
    }

    /// Adds a local response normalization.
    ///
    /// # Errors
    ///
    /// Fails when `size` is zero.
    pub fn lrn(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        size: usize,
    ) -> Result<NodeId, IrError> {
        self.add(
            name,
            Op::Lrn(Lrn {
                size,
                alpha: 1e-4,
                beta: 0.75,
            }),
            vec![input],
        )
    }

    /// Adds a standalone zero-padding node.
    ///
    /// # Errors
    ///
    /// Fails if the producer is not a feature map.
    pub fn pad(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        height: usize,
        width: usize,
    ) -> Result<NodeId, IrError> {
        self.add(name, Op::Pad(Pad2d { height, width }), vec![input])
    }

    /// Finalizes and validates the graph.
    ///
    /// # Errors
    ///
    /// Propagates any structural invariant violation found by
    /// [`Graph::validate`].
    pub fn finish(self) -> Result<Graph, IrError> {
        Graph::from_nodes(self.name, self.nodes)
    }

    fn push_unchecked(
        &mut self,
        name: String,
        op: Op,
        inputs: Vec<NodeId>,
        output_shape: Shape,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.names.insert(name.clone());
        self.nodes.push(Node {
            id,
            name,
            op,
            inputs,
            output_shape,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_infers_shapes_eagerly() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [3, 32, 32]);
        let c = b.conv2d("c", x, 16, (3, 3), (2, 2), (1, 1)).unwrap();
        assert_eq!(b.shape(c), &Shape::chw(16, 16, 16));
    }

    #[test]
    fn builder_rejects_duplicate_names() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [3, 8, 8]);
        b.relu("r", x).unwrap();
        let err = b.relu("r", x).unwrap_err();
        assert!(matches!(err, IrError::DuplicateName { .. }));
    }

    #[test]
    fn builder_rejects_bad_shape_at_add_time() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [3, 4, 4]);
        let err = b.conv2d("c", x, 8, (7, 7), (1, 1), (0, 0)).unwrap_err();
        assert!(matches!(err, IrError::ShapeMismatch { .. }));
    }

    #[test]
    fn foreign_node_ids_error_instead_of_panicking() {
        // Ids minted by one builder are meaningless in another; the
        // shape-inferring helpers must surface that as the builder's
        // error type, not an index panic reaching library callers.
        let mut big = GraphBuilder::new("big");
        let x = big.input("x", [3, 8, 8]);
        let r = big.relu("r", x).unwrap();
        let foreign = big.relu("r2", r).unwrap();

        let mut small = GraphBuilder::new("small");
        let _ = small.input("x", [3, 8, 8]);
        assert!(matches!(
            small.conv2d("c", foreign, 8, (3, 3), (1, 1), (1, 1)),
            Err(IrError::UnknownNode { id: 2 })
        ));
        assert!(matches!(
            small.linear("fc", foreign, 10),
            Err(IrError::UnknownNode { id: 2 })
        ));
        assert!(matches!(
            small.try_shape(foreign),
            Err(IrError::UnknownNode { id: 2 })
        ));
        // `add` already validated ids; it must keep doing so.
        assert!(matches!(
            small.relu("r", foreign),
            Err(IrError::UnknownNode { id: 2 })
        ));
    }

    #[test]
    fn linear_from_feature_map_implicitly_flattens() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [512, 7, 7]);
        let fc = b.linear("fc", x, 4096).unwrap();
        assert_eq!(b.shape(fc), &Shape::flat(4096));
        let g = b.finish().unwrap();
        match &g.node(fc).op {
            Op::Linear(l) => assert_eq!(l.in_features, 512 * 7 * 7),
            other => panic!("expected linear, got {other}"),
        }
    }

    #[test]
    fn finish_validates() {
        let mut b = GraphBuilder::new("t");
        let _ = b.input("x", [3, 8, 8]);
        assert!(b.finish().is_ok());
    }
}
