//! DNN graph intermediate representation for the PIMCOMP compilation
//! framework.
//!
//! This crate provides the *model description* the paper's front end
//! produces after parsing an ONNX file (Section IV-A): a directed acyclic
//! graph of operators with complete shape information. The PIMCOMP
//! compiler consumes node shapes and the topological relationship between
//! nodes; both are first-class here.
//!
//! # Overview
//!
//! * [`Graph`] — the DAG of [`Node`]s, each holding an [`Op`].
//! * [`GraphBuilder`] — ergonomic construction with on-the-fly shape
//!   inference.
//! * [`models`] — the five benchmark networks of the paper (vgg16,
//!   resnet18, googlenet, inception-v3, squeezenet) plus small synthetic
//!   networks used by tests.
//! * [`transform`] — graph normalization passes (batch-norm folding,
//!   dropout elimination, dead-node elimination) run before compilation.
//!
//! # Example
//!
//! ```
//! use pimcomp_ir::{GraphBuilder, Activation};
//!
//! # fn main() -> Result<(), pimcomp_ir::IrError> {
//! let mut b = GraphBuilder::new("tiny");
//! let x = b.input("x", [3, 32, 32]);
//! let c = b.conv2d("conv1", x, 16, (3, 3), (1, 1), (1, 1))?;
//! let r = b.activation("relu1", c, Activation::Relu)?;
//! let p = b.max_pool("pool1", r, (2, 2), (2, 2), (0, 0))?;
//! let f = b.flatten("flat", p)?;
//! let _y = b.linear("fc", f, 10)?;
//! let graph = b.finish()?;
//! assert_eq!(graph.node_count(), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod dot;
mod error;
mod graph;
mod op;
mod shape_infer;
mod stats;
mod tensor;

pub mod models;
pub mod synth;
pub mod transform;

pub use builder::GraphBuilder;
pub use dot::to_dot;
pub use error::IrError;
pub use graph::{Graph, Node, NodeId};
pub use op::{
    Activation, Attention, Bmm, Conv2d, EltwiseKind, Linear, Lrn, MatMul, Op, Pad2d, Pool, PoolKind,
};
pub use shape_infer::infer_output_shape;
pub use stats::{GraphStats, NodeStats};
pub use tensor::{Dim, Shape};
