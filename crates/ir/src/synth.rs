//! Deterministic synthesis of test tensors (inputs, weights, biases)
//! from a seed.
//!
//! The zoo graphs are shape-only — they carry no trained parameters —
//! so functional execution needs *some* numbers. This module produces
//! them reproducibly: every element is a pure function of
//! `(seed, tag, index)`, where `tag` is a stable per-tensor label
//! (conventionally the node name plus a `/w` / `/b` / `/x` suffix).
//! Two executors that synthesize the same tensor therefore see
//! bit-identical values regardless of traversal order, thread count or
//! process, which is what makes differential testing of compiled
//! layouts against a reference interpreter possible.
//!
//! Values are drawn from SplitMix64 output mapped uniformly onto
//! `[-1, 1)`; callers apply their own scaling (e.g. `1/sqrt(fan_in)`
//! for weights, so activations stay O(1) through deep networks).

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a hash of a tag string (stable across platforms and releases).
fn tag_hash(tag: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tag.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One synthesized element: uniform in `[-1, 1)`, a pure function of
/// `(seed, tag, index)`.
pub fn unit(seed: u64, tag: &str, index: usize) -> f32 {
    unit_hashed(seed, tag_hash(tag), index)
}

fn unit_hashed(seed: u64, tag: u64, index: usize) -> f32 {
    let word =
        mix64(seed ^ tag.rotate_left(17) ^ (index as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
    // 24 high bits -> [0, 1) exactly representable in f32 -> [-1, 1).
    let frac = (word >> 40) as f32 / (1u64 << 24) as f32;
    2.0 * frac - 1.0
}

/// A synthesized tensor of `len` elements in `[-scale, scale)`.
pub fn values(seed: u64, tag: &str, len: usize, scale: f32) -> Vec<f32> {
    let h = tag_hash(tag);
    (0..len).map(|i| scale * unit_hashed(seed, h, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic_and_tag_sensitive() {
        let a = values(1, "conv1/w", 16, 1.0);
        let b = values(1, "conv1/w", 16, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, values(1, "conv2/w", 16, 1.0));
        assert_ne!(a, values(2, "conv1/w", 16, 1.0));
    }

    #[test]
    fn elements_are_independent_of_vector_length() {
        // Element i must not depend on how many elements were asked
        // for — executors may synthesize slices lazily.
        let long = values(7, "x", 100, 1.0);
        let short = values(7, "x", 10, 1.0);
        assert_eq!(&long[..10], &short[..]);
        assert_eq!(long[42], unit(7, "x", 42));
    }

    #[test]
    fn values_stay_in_range_and_are_not_degenerate() {
        let v = values(3, "input/x", 4096, 1.0);
        assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean} suspiciously far from 0");
        assert!(v.iter().any(|x| *x > 0.5) && v.iter().any(|x| *x < -0.5));
    }

    #[test]
    fn scale_is_applied() {
        let v = values(3, "w", 8, 0.25);
        assert!(v.iter().all(|x| x.abs() <= 0.25));
    }
}
