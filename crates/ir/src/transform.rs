//! Graph normalization passes executed before compilation.
//!
//! The paper's front end parses ONNX and hands the backend a clean node
//! list; these passes perform the cleanup a real front end does:
//! batch-norm folding (resnet/inception export BN separately), dropout
//! elimination, and dead-node elimination.

use crate::graph::{Graph, Node, NodeId};
use crate::op::Attention;
use crate::shape_infer::infer_output_shape;
use crate::{IrError, Op, Shape};
use std::collections::{HashMap, HashSet};

/// Removes `Dropout` nodes (identity at inference), rewiring consumers to
/// the dropout's producer.
///
/// # Errors
///
/// Returns [`IrError`] when the spliced graph no longer forms a valid
/// model — e.g. [`IrError::MissingInput`] when removal leaves no nodes.
/// Every error here is reachable from an imported graph, never from a
/// well-formed model zoo network.
pub fn eliminate_dropout(graph: &Graph) -> Result<Graph, IrError> {
    remove_identity_nodes(graph, |n| matches!(n.op, Op::Dropout))
}

/// Folds `BatchNorm` nodes into the scale/shift of their producer; for
/// compilation purposes this means deleting the node, since affine
/// parameters ride along with the convolution weights on the crossbars.
///
/// # Errors
///
/// Returns [`IrError`] when the spliced graph no longer forms a valid
/// model (see [`eliminate_dropout`]).
pub fn fold_batch_norm(graph: &Graph) -> Result<Graph, IrError> {
    remove_identity_nodes(graph, |n| matches!(n.op, Op::BatchNorm))
}

/// Removes nodes whose output is never consumed and which are not graph
/// outputs of interest (conservatively: keeps every sink that is not an
/// orphaned `Input`).
///
/// # Errors
///
/// Returns [`IrError::MissingInput`] when nothing survives — an imported
/// graph whose only compute is dropout/BN collapses to bare inputs,
/// which are then orphaned sinks and pruned here.
pub fn eliminate_dead_nodes(graph: &Graph) -> Result<Graph, IrError> {
    // Mark everything reachable walking backwards from sinks.
    let mut live: HashSet<NodeId> = HashSet::new();
    let mut stack: Vec<NodeId> = graph
        .outputs()
        .filter(|&id| !matches!(graph.node(id).op, Op::Input { .. }))
        .collect();
    while let Some(id) = stack.pop() {
        if live.insert(id) {
            stack.extend(graph.predecessors(id).iter().copied());
        }
    }
    rebuild_subset(graph, |id| live.contains(&id))
}

/// Fuses the `Bmm(transpose_b) → Softmax → Bmm` attention subgraph into a
/// single [`Op::Attention`] node.
///
/// The pattern is matched structurally: a scaled score product
/// `Q·Kᵀ` whose *only* consumer is a softmax, whose *only* consumer is
/// the context product against `V`, with `Q`, `K` and `V` sharing one
/// `[seq, hidden]` shape. The fused node keeps the context product's
/// name (it produces the same tensor) and is created single-headed —
/// the VFU cost model depends only on `seq` and `hidden`, not the head
/// split. Graphs without the pattern are returned unchanged.
///
/// # Errors
///
/// Returns [`IrError`] when the rebuilt graph fails validation — only
/// reachable from a malformed input graph.
pub fn fuse_attention(graph: &Graph) -> Result<Graph, IrError> {
    // ctx id -> (scores id, softmax id, q, k, v)
    let mut fused: HashMap<NodeId, (NodeId, NodeId, NodeId, NodeId, NodeId)> = HashMap::new();
    let mut consumed: HashSet<NodeId> = HashSet::new();
    for id in graph.topo_order() {
        let scores = graph.node(id);
        let Op::Bmm(b) = &scores.op else { continue };
        if !b.transpose_b || graph.successors(id).len() != 1 {
            continue;
        }
        let sm_id = graph.successors(id)[0];
        if !matches!(graph.node(sm_id).op, Op::Softmax) || graph.successors(sm_id).len() != 1 {
            continue;
        }
        let ctx_id = graph.successors(sm_id)[0];
        let ctx = graph.node(ctx_id);
        let Op::Bmm(cb) = &ctx.op else { continue };
        if cb.transpose_b || ctx.inputs[0] != sm_id {
            continue;
        }
        let (q, k, v) = (scores.inputs[0], scores.inputs[1], ctx.inputs[1]);
        // Attention requires one shared [seq, hidden] shape; skip the
        // pattern (leave it unfused) when V disagrees with Q/K.
        if graph.node(v).output_shape != graph.node(q).output_shape {
            continue;
        }
        if consumed.contains(&q) || consumed.contains(&k) || consumed.contains(&v) {
            continue;
        }
        fused.insert(ctx_id, (id, sm_id, q, k, v));
        consumed.insert(id);
        consumed.insert(sm_id);
    }
    if fused.is_empty() {
        return Ok(graph.clone());
    }

    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    let mut nodes = Vec::new();
    for id in graph.topo_order() {
        if consumed.contains(&id) {
            continue;
        }
        let old = graph.node(id);
        let new_id = NodeId(nodes.len());
        remap.insert(id, new_id);
        let map_inputs = |ins: &[NodeId]| -> Result<Vec<NodeId>, IrError> {
            ins.iter()
                .map(|i| {
                    remap
                        .get(i)
                        .copied()
                        .ok_or(IrError::UnknownNode { id: i.0 })
                })
                .collect()
        };
        let (op, inputs) = match fused.get(&id) {
            Some(&(_, _, q, k, v)) => (
                Op::Attention(Attention { heads: 1 }),
                map_inputs(&[q, k, v])?,
            ),
            None => (old.op.clone(), map_inputs(&old.inputs)?),
        };
        nodes.push(Node {
            id: new_id,
            name: old.name.clone(),
            op,
            inputs,
            output_shape: old.output_shape.clone(),
        });
    }
    Graph::from_nodes(graph.name(), nodes)
}

/// Binds the symbolic sequence length to `len`, re-running shape
/// inference over the whole graph.
///
/// Graphs without symbolic dimensions are returned unchanged, so binding
/// is idempotent and harmless on CNNs.
///
/// # Errors
///
/// Returns [`IrError::InvalidAttribute`] when `len` is zero, and
/// propagates shape-inference failures (reachable when a hostile graph
/// only type-checks for some sequence lengths).
pub fn bind_seq_len(graph: &Graph, len: usize) -> Result<Graph, IrError> {
    if len == 0 {
        return Err(IrError::InvalidAttribute {
            node: graph.name().to_string(),
            detail: "sequence length must be at least 1".into(),
        });
    }
    if !graph.has_symbolic_dims() {
        return Ok(graph.clone());
    }
    let mut shapes: HashMap<NodeId, Shape> = HashMap::new();
    let mut nodes: Vec<Node> = graph.nodes().to_vec();
    for id in graph.topo_order() {
        let old = graph.node(id);
        let op = match &old.op {
            Op::Input { shape } => Op::Input {
                shape: shape.bind_seq(len),
            },
            Op::Reshape { shape } => Op::Reshape {
                shape: shape.bind_seq(len),
            },
            other => other.clone(),
        };
        let input_shapes: Vec<&Shape> = old.inputs.iter().map(|i| &shapes[i]).collect();
        let shape = infer_output_shape(&old.name, &op, &input_shapes)?;
        shapes.insert(id, shape.clone());
        let n = &mut nodes[id.index()];
        n.op = op;
        n.output_shape = shape;
    }
    Graph::from_nodes(graph.name(), nodes)
}

/// Runs the standard pre-compilation pipeline:
/// dropout elimination → batch-norm folding → attention fusion →
/// dead-node elimination.
///
/// # Errors
///
/// Returns [`IrError`] when a pass reduces the graph to something that
/// is not a valid model (typically [`IrError::MissingInput`] for a
/// graph with no compute nodes left). Callers importing untrusted
/// `.onnx` graphs should surface this instead of assuming success.
pub fn normalize(graph: &Graph) -> Result<Graph, IrError> {
    eliminate_dead_nodes(&fuse_attention(&fold_batch_norm(&eliminate_dropout(
        graph,
    )?)?)?)
}

/// Removes all single-input nodes matching `pred`, splicing consumers to
/// the removed node's producer.
fn remove_identity_nodes(graph: &Graph, pred: impl Fn(&Node) -> bool) -> Result<Graph, IrError> {
    // Resolve each removed node to its surviving ancestor.
    let mut forward: HashMap<NodeId, NodeId> = HashMap::new();
    for id in graph.topo_order() {
        let n = graph.node(id);
        if pred(n) && n.inputs.len() == 1 {
            let src = n.inputs[0];
            let resolved = *forward.get(&src).unwrap_or(&src);
            forward.insert(id, resolved);
        }
    }
    rebuild_with_remap(graph, &forward)
}

/// Rebuilds the graph keeping only nodes for which `keep` holds,
/// renumbering ids densely.
fn rebuild_subset(graph: &Graph, keep: impl Fn(NodeId) -> bool) -> Result<Graph, IrError> {
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    let mut nodes = Vec::new();
    for id in graph.topo_order() {
        if !keep(id) {
            continue;
        }
        let old = graph.node(id);
        let new_id = NodeId(nodes.len());
        remap.insert(id, new_id);
        let mut inputs = Vec::with_capacity(old.inputs.len());
        for i in &old.inputs {
            // A kept node referencing a dropped one means the keep set
            // is not closed under predecessors — a malformed graph, not
            // a programming error worth a panic.
            inputs.push(*remap.get(i).ok_or(IrError::UnknownNode { id: i.0 })?);
        }
        nodes.push(Node {
            id: new_id,
            name: old.name.clone(),
            op: old.op.clone(),
            inputs,
            output_shape: old.output_shape.clone(),
        });
    }
    Graph::from_nodes(graph.name(), nodes)
}

/// Rebuilds the graph dropping the keys of `forward`, rewiring any edge
/// into a dropped node to its resolved ancestor.
fn rebuild_with_remap(graph: &Graph, forward: &HashMap<NodeId, NodeId>) -> Result<Graph, IrError> {
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    let mut nodes = Vec::new();
    for id in graph.topo_order() {
        if forward.contains_key(&id) {
            continue;
        }
        let old = graph.node(id);
        let new_id = NodeId(nodes.len());
        remap.insert(id, new_id);
        let mut inputs = Vec::with_capacity(old.inputs.len());
        for i in &old.inputs {
            let resolved = forward.get(i).unwrap_or(i);
            inputs.push(
                *remap
                    .get(resolved)
                    .ok_or(IrError::UnknownNode { id: resolved.0 })?,
            );
        }
        nodes.push(Node {
            id: new_id,
            name: old.name.clone(),
            op: old.op.clone(),
            inputs,
            output_shape: old.output_shape.clone(),
        });
    }
    Graph::from_nodes(graph.name(), nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn dropout_is_spliced_out() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let d = b.dropout("drop", c).unwrap();
        let _r = b.relu("r", d).unwrap();
        let g = b.finish().unwrap();
        let g2 = eliminate_dropout(&g).unwrap();
        assert_eq!(g2.node_count(), 3);
        let r = g2.node_by_name("r").unwrap();
        let c = g2.node_by_name("c").unwrap();
        assert_eq!(g2.predecessors(r.id), &[c.id]);
    }

    #[test]
    fn chained_identities_resolve_transitively() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let d1 = b.dropout("d1", c).unwrap();
        let d2 = b.dropout("d2", d1).unwrap();
        let _r = b.relu("r", d2).unwrap();
        let g = b.finish().unwrap();
        let g2 = eliminate_dropout(&g).unwrap();
        assert_eq!(g2.node_count(), 3);
        assert!(g2.validate().is_ok());
    }

    #[test]
    fn batch_norm_folds_into_producer() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let bn = b.batch_norm("bn", c).unwrap();
        let _r = b.relu("r", bn).unwrap();
        let g = b.finish().unwrap();
        let g2 = fold_batch_norm(&g).unwrap();
        assert!(g2.node_by_name("bn").is_none());
        assert_eq!(g2.node_count(), 3);
    }

    #[test]
    fn dead_branches_are_pruned() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        // Dead side branch: never consumed downstream of relu.
        let _dead = b.conv2d("dead", x, 2, (1, 1), (1, 1), (0, 0)).unwrap();
        let _r = b.relu("r", c).unwrap();
        let g = b.finish().unwrap();
        // Both `dead` and `r` are sinks; dead-node elimination keeps all
        // non-input sinks, so nothing is removed here...
        let g2 = eliminate_dead_nodes(&g).unwrap();
        assert_eq!(g2.node_count(), 4);
        // ...but an orphaned input disappears.
        let mut b = GraphBuilder::new("t2");
        let _orphan = b.input("unused", [1, 1, 1]);
        let x = b.input("x", [4, 8, 8]);
        let _c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let g = b.finish().unwrap();
        let g2 = eliminate_dead_nodes(&g).unwrap();
        assert_eq!(g2.node_count(), 2);
        assert!(g2.node_by_name("unused").is_none());
    }

    #[test]
    fn normalize_pipeline_is_idempotent() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let bn = b.batch_norm("bn", c).unwrap();
        let d = b.dropout("d", bn).unwrap();
        let _r = b.relu("r", d).unwrap();
        let g = b.finish().unwrap();
        let once = normalize(&g).unwrap();
        let twice = normalize(&once).unwrap();
        assert_eq!(once, twice);
    }

    /// Builds the raw (unfused) attention subgraph over a symbolic
    /// `[seq, 64]` stream: q/k/v projections, scores, softmax, context.
    fn raw_attention_graph() -> Graph {
        let mut b = GraphBuilder::new("attn");
        let x = b.input_seq("x", 64);
        let q = b.matmul("q", x, 64).unwrap();
        let k = b.matmul("k", x, 64).unwrap();
        let v = b.matmul("v", x, 64).unwrap();
        let s = b.bmm("scores", q, k, true, true).unwrap();
        let sm = b.softmax("probs", s).unwrap();
        let _ctx = b.bmm("ctx", sm, v, false, false).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn attention_pattern_is_fused() {
        let g = raw_attention_graph();
        let fused = fuse_attention(&g).unwrap();
        // scores + softmax disappear, ctx becomes the fused node.
        assert_eq!(fused.node_count(), g.node_count() - 2);
        let ctx = fused.node_by_name("ctx").unwrap();
        assert!(matches!(ctx.op, Op::Attention(_)));
        assert_eq!(ctx.inputs.len(), 3);
        assert!(fused.node_by_name("scores").is_none());
        assert!(fused.node_by_name("probs").is_none());
        // Output shape is preserved.
        assert_eq!(
            ctx.output_shape,
            g.node_by_name("ctx").unwrap().output_shape
        );
    }

    #[test]
    fn fuse_attention_is_identity_without_the_pattern() {
        let mut b = GraphBuilder::new("cnn");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let _r = b.relu("r", c).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(fuse_attention(&g).unwrap(), g);
    }

    #[test]
    fn softmax_with_extra_consumer_blocks_fusion() {
        let mut b = GraphBuilder::new("attn");
        let x = b.input_seq("x", 64);
        let q = b.matmul("q", x, 64).unwrap();
        let k = b.matmul("k", x, 64).unwrap();
        let v = b.matmul("v", x, 64).unwrap();
        let s = b.bmm("scores", q, k, true, true).unwrap();
        let sm = b.softmax("probs", s).unwrap();
        let _ctx = b.bmm("ctx", sm, v, false, false).unwrap();
        // Second consumer of the softmax: pattern must not fuse.
        let _ln = b.layer_norm("tap", sm).unwrap();
        let g = b.finish().unwrap();
        let out = fuse_attention(&g).unwrap();
        assert_eq!(out, g);
    }

    #[test]
    fn bind_seq_len_fixes_every_shape() {
        let g = raw_attention_graph();
        assert!(g.has_symbolic_dims());
        let bound = bind_seq_len(&g, 16).unwrap();
        assert!(!bound.has_symbolic_dims());
        let ctx = bound.node_by_name("ctx").unwrap();
        assert_eq!(ctx.output_shape, Shape::new([16usize, 64]));
        let scores = bound.node_by_name("scores").unwrap();
        assert_eq!(scores.output_shape, Shape::new([16usize, 16]));
        // Different binding, different shapes; same graph otherwise.
        let bound2 = bind_seq_len(&g, 32).unwrap();
        assert_eq!(
            bound2.node_by_name("scores").unwrap().output_shape,
            Shape::new([32usize, 32])
        );
    }

    #[test]
    fn bind_seq_len_is_identity_on_fixed_graphs() {
        let mut b = GraphBuilder::new("cnn");
        let x = b.input("x", [4, 8, 8]);
        let _c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(bind_seq_len(&g, 128).unwrap(), g);
    }

    #[test]
    fn bind_seq_len_rejects_zero() {
        let g = raw_attention_graph();
        let err = bind_seq_len(&g, 0).unwrap_err();
        assert!(matches!(err, IrError::InvalidAttribute { .. }));
    }

    /// Regression: an imported graph whose only compute node is a
    /// dropout collapses to a lone orphaned input under normalize; this
    /// used to panic (`expect` on `Graph::from_nodes` hitting
    /// `MissingInput`) instead of returning an error.
    #[test]
    fn normalize_reports_graphs_that_collapse_to_nothing() {
        let mut b = GraphBuilder::new("dropout-only");
        let x = b.input("x", [4, 8, 8]);
        let _d = b.dropout("drop", x).unwrap();
        let g = b.finish().unwrap();
        // Dropout removal leaves only the input...
        let spliced = eliminate_dropout(&g).unwrap();
        assert_eq!(spliced.node_count(), 1);
        // ...which dead-node elimination prunes as an orphaned sink,
        // leaving nothing to compile. That is an error, not a panic.
        let err = normalize(&g).unwrap_err();
        assert_eq!(err, crate::IrError::MissingInput);
    }
}
