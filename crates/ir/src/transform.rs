//! Graph normalization passes executed before compilation.
//!
//! The paper's front end parses ONNX and hands the backend a clean node
//! list; these passes perform the cleanup a real front end does:
//! batch-norm folding (resnet/inception export BN separately), dropout
//! elimination, and dead-node elimination.

use crate::graph::{Graph, Node, NodeId};
use crate::{IrError, Op};
use std::collections::{HashMap, HashSet};

/// Removes `Dropout` nodes (identity at inference), rewiring consumers to
/// the dropout's producer.
///
/// # Errors
///
/// Returns [`IrError`] when the spliced graph no longer forms a valid
/// model — e.g. [`IrError::MissingInput`] when removal leaves no nodes.
/// Every error here is reachable from an imported graph, never from a
/// well-formed model zoo network.
pub fn eliminate_dropout(graph: &Graph) -> Result<Graph, IrError> {
    remove_identity_nodes(graph, |n| matches!(n.op, Op::Dropout))
}

/// Folds `BatchNorm` nodes into the scale/shift of their producer; for
/// compilation purposes this means deleting the node, since affine
/// parameters ride along with the convolution weights on the crossbars.
///
/// # Errors
///
/// Returns [`IrError`] when the spliced graph no longer forms a valid
/// model (see [`eliminate_dropout`]).
pub fn fold_batch_norm(graph: &Graph) -> Result<Graph, IrError> {
    remove_identity_nodes(graph, |n| matches!(n.op, Op::BatchNorm))
}

/// Removes nodes whose output is never consumed and which are not graph
/// outputs of interest (conservatively: keeps every sink that is not an
/// orphaned `Input`).
///
/// # Errors
///
/// Returns [`IrError::MissingInput`] when nothing survives — an imported
/// graph whose only compute is dropout/BN collapses to bare inputs,
/// which are then orphaned sinks and pruned here.
pub fn eliminate_dead_nodes(graph: &Graph) -> Result<Graph, IrError> {
    // Mark everything reachable walking backwards from sinks.
    let mut live: HashSet<NodeId> = HashSet::new();
    let mut stack: Vec<NodeId> = graph
        .outputs()
        .filter(|&id| !matches!(graph.node(id).op, Op::Input { .. }))
        .collect();
    while let Some(id) = stack.pop() {
        if live.insert(id) {
            stack.extend(graph.predecessors(id).iter().copied());
        }
    }
    rebuild_subset(graph, |id| live.contains(&id))
}

/// Runs the standard pre-compilation pipeline:
/// dropout elimination → batch-norm folding → dead-node elimination.
///
/// # Errors
///
/// Returns [`IrError`] when a pass reduces the graph to something that
/// is not a valid model (typically [`IrError::MissingInput`] for a
/// graph with no compute nodes left). Callers importing untrusted
/// `.onnx` graphs should surface this instead of assuming success.
pub fn normalize(graph: &Graph) -> Result<Graph, IrError> {
    eliminate_dead_nodes(&fold_batch_norm(&eliminate_dropout(graph)?)?)
}

/// Removes all single-input nodes matching `pred`, splicing consumers to
/// the removed node's producer.
fn remove_identity_nodes(graph: &Graph, pred: impl Fn(&Node) -> bool) -> Result<Graph, IrError> {
    // Resolve each removed node to its surviving ancestor.
    let mut forward: HashMap<NodeId, NodeId> = HashMap::new();
    for id in graph.topo_order() {
        let n = graph.node(id);
        if pred(n) && n.inputs.len() == 1 {
            let src = n.inputs[0];
            let resolved = *forward.get(&src).unwrap_or(&src);
            forward.insert(id, resolved);
        }
    }
    rebuild_with_remap(graph, &forward)
}

/// Rebuilds the graph keeping only nodes for which `keep` holds,
/// renumbering ids densely.
fn rebuild_subset(graph: &Graph, keep: impl Fn(NodeId) -> bool) -> Result<Graph, IrError> {
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    let mut nodes = Vec::new();
    for id in graph.topo_order() {
        if !keep(id) {
            continue;
        }
        let old = graph.node(id);
        let new_id = NodeId(nodes.len());
        remap.insert(id, new_id);
        let mut inputs = Vec::with_capacity(old.inputs.len());
        for i in &old.inputs {
            // A kept node referencing a dropped one means the keep set
            // is not closed under predecessors — a malformed graph, not
            // a programming error worth a panic.
            inputs.push(*remap.get(i).ok_or(IrError::UnknownNode { id: i.0 })?);
        }
        nodes.push(Node {
            id: new_id,
            name: old.name.clone(),
            op: old.op.clone(),
            inputs,
            output_shape: old.output_shape.clone(),
        });
    }
    Graph::from_nodes(graph.name(), nodes)
}

/// Rebuilds the graph dropping the keys of `forward`, rewiring any edge
/// into a dropped node to its resolved ancestor.
fn rebuild_with_remap(graph: &Graph, forward: &HashMap<NodeId, NodeId>) -> Result<Graph, IrError> {
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    let mut nodes = Vec::new();
    for id in graph.topo_order() {
        if forward.contains_key(&id) {
            continue;
        }
        let old = graph.node(id);
        let new_id = NodeId(nodes.len());
        remap.insert(id, new_id);
        let mut inputs = Vec::with_capacity(old.inputs.len());
        for i in &old.inputs {
            let resolved = forward.get(i).unwrap_or(i);
            inputs.push(
                *remap
                    .get(resolved)
                    .ok_or(IrError::UnknownNode { id: resolved.0 })?,
            );
        }
        nodes.push(Node {
            id: new_id,
            name: old.name.clone(),
            op: old.op.clone(),
            inputs,
            output_shape: old.output_shape.clone(),
        });
    }
    Graph::from_nodes(graph.name(), nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn dropout_is_spliced_out() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let d = b.dropout("drop", c).unwrap();
        let _r = b.relu("r", d).unwrap();
        let g = b.finish().unwrap();
        let g2 = eliminate_dropout(&g).unwrap();
        assert_eq!(g2.node_count(), 3);
        let r = g2.node_by_name("r").unwrap();
        let c = g2.node_by_name("c").unwrap();
        assert_eq!(g2.predecessors(r.id), &[c.id]);
    }

    #[test]
    fn chained_identities_resolve_transitively() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let d1 = b.dropout("d1", c).unwrap();
        let d2 = b.dropout("d2", d1).unwrap();
        let _r = b.relu("r", d2).unwrap();
        let g = b.finish().unwrap();
        let g2 = eliminate_dropout(&g).unwrap();
        assert_eq!(g2.node_count(), 3);
        assert!(g2.validate().is_ok());
    }

    #[test]
    fn batch_norm_folds_into_producer() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let bn = b.batch_norm("bn", c).unwrap();
        let _r = b.relu("r", bn).unwrap();
        let g = b.finish().unwrap();
        let g2 = fold_batch_norm(&g).unwrap();
        assert!(g2.node_by_name("bn").is_none());
        assert_eq!(g2.node_count(), 3);
    }

    #[test]
    fn dead_branches_are_pruned() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        // Dead side branch: never consumed downstream of relu.
        let _dead = b.conv2d("dead", x, 2, (1, 1), (1, 1), (0, 0)).unwrap();
        let _r = b.relu("r", c).unwrap();
        let g = b.finish().unwrap();
        // Both `dead` and `r` are sinks; dead-node elimination keeps all
        // non-input sinks, so nothing is removed here...
        let g2 = eliminate_dead_nodes(&g).unwrap();
        assert_eq!(g2.node_count(), 4);
        // ...but an orphaned input disappears.
        let mut b = GraphBuilder::new("t2");
        let _orphan = b.input("unused", [1, 1, 1]);
        let x = b.input("x", [4, 8, 8]);
        let _c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let g = b.finish().unwrap();
        let g2 = eliminate_dead_nodes(&g).unwrap();
        assert_eq!(g2.node_count(), 2);
        assert!(g2.node_by_name("unused").is_none());
    }

    #[test]
    fn normalize_pipeline_is_idempotent() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let bn = b.batch_norm("bn", c).unwrap();
        let d = b.dropout("d", bn).unwrap();
        let _r = b.relu("r", d).unwrap();
        let g = b.finish().unwrap();
        let once = normalize(&g).unwrap();
        let twice = normalize(&once).unwrap();
        assert_eq!(once, twice);
    }

    /// Regression: an imported graph whose only compute node is a
    /// dropout collapses to a lone orphaned input under normalize; this
    /// used to panic (`expect` on `Graph::from_nodes` hitting
    /// `MissingInput`) instead of returning an error.
    #[test]
    fn normalize_reports_graphs_that_collapse_to_nothing() {
        let mut b = GraphBuilder::new("dropout-only");
        let x = b.input("x", [4, 8, 8]);
        let _d = b.dropout("drop", x).unwrap();
        let g = b.finish().unwrap();
        // Dropout removal leaves only the input...
        let spliced = eliminate_dropout(&g).unwrap();
        assert_eq!(spliced.node_count(), 1);
        // ...which dead-node elimination prunes as an orphaned sink,
        // leaving nothing to compile. That is an error, not a panic.
        let err = normalize(&g).unwrap_err();
        assert_eq!(err, crate::IrError::MissingInput);
    }
}
