//! Graph normalization passes executed before compilation.
//!
//! The paper's front end parses ONNX and hands the backend a clean node
//! list; these passes perform the cleanup a real front end does:
//! batch-norm folding (resnet/inception export BN separately), dropout
//! elimination, and dead-node elimination.

use crate::graph::{Graph, Node, NodeId};
use crate::Op;
use std::collections::{HashMap, HashSet};

/// Removes `Dropout` nodes (identity at inference), rewiring consumers to
/// the dropout's producer.
pub fn eliminate_dropout(graph: &Graph) -> Graph {
    remove_identity_nodes(graph, |n| matches!(n.op, Op::Dropout))
}

/// Folds `BatchNorm` nodes into the scale/shift of their producer; for
/// compilation purposes this means deleting the node, since affine
/// parameters ride along with the convolution weights on the crossbars.
pub fn fold_batch_norm(graph: &Graph) -> Graph {
    remove_identity_nodes(graph, |n| matches!(n.op, Op::BatchNorm))
}

/// Removes nodes whose output is never consumed and which are not graph
/// outputs of interest (conservatively: keeps every sink that is not an
/// orphaned `Input`).
pub fn eliminate_dead_nodes(graph: &Graph) -> Graph {
    // Mark everything reachable walking backwards from sinks.
    let mut live: HashSet<NodeId> = HashSet::new();
    let mut stack: Vec<NodeId> = graph
        .outputs()
        .filter(|&id| !matches!(graph.node(id).op, Op::Input { .. }))
        .collect();
    while let Some(id) = stack.pop() {
        if live.insert(id) {
            stack.extend(graph.predecessors(id).iter().copied());
        }
    }
    rebuild_subset(graph, |id| live.contains(&id))
}

/// Runs the standard pre-compilation pipeline:
/// dropout elimination → batch-norm folding → dead-node elimination.
pub fn normalize(graph: &Graph) -> Graph {
    eliminate_dead_nodes(&fold_batch_norm(&eliminate_dropout(graph)))
}

/// Removes all single-input nodes matching `pred`, splicing consumers to
/// the removed node's producer.
fn remove_identity_nodes(graph: &Graph, pred: impl Fn(&Node) -> bool) -> Graph {
    // Resolve each removed node to its surviving ancestor.
    let mut forward: HashMap<NodeId, NodeId> = HashMap::new();
    for id in graph.topo_order() {
        let n = graph.node(id);
        if pred(n) && n.inputs.len() == 1 {
            let src = n.inputs[0];
            let resolved = *forward.get(&src).unwrap_or(&src);
            forward.insert(id, resolved);
        }
    }
    rebuild_with_remap(graph, &forward)
}

/// Rebuilds the graph keeping only nodes for which `keep` holds,
/// renumbering ids densely. Edges to dropped nodes must not exist.
fn rebuild_subset(graph: &Graph, keep: impl Fn(NodeId) -> bool) -> Graph {
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    let mut nodes = Vec::new();
    for id in graph.topo_order() {
        if !keep(id) {
            continue;
        }
        let old = graph.node(id);
        let new_id = NodeId(nodes.len());
        remap.insert(id, new_id);
        nodes.push(Node {
            id: new_id,
            name: old.name.clone(),
            op: old.op.clone(),
            inputs: old.inputs.iter().map(|i| remap[i]).collect(),
            output_shape: old.output_shape.clone(),
        });
    }
    Graph::from_nodes(graph.name(), nodes)
        .expect("subset of a valid graph with remapped dense ids is valid")
}

/// Rebuilds the graph dropping the keys of `forward`, rewiring any edge
/// into a dropped node to its resolved ancestor.
fn rebuild_with_remap(graph: &Graph, forward: &HashMap<NodeId, NodeId>) -> Graph {
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    let mut nodes = Vec::new();
    for id in graph.topo_order() {
        if forward.contains_key(&id) {
            continue;
        }
        let old = graph.node(id);
        let new_id = NodeId(nodes.len());
        remap.insert(id, new_id);
        nodes.push(Node {
            id: new_id,
            name: old.name.clone(),
            op: old.op.clone(),
            inputs: old
                .inputs
                .iter()
                .map(|i| {
                    let resolved = forward.get(i).unwrap_or(i);
                    remap[resolved]
                })
                .collect(),
            output_shape: old.output_shape.clone(),
        });
    }
    Graph::from_nodes(graph.name(), nodes).expect("identity-node removal preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn dropout_is_spliced_out() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let d = b.dropout("drop", c).unwrap();
        let _r = b.relu("r", d).unwrap();
        let g = b.finish().unwrap();
        let g2 = eliminate_dropout(&g);
        assert_eq!(g2.node_count(), 3);
        let r = g2.node_by_name("r").unwrap();
        let c = g2.node_by_name("c").unwrap();
        assert_eq!(g2.predecessors(r.id), &[c.id]);
    }

    #[test]
    fn chained_identities_resolve_transitively() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let d1 = b.dropout("d1", c).unwrap();
        let d2 = b.dropout("d2", d1).unwrap();
        let _r = b.relu("r", d2).unwrap();
        let g = b.finish().unwrap();
        let g2 = eliminate_dropout(&g);
        assert_eq!(g2.node_count(), 3);
        assert!(g2.validate().is_ok());
    }

    #[test]
    fn batch_norm_folds_into_producer() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let bn = b.batch_norm("bn", c).unwrap();
        let _r = b.relu("r", bn).unwrap();
        let g = b.finish().unwrap();
        let g2 = fold_batch_norm(&g);
        assert!(g2.node_by_name("bn").is_none());
        assert_eq!(g2.node_count(), 3);
    }

    #[test]
    fn dead_branches_are_pruned() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        // Dead side branch: never consumed downstream of relu.
        let _dead = b.conv2d("dead", x, 2, (1, 1), (1, 1), (0, 0)).unwrap();
        let _r = b.relu("r", c).unwrap();
        let g = b.finish().unwrap();
        // Both `dead` and `r` are sinks; dead-node elimination keeps all
        // non-input sinks, so nothing is removed here...
        let g2 = eliminate_dead_nodes(&g);
        assert_eq!(g2.node_count(), 4);
        // ...but an orphaned input disappears.
        let mut b = GraphBuilder::new("t2");
        let _orphan = b.input("unused", [1, 1, 1]);
        let x = b.input("x", [4, 8, 8]);
        let _c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let g = b.finish().unwrap();
        let g2 = eliminate_dead_nodes(&g);
        assert_eq!(g2.node_count(), 2);
        assert!(g2.node_by_name("unused").is_none());
    }

    #[test]
    fn normalize_pipeline_is_idempotent() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [4, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let bn = b.batch_norm("bn", c).unwrap();
        let d = b.dropout("d", bn).unwrap();
        let _r = b.relu("r", d).unwrap();
        let g = b.finish().unwrap();
        let once = normalize(&g);
        let twice = normalize(&once);
        assert_eq!(once, twice);
    }
}
