//! Workload statistics used by reports and by compiler heuristics.

use crate::{Graph, Node, Op};
use serde::{Deserialize, Serialize};

/// Per-node workload statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Node name.
    pub name: String,
    /// Operator mnemonic.
    pub op: String,
    /// Weight parameter count (0 for weight-less operators).
    pub params: usize,
    /// Multiply-accumulate count for one inference.
    pub macs: usize,
    /// Output element count.
    pub output_elems: usize,
    /// Sliding-window count `Hout*Wout` (1 for FC; 0 for non-MVM ops).
    pub windows: usize,
}

/// Whole-graph workload statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Model name.
    pub model: String,
    /// Node count.
    pub nodes: usize,
    /// Conv + FC node count.
    pub mvm_nodes: usize,
    /// Total parameters.
    pub params: usize,
    /// Total MACs per inference.
    pub macs: usize,
    /// Per-node breakdown in topological order.
    pub per_node: Vec<NodeStats>,
}

impl NodeStats {
    /// Computes statistics for a single node.
    pub fn of(node: &Node) -> Self {
        let (params, macs, windows) = match &node.op {
            Op::Conv2d(c) => {
                let windows = node.output_shape.height() * node.output_shape.width();
                let per_window = c.weight_matrix_height() * c.out_channels;
                (c.weight_count(), per_window * windows, windows)
            }
            Op::Linear(l) => (
                l.in_features * l.out_features,
                l.in_features * l.out_features,
                1,
            ),
            _ => (0, 0, 0),
        };
        NodeStats {
            name: node.name.clone(),
            op: node.op.mnemonic().to_string(),
            params,
            macs,
            output_elems: node.output_shape.numel(),
            windows,
        }
    }
}

impl GraphStats {
    /// Computes statistics for every node of `graph`.
    pub fn of(graph: &Graph) -> Self {
        let per_node: Vec<NodeStats> = graph
            .topo_order()
            .into_iter()
            .map(|id| NodeStats::of(graph.node(id)))
            .collect();
        GraphStats {
            model: graph.name().to_string(),
            nodes: graph.node_count(),
            mvm_nodes: per_node.iter().filter(|s| s.windows > 0).count(),
            params: per_node.iter().map(|s| s.params).sum(),
            macs: per_node.iter().map(|s| s.macs).sum(),
            per_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn conv_stats_count_macs_and_windows() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [3, 8, 8]);
        let c = b.conv2d("c", x, 16, (3, 3), (1, 1), (1, 1)).unwrap();
        let g = b.finish().unwrap();
        let s = NodeStats::of(g.node(c));
        assert_eq!(s.windows, 64);
        assert_eq!(s.params, 3 * 3 * 3 * 16);
        assert_eq!(s.macs, 27 * 16 * 64);
    }

    #[test]
    fn fc_counts_one_window() {
        let mut b = GraphBuilder::new("t");
        let x = b.input_flat("x", 128);
        let f = b.linear("fc", x, 10).unwrap();
        let g = b.finish().unwrap();
        let s = NodeStats::of(g.node(f));
        assert_eq!(s.windows, 1);
        assert_eq!(s.macs, 1280);
    }

    #[test]
    fn graph_stats_aggregate() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [3, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let r = b.relu("r", c).unwrap();
        let f = b.flatten("f", r).unwrap();
        let _l = b.linear("fc", f, 10).unwrap();
        let g = b.finish().unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.mvm_nodes, 2);
        assert!(s.macs > 0 && s.params > 0);
    }
}
