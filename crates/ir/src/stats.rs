//! Workload statistics used by reports and by compiler heuristics.

use crate::{Graph, Node, Op};
use serde::{Deserialize, Serialize};

/// Per-node workload statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Node name.
    pub name: String,
    /// Operator mnemonic.
    pub op: String,
    /// Weight parameter count (0 for weight-less operators).
    pub params: usize,
    /// Multiply-accumulate count for one inference.
    pub macs: usize,
    /// Output element count (0 while the shape is still symbolic).
    pub output_elems: usize,
    /// Sliding-window count `Hout*Wout` (1 for FC, the row count for
    /// matmul; 0 for non-MVM ops and for symbolic shapes).
    pub windows: usize,
}

/// Whole-graph workload statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Model name.
    pub model: String,
    /// Node count.
    pub nodes: usize,
    /// Conv + FC node count.
    pub mvm_nodes: usize,
    /// Total parameters.
    pub params: usize,
    /// Total MACs per inference.
    pub macs: usize,
    /// Per-node breakdown in topological order.
    pub per_node: Vec<NodeStats>,
}

impl NodeStats {
    /// Computes statistics for a single node.
    pub fn of(node: &Node) -> Self {
        let (params, macs, windows) = match &node.op {
            Op::Conv2d(c) => {
                let windows = node.output_shape.height() * node.output_shape.width();
                let per_window = c.weight_matrix_height() * c.out_channels;
                (c.weight_count(), per_window * windows, windows)
            }
            Op::Linear(l) => (
                l.in_features * l.out_features,
                l.in_features * l.out_features,
                1,
            ),
            Op::MatMul(m) => {
                let params = m.in_features * m.out_features;
                // Every leading-dimension row streams through the same
                // stationary weights; unknown (symbolic) row counts
                // report zero windows/MACs until bound.
                let rows = node
                    .output_shape
                    .try_numel()
                    .map(|n| n / m.out_features)
                    .unwrap_or(0);
                (params, params * rows, rows)
            }
            _ => (0, 0, 0),
        };
        NodeStats {
            name: node.name.clone(),
            op: node.op.mnemonic().to_string(),
            params,
            macs,
            output_elems: node.output_shape.try_numel().unwrap_or(0),
            windows,
        }
    }
}

impl GraphStats {
    /// Computes statistics for every node of `graph`.
    pub fn of(graph: &Graph) -> Self {
        let per_node: Vec<NodeStats> = graph
            .topo_order()
            .into_iter()
            .map(|id| NodeStats::of(graph.node(id)))
            .collect();
        GraphStats {
            model: graph.name().to_string(),
            nodes: graph.node_count(),
            mvm_nodes: per_node.iter().filter(|s| s.windows > 0).count(),
            params: per_node.iter().map(|s| s.params).sum(),
            macs: per_node.iter().map(|s| s.macs).sum(),
            per_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn conv_stats_count_macs_and_windows() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [3, 8, 8]);
        let c = b.conv2d("c", x, 16, (3, 3), (1, 1), (1, 1)).unwrap();
        let g = b.finish().unwrap();
        let s = NodeStats::of(g.node(c));
        assert_eq!(s.windows, 64);
        assert_eq!(s.params, 3 * 3 * 3 * 16);
        assert_eq!(s.macs, 27 * 16 * 64);
    }

    #[test]
    fn fc_counts_one_window() {
        let mut b = GraphBuilder::new("t");
        let x = b.input_flat("x", 128);
        let f = b.linear("fc", x, 10).unwrap();
        let g = b.finish().unwrap();
        let s = NodeStats::of(g.node(f));
        assert_eq!(s.windows, 1);
        assert_eq!(s.macs, 1280);
    }

    #[test]
    fn matmul_stats_scale_with_bound_rows() {
        let mut b = GraphBuilder::new("t");
        let x = b.input_seq("x", 128);
        let m = b.matmul("mm", x, 256).unwrap();
        let g = b.finish().unwrap();
        // Symbolic: params known, per-inference work unknown.
        let s = NodeStats::of(g.node(m));
        assert_eq!(s.params, 128 * 256);
        assert_eq!(s.macs, 0);
        assert_eq!(s.windows, 0);
        assert_eq!(s.output_elems, 0);
        // Bound at seq 16: one window per row.
        let bound = crate::transform::bind_seq_len(&g, 16).unwrap();
        let s = NodeStats::of(bound.node_by_name("mm").unwrap());
        assert_eq!(s.windows, 16);
        assert_eq!(s.macs, 128 * 256 * 16);
        assert_eq!(s.output_elems, 16 * 256);
    }

    #[test]
    fn graph_stats_aggregate() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [3, 8, 8]);
        let c = b.conv2d("c", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let r = b.relu("r", c).unwrap();
        let f = b.flatten("f", r).unwrap();
        let _l = b.linear("fc", f, 10).unwrap();
        let g = b.finish().unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.mvm_nodes, 2);
        assert!(s.macs > 0 && s.params > 0);
    }
}
