//! SqueezeNet 1.0 (Iandola et al., 2016) — fire modules with concat
//! joins; the lightest benchmark in the paper.

use crate::{Graph, GraphBuilder, NodeId, PoolKind};

/// Builds SqueezeNet 1.0 with 1000 output classes.
pub fn squeezenet() -> Graph {
    let mut b = GraphBuilder::new("squeezenet");
    let x = b.input("input", [3, 224, 224]);

    let c1 = b
        .conv2d("conv1", x, 96, (7, 7), (2, 2), (0, 0))
        .expect("conv1");
    let r1 = b.relu("conv1_relu", c1).expect("relu");
    let p1 = b
        .pool("pool1", r1, PoolKind::Max, (3, 3), (2, 2), (0, 0), true)
        .expect("pool1");

    let f2 = fire(&mut b, "fire2", p1, 16, 64);
    let f3 = fire(&mut b, "fire3", f2, 16, 64);
    let f4 = fire(&mut b, "fire4", f3, 32, 128);
    let p4 = b
        .pool("pool4", f4, PoolKind::Max, (3, 3), (2, 2), (0, 0), true)
        .expect("pool4");

    let f5 = fire(&mut b, "fire5", p4, 32, 128);
    let f6 = fire(&mut b, "fire6", f5, 48, 192);
    let f7 = fire(&mut b, "fire7", f6, 48, 192);
    let f8 = fire(&mut b, "fire8", f7, 64, 256);
    let p8 = b
        .pool("pool8", f8, PoolKind::Max, (3, 3), (2, 2), (0, 0), true)
        .expect("pool8");

    let f9 = fire(&mut b, "fire9", p8, 64, 256);
    let d = b.dropout("drop9", f9).expect("drop");
    let c10 = b
        .conv2d("conv10", d, 1000, (1, 1), (1, 1), (0, 0))
        .expect("conv10");
    let r10 = b.relu("conv10_relu", c10).expect("relu10");
    let gap = b.global_avg_pool("gap", r10).expect("gap");
    let _flat = b.flatten("flatten", gap).expect("flatten");

    b.finish().expect("squeezenet topology is a valid DAG")
}

/// Fire module: 1×1 squeeze followed by parallel 1×1 and 3×3 expands
/// whose outputs are concatenated along channels.
fn fire(
    b: &mut GraphBuilder,
    name: &str,
    input: NodeId,
    squeeze_ch: usize,
    expand_ch: usize,
) -> NodeId {
    let s = b
        .conv2d(
            format!("{name}_squeeze"),
            input,
            squeeze_ch,
            (1, 1),
            (1, 1),
            (0, 0),
        )
        .expect("squeeze conv");
    let sr = b.relu(format!("{name}_squeeze_relu"), s).expect("relu");
    let e1 = b
        .conv2d(
            format!("{name}_expand1x1"),
            sr,
            expand_ch,
            (1, 1),
            (1, 1),
            (0, 0),
        )
        .expect("expand1x1");
    let e1r = b.relu(format!("{name}_expand1x1_relu"), e1).expect("relu");
    let e3 = b
        .conv2d(
            format!("{name}_expand3x3"),
            sr,
            expand_ch,
            (3, 3),
            (1, 1),
            (1, 1),
        )
        .expect("expand3x3");
    let e3r = b.relu(format!("{name}_expand3x3_relu"), e3).expect("relu");
    b.concat(format!("{name}_concat"), vec![e1r, e3r])
        .expect("equal spatial dims by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Shape};

    #[test]
    fn squeezenet_has_26_convs() {
        // conv1 + 8 fires * 3 convs + conv10.
        let g = squeezenet();
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Conv2d(_)))
            .count();
        assert_eq!(convs, 26);
    }

    #[test]
    fn fire_concat_doubles_expand_channels() {
        let g = squeezenet();
        let f2 = g.node_by_name("fire2_concat").unwrap();
        assert_eq!(f2.output_shape.channels(), 128);
    }

    #[test]
    fn final_feature_is_1000_channels() {
        let g = squeezenet();
        let gap = g.node_by_name("gap").unwrap();
        assert_eq!(gap.output_shape, Shape::chw(1000, 1, 1));
    }

    #[test]
    fn no_fully_connected_layers() {
        let g = squeezenet();
        assert!(!g.nodes().iter().any(|n| matches!(n.op, Op::Linear(_))));
    }
}
