//! Inception-v3 (Szegedy et al., 2016) — the deepest benchmark, with
//! factorized 1×7/7×1 convolutions and four inception module families.

use crate::{Graph, GraphBuilder, NodeId, PoolKind};

/// Builds Inception-v3 with 1000 output classes and the canonical
/// 299×299 input.
///
/// Every convolution is followed by explicit batch-norm and ReLU nodes,
/// matching the ONNX export of the reference implementation; fold them
/// with [`transform::normalize`](crate::transform::normalize).
pub fn inception_v3() -> Graph {
    let mut b = GraphBuilder::new("inception_v3");
    let x = b.input("input", [3, 299, 299]);

    // Stem.
    let c1 = cbr(&mut b, "stem_conv1", x, 32, (3, 3), (2, 2), (0, 0));
    let c2 = cbr(&mut b, "stem_conv2", c1, 32, (3, 3), (1, 1), (0, 0));
    let c3 = cbr(&mut b, "stem_conv3", c2, 64, (3, 3), (1, 1), (1, 1));
    let p1 = b
        .max_pool("stem_pool1", c3, (3, 3), (2, 2), (0, 0))
        .expect("stem pool1");
    let c4 = cbr(&mut b, "stem_conv4", p1, 80, (1, 1), (1, 1), (0, 0));
    let c5 = cbr(&mut b, "stem_conv5", c4, 192, (3, 3), (1, 1), (0, 0));
    let p2 = b
        .max_pool("stem_pool2", c5, (3, 3), (2, 2), (0, 0))
        .expect("stem pool2");

    // 35x35 modules.
    let a1 = inception_a(&mut b, "mixed_a1", p2, 32);
    let a2 = inception_a(&mut b, "mixed_a2", a1, 64);
    let a3 = inception_a(&mut b, "mixed_a3", a2, 64);

    // Reduction to 17x17.
    let r1 = reduction_b(&mut b, "mixed_b", a3);

    // 17x17 modules with growing 7x7 channel counts.
    let c_1 = inception_c(&mut b, "mixed_c1", r1, 128);
    let c_2 = inception_c(&mut b, "mixed_c2", c_1, 160);
    let c_3 = inception_c(&mut b, "mixed_c3", c_2, 160);
    let c_4 = inception_c(&mut b, "mixed_c4", c_3, 192);

    // Reduction to 8x8.
    let r2 = reduction_d(&mut b, "mixed_d", c_4);

    // 8x8 modules.
    let e1 = inception_e(&mut b, "mixed_e1", r2);
    let e2 = inception_e(&mut b, "mixed_e2", e1);

    let gap = b.global_avg_pool("gap", e2).expect("gap");
    let d = b.dropout("dropout", gap).expect("dropout");
    let flat = b.flatten("flatten", d).expect("flatten");
    let _fc = b.linear("fc", flat, 1000).expect("fc");

    b.finish().expect("inception_v3 topology is a valid DAG")
}

/// conv → batch-norm → relu, the basic unit of inception-v3.
fn cbr(
    b: &mut GraphBuilder,
    name: &str,
    input: NodeId,
    out_ch: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
) -> NodeId {
    let c = b
        .conv2d(name, input, out_ch, kernel, stride, padding)
        .expect("inception conv dims are valid");
    let bn = b.batch_norm(format!("{name}_bn"), c).expect("bn");
    b.relu(format!("{name}_relu"), bn).expect("relu")
}

/// 35×35 module: 1×1 / 1×1→5×5 / 1×1→3×3→3×3 / avgpool→1×1.
fn inception_a(b: &mut GraphBuilder, name: &str, input: NodeId, pool_ch: usize) -> NodeId {
    let b1 = cbr(b, &format!("{name}_1x1"), input, 64, (1, 1), (1, 1), (0, 0));

    let b2a = cbr(
        b,
        &format!("{name}_5x5_r"),
        input,
        48,
        (1, 1),
        (1, 1),
        (0, 0),
    );
    let b2 = cbr(b, &format!("{name}_5x5"), b2a, 64, (5, 5), (1, 1), (2, 2));

    let b3a = cbr(
        b,
        &format!("{name}_3x3_r"),
        input,
        64,
        (1, 1),
        (1, 1),
        (0, 0),
    );
    let b3b = cbr(b, &format!("{name}_3x3a"), b3a, 96, (3, 3), (1, 1), (1, 1));
    let b3 = cbr(b, &format!("{name}_3x3b"), b3b, 96, (3, 3), (1, 1), (1, 1));

    let pool = b
        .pool(
            format!("{name}_pool"),
            input,
            PoolKind::Avg,
            (3, 3),
            (1, 1),
            (1, 1),
            false,
        )
        .expect("stride-1 pool");
    let b4 = cbr(
        b,
        &format!("{name}_pool_proj"),
        pool,
        pool_ch,
        (1, 1),
        (1, 1),
        (0, 0),
    );

    b.concat(format!("{name}_concat"), vec![b1, b2, b3, b4])
        .expect("equal spatial dims")
}

/// 35→17 reduction: 3×3/2 / 1×1→3×3→3×3/2 / maxpool/2.
fn reduction_b(b: &mut GraphBuilder, name: &str, input: NodeId) -> NodeId {
    let b1 = cbr(
        b,
        &format!("{name}_3x3"),
        input,
        384,
        (3, 3),
        (2, 2),
        (0, 0),
    );

    let b2a = cbr(
        b,
        &format!("{name}_dbl_r"),
        input,
        64,
        (1, 1),
        (1, 1),
        (0, 0),
    );
    let b2b = cbr(b, &format!("{name}_dbl_a"), b2a, 96, (3, 3), (1, 1), (1, 1));
    let b2 = cbr(b, &format!("{name}_dbl_b"), b2b, 96, (3, 3), (2, 2), (0, 0));

    let b3 = b
        .max_pool(format!("{name}_pool"), input, (3, 3), (2, 2), (0, 0))
        .expect("reduction pool");

    b.concat(format!("{name}_concat"), vec![b1, b2, b3])
        .expect("equal spatial dims")
}

/// 17×17 module with factorized 7×7 convolutions.
fn inception_c(b: &mut GraphBuilder, name: &str, input: NodeId, ch7: usize) -> NodeId {
    let b1 = cbr(
        b,
        &format!("{name}_1x1"),
        input,
        192,
        (1, 1),
        (1, 1),
        (0, 0),
    );

    let b2a = cbr(
        b,
        &format!("{name}_7_r"),
        input,
        ch7,
        (1, 1),
        (1, 1),
        (0, 0),
    );
    let b2b = cbr(b, &format!("{name}_7_a"), b2a, ch7, (1, 7), (1, 1), (0, 3));
    let b2 = cbr(b, &format!("{name}_7_b"), b2b, 192, (7, 1), (1, 1), (3, 0));

    let b3a = cbr(
        b,
        &format!("{name}_7dbl_r"),
        input,
        ch7,
        (1, 1),
        (1, 1),
        (0, 0),
    );
    let b3b = cbr(
        b,
        &format!("{name}_7dbl_a"),
        b3a,
        ch7,
        (7, 1),
        (1, 1),
        (3, 0),
    );
    let b3c = cbr(
        b,
        &format!("{name}_7dbl_b"),
        b3b,
        ch7,
        (1, 7),
        (1, 1),
        (0, 3),
    );
    let b3d = cbr(
        b,
        &format!("{name}_7dbl_c"),
        b3c,
        ch7,
        (7, 1),
        (1, 1),
        (3, 0),
    );
    let b3 = cbr(
        b,
        &format!("{name}_7dbl_d"),
        b3d,
        192,
        (1, 7),
        (1, 1),
        (0, 3),
    );

    let pool = b
        .pool(
            format!("{name}_pool"),
            input,
            PoolKind::Avg,
            (3, 3),
            (1, 1),
            (1, 1),
            false,
        )
        .expect("stride-1 pool");
    let b4 = cbr(
        b,
        &format!("{name}_pool_proj"),
        pool,
        192,
        (1, 1),
        (1, 1),
        (0, 0),
    );

    b.concat(format!("{name}_concat"), vec![b1, b2, b3, b4])
        .expect("equal spatial dims")
}

/// 17→8 reduction with a factorized 7×7 branch.
fn reduction_d(b: &mut GraphBuilder, name: &str, input: NodeId) -> NodeId {
    let b1a = cbr(
        b,
        &format!("{name}_3x3_r"),
        input,
        192,
        (1, 1),
        (1, 1),
        (0, 0),
    );
    let b1 = cbr(b, &format!("{name}_3x3"), b1a, 320, (3, 3), (2, 2), (0, 0));

    let b2a = cbr(
        b,
        &format!("{name}_7x7_r"),
        input,
        192,
        (1, 1),
        (1, 1),
        (0, 0),
    );
    let b2b = cbr(
        b,
        &format!("{name}_7x7_a"),
        b2a,
        192,
        (1, 7),
        (1, 1),
        (0, 3),
    );
    let b2c = cbr(
        b,
        &format!("{name}_7x7_b"),
        b2b,
        192,
        (7, 1),
        (1, 1),
        (3, 0),
    );
    let b2 = cbr(
        b,
        &format!("{name}_7x7_c"),
        b2c,
        192,
        (3, 3),
        (2, 2),
        (0, 0),
    );

    let b3 = b
        .max_pool(format!("{name}_pool"), input, (3, 3), (2, 2), (0, 0))
        .expect("reduction pool");

    b.concat(format!("{name}_concat"), vec![b1, b2, b3])
        .expect("equal spatial dims")
}

/// 8×8 module with split 1×3/3×1 expansions.
fn inception_e(b: &mut GraphBuilder, name: &str, input: NodeId) -> NodeId {
    let b1 = cbr(
        b,
        &format!("{name}_1x1"),
        input,
        320,
        (1, 1),
        (1, 1),
        (0, 0),
    );

    let b2a = cbr(
        b,
        &format!("{name}_3x3_r"),
        input,
        384,
        (1, 1),
        (1, 1),
        (0, 0),
    );
    let b2l = cbr(
        b,
        &format!("{name}_3x3_l"),
        b2a,
        384,
        (1, 3),
        (1, 1),
        (0, 1),
    );
    let b2r = cbr(
        b,
        &format!("{name}_3x3_rr"),
        b2a,
        384,
        (3, 1),
        (1, 1),
        (1, 0),
    );
    let b2 = b
        .concat(format!("{name}_3x3_cat"), vec![b2l, b2r])
        .expect("split branches share dims");

    let b3a = cbr(
        b,
        &format!("{name}_dbl_r"),
        input,
        448,
        (1, 1),
        (1, 1),
        (0, 0),
    );
    let b3b = cbr(
        b,
        &format!("{name}_dbl_m"),
        b3a,
        384,
        (3, 3),
        (1, 1),
        (1, 1),
    );
    let b3l = cbr(
        b,
        &format!("{name}_dbl_l"),
        b3b,
        384,
        (1, 3),
        (1, 1),
        (0, 1),
    );
    let b3r = cbr(
        b,
        &format!("{name}_dbl_rr"),
        b3b,
        384,
        (3, 1),
        (1, 1),
        (1, 0),
    );
    let b3 = b
        .concat(format!("{name}_dbl_cat"), vec![b3l, b3r])
        .expect("split branches share dims");

    let pool = b
        .pool(
            format!("{name}_pool"),
            input,
            PoolKind::Avg,
            (3, 3),
            (1, 1),
            (1, 1),
            false,
        )
        .expect("stride-1 pool");
    let b4 = cbr(
        b,
        &format!("{name}_pool_proj"),
        pool,
        192,
        (1, 1),
        (1, 1),
        (0, 0),
    );

    b.concat(format!("{name}_concat"), vec![b1, b2, b3, b4])
        .expect("equal spatial dims")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Shape};

    #[test]
    fn inception_v3_has_94_convs() {
        // Canonical count for the main branch (torchvision: 94 conv
        // layers when the aux classifier is excluded).
        let g = inception_v3();
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Conv2d(_)))
            .count();
        assert_eq!(convs, 94);
    }

    #[test]
    fn stage_shapes_are_canonical() {
        let g = inception_v3();
        let expect = [
            ("stem_pool2", Shape::chw(192, 35, 35)),
            ("mixed_a1_concat", Shape::chw(256, 35, 35)),
            ("mixed_a3_concat", Shape::chw(288, 35, 35)),
            ("mixed_b_concat", Shape::chw(768, 17, 17)),
            ("mixed_c4_concat", Shape::chw(768, 17, 17)),
            ("mixed_d_concat", Shape::chw(1280, 8, 8)),
            ("mixed_e2_concat", Shape::chw(2048, 8, 8)),
        ];
        for (name, shape) in expect {
            let n = g.node_by_name(name).unwrap();
            assert_eq!(n.output_shape, shape, "{name}");
        }
    }

    #[test]
    fn asymmetric_kernels_are_present() {
        let g = inception_v3();
        let asym = g
            .nodes()
            .iter()
            .filter(|n| match &n.op {
                Op::Conv2d(c) => c.kernel.0 != c.kernel.1,
                _ => false,
            })
            .count();
        assert!(asym >= 20, "factorized convs expected, found {asym}");
    }

    #[test]
    fn every_conv_has_batch_norm() {
        let g = inception_v3();
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Conv2d(_)))
            .count();
        let bns = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::BatchNorm))
            .count();
        assert_eq!(convs, bns);
    }
}
