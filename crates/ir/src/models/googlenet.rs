//! GoogLeNet / Inception-v1 (Szegedy et al., 2015) — nine inception
//! modules with four-way concat joins.

use crate::{Graph, GraphBuilder, NodeId, PoolKind};

/// Builds GoogLeNet (inception-v1, main branch only — auxiliary
/// classifiers are training-time artifacts and absent from inference
/// deployments) with 1000 output classes.
pub fn googlenet() -> Graph {
    let mut b = GraphBuilder::new("googlenet");
    let x = b.input("input", [3, 224, 224]);

    // Stem.
    let c1 = b
        .conv2d("conv1", x, 64, (7, 7), (2, 2), (3, 3))
        .expect("conv1");
    let r1 = b.relu("conv1_relu", c1).expect("relu");
    let p1 = b
        .pool("pool1", r1, PoolKind::Max, (3, 3), (2, 2), (0, 0), true)
        .expect("pool1");
    let n1 = b.lrn("lrn1", p1, 5).expect("lrn1");
    let c2 = b
        .conv2d("conv2_reduce", n1, 64, (1, 1), (1, 1), (0, 0))
        .expect("conv2_reduce");
    let r2 = b.relu("conv2_reduce_relu", c2).expect("relu");
    let c3 = b
        .conv2d("conv2", r2, 192, (3, 3), (1, 1), (1, 1))
        .expect("conv2");
    let r3 = b.relu("conv2_relu", c3).expect("relu");
    let n2 = b.lrn("lrn2", r3, 5).expect("lrn2");
    let p2 = b
        .pool("pool2", n2, PoolKind::Max, (3, 3), (2, 2), (0, 0), true)
        .expect("pool2");

    // Inception parameter table: (1x1, 3x3reduce, 3x3, 5x5reduce, 5x5, pool_proj).
    let i3a = inception(&mut b, "inception_3a", p2, [64, 96, 128, 16, 32, 32]);
    let i3b = inception(&mut b, "inception_3b", i3a, [128, 128, 192, 32, 96, 64]);
    let p3 = b
        .pool("pool3", i3b, PoolKind::Max, (3, 3), (2, 2), (0, 0), true)
        .expect("pool3");

    let i4a = inception(&mut b, "inception_4a", p3, [192, 96, 208, 16, 48, 64]);
    let i4b = inception(&mut b, "inception_4b", i4a, [160, 112, 224, 24, 64, 64]);
    let i4c = inception(&mut b, "inception_4c", i4b, [128, 128, 256, 24, 64, 64]);
    let i4d = inception(&mut b, "inception_4d", i4c, [112, 144, 288, 32, 64, 64]);
    let i4e = inception(&mut b, "inception_4e", i4d, [256, 160, 320, 32, 128, 128]);
    let p4 = b
        .pool("pool4", i4e, PoolKind::Max, (3, 3), (2, 2), (0, 0), true)
        .expect("pool4");

    let i5a = inception(&mut b, "inception_5a", p4, [256, 160, 320, 32, 128, 128]);
    let i5b = inception(&mut b, "inception_5b", i5a, [384, 192, 384, 48, 128, 128]);

    let gap = b.global_avg_pool("gap", i5b).expect("gap");
    let d = b.dropout("dropout", gap).expect("dropout");
    let flat = b.flatten("flatten", d).expect("flatten");
    let _fc = b.linear("fc", flat, 1000).expect("fc");

    b.finish().expect("googlenet topology is a valid DAG")
}

/// The four-branch inception module:
/// 1×1 / 1×1→3×3 / 1×1→5×5 / 3×3-maxpool→1×1, concatenated on channels.
fn inception(b: &mut GraphBuilder, name: &str, input: NodeId, p: [usize; 6]) -> NodeId {
    let [c1, c3r, c3, c5r, c5, pp] = p;

    let b1 = conv_relu(b, &format!("{name}_1x1"), input, c1, (1, 1), (0, 0));

    let b2r = conv_relu(b, &format!("{name}_3x3_reduce"), input, c3r, (1, 1), (0, 0));
    let b2 = conv_relu(b, &format!("{name}_3x3"), b2r, c3, (3, 3), (1, 1));

    let b3r = conv_relu(b, &format!("{name}_5x5_reduce"), input, c5r, (1, 1), (0, 0));
    let b3 = conv_relu(b, &format!("{name}_5x5"), b3r, c5, (5, 5), (2, 2));

    let pool = b
        .pool(
            format!("{name}_pool"),
            input,
            PoolKind::Max,
            (3, 3),
            (1, 1),
            (1, 1),
            false,
        )
        .expect("stride-1 pool always fits");
    let b4 = conv_relu(b, &format!("{name}_pool_proj"), pool, pp, (1, 1), (0, 0));

    b.concat(format!("{name}_concat"), vec![b1, b2, b3, b4])
        .expect("branches share spatial dims by construction")
}

fn conv_relu(
    b: &mut GraphBuilder,
    name: &str,
    input: NodeId,
    out_ch: usize,
    kernel: (usize, usize),
    padding: (usize, usize),
) -> NodeId {
    let c = b
        .conv2d(name, input, out_ch, kernel, (1, 1), padding)
        .expect("inception conv dims are valid");
    b.relu(format!("{name}_relu"), c).expect("unique name")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Shape};

    #[test]
    fn googlenet_has_57_convs() {
        // 3 stem convs + 9 modules * 6 convs.
        let g = googlenet();
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Conv2d(_)))
            .count();
        assert_eq!(convs, 57);
    }

    #[test]
    fn module_output_channels_match_the_paper_table() {
        let g = googlenet();
        let expect = [
            ("inception_3a_concat", 256),
            ("inception_3b_concat", 480),
            ("inception_4a_concat", 512),
            ("inception_4e_concat", 832),
            ("inception_5b_concat", 1024),
        ];
        for (name, ch) in expect {
            let n = g.node_by_name(name).unwrap();
            assert_eq!(n.output_shape.channels(), ch, "{name}");
        }
    }

    #[test]
    fn spatial_pyramid_is_canonical() {
        let g = googlenet();
        assert_eq!(
            g.node_by_name("inception_3b_concat").unwrap().output_shape,
            Shape::chw(480, 28, 28)
        );
        assert_eq!(
            g.node_by_name("inception_5b_concat").unwrap().output_shape,
            Shape::chw(1024, 7, 7)
        );
    }

    #[test]
    fn lrn_nodes_present_in_stem() {
        let g = googlenet();
        let lrns = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Lrn(_)))
            .count();
        assert_eq!(lrns, 2);
    }
}
