//! The benchmark networks of the paper's evaluation (Section V-A.2):
//! the computationally intensive `vgg16` and the topologically complex
//! `resnet18`, `squeezenet`, `googlenet` and `inception_v3`, plus small
//! synthetic networks used throughout the test suites.
//!
//! All builders produce ImageNet-classification variants (1000 classes)
//! with the canonical published topologies. Networks that ship with
//! batch-norm layers (`resnet18`, `inception_v3`) include explicit
//! [`Op::BatchNorm`](crate::Op::BatchNorm) nodes; run
//! [`transform::normalize`](crate::transform::normalize) before
//! compilation, exactly as the ONNX front end of the paper folds them.

mod googlenet;
mod inception;
mod resnet;
mod small;
mod squeezenet;
mod tiny_bert;
mod vgg;

pub use googlenet::googlenet;
pub use inception::inception_v3;
pub use resnet::{resnet18, resnet34, resnet50};
pub use small::{linear_chain, tiny_cnn, tiny_mlp, two_branch};
pub use squeezenet::squeezenet;
pub use tiny_bert::tiny_bert;
pub use vgg::vgg16;

use crate::Graph;

/// Names of the five paper benchmarks, in the order of the paper's plots.
pub const PAPER_BENCHMARKS: [&str; 5] = [
    "vgg16",
    "resnet18",
    "googlenet",
    "inception_v3",
    "squeezenet",
];

/// Every canonical name [`by_name`] resolves: the paper benchmarks plus
/// the extra ResNet depths. Drivers that accept model names (the CLI,
/// the sweep engine, the benchmark harness) list this on bad input so
/// users never have to guess the spelling.
pub const ZOO: [&str; 8] = [
    "vgg16",
    "resnet18",
    "resnet34",
    "resnet50",
    "googlenet",
    "inception_v3",
    "squeezenet",
    "tiny_bert",
];

/// The small synthetic test networks, resolvable by [`test_model`].
pub const TEST_MODELS: [&str; 4] = ["tiny_cnn", "tiny_mlp", "two_branch", "linear_chain"];

/// Builds a synthetic test network by name (see [`TEST_MODELS`]).
/// Returns `None` for unknown names.
pub fn test_model(name: &str) -> Option<Graph> {
    match name {
        "tiny_cnn" => Some(tiny_cnn()),
        "tiny_mlp" => Some(tiny_mlp()),
        "two_branch" => Some(two_branch()),
        "linear_chain" => Some(linear_chain(4)),
        _ => None,
    }
}

/// Builds a paper benchmark by name.
///
/// Accepted names are the entries of [`PAPER_BENCHMARKS`] (aliases with
/// `-` instead of `_` also work). Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<Graph> {
    match name.replace('-', "_").as_str() {
        "vgg16" => Some(vgg16()),
        "resnet18" => Some(resnet18()),
        "resnet34" => Some(resnet34()),
        "resnet50" => Some(resnet50()),
        "googlenet" => Some(googlenet()),
        "inception_v3" | "inceptionv3" => Some(inception_v3()),
        "squeezenet" => Some(squeezenet()),
        "tiny_bert" => Some(tiny_bert()),
        _ => None,
    }
}

/// Builds all five paper benchmarks.
pub fn paper_benchmarks() -> Vec<Graph> {
    PAPER_BENCHMARKS
        .iter()
        .map(|n| by_name(n).expect("all benchmark names resolve"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::normalize;
    use crate::GraphStats;

    #[test]
    fn all_benchmarks_build_and_validate() {
        for g in paper_benchmarks() {
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        }
    }

    #[test]
    fn by_name_accepts_aliases() {
        assert!(by_name("inception-v3").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_listed_name_resolves() {
        for name in ZOO {
            assert!(by_name(name).is_some(), "zoo name `{name}` must resolve");
        }
        for name in TEST_MODELS {
            let g = test_model(name).unwrap_or_else(|| panic!("test model `{name}`"));
            g.validate().unwrap();
        }
        assert!(test_model("vgg16").is_none());
    }

    #[test]
    fn normalized_benchmarks_have_no_bn_or_dropout() {
        for g in paper_benchmarks() {
            let n = normalize(&g).unwrap();
            for node in n.nodes() {
                assert!(
                    !matches!(node.op, crate::Op::BatchNorm | crate::Op::Dropout),
                    "{}: {} survived normalize",
                    n.name(),
                    node.name
                );
            }
        }
    }

    #[test]
    fn benchmark_parameter_counts_are_canonical() {
        // Published parameter counts (conv + fc weights, no bias):
        // checked against the canonical torchvision models to within the
        // bias contribution we intentionally exclude from weight_count.
        let expect = [
            ("vgg16", 138_000_000usize, 139_000_000usize),
            ("resnet18", 11_000_000, 12_000_000),
            ("googlenet", 5_900_000, 7_000_000),
            ("inception_v3", 21_000_000, 24_000_000),
            ("squeezenet", 1_200_000, 1_300_000),
        ];
        for (name, lo, hi) in expect {
            let g = by_name(name).unwrap();
            let s = GraphStats::of(&g);
            assert!(
                s.params >= lo && s.params <= hi,
                "{name}: {} params outside [{lo}, {hi}]",
                s.params
            );
        }
    }

    #[test]
    fn benchmark_mac_counts_are_canonical() {
        // Published MAC counts per 224/299 inference (±15% tolerance —
        // different sources count slightly differently).
        let expect = [
            ("vgg16", 15.5e9),
            ("resnet18", 1.8e9),
            ("googlenet", 1.5e9),
            ("inception_v3", 5.7e9),
            ("squeezenet", 0.83e9),
        ];
        for (name, macs) in expect {
            let g = by_name(name).unwrap();
            let s = GraphStats::of(&g);
            let ratio = s.macs as f64 / macs;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{name}: {} MACs vs expected {macs} (ratio {ratio:.3})",
                s.macs
            );
        }
    }
}
