//! Small synthetic networks used by unit/integration tests and the
//! quickstart example: fast to compile, yet exercising every operator
//! class (MVM, vector, memory) and every topology feature (chains,
//! branches, joins).

use crate::{Graph, GraphBuilder};

/// A tiny LeNet-style CNN on 3×32×32 inputs: two conv/pool stages and two
/// fully connected layers. Exercises the straight-line pipeline path.
pub fn tiny_cnn() -> Graph {
    let mut b = GraphBuilder::new("tiny_cnn");
    let x = b.input("input", [3, 32, 32]);
    let c1 = b
        .conv2d("conv1", x, 16, (3, 3), (1, 1), (1, 1))
        .expect("conv1");
    let r1 = b.relu("relu1", c1).expect("relu1");
    let p1 = b
        .max_pool("pool1", r1, (2, 2), (2, 2), (0, 0))
        .expect("pool1");
    let c2 = b
        .conv2d("conv2", p1, 32, (3, 3), (1, 1), (1, 1))
        .expect("conv2");
    let r2 = b.relu("relu2", c2).expect("relu2");
    let p2 = b
        .max_pool("pool2", r2, (2, 2), (2, 2), (0, 0))
        .expect("pool2");
    let f = b.flatten("flatten", p2).expect("flatten");
    let fc1 = b.linear("fc1", f, 128).expect("fc1");
    let r3 = b.relu("relu3", fc1).expect("relu3");
    let _fc2 = b.linear("fc2", r3, 10).expect("fc2");
    b.finish().expect("tiny_cnn is valid")
}

/// A two-layer perceptron on flat inputs. The smallest compilable model:
/// two FC nodes, no spatial structure.
pub fn tiny_mlp() -> Graph {
    let mut b = GraphBuilder::new("tiny_mlp");
    let x = b.input_flat("input", 256);
    let fc1 = b.linear("fc1", x, 64).expect("fc1");
    let r = b.relu("relu1", fc1).expect("relu");
    let _fc2 = b.linear("fc2", r, 10).expect("fc2");
    b.finish().expect("tiny_mlp is valid")
}

/// A residual-style two-branch network joined by element-wise addition.
/// Exercises branch divergence and the eltwise join in LL scheduling.
pub fn two_branch() -> Graph {
    let mut b = GraphBuilder::new("two_branch");
    let x = b.input("input", [8, 16, 16]);
    let stem = b
        .conv2d("stem", x, 16, (3, 3), (1, 1), (1, 1))
        .expect("stem");
    let l = b
        .conv2d("left", stem, 16, (3, 3), (1, 1), (1, 1))
        .expect("left");
    let lr = b.relu("left_relu", l).expect("relu");
    let r = b
        .conv2d("right", stem, 16, (1, 1), (1, 1), (0, 0))
        .expect("right");
    let add = b.eltwise_add("join", lr, r).expect("join");
    let rr = b.relu("join_relu", add).expect("relu");
    let g = b.global_avg_pool("gap", rr).expect("gap");
    let f = b.flatten("flatten", g).expect("flatten");
    let _fc = b.linear("fc", f, 10).expect("fc");
    b.finish().expect("two_branch is valid")
}

/// A chain of `depth` equally-sized convolutions; useful for pipeline
/// scaling studies (each layer has identical work).
///
/// # Panics
///
/// Panics if `depth` is zero.
pub fn linear_chain(depth: usize) -> Graph {
    assert!(depth > 0, "chain depth must be positive");
    let mut b = GraphBuilder::new(format!("chain{depth}"));
    let mut cur = b.input("input", [8, 16, 16]);
    for i in 0..depth {
        cur = b
            .conv2d(format!("conv{i}"), cur, 8, (3, 3), (1, 1), (1, 1))
            .expect("chain conv");
    }
    b.finish().expect("chain is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    #[test]
    fn small_models_validate() {
        for g in [tiny_cnn(), tiny_mlp(), two_branch(), linear_chain(4)] {
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        }
    }

    #[test]
    fn two_branch_has_a_join() {
        let g = two_branch();
        assert!(g.nodes().iter().any(|n| matches!(n.op, Op::Eltwise(_))));
    }

    #[test]
    fn chain_depth_matches() {
        let g = linear_chain(7);
        assert_eq!(g.mvm_nodes().len(), 7);
    }
}
