//! ResNet family (He et al., 2016) — topologically complex benchmarks
//! with element-wise shortcut joins. `resnet18` is the paper benchmark;
//! `resnet34` (deeper basic blocks) and `resnet50` (bottleneck blocks)
//! exercise the compiler on deeper shortcut pipelines.

use crate::{Graph, GraphBuilder, NodeId};

/// Builds ResNet-18 with 1000 output classes.
///
/// Batch-norm nodes are explicit, matching what an ONNX export contains;
/// fold them with [`transform::normalize`](crate::transform::normalize)
/// before compilation.
pub fn resnet18() -> Graph {
    resnet_basic("resnet18", [2, 2, 2, 2])
}

/// Builds ResNet-34 (basic blocks, [3, 4, 6, 3]).
pub fn resnet34() -> Graph {
    resnet_basic("resnet34", [3, 4, 6, 3])
}

fn resnet_basic(name: &str, blocks: [usize; 4]) -> Graph {
    let mut b = GraphBuilder::new(name);
    let mut cur = stem(&mut b);

    let stages: [(usize, usize); 4] = [(64, 1), (128, 2), (256, 2), (512, 2)];
    for (si, (ch, first_stride)) in stages.into_iter().enumerate() {
        for blk in 0..blocks[si] {
            let stride = if blk == 0 { first_stride } else { 1 };
            cur = basic_block(&mut b, &format!("layer{}_{}", si + 1, blk), cur, ch, stride);
        }
    }

    head(&mut b, cur);
    b.finish().expect("resnet topology is a valid DAG")
}

/// Builds ResNet-50 (bottleneck blocks, [3, 4, 6, 3], expansion 4).
pub fn resnet50() -> Graph {
    let mut b = GraphBuilder::new("resnet50");
    let mut cur = stem(&mut b);

    let stages: [(usize, usize); 4] = [(64, 1), (128, 2), (256, 2), (512, 2)];
    let blocks = [3usize, 4, 6, 3];
    for (si, (ch, first_stride)) in stages.into_iter().enumerate() {
        for blk in 0..blocks[si] {
            let stride = if blk == 0 { first_stride } else { 1 };
            cur = bottleneck_block(&mut b, &format!("layer{}_{}", si + 1, blk), cur, ch, stride);
        }
    }

    head(&mut b, cur);
    b.finish().expect("resnet50 topology is a valid DAG")
}

/// Stem: 7x7/2 conv, BN, ReLU, 3x3/2 max pool.
fn stem(b: &mut GraphBuilder) -> NodeId {
    let x = b.input("input", [3, 224, 224]);
    let c1 = b
        .conv2d("conv1", x, 64, (7, 7), (2, 2), (3, 3))
        .expect("stem conv");
    let bn1 = b.batch_norm("bn1", c1).expect("bn1");
    let r1 = b.relu("relu1", bn1).expect("relu1");
    b.max_pool("maxpool", r1, (3, 3), (2, 2), (1, 1))
        .expect("stem pool")
}

/// Classifier head: GAP → flatten → 1000-way FC.
fn head(b: &mut GraphBuilder, cur: NodeId) {
    let gap = b.global_avg_pool("avgpool", cur).expect("gap");
    let flat = b.flatten("flatten", gap).expect("flatten");
    let _fc = b.linear("fc", flat, 1000).expect("fc");
}

/// The two-convolution residual block with identity or projection
/// shortcut.
fn basic_block(
    b: &mut GraphBuilder,
    name: &str,
    input: NodeId,
    out_ch: usize,
    stride: usize,
) -> NodeId {
    let c1 = b
        .conv2d(
            format!("{name}_conv1"),
            input,
            out_ch,
            (3, 3),
            (stride, stride),
            (1, 1),
        )
        .expect("block conv1");
    let bn1 = b.batch_norm(format!("{name}_bn1"), c1).expect("bn1");
    let r1 = b.relu(format!("{name}_relu1"), bn1).expect("relu1");
    let c2 = b
        .conv2d(format!("{name}_conv2"), r1, out_ch, (3, 3), (1, 1), (1, 1))
        .expect("block conv2");
    let bn2 = b.batch_norm(format!("{name}_bn2"), c2).expect("bn2");

    let shortcut = if stride != 1 || b.shape(input).channels() != out_ch {
        // Projection shortcut: 1x1 conv with the block's stride.
        let ds = b
            .conv2d(
                format!("{name}_downsample"),
                input,
                out_ch,
                (1, 1),
                (stride, stride),
                (0, 0),
            )
            .expect("downsample conv");
        b.batch_norm(format!("{name}_downsample_bn"), ds)
            .expect("downsample bn")
    } else {
        input
    };

    let add = b
        .eltwise_add(format!("{name}_add"), bn2, shortcut)
        .expect("shapes match by construction");
    b.relu(format!("{name}_relu2"), add).expect("relu2")
}

/// The 1x1 → 3x3 → 1x1 bottleneck with expansion 4 (resnet50-style).
fn bottleneck_block(
    b: &mut GraphBuilder,
    name: &str,
    input: NodeId,
    mid_ch: usize,
    stride: usize,
) -> NodeId {
    let out_ch = mid_ch * 4;
    let c1 = b
        .conv2d(
            format!("{name}_conv1"),
            input,
            mid_ch,
            (1, 1),
            (1, 1),
            (0, 0),
        )
        .expect("bottleneck conv1");
    let bn1 = b.batch_norm(format!("{name}_bn1"), c1).expect("bn1");
    let r1 = b.relu(format!("{name}_relu1"), bn1).expect("relu1");
    let c2 = b
        .conv2d(
            format!("{name}_conv2"),
            r1,
            mid_ch,
            (3, 3),
            (stride, stride),
            (1, 1),
        )
        .expect("bottleneck conv2");
    let bn2 = b.batch_norm(format!("{name}_bn2"), c2).expect("bn2");
    let r2 = b.relu(format!("{name}_relu2"), bn2).expect("relu2");
    let c3 = b
        .conv2d(format!("{name}_conv3"), r2, out_ch, (1, 1), (1, 1), (0, 0))
        .expect("bottleneck conv3");
    let bn3 = b.batch_norm(format!("{name}_bn3"), c3).expect("bn3");

    let shortcut = if stride != 1 || b.shape(input).channels() != out_ch {
        let ds = b
            .conv2d(
                format!("{name}_downsample"),
                input,
                out_ch,
                (1, 1),
                (stride, stride),
                (0, 0),
            )
            .expect("downsample conv");
        b.batch_norm(format!("{name}_downsample_bn"), ds)
            .expect("downsample bn")
    } else {
        input
    };

    let add = b
        .eltwise_add(format!("{name}_add"), bn3, shortcut)
        .expect("shapes match by construction");
    b.relu(format!("{name}_relu3"), add).expect("relu3")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Shape};

    #[test]
    fn resnet18_has_20_convs() {
        // 1 stem + 16 block convs + 3 projection shortcuts.
        let g = resnet18();
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Conv2d(_)))
            .count();
        assert_eq!(convs, 20);
    }

    #[test]
    fn resnet18_has_8_shortcut_adds() {
        let g = resnet18();
        let adds = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Eltwise(_)))
            .count();
        assert_eq!(adds, 8);
    }

    #[test]
    fn stage_extents_follow_the_paper_network() {
        let g = resnet18();
        assert_eq!(
            g.node_by_name("layer1_1_relu2").unwrap().output_shape,
            Shape::chw(64, 56, 56)
        );
        assert_eq!(
            g.node_by_name("layer4_1_relu2").unwrap().output_shape,
            Shape::chw(512, 7, 7)
        );
    }

    #[test]
    fn projection_blocks_exist_only_on_stage_transitions() {
        let g = resnet18();
        let downsamples = g
            .nodes()
            .iter()
            .filter(|n| n.name.contains("downsample") && matches!(n.op, Op::Conv2d(_)))
            .count();
        assert_eq!(downsamples, 3);
    }

    #[test]
    fn resnet34_has_36_convs() {
        // 1 stem + (3+4+6+3)*2 block convs + 3 projections.
        let g = resnet34();
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Conv2d(_)))
            .count();
        assert_eq!(convs, 36);
    }

    #[test]
    fn resnet50_has_53_convs_and_canonical_params() {
        // 1 stem + (3+4+6+3)*3 bottleneck convs + 4 projections.
        let g = resnet50();
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Conv2d(_)))
            .count();
        assert_eq!(convs, 53);
        // ~25.6M params published; weights only (no BN affine):
        let s = crate::GraphStats::of(&g);
        assert!(
            (23_000_000..27_000_000).contains(&s.params),
            "{} params",
            s.params
        );
        // Bottleneck output width: 2048 channels at 7x7.
        assert_eq!(
            g.node_by_name("layer4_2_relu3").unwrap().output_shape,
            crate::Shape::chw(2048, 7, 7)
        );
    }

    #[test]
    fn resnet50_first_stage_projects_despite_stride_one() {
        // layer1_0: stride 1 but 64 -> 256 channels forces a projection.
        let g = resnet50();
        assert!(g.node_by_name("layer1_0_downsample").is_some());
        assert!(g.node_by_name("layer1_1_downsample").is_none());
    }
}
