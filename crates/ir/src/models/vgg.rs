//! VGG-16 (Simonyan & Zisserman, 2015) — the paper's computationally
//! intensive benchmark.

use crate::{Graph, GraphBuilder, NodeId};

/// Builds VGG-16 with 1000 output classes (configuration "D": thirteen
/// 3×3 convolutions in five blocks, followed by three fully connected
/// layers).
pub fn vgg16() -> Graph {
    let mut b = GraphBuilder::new("vgg16");
    let x = b.input("input", [3, 224, 224]);

    let mut cur = x;
    let blocks: [(usize, usize); 5] = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];
    for (bi, (convs, ch)) in blocks.into_iter().enumerate() {
        for ci in 0..convs {
            cur = conv_relu(&mut b, &format!("conv{}_{}", bi + 1, ci + 1), cur, ch);
        }
        cur = b
            .max_pool(format!("pool{}", bi + 1), cur, (2, 2), (2, 2), (0, 0))
            .expect("vgg16 pooling dims are valid");
    }

    let flat = b.flatten("flatten", cur).expect("flatten is infallible");
    let fc6 = b.linear("fc6", flat, 4096).expect("fc6");
    let r6 = b.relu("relu6", fc6).expect("relu6");
    let d6 = b.dropout("drop6", r6).expect("drop6");
    let fc7 = b.linear("fc7", d6, 4096).expect("fc7");
    let r7 = b.relu("relu7", fc7).expect("relu7");
    let d7 = b.dropout("drop7", r7).expect("drop7");
    let fc8 = b.linear("fc8", d7, 1000).expect("fc8");
    let _ = b.softmax("prob", fc8).expect("softmax");

    b.finish().expect("vgg16 topology is a valid DAG")
}

fn conv_relu(b: &mut GraphBuilder, name: &str, input: NodeId, out_ch: usize) -> NodeId {
    let c = b
        .conv2d(name, input, out_ch, (3, 3), (1, 1), (1, 1))
        .expect("vgg16 conv dims are valid");
    b.relu(format!("{name}_relu"), c).expect("relu name unique")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Shape};

    #[test]
    fn vgg16_has_13_convs_and_3_fcs() {
        let g = vgg16();
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Conv2d(_)))
            .count();
        let fcs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Linear(_)))
            .count();
        assert_eq!(convs, 13);
        assert_eq!(fcs, 3);
    }

    #[test]
    fn vgg16_feature_extent_shrinks_to_7x7() {
        let g = vgg16();
        let pool5 = g.node_by_name("pool5").unwrap();
        assert_eq!(pool5.output_shape, Shape::chw(512, 7, 7));
    }

    #[test]
    fn vgg16_output_is_1000_way() {
        let g = vgg16();
        let out: Vec<_> = g.outputs().collect();
        assert_eq!(out.len(), 1);
        assert_eq!(g.node(out[0]).output_shape, Shape::flat(1000));
    }
}
