//! A two-block transformer encoder with a symbolic sequence length.
//!
//! The topology is a miniature BERT encoder stack (hidden 128, FFN 256):
//! per block a q/k/v projection triple, the raw
//! `Bmm(transpose) → Softmax → Bmm` scaled-dot-product pattern (fused
//! into one [`Op::Attention`](crate::Op::Attention) node by
//! [`transform::fuse_attention`](crate::transform::fuse_attention)
//! during normalization), an output projection, and a GELU feed-forward
//! pair, each sub-block closed by a residual add and layer norm.
//!
//! The input is `[seq, 128]` with `seq` symbolic: the graph only becomes
//! compilable after the session binds a sequence length
//! (`CompileOptions::with_seq_len` / `--seq-len`).

use crate::{Graph, GraphBuilder, NodeId};

/// Hidden width of the encoder.
const HIDDEN: usize = 128;
/// Feed-forward inner width.
const FFN: usize = 256;
/// Encoder block count.
const BLOCKS: usize = 2;

/// Builds the `tiny_bert` encoder stack.
pub fn tiny_bert() -> Graph {
    let mut b = GraphBuilder::new("tiny_bert");
    let mut t = b.input_seq("tokens", HIDDEN);
    for i in 0..BLOCKS {
        t = encoder_block(&mut b, t, i);
    }
    b.finish().expect("tiny_bert topology is valid")
}

fn encoder_block(b: &mut GraphBuilder, t: NodeId, i: usize) -> NodeId {
    let n = |stem: &str| format!("b{i}_{stem}");
    let e = "tiny_bert topology is valid";
    let q = b.matmul(n("q"), t, HIDDEN).expect(e);
    let k = b.matmul(n("k"), t, HIDDEN).expect(e);
    let v = b.matmul(n("v"), t, HIDDEN).expect(e);
    let scores = b.bmm(n("scores"), q, k, true, true).expect(e);
    let probs = b.softmax(n("probs"), scores).expect(e);
    let ctx = b.bmm(n("ctx"), probs, v, false, false).expect(e);
    let proj = b.matmul(n("proj"), ctx, HIDDEN).expect(e);
    let res1 = b.eltwise_add(n("res1"), proj, t).expect(e);
    let ln1 = b.layer_norm(n("ln1"), res1).expect(e);
    let ff1 = b.matmul(n("ff1"), ln1, FFN).expect(e);
    let act = b.gelu(n("gelu"), ff1).expect(e);
    let ff2 = b.matmul(n("ff2"), act, HIDDEN).expect(e);
    let res2 = b.eltwise_add(n("res2"), ff2, ln1).expect(e);
    b.layer_norm(n("ln2"), res2).expect(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{bind_seq_len, normalize};
    use crate::{Op, Shape};

    #[test]
    fn tiny_bert_builds_symbolic() {
        let g = tiny_bert();
        g.validate().unwrap();
        assert!(g.has_symbolic_dims());
        // 1 input + 14 nodes per block.
        assert_eq!(g.node_count(), 1 + 14 * BLOCKS);
        // 6 weight-stationary matmuls per block.
        assert_eq!(g.mvm_nodes().len(), 6 * BLOCKS);
    }

    #[test]
    fn normalize_fuses_both_attention_blocks() {
        let g = bind_seq_len(&tiny_bert(), 64).unwrap();
        let n = normalize(&g).unwrap();
        let attention = n
            .nodes()
            .iter()
            .filter(|nd| matches!(nd.op, Op::Attention(_)))
            .count();
        assert_eq!(attention, BLOCKS);
        assert!(!n.nodes().iter().any(|nd| matches!(nd.op, Op::Bmm(_))));
        assert!(!n.nodes().iter().any(|nd| matches!(nd.op, Op::Softmax)));
    }

    #[test]
    fn bound_output_shape_tracks_seq_len() {
        for seq in [16usize, 64] {
            let g = bind_seq_len(&tiny_bert(), seq).unwrap();
            let out: Vec<_> = g.outputs().collect();
            assert_eq!(out.len(), 1);
            assert_eq!(g.node(out[0]).output_shape, Shape::new([seq, HIDDEN]));
        }
    }
}
