use std::fmt;

/// Errors produced while constructing or validating a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A node references an input id that does not exist in the graph.
    UnknownNode {
        /// The offending id value.
        id: usize,
    },
    /// A node name was used twice within the same graph.
    DuplicateName {
        /// The duplicated node name.
        name: String,
    },
    /// An operator received an input whose shape it cannot accept.
    ShapeMismatch {
        /// Node name where the mismatch was detected.
        node: String,
        /// Human-readable description of the expected/actual shapes.
        detail: String,
    },
    /// An operator received the wrong number of inputs.
    ArityMismatch {
        /// Node name where the mismatch was detected.
        node: String,
        /// Number of inputs expected by the operator.
        expected: usize,
        /// Number of inputs actually wired.
        actual: usize,
    },
    /// The graph contains a cycle and therefore is not a valid DNN DAG.
    CyclicGraph,
    /// The graph has no input node.
    MissingInput,
    /// An attribute value is out of its valid domain (e.g. zero-sized
    /// kernel or stride).
    InvalidAttribute {
        /// Node name carrying the attribute.
        node: String,
        /// Description of the invalid attribute.
        detail: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownNode { id } => write!(f, "unknown node id {id}"),
            IrError::DuplicateName { name } => write!(f, "duplicate node name `{name}`"),
            IrError::ShapeMismatch { node, detail } => {
                write!(f, "shape mismatch at node `{node}`: {detail}")
            }
            IrError::ArityMismatch {
                node,
                expected,
                actual,
            } => write!(
                f,
                "node `{node}` expects {expected} input(s) but received {actual}"
            ),
            IrError::CyclicGraph => write!(f, "graph contains a cycle"),
            IrError::MissingInput => write!(f, "graph has no input node"),
            IrError::InvalidAttribute { node, detail } => {
                write!(f, "invalid attribute at node `{node}`: {detail}")
            }
        }
    }
}

impl std::error::Error for IrError {}
