//! The DNN graph: a DAG of operator nodes with resolved shapes.

use crate::{IrError, Op, Shape};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Identifier of a node within one [`Graph`].
///
/// Ids are dense indices assigned in insertion order; they are stable for
/// the lifetime of the graph (removal passes produce a *new* graph).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One operator instance in the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Dense id of this node.
    pub id: NodeId,
    /// Unique human-readable name (e.g. `conv1_1`).
    pub name: String,
    /// The operator and its attributes.
    pub op: Op,
    /// Data predecessors, in operator-argument order.
    pub inputs: Vec<NodeId>,
    /// Resolved output shape.
    pub output_shape: Shape,
}

/// A directed acyclic graph of DNN operators with resolved shapes.
///
/// Construct via [`GraphBuilder`](crate::GraphBuilder); the builder
/// performs shape inference and validation so that every `Graph` in
/// circulation satisfies the invariants checked by [`Graph::validate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(from = "GraphData", into = "GraphData")]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
    /// successors[i] lists nodes consuming the output of node i.
    successors: Vec<Vec<NodeId>>,
}

/// Serialized form of [`Graph`]: the successor index is derived data and
/// is rebuilt on deserialization.
#[derive(Serialize, Deserialize)]
struct GraphData {
    name: String,
    nodes: Vec<Node>,
}

impl From<GraphData> for Graph {
    fn from(d: GraphData) -> Self {
        let mut g = Graph {
            name: d.name,
            nodes: d.nodes,
            successors: Vec::new(),
        };
        g.rebuild_successors();
        g
    }
}

impl From<Graph> for GraphData {
    fn from(g: Graph) -> Self {
        GraphData {
            name: g.name,
            nodes: g.nodes,
        }
    }
}

impl Graph {
    /// Assembles a graph from parts, validating structure and rebuilding
    /// the successor index.
    ///
    /// # Errors
    ///
    /// Returns an error if node ids are not dense insertion-order ids, if
    /// names are duplicated, if any input reference is out of range, or
    /// if the graph is cyclic or lacks an input node.
    pub fn from_nodes(name: impl Into<String>, nodes: Vec<Node>) -> Result<Self, IrError> {
        let mut g = Graph {
            name: name.into(),
            nodes,
            successors: Vec::new(),
        };
        g.rebuild_successors();
        g.validate()?;
        Ok(g)
    }

    /// Graph name (typically the model name, e.g. `vgg16`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes, including the input node(s).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All nodes in insertion (id) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks a node up by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<&Node> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Ids of the graph input nodes.
    pub fn inputs(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Input { .. }))
            .map(|n| n.id)
    }

    /// Ids of nodes with no consumers (the network outputs).
    pub fn outputs(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.successors
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_empty())
            .map(|(i, _)| NodeId(i))
    }

    /// Consumers of `id`'s output.
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.successors[id.0]
    }

    /// Producers feeding `id`.
    pub fn predecessors(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).inputs
    }

    /// Nodes in a topological order (inputs first).
    ///
    /// The order is deterministic: among ready nodes the one with the
    /// smallest id is emitted first, so compilation results are
    /// reproducible run to run.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut indegree: Vec<usize> = self.nodes.iter().map(|n| n.inputs.len()).collect();
        // A BinaryHeap<Reverse<_>> would also work; with the dense-id
        // invariant a sorted ready queue is simpler and fast enough.
        let mut ready: VecDeque<NodeId> = self
            .nodes
            .iter()
            .filter(|n| n.inputs.is_empty())
            .map(|n| n.id)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(id) = ready.pop_front() {
            order.push(id);
            for &succ in self.successors(id) {
                indegree[succ.0] -= 1;
                if indegree[succ.0] == 0 {
                    // Insert keeping the queue sorted by id for determinism.
                    let pos = ready.iter().position(|&r| r.0 > succ.0);
                    match pos {
                        Some(p) => ready.insert(p, succ),
                        None => ready.push_back(succ),
                    }
                }
            }
        }
        order
    }

    /// Checks all structural invariants.
    ///
    /// # Errors
    ///
    /// * [`IrError::UnknownNode`] — an input reference is out of range or
    ///   ids are not dense insertion-order indices.
    /// * [`IrError::DuplicateName`] — two nodes share a name.
    /// * [`IrError::ArityMismatch`] — operator input count is wrong.
    /// * [`IrError::CyclicGraph`] — a cycle exists.
    /// * [`IrError::MissingInput`] — no [`Op::Input`] node.
    pub fn validate(&self) -> Result<(), IrError> {
        let mut names = HashSet::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.id.0 != i {
                return Err(IrError::UnknownNode { id: n.id.0 });
            }
            if !names.insert(n.name.as_str()) {
                return Err(IrError::DuplicateName {
                    name: n.name.clone(),
                });
            }
            for inp in &n.inputs {
                if inp.0 >= self.nodes.len() {
                    return Err(IrError::UnknownNode { id: inp.0 });
                }
            }
            match n.op.arity() {
                Some(k) if n.inputs.len() != k => {
                    return Err(IrError::ArityMismatch {
                        node: n.name.clone(),
                        expected: k,
                        actual: n.inputs.len(),
                    })
                }
                None if n.inputs.len() < 2 => {
                    return Err(IrError::ArityMismatch {
                        node: n.name.clone(),
                        expected: 2,
                        actual: n.inputs.len(),
                    })
                }
                _ => {}
            }
        }
        if self.topo_order().len() != self.nodes.len() {
            return Err(IrError::CyclicGraph);
        }
        if self.inputs().next().is_none() {
            return Err(IrError::MissingInput);
        }
        Ok(())
    }

    /// `true` while any node's output shape still carries the symbolic
    /// sequence length (the graph must be bound via
    /// [`transform::bind_seq_len`](crate::transform::bind_seq_len) before
    /// compilation).
    pub fn has_symbolic_dims(&self) -> bool {
        self.nodes.iter().any(|n| n.output_shape.is_symbolic())
    }

    /// Ids of convolution / fully connected nodes (the MVM producers that
    /// undergo partitioning and replication), in topological order.
    pub fn mvm_nodes(&self) -> Vec<NodeId> {
        self.topo_order()
            .into_iter()
            .filter(|&id| self.node(id).op.is_mvm())
            .collect()
    }

    /// For node `id`, returns the nearest MVM (conv/fc) ancestors reached
    /// by walking producer edges through non-MVM nodes.
    ///
    /// The LL scheduler uses this to find the *provider* conv layer(s) of
    /// each node when deriving waiting percentages, and the scheduler
    /// assigns non-MVM work to cores following the replication of the
    /// predecessor conv layer (Section IV-D.2).
    pub fn mvm_providers(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = HashSet::new();
        let mut stack: Vec<NodeId> = self.predecessors(id).to_vec();
        let mut providers = Vec::new();
        while let Some(p) = stack.pop() {
            if !seen.insert(p) {
                continue;
            }
            if self.node(p).op.is_mvm() {
                providers.push(p);
            } else {
                stack.extend(self.predecessors(p).iter().copied());
            }
        }
        providers.sort();
        providers
    }

    /// Rebuilds the successor adjacency (called after deserialization and
    /// by `from_nodes`).
    pub(crate) fn rebuild_successors(&mut self) {
        let mut succ = vec![Vec::new(); self.nodes.len()];
        for n in &self.nodes {
            for &inp in &n.inputs {
                if inp.0 < succ.len() {
                    succ[inp.0].push(n.id);
                }
            }
        }
        self.successors = succ;
    }

    /// Returns a mapping from node name to id.
    pub fn name_index(&self) -> HashMap<&str, NodeId> {
        self.nodes.iter().map(|n| (n.name.as_str(), n.id)).collect()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph {} ({} nodes)", self.name, self.nodes.len())?;
        for n in &self.nodes {
            write!(f, "  {} {} [{}] <-", n.id, n.name, n.op)?;
            for i in &n.inputs {
                write!(f, " {i}")?;
            }
            writeln!(f, "  -> {}", n.output_shape)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> Graph {
        // input -> conv_a -> {conv_b, conv_c} -> add -> out
        let mut b = GraphBuilder::new("diamond");
        let x = b.input("x", [8, 16, 16]);
        let a = b.conv2d("a", x, 8, (3, 3), (1, 1), (1, 1)).unwrap();
        let l = b.conv2d("b", a, 8, (3, 3), (1, 1), (1, 1)).unwrap();
        let r = b.conv2d("c", a, 8, (1, 1), (1, 1), (0, 0)).unwrap();
        let _y = b.eltwise_add("add", l, r).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topo_order();
        assert_eq!(order.len(), g.node_count());
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in g.nodes() {
            for &p in &n.inputs {
                assert!(pos[&p] < pos[&n.id], "{p} must precede {}", n.id);
            }
        }
    }

    #[test]
    fn successors_are_inverse_of_predecessors() {
        let g = diamond();
        for n in g.nodes() {
            for &p in g.predecessors(n.id) {
                assert!(g.successors(p).contains(&n.id));
            }
        }
    }

    #[test]
    fn outputs_have_no_successors() {
        let g = diamond();
        let outs: Vec<_> = g.outputs().collect();
        assert_eq!(outs.len(), 1);
        assert_eq!(g.node(outs[0]).name, "add");
    }

    #[test]
    fn mvm_providers_skip_non_mvm_nodes() {
        let mut b = GraphBuilder::new("g");
        let x = b.input("x", [4, 8, 8]);
        let c1 = b.conv2d("c1", x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let r = b.relu("r", c1).unwrap();
        let p = b.max_pool("p", r, (2, 2), (2, 2), (0, 0)).unwrap();
        let c2 = b.conv2d("c2", p, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.mvm_providers(c2), vec![c1]);
        // The first conv's provider walk reaches the input and finds none.
        assert!(g.mvm_providers(c1).is_empty());
        let _ = p;
    }

    #[test]
    fn validate_rejects_cycles() {
        let g = diamond();
        let mut nodes = g.nodes().to_vec();
        // Introduce a back edge: a (id 1) now also consumes add (id 4).
        nodes[1].inputs.push(NodeId(4));
        // Fix arity by swapping the op for an eltwise (2 inputs).
        nodes[1].op = Op::Eltwise(crate::EltwiseKind::Add);
        let err = Graph::from_nodes("bad", nodes).unwrap_err();
        assert_eq!(err, IrError::CyclicGraph);
    }

    #[test]
    fn validate_rejects_duplicate_names() {
        let g = diamond();
        let mut nodes = g.nodes().to_vec();
        nodes[2].name = "a".into();
        let err = Graph::from_nodes("bad", nodes).unwrap_err();
        assert!(matches!(err, IrError::DuplicateName { .. }));
    }

    #[test]
    fn serde_round_trip_preserves_structure() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let g2: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, g2);
        // Derived successor index must have been rebuilt.
        assert_eq!(g2.successors(NodeId(1)).len(), 2);
    }
}
