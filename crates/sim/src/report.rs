//! Simulation results: the quantities behind every figure of the
//! paper's evaluation.

use pimcomp_arch::PipelineMode;
use serde::{Deserialize, Serialize};

/// Energy breakdown in picojoules (Fig. 9's dynamic/leakage split plus
/// per-component detail).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EnergyReport {
    /// Crossbar MVM energy.
    pub mvm_pj: f64,
    /// VFU energy.
    pub vfu_pj: f64,
    /// Local + global memory access energy.
    pub memory_pj: f64,
    /// NoC transfer energy.
    pub noc_pj: f64,
    /// Crossbar write energy of `weight_reload` epochs (zero for
    /// ordinary compilations and single-epoch reload plans).
    pub reload_pj: f64,
    /// Total leakage (static) energy.
    pub leakage_pj: f64,
}

impl EnergyReport {
    /// Total dynamic energy.
    pub fn dynamic_pj(&self) -> f64 {
        self.mvm_pj + self.vfu_pj + self.memory_pj + self.noc_pj + self.reload_pj
    }

    /// Total energy.
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj() + self.leakage_pj
    }
}

/// Local/global memory statistics (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct MemoryReport {
    /// Mean local-memory working set across active cores, bytes.
    pub avg_local_bytes: f64,
    /// Peak local-memory working set, bytes.
    pub peak_local_bytes: usize,
    /// Global-memory traffic per inference, bytes (loads + stores +
    /// spills).
    pub global_traffic_bytes: usize,
}

/// Full result of one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Model name.
    pub model: String,
    /// Compiler that produced the schedule (`PIMCOMP` / `PUMA-like`).
    pub compiler: String,
    /// Pipeline mode simulated.
    pub mode: PipelineMode,
    /// HT: the steady-state pipeline interval (bottleneck core's busy
    /// time per inference). LL: the single-inference latency.
    pub total_cycles: u64,
    /// HT steady-state throughput in inferences/second.
    pub throughput_inf_per_s: f64,
    /// Latency in microseconds (meaningful in LL; in HT this is the
    /// same bottleneck interval expressed in time).
    pub latency_us: f64,
    /// MVM operations issued (one per AG per window).
    pub mvm_ops: u64,
    /// Crossbar-level MVM activations (MVM ops × crossbars per AG).
    pub crossbar_mvms: u64,
    /// VFU element-operations executed.
    pub vfu_elems: u64,
    /// Bytes moved between cores.
    pub noc_bytes: u64,
    /// Bytes moved through global memory.
    pub global_bytes: u64,
    /// Energy breakdown.
    pub energy: EnergyReport,
    /// Memory statistics.
    pub memory: MemoryReport,
    /// `weight_reload`: mapping epochs executed (0 when the model was
    /// not compiled in reload mode; 1 means it fit its budget).
    pub reload_epochs: usize,
    /// `weight_reload`: AGs rewritten per inference round.
    pub reload_ags_rewritten: usize,
    /// `weight_reload`: NVM cells written per inference round.
    pub reload_cells_rewritten: u64,
    /// `weight_reload`: cycles stalled at reload barriers (already
    /// included in `total_cycles`).
    pub reload_stall_cycles: u64,
    /// Cores that did any work.
    pub active_cores: usize,
    /// Per-core busy cycles (bottleneck analysis).
    pub per_core_busy: Vec<u64>,
}

impl SimReport {
    /// Inferences per second for a pipeline interval of `cycles` at
    /// `clock_ghz`.
    pub fn throughput_from_cycles(cycles: u64, clock_ghz: f64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        clock_ghz * 1e9 / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_totals_add_up() {
        let e = EnergyReport {
            mvm_pj: 10.0,
            vfu_pj: 5.0,
            memory_pj: 3.0,
            noc_pj: 2.0,
            reload_pj: 4.0,
            leakage_pj: 20.0,
        };
        assert_eq!(e.dynamic_pj(), 24.0);
        assert_eq!(e.total_pj(), 44.0);
    }

    #[test]
    fn throughput_conversion() {
        // 1e6 cycles at 1 GHz = 1 ms -> 1000 inf/s.
        assert_eq!(SimReport::throughput_from_cycles(1_000_000, 1.0), 1000.0);
        assert_eq!(SimReport::throughput_from_cycles(0, 1.0), 0.0);
    }
}
