//! Shared-resource timing primitives used by both simulators.

/// A serially-shared bandwidth resource (global memory port, bus): FCFS
/// service, one request at a time.
#[derive(Debug, Clone, Default)]
pub struct BandwidthServer {
    free_at: u64,
    busy_cycles: u64,
}

impl BandwidthServer {
    /// Creates an idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `cycles` of service no earlier than `now`; returns the
    /// completion time.
    pub fn acquire(&mut self, now: u64, cycles: u64) -> u64 {
        let start = self.free_at.max(now);
        self.free_at = start + cycles;
        self.busy_cycles += cycles;
        self.free_at
    }

    /// Earliest time a new request could start.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Total cycles of service delivered.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

/// Tracks a core's activity span for leakage integration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ActivitySpan {
    first: Option<u64>,
    last: u64,
    busy: u64,
}

impl ActivitySpan {
    /// Records activity over `[start, end)`.
    pub fn record(&mut self, start: u64, end: u64) {
        if self.first.is_none() {
            self.first = Some(start);
        }
        self.first = Some(self.first.unwrap().min(start));
        self.last = self.last.max(end);
        self.busy += end.saturating_sub(start);
    }

    /// `true` if anything was recorded.
    pub fn is_active(&self) -> bool {
        self.first.is_some()
    }

    /// First-activity to last-activity span (0 when idle).
    pub fn span(&self) -> u64 {
        match self.first {
            Some(f) => self.last.saturating_sub(f),
            None => 0,
        }
    }

    /// End of the last recorded activity.
    pub fn last_end(&self) -> u64 {
        self.last
    }

    /// Sum of recorded busy intervals (may exceed span if overlapping
    /// units are recorded; used as a utilization indicator only).
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_server_serializes_fcfs() {
        let mut s = BandwidthServer::new();
        assert_eq!(s.acquire(0, 10), 10);
        // Second request waits for the first.
        assert_eq!(s.acquire(5, 10), 20);
        // Idle gap: starts at `now`.
        assert_eq!(s.acquire(100, 5), 105);
        assert_eq!(s.busy_cycles(), 25);
    }

    #[test]
    fn activity_span_tracks_extremes() {
        let mut a = ActivitySpan::default();
        assert!(!a.is_active());
        assert_eq!(a.span(), 0);
        a.record(10, 20);
        a.record(50, 60);
        a.record(5, 8);
        assert!(a.is_active());
        assert_eq!(a.span(), 55); // 60 - 5
        assert_eq!(a.last_end(), 60);
        assert_eq!(a.busy_cycles(), 23);
    }
}
