//! Event-driven high-throughput simulator.
//!
//! Executes the per-core round programs of an
//! [`HtSchedule`](pimcomp_core::HtSchedule), modelling:
//!
//! * **structural conflicts** — consecutive MVMs on the same AG
//!   serialize on its crossbars;
//! * **issue bandwidth** — MVM launches within a core are spaced by
//!   `T_interval` (the parallelism-degree knob);
//! * **global-memory contention** — one FCFS port shared by all cores,
//!   acquired strictly in event-time order (no future reservations, so
//!   a slow core cannot convoy the whole machine);
//! * **inter-core synchronization** — partial-sum accumulation at each
//!   replica's owner core blocks on NoC message arrival;
//! * **memory-policy spills** — working sets beyond local capacity add
//!   write-out/read-back traffic every round.
//!
//! In HT mode different layers process different inferences, so each
//! core's program is internally independent; the steady-state pipeline
//! interval is the bottleneck core's completion time, and throughput is
//! its reciprocal.

use crate::report::{EnergyReport, MemoryReport, SimReport};
use crate::resources::{ActivitySpan, BandwidthServer};
use crate::SimError;
use pimcomp_arch::{EnergyModel, NocModel};
use pimcomp_core::CompiledModel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-program execution phase.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Next round's load + MVMs + local adds still to run.
    Compute { round: usize },
    /// Local work of `round` done at `ready`; waiting for partials.
    AwaitPartials { round: usize, ready: u64 },
    /// Computation of `round` done at `at`; the result store is issued
    /// once simulated time reaches `at` (keeps the shared port causal).
    StorePending { round: usize, at: u64 },
    /// All rounds complete.
    Done,
}

/// Per-vec-task execution phase.
#[derive(Debug, Clone, Copy, PartialEq)]
enum VecPhase {
    NotStarted,
    StorePending { at: u64 },
    Done,
}

/// Runs the HT simulation for a compiled model.
pub(crate) fn run(
    compiled: &CompiledModel,
    energy_model: &EnergyModel,
) -> Result<SimReport, SimError> {
    let schedule = compiled
        .schedule
        .as_ht()
        .ok_or(SimError::WrongScheduleKind)?;
    let hw = &compiled.hw;
    let noc = NocModel::new(hw);
    let cores = hw.total_cores();
    let t_int = hw.issue_interval();
    let t_mvm = hw.mvm_latency;

    // Owner-program index: (core, mvm) -> program id, as a dense table
    // (the event loop probes it once per partial-sum send; a hash map
    // here costs a SipHash per probe for nothing).
    let mvm_stride = schedule
        .programs
        .iter()
        .map(|p| p.mvm + 1)
        .max()
        .unwrap_or(0);
    let mut prog_at: Vec<usize> = vec![usize::MAX; cores * mvm_stride];
    for (i, p) in schedule.programs.iter().enumerate() {
        prog_at[p.core * mvm_stride + p.mvm] = i;
    }

    let mut phase: Vec<Phase> = schedule
        .programs
        .iter()
        .map(|p| {
            if p.rounds == 0 {
                Phase::Done
            } else {
                Phase::Compute { round: 0 }
            }
        })
        .collect();
    let mut vec_phase = vec![VecPhase::NotStarted; schedule.vec_tasks.len()];

    // Partial-sum arrivals per owner program, indexed by round:
    // `partials[pid][round] = (count, latest)`. Senders may run many
    // rounds ahead of the owner, so the per-program table grows lazily
    // to the highest round touched; a consumed round is reset to (0, 0)
    // (indistinguishable from "never arrived", which is what the
    // `< recvs_per_round` checks below rely on).
    let mut partials: Vec<Vec<(usize, u64)>> = vec![Vec::new(); schedule.programs.len()];
    let partials_at = |partials: &Vec<Vec<(usize, u64)>>, pid: usize, round: usize| {
        partials[pid].get(round).copied().unwrap_or((0, 0))
    };

    // One global-memory port per chip (Table I: 4 MB global memory per
    // chip); cores contend within their chip.
    let mut global_mem: Vec<BandwidthServer> =
        (0..hw.chips).map(|_| BandwidthServer::new()).collect();
    let chip_of = |core: usize| core / hw.cores_per_chip;
    let mut issue_free = vec![0u64; cores];
    let mut vfu_free = vec![0u64; cores];
    let mut ag_free: Vec<u64> = vec![0; compiled.mapping.instances.len()];
    let mut spans: Vec<ActivitySpan> = vec![ActivitySpan::default(); cores];
    let mut cursor = vec![0usize; cores];

    // Counters.
    let mut mvm_ops = 0u64;
    let mut crossbar_mvms = 0u64;
    let mut vfu_elems = 0u64;
    let mut noc_bytes = 0u64;
    let mut noc_pj = 0f64;
    let mut global_bytes = 0u64;
    let mut local_bytes = 0u64;

    // Ready queue; cores with work start at t=0.
    let mut queue: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for core in 0..cores {
        if !schedule.per_core[core].is_empty() || !schedule.vec_per_core[core].is_empty() {
            queue.push(Reverse((0, core)));
        }
    }

    let spill = &compiled.memory.spill_bytes_per_round;
    let mut guard: u64 = 0;
    let guard_limit: u64 = 400_000_000;

    while let Some(Reverse((now, core))) = queue.pop() {
        guard += 1;
        if guard > guard_limit {
            return Err(SimError::Diverged {
                detail: "HT event budget exceeded".into(),
            });
        }

        let items = &schedule.per_core[core];
        let vecs = &schedule.vec_per_core[core];
        let total_items = items.len() + vecs.len();
        let mut ran = false;

        for step in 0..total_items {
            let pick = (cursor[core] + step) % total_items;
            if pick < items.len() {
                let pid = items[pick];
                let p = &schedule.programs[pid];
                match phase[pid] {
                    Phase::Done => continue,
                    Phase::StorePending { round, at } => {
                        if now < at {
                            continue; // an event at `at` is queued
                        }
                        let t_store = if p.store_bytes_per_round > 0 {
                            global_bytes += p.store_bytes_per_round as u64;
                            local_bytes += p.store_bytes_per_round as u64;
                            global_mem[chip_of(core)]
                                .acquire(now, hw.global_memory_cycles(p.store_bytes_per_round))
                        } else {
                            now
                        };
                        spans[core].record(now, t_store);
                        phase[pid] = if round + 1 >= p.rounds {
                            Phase::Done
                        } else {
                            Phase::Compute { round: round + 1 }
                        };
                        cursor[core] = (pick + 1) % total_items;
                        queue.push(Reverse((t_store.max(now + 1), core)));
                        ran = true;
                        break;
                    }
                    Phase::AwaitPartials { round, ready } => {
                        let got = partials_at(&partials, pid, round);
                        if got.0 < p.recvs_per_round {
                            continue; // message arrival re-queues us
                        }
                        // Remote adds + activation.
                        let start = ready.max(got.1).max(now);
                        let add_elems = (p.recvs_per_round + 1)
                            * compiled.partitioning.entry(p.mvm).weight_width
                            * schedule.batch;
                        let t_vfu = vfu_free[core].max(start) + hw.vfu_cycles(add_elems);
                        vfu_free[core] = t_vfu;
                        vfu_elems += add_elems as u64;
                        partials[pid][round] = (0, 0);
                        spans[core].record(start, t_vfu);
                        phase[pid] = Phase::StorePending { round, at: t_vfu };
                        cursor[core] = (pick + 1) % total_items;
                        queue.push(Reverse((t_vfu.max(now + 1), core)));
                        ran = true;
                        break;
                    }
                    Phase::Compute { round } => {
                        // 1. Load inputs (plus this core's spill share),
                        //    acquired at the current event time.
                        let spill_extra = 2 * spill[core] / items.len().max(1);
                        let load_b = p.load_bytes_per_round + spill_extra;
                        let t_load = if load_b > 0 {
                            global_bytes += load_b as u64;
                            local_bytes += load_b as u64;
                            global_mem[chip_of(core)].acquire(now, hw.global_memory_cycles(load_b))
                        } else {
                            now
                        };
                        // 2. MVMs: batch per AG, issued at T_interval
                        //    spacing, serialized per AG's crossbars.
                        let n = p.ag_instances.len();
                        let base = issue_free[core].max(t_load);
                        let mut t_mvm_end = base;
                        let mut k = 0u64;
                        for _b in 0..schedule.batch {
                            for &inst in &p.ag_instances {
                                let issue = base + k * t_int;
                                let start = issue.max(ag_free[inst]);
                                let end = start + t_mvm;
                                ag_free[inst] = end;
                                t_mvm_end = t_mvm_end.max(end);
                                k += 1;
                            }
                        }
                        issue_free[core] = base + k * t_int;
                        mvm_ops += (n * schedule.batch) as u64;
                        let xb = compiled.partitioning.entry(p.mvm).crossbars_per_ag as u64;
                        crossbar_mvms += (n * schedule.batch) as u64 * xb;
                        local_bytes += p.load_bytes_per_round as u64; // crossbar input reads

                        // 3. Local adds (owner's remote adds + act are
                        //    costed in the AwaitPartials phase).
                        let remote_elems = (p.recvs_per_round + usize::from(p.recvs_per_round > 0))
                            * compiled.partitioning.entry(p.mvm).weight_width
                            * schedule.batch;
                        let local_add_elems = p.vec_elems_per_round.saturating_sub(remote_elems);
                        let t_adds = if local_add_elems > 0 {
                            let t = vfu_free[core].max(t_mvm_end) + hw.vfu_cycles(local_add_elems);
                            vfu_free[core] = t;
                            vfu_elems += local_add_elems as u64;
                            t
                        } else {
                            t_mvm_end
                        };
                        spans[core].record(now, t_adds);

                        // 4. Push partials to owner cores.
                        for s in &p.sends_per_round {
                            let arr = t_adds + noc.transfer_cycles(core, s.to_core, s.bytes);
                            noc_bytes += s.bytes as u64;
                            noc_pj += noc.transfer_energy_pj(core, s.to_core, s.bytes);
                            let owner_pid = prog_at[s.to_core * mvm_stride + p.mvm];
                            if owner_pid != usize::MAX {
                                let table = &mut partials[owner_pid];
                                if table.len() <= round {
                                    table.resize(round + 1, (0, 0));
                                }
                                let e = &mut table[round];
                                e.0 += 1;
                                e.1 = e.1.max(arr);
                                queue.push(Reverse((arr, s.to_core)));
                            }
                        }

                        // 5. Owner waits for partials; non-owners (and
                        //    ownerless rounds) go straight to the store.
                        phase[pid] = if p.recvs_per_round > 0 {
                            Phase::AwaitPartials {
                                round,
                                ready: t_adds,
                            }
                        } else {
                            Phase::StorePending { round, at: t_adds }
                        };
                        cursor[core] = (pick + 1) % total_items;
                        // The program's own chain resumes at t_adds...
                        queue.push(Reverse((t_adds.max(now + 1), core)));
                        // ...but the control unit is free to issue the
                        // next program's MVMs as soon as the issue
                        // bandwidth clears — crossbars of different
                        // programs crunch concurrently (Fig. 5's f(n)).
                        queue.push(Reverse((issue_free[core].max(now + 1), core)));
                        ran = true;
                        break;
                    }
                }
            } else {
                let vid = vecs[pick - items.len()];
                let t = &schedule.vec_tasks[vid];
                match vec_phase[vid] {
                    VecPhase::Done => continue,
                    VecPhase::StorePending { at } => {
                        if now < at {
                            continue;
                        }
                        let t_store = if t.store_bytes > 0 {
                            global_bytes += t.store_bytes as u64;
                            local_bytes += t.store_bytes as u64;
                            global_mem[chip_of(core)]
                                .acquire(now, hw.global_memory_cycles(t.store_bytes))
                        } else {
                            now
                        };
                        vec_phase[vid] = VecPhase::Done;
                        spans[core].record(now, t_store);
                        cursor[core] = (pick + 1) % total_items;
                        queue.push(Reverse((t_store.max(now + 1), core)));
                        ran = true;
                        break;
                    }
                    VecPhase::NotStarted => {
                        let t_load = if t.load_bytes > 0 {
                            global_bytes += t.load_bytes as u64;
                            local_bytes += t.load_bytes as u64;
                            global_mem[chip_of(core)]
                                .acquire(now, hw.global_memory_cycles(t.load_bytes))
                        } else {
                            now
                        };
                        let t_vfu = vfu_free[core].max(t_load) + hw.vfu_cycles(t.elems);
                        vfu_free[core] = t_vfu;
                        vfu_elems += t.elems as u64;
                        vec_phase[vid] = VecPhase::StorePending { at: t_vfu };
                        spans[core].record(now, t_vfu);
                        cursor[core] = (pick + 1) % total_items;
                        queue.push(Reverse((t_vfu.max(now + 1), core)));
                        // The VFU work runs on its own unit; the core
                        // may continue with other programs meanwhile.
                        queue.push(Reverse((t_load.max(now + 1), core)));
                        ran = true;
                        break;
                    }
                }
            }
        }

        if !ran {
            // Everything done or blocked; blocked programs are woken by
            // message arrivals or their own scheduled store events.
            let mut wake_at: Option<u64> = None;
            for &pid in items {
                match phase[pid] {
                    Phase::AwaitPartials { round, ready } => {
                        let p = &schedule.programs[pid];
                        let (cnt, arr) = partials_at(&partials, pid, round);
                        if cnt >= p.recvs_per_round {
                            let t = arr.max(ready).max(now + 1);
                            wake_at = Some(wake_at.map_or(t, |w: u64| w.min(t)));
                        }
                    }
                    Phase::StorePending { at, .. } if at > now => {
                        wake_at = Some(wake_at.map_or(at, |w: u64| w.min(at)));
                    }
                    _ => {}
                }
            }
            for &vid in vecs {
                if let VecPhase::StorePending { at } = vec_phase[vid] {
                    if at > now {
                        wake_at = Some(wake_at.map_or(at, |w: u64| w.min(at)));
                    }
                }
            }
            if let Some(t) = wake_at {
                queue.push(Reverse((t, core)));
            }
        }
    }

    // Verify completion (a stuck owner would show up here).
    for (pid, st) in phase.iter().enumerate() {
        if *st != Phase::Done {
            return Err(SimError::Deadlock {
                detail: format!(
                    "program {pid} (node {}, core {}) did not finish: {:?}",
                    schedule.programs[pid].mvm, schedule.programs[pid].core, st
                ),
            });
        }
    }
    for (vid, st) in vec_phase.iter().enumerate() {
        if *st != VecPhase::Done {
            return Err(SimError::Deadlock {
                detail: format!("vec task {vid} did not finish: {st:?}"),
            });
        }
    }

    let per_core_busy: Vec<u64> = spans.iter().map(|s| s.last_end()).collect();
    let pipeline_interval = per_core_busy.iter().copied().max().unwrap_or(0);
    let active_cores = spans.iter().filter(|s| s.is_active()).count();

    // Energy.
    let mut energy = EnergyReport {
        mvm_pj: crossbar_mvms as f64 * energy_model.mvm_pj_per_crossbar,
        vfu_pj: vfu_elems as f64 * energy_model.vfu_pj_per_element,
        memory_pj: global_bytes as f64 * energy_model.global_mem_pj_per_byte
            + local_bytes as f64 * energy_model.local_mem_pj_per_byte,
        noc_pj,
        reload_pj: 0.0,
        leakage_pj: 0.0,
    };
    // Leakage: each active core leaks over its own activity span (in HT
    // an early-finishing core powers down); global memory and routers
    // leak over the whole makespan.
    let mut leak = 0.0;
    for s in &spans {
        if s.is_active() {
            leak += energy_model.leakage_pj(
                energy_model.leakage.core_mw + energy_model.leakage.router_mw,
                s.span(),
            );
        }
    }
    leak += energy_model.leakage_pj(
        energy_model.leakage.global_memory_mw * hw.chips as f64,
        pipeline_interval,
    );
    energy.leakage_pj = leak;

    // `weight_reload` epochs: the per-inference round reprograms the
    // time-multiplexed crossbars at each epoch barrier, serializing the
    // pipeline — the write stalls stretch the steady-state interval and
    // the cell writes add dynamic energy (both from the compiled
    // reload schedule; no event-level modeling is needed because every
    // core stalls at the barrier together).
    let reload = compiled.reload.as_ref();
    let reload_stall_cycles = reload.map_or(0, |p| p.total_write_cycles);
    let total_cycles = pipeline_interval + reload_stall_cycles;
    energy.reload_pj = reload.map_or(0.0, |p| p.total_write_pj);

    Ok(SimReport {
        model: compiled.graph.name().to_string(),
        compiler: compiled.report.compiler.clone(),
        mode: compiled.mode,
        total_cycles,
        throughput_inf_per_s: SimReport::throughput_from_cycles(total_cycles, hw.clock_ghz),
        latency_us: total_cycles as f64 / (hw.clock_ghz * 1000.0),
        mvm_ops,
        crossbar_mvms,
        vfu_elems,
        noc_bytes,
        global_bytes,
        energy,
        memory: MemoryReport {
            avg_local_bytes: compiled.memory.avg_bytes,
            peak_local_bytes: compiled.memory.peak_bytes,
            global_traffic_bytes: global_bytes as usize,
        },
        reload_epochs: reload.map_or(0, |p| p.epoch_count()),
        reload_ags_rewritten: reload.map_or(0, |p| p.total_ags_written),
        reload_cells_rewritten: reload.map_or(0, |p| p.total_cells_written),
        reload_stall_cycles,
        active_cores,
        per_core_busy,
    })
}
