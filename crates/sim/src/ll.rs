//! Event-driven low-latency simulator.
//!
//! Executes the streaming pipeline of an
//! [`LlSchedule`](pimcomp_core::LlSchedule) at sliding-window
//! granularity: a consumer window starts once the receptive-window
//! prefix `(rd, cd)` of every provider is complete (paper §IV-D.2).
//! Modelled effects:
//!
//! * per-core MVM issue spacing (`T_interval`, the parallelism degree);
//! * per-replica crossbar occupancy (a replica's next window cannot
//!   start its MVMs before the previous window's crossbars free up);
//! * VFU serialization per core;
//! * NoC delay for partial-sum accumulation and inter-node forwarding;
//! * strided window assignment across replicas, so a node's output
//!   prefix completes smoothly.

use crate::report::{EnergyReport, MemoryReport, SimReport};
use crate::resources::ActivitySpan;
use crate::SimError;
use pimcomp_arch::{EnergyModel, NocModel};
use pimcomp_core::{CompiledModel, LlUnitKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-replica runtime state.
#[derive(Debug, Clone)]
struct ReplicaRt {
    /// Windows completed by this replica.
    done: usize,
    /// Base time of the previous window's MVM issue group, aligned by
    /// position with the replica's `ags_per_core` list (cores are
    /// unique within a replica); `u64::MAX` = no previous window.
    /// Crossbar pipelining: next window's MVMs start ≥ prev + T_MVM.
    prev_base: Vec<u64>,
}

/// Runs the LL simulation for a compiled model.
pub(crate) fn run(
    compiled: &CompiledModel,
    energy_model: &EnergyModel,
) -> Result<SimReport, SimError> {
    let schedule = compiled
        .schedule
        .as_ll()
        .ok_or(SimError::WrongScheduleKind)?;
    let hw = &compiled.hw;
    let noc = NocModel::new(hw);
    let cores = hw.total_cores();
    let eb = hw.input_bytes_per_element();
    let t_int = hw.issue_interval();
    let t_mvm = hw.mvm_latency;
    let units = &schedule.units;

    // Runtime state.
    let mut reps: Vec<Vec<ReplicaRt>> = units
        .iter()
        .map(|u| {
            u.replicas
                .iter()
                .map(|r| ReplicaRt {
                    done: 0,
                    prev_base: vec![u64::MAX; r.ags_per_core.len()],
                })
                .collect()
        })
        .collect();
    let mut issue_free = vec![0u64; cores];
    let mut vfu_free = vec![0u64; cores];
    let mut spans: Vec<ActivitySpan> = vec![ActivitySpan::default(); cores];

    // Node production prefixes (windows complete in row-major prefix)
    // and waiter lists, both dense by node index — the event loop hits
    // them on every dependency check and wake-up.
    let node_count = compiled.graph.node_count();
    let mut node_prefix: Vec<usize> = vec![0; node_count];
    // Waiters: node index -> (unit, replica, threshold).
    let mut waiters: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); node_count];
    // Dense view of the schedule's units-of-node map, resolved once.
    let empty_units: Vec<usize> = Vec::new();
    let units_by_node: Vec<&[usize]> = (0..node_count)
        .map(|i| {
            schedule
                .units_of_node
                .get(&i)
                .map_or(empty_units.as_slice(), |v| v.as_slice())
        })
        .collect();

    // Counters.
    let mut mvm_ops = 0u64;
    let mut crossbar_mvms = 0u64;
    let mut vfu_elems = 0u64;
    let mut noc_bytes = 0u64;
    let mut noc_pj = 0f64;
    let mut local_bytes = 0u64;

    // Pre-computed per-unit inbound forwarding delay (provider owner ->
    // consumer owner, one window's payload).
    let dep_delay: Vec<u64> = units
        .iter()
        .map(|u| {
            let dst = u.replicas.first().map_or(0, |r| r.owner);
            u.providers
                .iter()
                .map(|p| {
                    let p_units = schedule.units_of(p.node);
                    let src = p_units
                        .first()
                        .and_then(|&pu| units[pu].replicas.first())
                        .map_or(dst, |r| r.owner);
                    let bytes = p_units
                        .first()
                        .map_or(0, |&pu| units[pu].elems_per_window * eb);
                    noc.transfer_cycles(src, dst, bytes)
                })
                .max()
                .unwrap_or(0)
        })
        .collect();

    let mut queue: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    for (uid, u) in units.iter().enumerate() {
        for (k, r) in u.replicas.iter().enumerate() {
            if r.windows > 0 {
                queue.push(Reverse((0, uid, k)));
            }
        }
    }

    let mut last_done: u64 = 0;
    let mut guard: u64 = 0;
    let guard_limit: u64 = 500_000_000;

    while let Some(Reverse((now, uid, k))) = queue.pop() {
        guard += 1;
        if guard > guard_limit {
            return Err(SimError::Diverged {
                detail: "LL event budget exceeded".into(),
            });
        }
        let u = &units[uid];
        let rep_spec = &u.replicas[k];
        let r_count = u.replicas.len();
        let done = reps[uid][k].done;
        if done >= rep_spec.windows {
            continue;
        }
        let j = k + done * r_count; // global window index (strided)

        // Dependency check.
        let ready = now;
        let mut blocked = false;
        for p in &u.providers {
            let req = compiled
                .dep
                .required_windows(&compiled.graph, u.node, p.node, j);
            let have = node_prefix[p.node.index()];
            if have < req {
                waiters[p.node.index()].push((uid, k, req));
                blocked = true;
                break;
            }
        }
        if blocked {
            continue;
        }

        // Execute the window.
        let t_done = match u.kind {
            LlUnitKind::Mvm { mvm } => {
                let entry = compiled.partitioning.entry(mvm);
                let mut mvm_end = ready;
                for (pos, &(core, count)) in rep_spec.ags_per_core.iter().enumerate() {
                    let prev = reps[uid][k].prev_base[pos];
                    let mut base = ready.max(issue_free[core]);
                    if prev != u64::MAX {
                        base = base.max(prev + t_mvm);
                    }
                    issue_free[core] = base + count as u64 * t_int;
                    reps[uid][k].prev_base[pos] = base;
                    let end = base + (count as u64 - 1) * t_int + t_mvm;
                    mvm_end = mvm_end.max(end);
                    spans[core].record(base, end);
                    mvm_ops += count as u64;
                    crossbar_mvms += count as u64 * entry.crossbars_per_ag as u64;
                }
                // Partial sums from remote cores to the owner.
                let owner = rep_spec.owner;
                let mut arrive = mvm_end;
                for &(core, _) in &rep_spec.ags_per_core {
                    if core != owner {
                        let bytes = entry.weight_width * eb;
                        arrive = arrive.max(mvm_end + noc.transfer_cycles(core, owner, bytes));
                        noc_bytes += bytes as u64;
                        noc_pj += noc.transfer_energy_pj(core, owner, bytes);
                    }
                }
                // Accumulate + activate on the owner's VFU.
                let w = u.vfu_elems_per_window;
                let t = vfu_free[owner].max(arrive) + hw.vfu_cycles(w);
                vfu_free[owner] = t;
                vfu_elems += w as u64;
                local_bytes += (entry.weight_height + entry.weight_width) as u64 * eb as u64;
                spans[owner].record(arrive, t);
                t
            }
            LlUnitKind::Vector => {
                let owner = rep_spec.owner;
                let w = u.vfu_elems_per_window;
                if w == 0 {
                    ready
                } else {
                    let t = vfu_free[owner].max(ready) + hw.vfu_cycles(w);
                    vfu_free[owner] = t;
                    vfu_elems += w as u64;
                    local_bytes += (2 * u.elems_per_window * eb) as u64;
                    spans[owner].record(ready, t);
                    t
                }
            }
        };

        reps[uid][k].done += 1;
        last_done = last_done.max(t_done);

        // Update the node's production prefix and wake waiters.
        let prefix = node_prefix_of(units, units_by_node[u.node.index()], &reps);
        let old = node_prefix[u.node.index()];
        node_prefix[u.node.index()] = prefix;
        if prefix > old {
            let list = &mut waiters[u.node.index()];
            let mut kept = 0;
            for i in 0..list.len() {
                let (wu, wk, thr) = list[i];
                if thr <= prefix {
                    // Forwarding latency applies once per wake; the
                    // transfers of subsequent ready windows overlap
                    // with compute (wormhole pipelining).
                    queue.push(Reverse((t_done + dep_delay[wu], wu, wk)));
                } else {
                    list[kept] = (wu, wk, thr);
                    kept += 1;
                }
            }
            list.truncate(kept);
        }

        // Next window of this replica.
        if reps[uid][k].done < rep_spec.windows {
            queue.push(Reverse((t_done, uid, k)));
        }
    }

    // Completion check.
    for (uid, u) in units.iter().enumerate() {
        for (k, r) in u.replicas.iter().enumerate() {
            if reps[uid][k].done < r.windows {
                return Err(SimError::Deadlock {
                    detail: format!(
                        "unit {uid} ({}) replica {k}: {}/{} windows",
                        u.name, reps[uid][k].done, r.windows
                    ),
                });
            }
        }
    }

    let latency = last_done;
    let active_cores = spans.iter().filter(|s| s.is_active()).count();

    // Boundary global traffic (network inputs + outputs).
    let global_bytes = compiled.memory.global_traffic as u64;

    let mut energy = EnergyReport {
        mvm_pj: crossbar_mvms as f64 * energy_model.mvm_pj_per_crossbar,
        vfu_pj: vfu_elems as f64 * energy_model.vfu_pj_per_element,
        memory_pj: global_bytes as f64 * energy_model.global_mem_pj_per_byte
            + local_bytes as f64 * energy_model.local_mem_pj_per_byte,
        noc_pj,
        reload_pj: 0.0,
        leakage_pj: 0.0,
    };
    // LL leakage: cores hold live inter-layer state, so every active
    // core leaks over the whole inference (paper §V-B.2: "the active
    // time of each core is related to the overall inference time").
    energy.leakage_pj = energy_model.leakage_pj(
        (energy_model.leakage.core_mw + energy_model.leakage.router_mw) * active_cores as f64
            + energy_model.leakage.global_memory_mw * hw.chips as f64,
        latency,
    );

    // `weight_reload` epochs: each epoch barrier reprograms the shared
    // crossbars before the next layer span can stream, so the write
    // stalls extend the single-inference latency directly and the cell
    // writes add dynamic energy (from the compiled reload schedule).
    let reload = compiled.reload.as_ref();
    let reload_stall_cycles = reload.map_or(0, |p| p.total_write_cycles);
    let latency = latency + reload_stall_cycles;
    energy.reload_pj = reload.map_or(0.0, |p| p.total_write_pj);

    Ok(SimReport {
        model: compiled.graph.name().to_string(),
        compiler: compiled.report.compiler.clone(),
        mode: compiled.mode,
        total_cycles: latency,
        throughput_inf_per_s: SimReport::throughput_from_cycles(latency, hw.clock_ghz),
        latency_us: latency as f64 / (hw.clock_ghz * 1000.0),
        mvm_ops,
        crossbar_mvms,
        vfu_elems,
        noc_bytes,
        global_bytes,
        energy,
        memory: MemoryReport {
            avg_local_bytes: compiled.memory.avg_bytes,
            peak_local_bytes: compiled.memory.peak_bytes,
            global_traffic_bytes: global_bytes as usize,
        },
        reload_epochs: reload.map_or(0, |p| p.epoch_count()),
        reload_ags_rewritten: reload.map_or(0, |p| p.total_ags_written),
        reload_cells_rewritten: reload.map_or(0, |p| p.total_cells_written),
        reload_stall_cycles,
        active_cores,
        per_core_busy: spans.iter().map(|s| s.busy_cycles()).collect(),
    })
}

/// Prefix-complete window count of a node: the strided minimum across
/// replicas, then the minimum across the node's column-group units
/// (`unit_ids`, pre-resolved from the schedule's units-of-node map).
fn node_prefix_of(
    units: &[pimcomp_core::LlUnit],
    unit_ids: &[usize],
    reps: &[Vec<ReplicaRt>],
) -> usize {
    if unit_ids.is_empty() {
        return 0;
    }
    let mut prefix = usize::MAX;
    for &uid in unit_ids {
        let u = &units[uid];
        let r = u.replicas.len();
        let mut up = u.windows;
        for (k, _) in u.replicas.iter().enumerate() {
            let done = reps[uid][k].done;
            let frontier = k + done * r;
            if frontier < u.windows {
                up = up.min(frontier);
            }
        }
        prefix = prefix.min(up);
    }
    if prefix == usize::MAX {
        0
    } else {
        prefix
    }
}
