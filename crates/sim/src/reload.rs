//! Analytic simulation of multi-epoch `weight_reload` models.
//!
//! A model compiled over a crossbar budget smaller than its footprint
//! executes epoch by epoch: one epoch's Array Groups are resident,
//! compute runs, then shared cores are reprogrammed with the next
//! epoch's weights. Epochs therefore *serialize* — the event-driven
//! engines, which execute a mapping as physically concurrent, would
//! both mismodel that and blow their event budgets on the
//! over-committed placements reload mode produces. This module instead
//! assembles the report analytically from the compiled
//! [`ReloadPlan`](pimcomp_core::ReloadPlan):
//!
//! * **cycles** — the plan's per-epoch Fig. 5 compute estimates
//!   (scaled by the HT batch) plus the reload write barriers;
//! * **MVM work/energy** — exact counts from the mapping (every AG
//!   processes its node's windows once per inference);
//! * **leakage** — active cores and global memory leak over the whole
//!   serialized makespan (no early power-down across epochs).
//!
//! Event-level effects — NoC transfers, global-memory port contention,
//! VFU chains — are not modeled on this path; their counters read zero
//! and `per_core_busy` is empty. Single-epoch reload plans (the model
//! fit its budget) take the ordinary event-driven engines instead.

use crate::report::{EnergyReport, MemoryReport, SimReport};
use crate::SimError;
use pimcomp_arch::EnergyModel;
use pimcomp_core::{CompiledModel, ReloadPlan};

/// Assembles the analytic report for a multi-epoch reload model.
pub(crate) fn run(
    compiled: &CompiledModel,
    energy_model: &EnergyModel,
    plan: &ReloadPlan,
) -> Result<SimReport, SimError> {
    let hw = &compiled.hw;
    let batch = compiled.schedule.as_ht().map_or(1, |s| s.batch).max(1);

    // Exact MVM work: replication is 1 on this path, so each AG
    // instance runs its node's full window count per inference.
    let mut mvm_ops = 0u64;
    let mut crossbar_mvms = 0u64;
    for inst in &compiled.mapping.instances {
        let e = compiled.partitioning.entry(inst.mvm);
        mvm_ops += (e.windows * batch) as u64;
        crossbar_mvms += (e.windows * batch * e.crossbars_per_ag) as u64;
    }

    // The Fig. 5 per-epoch estimates are linear in the operation-cycle
    // count, so batch scales them exactly.
    let compute_cycles = plan.total_compute_cycles * batch as u64;
    let total_cycles = compute_cycles + plan.total_write_cycles;

    let mut energy = EnergyReport {
        mvm_pj: crossbar_mvms as f64 * energy_model.mvm_pj_per_crossbar,
        vfu_pj: 0.0,
        memory_pj: 0.0,
        noc_pj: 0.0,
        reload_pj: plan.total_write_pj,
        leakage_pj: 0.0,
    };
    // Serialized epochs keep every active core powered across the whole
    // makespan (a core hosting epoch-3 weights cannot power down while
    // epoch 0 runs — it is about to be rewritten).
    let active_cores = compiled.mapping.active_cores();
    energy.leakage_pj = energy_model.leakage_pj(
        (energy_model.leakage.core_mw + energy_model.leakage.router_mw) * active_cores as f64
            + energy_model.leakage.global_memory_mw * hw.chips as f64,
        total_cycles,
    );

    Ok(SimReport {
        model: compiled.graph.name().to_string(),
        compiler: compiled.report.compiler.clone(),
        mode: compiled.mode,
        total_cycles,
        throughput_inf_per_s: SimReport::throughput_from_cycles(total_cycles, hw.clock_ghz),
        latency_us: total_cycles as f64 / (hw.clock_ghz * 1000.0),
        mvm_ops,
        crossbar_mvms,
        vfu_elems: 0,
        noc_bytes: 0,
        global_bytes: 0,
        energy,
        memory: MemoryReport {
            avg_local_bytes: compiled.memory.avg_bytes,
            peak_local_bytes: compiled.memory.peak_bytes,
            global_traffic_bytes: 0,
        },
        reload_epochs: plan.epoch_count(),
        reload_ags_rewritten: plan.total_ags_written,
        reload_cells_rewritten: plan.total_cells_written,
        reload_stall_cycles: plan.total_write_cycles,
        active_cores,
        per_core_busy: Vec::new(),
    })
}
