//! Cycle-accurate simulator for crossbar-based PIM DNN accelerators
//! (paper Section V-A.2).
//!
//! The simulator consumes the operation schedules compiled by
//! `pimcomp-core` and models the phenomena the paper's evaluation
//! depends on: MVM structural conflicts and data dependencies, the
//! per-core issue interval realizing the parallelism degree, on-chip
//! local-memory usage, global-memory bandwidth contention, inter-core
//! synchronization over the NoC, and energy (dynamic + leakage).
//!
//! The simulator reports *performance* of a compiled mapping; its
//! functional counterpart `pimcomp-exec` checks *correctness* of the
//! same mapping by executing it numerically. A sweep with a
//! `quantization` axis carries both kinds of metrics side by side.
//!
//! # Example
//!
//! Compile through a staged session, persist the result as a versioned
//! artifact, and simulate the reloaded artifact — the
//! compile-once/serve-many flow:
//!
//! ```
//! use pimcomp_arch::{HardwareConfig, PipelineMode};
//! use pimcomp_core::{CompileOptions, CompileSession, CompiledArtifact};
//! use pimcomp_sim::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = pimcomp_ir::models::tiny_mlp();
//! let hw = HardwareConfig::small_test();
//! let opts = CompileOptions::new(PipelineMode::HighThroughput).with_fast_ga(3);
//! let compiled = CompileSession::new(hw.clone(), &graph, opts)?.run()?;
//!
//! // Persist + reload (normally across processes / machines) ...
//! let artifact = CompiledArtifact::from_json(&CompiledArtifact::new(compiled).to_json()?)?;
//!
//! // ... and serve it: the simulator fingerprint-checks the target.
//! let report = Simulator::new(hw).run_artifact(&artifact)?;
//! assert!(report.total_cycles > 0);
//! assert!(report.energy.total_pj() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ht;
mod ll;
mod reload;
mod report;
mod resources;

pub use report::{EnergyReport, MemoryReport, SimReport};
pub use resources::{ActivitySpan, BandwidthServer};

use pimcomp_arch::{ComponentLibrary, EnergyModel, HardwareConfig};
use pimcomp_core::{CompiledArtifact, CompiledModel};
use std::fmt;

/// Simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The compiled model's schedule kind does not match the requested
    /// run (internal misuse).
    WrongScheduleKind,
    /// The event budget was exhausted — the schedule appears to make no
    /// progress.
    Diverged {
        /// Diagnostic description.
        detail: String,
    },
    /// Work remained after the event queue drained (missing wake-up /
    /// unsatisfiable dependency).
    Deadlock {
        /// Diagnostic description.
        detail: String,
    },
    /// A [`CompiledArtifact`] was compiled for hardware that does not
    /// match this simulator's target (fingerprint check failed).
    HardwareMismatch {
        /// Diagnostic description.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WrongScheduleKind => write!(f, "schedule kind does not match simulator"),
            SimError::Diverged { detail } => write!(f, "simulation diverged: {detail}"),
            SimError::Deadlock { detail } => write!(f, "simulation deadlocked: {detail}"),
            SimError::HardwareMismatch { detail } => {
                write!(f, "artifact/simulator hardware mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The simulator front end: dispatches a compiled model to the HT or LL
/// engine with a consistent energy model.
#[derive(Debug, Clone)]
pub struct Simulator {
    hw: HardwareConfig,
    energy: EnergyModel,
}

impl Simulator {
    /// Creates a simulator for the target, deriving energies from the
    /// Table I component library.
    pub fn new(hw: HardwareConfig) -> Self {
        let energy = EnergyModel::derive(&hw, &ComponentLibrary::puma());
        Simulator { hw, energy }
    }

    /// Creates a simulator with an explicit energy model.
    pub fn with_energy_model(hw: HardwareConfig, energy: EnergyModel) -> Self {
        Simulator { hw, energy }
    }

    /// The hardware target this simulator models. Report consumers use
    /// this to normalize counters (e.g. utilization over
    /// [`HardwareConfig::total_cores`]) against the exact target the
    /// run used, and the DSE engine pairs it with the functional
    /// executor (`pimcomp-exec`), which verifies *what* the compiled
    /// mapping computes while the simulator reports *how fast* it runs.
    pub fn hardware(&self) -> &HardwareConfig {
        &self.hw
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Executes a compiled model cycle-accurately.
    ///
    /// # Errors
    ///
    /// [`SimError::Diverged`] / [`SimError::Deadlock`] indicate a
    /// schedule that cannot complete (these are asserted against in the
    /// test suite and indicate compiler bugs).
    pub fn run(&self, compiled: &CompiledModel) -> Result<SimReport, SimError> {
        debug_assert_eq!(
            self.hw, compiled.hw,
            "simulator and compilation should target the same hardware"
        );
        // Multi-epoch `weight_reload` models execute their epochs
        // serially; the event engines would model the over-committed
        // mapping as concurrent, so they take the analytic path (see
        // the `reload` module docs).
        if let Some(plan) = compiled.reload.as_ref().filter(|p| !p.is_single_epoch()) {
            return reload::run(compiled, &self.energy, plan);
        }
        match compiled.mode {
            pimcomp_arch::PipelineMode::HighThroughput => ht::run(compiled, &self.energy),
            pimcomp_arch::PipelineMode::LowLatency => ll::run(compiled, &self.energy),
        }
    }

    /// Executes a batch of compiled models against this target,
    /// returning one result per model in input order — the
    /// serve-many-models-on-one-target counterpart of
    /// [`Simulator::run`]. A failing entry yields its error in place
    /// without aborting the rest of the batch, so batch drivers
    /// survive one bad model.
    pub fn run_batch<'a>(
        &self,
        models: impl IntoIterator<Item = &'a CompiledModel>,
    ) -> Vec<Result<SimReport, SimError>> {
        models.into_iter().map(|m| self.run(m)).collect()
    }

    /// Executes a persisted [`CompiledArtifact`] after verifying it was
    /// compiled for this simulator's hardware — the serve side of the
    /// compile-once/serve-many flow.
    ///
    /// # Errors
    ///
    /// [`SimError::HardwareMismatch`] when the artifact's hardware
    /// fingerprint differs from this simulator's target, plus the
    /// [`Simulator::run`] errors.
    pub fn run_artifact(&self, artifact: &CompiledArtifact) -> Result<SimReport, SimError> {
        artifact
            .verify_hardware(&self.hw)
            .map_err(|e| SimError::HardwareMismatch {
                detail: e.to_string(),
            })?;
        self.run(artifact.model())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimcomp_arch::PipelineMode;
    use pimcomp_core::{CompileOptions, PimCompiler, PumaCompiler, ReusePolicy};
    use pimcomp_ir::models;

    fn sim(mode: PipelineMode, seed: u64) -> SimReport {
        let graph = models::tiny_cnn();
        let hw = HardwareConfig::small_test();
        let compiled = PimCompiler::new(hw.clone())
            .compile(&graph, &CompileOptions::new(mode).with_fast_ga(seed))
            .unwrap();
        Simulator::new(hw).run(&compiled).unwrap()
    }

    #[test]
    fn run_batch_preserves_order_and_matches_single_runs() {
        let graph = models::tiny_cnn();
        let hw = HardwareConfig::small_test();
        let compiled: Vec<_> = [PipelineMode::HighThroughput, PipelineMode::LowLatency]
            .into_iter()
            .map(|mode| {
                PimCompiler::new(hw.clone())
                    .compile(&graph, &CompileOptions::new(mode).with_fast_ga(3))
                    .unwrap()
            })
            .collect();
        let sim = Simulator::new(hw);
        let batch = sim.run_batch(compiled.iter());
        assert_eq!(batch.len(), 2);
        for (one, model) in batch.iter().zip(&compiled) {
            assert_eq!(one.as_ref().unwrap(), &sim.run(model).unwrap());
        }
        assert_eq!(
            batch[0].as_ref().unwrap().mode,
            PipelineMode::HighThroughput
        );
        assert_eq!(batch[1].as_ref().unwrap().mode, PipelineMode::LowLatency);
    }

    #[test]
    fn ht_simulation_completes_with_positive_outputs() {
        let r = sim(PipelineMode::HighThroughput, 5);
        assert!(r.total_cycles > 0);
        assert!(r.throughput_inf_per_s > 0.0);
        assert!(r.mvm_ops > 0);
        assert!(r.crossbar_mvms >= r.mvm_ops);
        assert!(r.energy.dynamic_pj() > 0.0);
        assert!(r.energy.leakage_pj > 0.0);
        assert!(r.active_cores > 0);
    }

    #[test]
    fn ll_simulation_completes_with_positive_outputs() {
        let r = sim(PipelineMode::LowLatency, 5);
        assert!(r.total_cycles > 0);
        assert!(r.latency_us > 0.0);
        assert!(r.mvm_ops > 0);
    }

    #[test]
    fn mvm_op_count_matches_workload() {
        // Total MVM issues = sum over nodes of windows * AGs-per-replica
        // (replication splits windows across replicas, preserving the
        // total under the strided assignment).
        let graph = models::tiny_cnn();
        let hw = HardwareConfig::small_test();
        let compiled = PimCompiler::new(hw.clone())
            .compile(
                &graph,
                &CompileOptions::new(PipelineMode::LowLatency).with_fast_ga(5),
            )
            .unwrap();
        let r = Simulator::new(hw).run(&compiled).unwrap();
        let expect: usize = compiled
            .partitioning
            .entries()
            .iter()
            .map(|e| e.windows * e.ags_per_replica)
            .sum();
        assert_eq!(r.mvm_ops, expect as u64);
    }

    #[test]
    fn ht_bottleneck_is_max_core_time() {
        let r = sim(PipelineMode::HighThroughput, 6);
        let max = r.per_core_busy.iter().copied().max().unwrap();
        assert_eq!(r.total_cycles, max);
    }

    #[test]
    fn pimcomp_not_slower_than_baseline_on_small_target() {
        // On this deliberately tiny target the GA's analytic objective
        // must match or beat the greedy baseline; the simulated number
        // may wobble within a tolerance because VFU/global-memory
        // effects are outside the Fig. 5 fitness. (The paper-scale
        // comparison lives in the fig8 benchmark harness.)
        let graph = models::tiny_cnn();
        let hw = HardwareConfig::small_test();
        let opts =
            CompileOptions::new(PipelineMode::HighThroughput).with_ga(pimcomp_core::GaParams {
                population: 24,
                iterations: 80,
                ..pimcomp_core::GaParams::fast(9)
            });
        let ours = PimCompiler::new(hw.clone()).compile(&graph, &opts).unwrap();
        let base = PumaCompiler::new(hw.clone())
            .compile(&graph, &opts)
            .unwrap();
        assert!(
            ours.report.estimated_fitness <= base.report.estimated_fitness * 1.02,
            "GA fitness {} vs baseline {}",
            ours.report.estimated_fitness,
            base.report.estimated_fitness
        );
        let sim = Simulator::new(hw);
        let r_ours = sim.run(&ours).unwrap();
        let r_base = sim.run(&base).unwrap();
        assert!(
            r_ours.total_cycles as f64 <= r_base.total_cycles as f64 * 1.30,
            "PIMCOMP {} vs baseline {}",
            r_ours.total_cycles,
            r_base.total_cycles
        );
    }

    #[test]
    fn higher_parallelism_never_slows_ht() {
        let graph = models::tiny_cnn();
        let mut prev = u64::MAX;
        for par in [1, 4, 16] {
            let hw = HardwareConfig::small_test().with_parallelism(par);
            let compiled = PimCompiler::new(hw.clone())
                .compile(
                    &graph,
                    &CompileOptions::new(PipelineMode::HighThroughput).with_fast_ga(13),
                )
                .unwrap();
            let r = Simulator::new(hw).run(&compiled).unwrap();
            assert!(
                r.total_cycles <= prev,
                "parallelism {par} slowed things down: {} > {prev}",
                r.total_cycles
            );
            prev = r.total_cycles;
        }
    }

    #[test]
    fn memory_policy_affects_ht_global_traffic_under_pressure() {
        let graph = models::tiny_cnn();
        let mut hw = HardwareConfig::small_test();
        hw.local_memory_bytes = 2 * 1024; // force spills for naive
        let mk = |policy| {
            let compiled = PimCompiler::new(hw.clone())
                .compile(
                    &graph,
                    &CompileOptions::new(PipelineMode::HighThroughput)
                        .with_fast_ga(21)
                        .with_policy(policy),
                )
                .unwrap();
            Simulator::new(hw.clone()).run(&compiled).unwrap()
        };
        let naive = mk(ReusePolicy::Naive);
        let ag = mk(ReusePolicy::AgReuse);
        assert!(
            naive.memory.global_traffic_bytes >= ag.memory.global_traffic_bytes,
            "naive {} < ag {}",
            naive.memory.global_traffic_bytes,
            ag.memory.global_traffic_bytes
        );
    }

    #[test]
    fn multi_epoch_reload_takes_the_analytic_path() {
        // A tight budget forces a multi-epoch plan; the report must be
        // assembled from the ReloadPlan (serial epochs + write
        // barriers), not the event engines.
        let graph = models::tiny_cnn();
        let hw = HardwareConfig::small_test();
        let compiled = PimCompiler::new(hw.clone())
            .compile(
                &graph,
                &CompileOptions::new(PipelineMode::HighThroughput)
                    .with_fast_ga(5)
                    .with_weight_reload(Some(32)),
            )
            .unwrap();
        let plan = compiled.reload.as_ref().unwrap();
        assert!(plan.epoch_count() > 1);
        let r = Simulator::new(hw).run(&compiled).unwrap();
        let batch = compiled.schedule.as_ht().map_or(1, |s| s.batch) as u64;
        assert_eq!(
            r.total_cycles,
            plan.total_compute_cycles * batch + plan.total_write_cycles
        );
        assert_eq!(r.reload_epochs, plan.epoch_count());
        assert_eq!(r.reload_ags_rewritten, plan.total_ags_written);
        assert_eq!(r.reload_stall_cycles, plan.total_write_cycles);
        assert!(r.reload_stall_cycles > 0);
        assert_eq!(r.energy.reload_pj, plan.total_write_pj);
        assert!(r.energy.reload_pj > 0.0);
        assert!(r.energy.leakage_pj > 0.0);
        assert!(r.mvm_ops > 0);
        // Event-level counters are out of scope on the analytic path.
        assert!(r.per_core_busy.is_empty());
    }

    #[test]
    fn resident_reload_simulates_like_an_ordinary_compile() {
        // A budget the model fits keeps the event engines: the report
        // must match the reload-off compilation of the same seed except
        // for the (zero-cost) reload bookkeeping.
        let graph = models::tiny_cnn();
        let hw = HardwareConfig::small_test();
        let compile = |reload: bool| {
            let mut opts = CompileOptions::new(PipelineMode::HighThroughput).with_fast_ga(5);
            if reload {
                opts = opts.with_weight_reload(None);
            }
            PimCompiler::new(hw.clone()).compile(&graph, &opts).unwrap()
        };
        let plain = Simulator::new(hw.clone()).run(&compile(false)).unwrap();
        let resident = compile(true);
        assert!(resident.reload.as_ref().unwrap().is_single_epoch());
        let r = Simulator::new(hw.clone()).run(&resident).unwrap();
        assert_eq!(r.total_cycles, plain.total_cycles);
        assert_eq!(r.reload_stall_cycles, 0);
        assert_eq!(r.energy.reload_pj, 0.0);
        assert_eq!(r.energy.total_pj(), plain.energy.total_pj());
    }

    #[test]
    fn ll_streaming_is_not_pathologically_slow() {
        let ht = sim(PipelineMode::HighThroughput, 31);
        let ll = sim(PipelineMode::LowLatency, 31);
        // Guard against gross regressions in the LL engine: streaming a
        // single inference should stay within a small factor of the HT
        // pipeline interval on this small model.
        assert!(ll.total_cycles <= ht.total_cycles * 8);
    }
}
