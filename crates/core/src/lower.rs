//! Lowering a compiled schedule to an explicit operation sequence.
//!
//! The paper's execution model (§III-B) describes each core's work as a
//! static sequence of basic operations — MVM, VEC, COMM and MEM — and
//! explicitly allows either "a series of instructions, or a schedule of
//! basic operators". The compiler's native output is the compact
//! schedule; this module expands it into the instruction form, which is
//! useful for debugging, for golden-trace tests, and as a starting
//! point for a real ISA backend.
//!
//! Streams can be large (millions of operations for the paper
//! benchmarks), so lowering takes a per-core instruction cap.

use crate::compiler::CompiledModel;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One basic operation of the abstract execution model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreOp {
    /// Load bytes from global memory into the local scratchpad.
    MemLoad {
        /// Payload size.
        bytes: usize,
    },
    /// Store bytes from the local scratchpad to global memory.
    MemStore {
        /// Payload size.
        bytes: usize,
    },
    /// One MVM on one Array Group instance.
    Mvm {
        /// AG instance id (into `CoreMapping::instances`).
        instance: usize,
        /// Sliding-window index.
        window: usize,
    },
    /// VFU element operations (accumulation, activation, pooling, …).
    Vec {
        /// Element-operation count.
        elements: usize,
    },
    /// Send a partial-sum / forwarding message to another core.
    CommSend {
        /// Destination core.
        to: usize,
        /// Payload size.
        bytes: usize,
    },
    /// Blocking receive of a message from another core.
    CommRecv {
        /// Source count (how many messages this receive joins).
        count: usize,
    },
}

impl fmt::Display for CoreOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreOp::MemLoad { bytes } => write!(f, "MEM.load   {bytes}B"),
            CoreOp::MemStore { bytes } => write!(f, "MEM.store  {bytes}B"),
            CoreOp::Mvm { instance, window } => {
                write!(f, "MVM        ag{instance} w{window}")
            }
            CoreOp::Vec { elements } => write!(f, "VEC        {elements} elems"),
            CoreOp::CommSend { to, bytes } => write!(f, "COMM.send  -> core{to} {bytes}B"),
            CoreOp::CommRecv { count } => write!(f, "COMM.recv  x{count}"),
        }
    }
}

/// The lowered per-core operation sequences.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpStream {
    /// Per-core instruction lists (empty for idle cores).
    pub per_core: Vec<Vec<CoreOp>>,
    /// `true` when any core hit the instruction cap and was truncated.
    pub truncated: bool,
}

impl OpStream {
    /// Total instruction count across cores.
    pub fn len(&self) -> usize {
        self.per_core.iter().map(Vec::len).sum()
    }

    /// `true` when no instructions were emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Instruction-class histogram `(mem, mvm, vec, comm)`.
    pub fn histogram(&self) -> (usize, usize, usize, usize) {
        let (mut mem, mut mvm, mut vec, mut comm) = (0, 0, 0, 0);
        for ops in &self.per_core {
            for op in ops {
                match op {
                    CoreOp::MemLoad { .. } | CoreOp::MemStore { .. } => mem += 1,
                    CoreOp::Mvm { .. } => mvm += 1,
                    CoreOp::Vec { .. } => vec += 1,
                    CoreOp::CommSend { .. } | CoreOp::CommRecv { .. } => comm += 1,
                }
            }
        }
        (mem, mvm, vec, comm)
    }

    /// Renders one core's stream as text (for traces and golden tests).
    pub fn render_core(&self, core: usize) -> String {
        let mut out = String::new();
        for (i, op) in self.per_core[core].iter().enumerate() {
            out.push_str(&format!("{i:>6}: {op}\n"));
        }
        out
    }
}

/// Expands a compiled model into explicit per-core operation sequences.
///
/// `max_ops_per_core` bounds the expansion; cores whose program is
/// longer are truncated (flagged in [`OpStream::truncated`]). Only HT
/// schedules lower to static per-core sequences — the LL schedule's
/// instruction order is data-dependent, so its units lower to one
/// representative window per replica.
pub fn lower_to_ops(compiled: &CompiledModel, max_ops_per_core: usize) -> OpStream {
    let cores = compiled.hw.total_cores();
    let mut per_core: Vec<Vec<CoreOp>> = vec![Vec::new(); cores];
    let mut truncated = false;

    match &compiled.schedule {
        Schedule::HighThroughput(s) => {
            for (core, ops) in per_core.iter_mut().enumerate() {
                'rounds: for round in 0.. {
                    let mut any = false;
                    for &pid in &s.per_core[core] {
                        let p = &s.programs[pid];
                        if round >= p.rounds {
                            continue;
                        }
                        any = true;
                        if ops.len() >= max_ops_per_core {
                            truncated = true;
                            break 'rounds;
                        }
                        if p.load_bytes_per_round > 0 {
                            ops.push(CoreOp::MemLoad {
                                bytes: p.load_bytes_per_round,
                            });
                        }
                        for b in 0..s.batch {
                            for &inst in &p.ag_instances {
                                ops.push(CoreOp::Mvm {
                                    instance: inst,
                                    window: round * s.batch + b,
                                });
                            }
                        }
                        if p.vec_elems_per_round > 0 {
                            ops.push(CoreOp::Vec {
                                elements: p.vec_elems_per_round,
                            });
                        }
                        for send in &p.sends_per_round {
                            ops.push(CoreOp::CommSend {
                                to: send.to_core,
                                bytes: send.bytes,
                            });
                        }
                        if p.recvs_per_round > 0 {
                            ops.push(CoreOp::CommRecv {
                                count: p.recvs_per_round,
                            });
                        }
                        if p.store_bytes_per_round > 0 {
                            ops.push(CoreOp::MemStore {
                                bytes: p.store_bytes_per_round,
                            });
                        }
                    }
                    if !any {
                        break;
                    }
                }
                // One-shot vector tasks close the stream.
                for &vid in &s.vec_per_core[core] {
                    if ops.len() >= max_ops_per_core {
                        truncated = true;
                        break;
                    }
                    let t = &s.vec_tasks[vid];
                    if t.load_bytes > 0 {
                        ops.push(CoreOp::MemLoad {
                            bytes: t.load_bytes,
                        });
                    }
                    ops.push(CoreOp::Vec { elements: t.elems });
                    if t.store_bytes > 0 {
                        ops.push(CoreOp::MemStore {
                            bytes: t.store_bytes,
                        });
                    }
                }
            }
        }
        Schedule::LowLatency(s) => {
            let eb = compiled.hw.input_bytes_per_element();
            for unit in &s.units {
                for rep in &unit.replicas {
                    if rep.windows == 0 {
                        continue;
                    }
                    // One representative window per replica.
                    for &(core, count) in &rep.ags_per_core {
                        let ops = &mut per_core[core];
                        if ops.len() + count + 2 > max_ops_per_core {
                            truncated = true;
                            continue;
                        }
                        for k in 0..count {
                            ops.push(CoreOp::Mvm {
                                instance: k,
                                window: 0,
                            });
                        }
                        if core != rep.owner {
                            ops.push(CoreOp::CommSend {
                                to: rep.owner,
                                bytes: unit.elems_per_window * eb,
                            });
                        }
                    }
                    let owner_ops = &mut per_core[rep.owner];
                    if owner_ops.len() + 2 <= max_ops_per_core {
                        if rep.ags_per_core.len() > 1 {
                            owner_ops.push(CoreOp::CommRecv {
                                count: rep.ags_per_core.len() - 1,
                            });
                        }
                        if unit.vfu_elems_per_window > 0 {
                            owner_ops.push(CoreOp::Vec {
                                elements: unit.vfu_elems_per_window,
                            });
                        }
                    } else {
                        truncated = true;
                    }
                }
            }
        }
    }

    OpStream {
        per_core,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileOptions, PimCompiler};
    use pimcomp_arch::{HardwareConfig, PipelineMode};
    use pimcomp_ir::models;

    fn compile(mode: PipelineMode) -> CompiledModel {
        PimCompiler::new(HardwareConfig::small_test())
            .compile(
                &models::tiny_cnn(),
                &CompileOptions::new(mode).with_fast_ga(3),
            )
            .unwrap()
    }

    #[test]
    fn ht_stream_contains_all_op_classes() {
        let compiled = compile(PipelineMode::HighThroughput);
        let stream = lower_to_ops(&compiled, 100_000);
        let (mem, mvm, vec, _comm) = stream.histogram();
        assert!(mem > 0, "loads/stores expected");
        assert!(mvm > 0, "MVMs expected");
        assert!(vec > 0, "VFU ops expected");
    }

    #[test]
    fn ht_mvm_count_matches_schedule() {
        let compiled = compile(PipelineMode::HighThroughput);
        let stream = lower_to_ops(&compiled, usize::MAX);
        assert!(!stream.truncated);
        let (_, mvm, _, _) = stream.histogram();
        let s = compiled.schedule.as_ht().unwrap();
        let expect: usize = s
            .programs
            .iter()
            .map(|p| p.rounds * s.batch * p.ag_instances.len())
            .sum();
        assert_eq!(mvm, expect);
    }

    #[test]
    fn truncation_is_flagged_and_bounded() {
        let compiled = compile(PipelineMode::HighThroughput);
        let stream = lower_to_ops(&compiled, 8);
        assert!(stream.truncated);
        for ops in &stream.per_core {
            // Small slack: a round's tail ops may pass the cap check once.
            assert!(ops.len() <= 8 + 64, "core stream too long: {}", ops.len());
        }
    }

    #[test]
    fn ll_stream_lowers_representative_windows() {
        let compiled = compile(PipelineMode::LowLatency);
        let stream = lower_to_ops(&compiled, 10_000);
        let (_, mvm, vec, _) = stream.histogram();
        assert!(mvm > 0);
        assert!(vec > 0);
    }

    #[test]
    fn rendering_is_stable() {
        let compiled = compile(PipelineMode::HighThroughput);
        let stream = lower_to_ops(&compiled, 64);
        let core = (0..stream.per_core.len())
            .find(|&c| !stream.per_core[c].is_empty())
            .expect("some active core");
        let text = stream.render_core(core);
        assert!(text.contains("MVM"));
        assert!(text.lines().count() == stream.per_core[core].len());
    }
}
