//! Node partitioning (paper Section IV-B, Fig. 4).
//!
//! Convolution and fully connected layers are unfolded into weight
//! matrices of height `kh·kw·Cin` and width `Cout`, then sliced
//! horizontally into **Array Groups** (AGs): each AG covers `Hxbar` rows
//! of the weight matrix and all `Cout` columns, occupying
//! `ceil(Cout / Wxbar)` crossbars. One replica of a node therefore owns
//! `ceil(height / Hxbar)` AGs, and every AG processes the node's
//! `Hout × Wout` sliding windows.

use crate::CompileError;
use pimcomp_arch::HardwareConfig;
use pimcomp_ir::{Graph, NodeId, Op};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Index of an MVM node within a [`Partitioning`] (topological order of
/// conv/fc nodes).
pub type MvmIdx = usize;

/// Partitioning result for one convolution / fully connected node (or
/// one *column group* of it, when `Cout` is too wide for a single-core
/// AG — see [`Partitioning::new`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePartition {
    /// The graph node this entry describes.
    pub node: NodeId,
    /// Node name (for reports); column groups are suffixed `[cK]`.
    pub name: String,
    /// Column group index (0 for unsplit nodes).
    pub col_group: usize,
    /// Total column groups of this node.
    pub col_groups: usize,
    /// Unfolded weight matrix height `kh·kw·Cin` — also the input-vector
    /// length of one sliding window.
    pub weight_height: usize,
    /// Width of this entry's weight matrix slice (`Cout` for unsplit
    /// nodes) — also the output elements per sliding window.
    pub weight_width: usize,
    /// AGs per replica: `ceil(weight_height / Hxbar)`.
    pub ags_per_replica: usize,
    /// Crossbars per AG: `ceil(weight_width / Wxbar)`.
    pub crossbars_per_ag: usize,
    /// Sliding windows (input cycles) per inference: `Hout × Wout`.
    pub windows: usize,
    /// Output feature height (windows are row-major over this extent).
    pub out_height: usize,
    /// Output feature width.
    pub out_width: usize,
}

impl NodePartition {
    /// Crossbars one replica occupies.
    pub fn crossbars_per_replica(&self) -> usize {
        self.ags_per_replica * self.crossbars_per_ag
    }

    /// Sliding windows each replica processes when the node is
    /// replicated `r` times (windows are divided evenly; the last
    /// replica may run fewer, the estimate uses the ceiling as the
    /// paper's Fig. 5 does).
    pub fn windows_per_replica(&self, r: usize) -> usize {
        self.windows.div_ceil(r.max(1))
    }

    /// Rows of this entry's weight matrix held by AG `slice`: the
    /// half-open range `[slice * Hxbar, slice * Hxbar + rows)` where
    /// `rows` is the returned count (`Hxbar` for full slices, the
    /// remainder for the last, zero past the end). The functional
    /// executor splits input vectors by exactly this geometry.
    pub fn slice_rows(&self, crossbar_rows: usize, slice: usize) -> usize {
        crate::schedule::slice_rows(self.weight_height, crossbar_rows, slice)
    }

    /// Bytes of input one sliding window consumes.
    pub fn input_bytes_per_window(&self, hw: &HardwareConfig) -> usize {
        self.weight_height * hw.input_bytes_per_element()
    }

    /// Bytes of output one sliding window produces.
    pub fn output_bytes_per_window(&self, hw: &HardwareConfig) -> usize {
        self.weight_width * hw.input_bytes_per_element()
    }
}

/// The node-partitioning stage output: one entry per MVM node, in
/// topological order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioning {
    entries: Vec<NodePartition>,
    #[serde(skip)]
    by_node: HashMap<NodeId, MvmIdx>,
}

impl Partitioning {
    /// Runs node partitioning over every conv/fc node of `graph`.
    ///
    /// The paper's placement invariant prefers all crossbars of one AG
    /// on one core. Nodes whose `Cout` would make one AG wider than a
    /// core's PIMMU are split into *column groups* (independent `Cout`
    /// slices sharing inputs; their outputs concatenate, no cross-group
    /// accumulation is needed) so that every AG fits a core.
    ///
    /// # Errors
    ///
    /// [`CompileError::NoMvmNodes`] when the graph has no conv/fc node;
    /// [`CompileError::UnboundSeqLen`] when the graph still carries a
    /// symbolic sequence dimension (window counts need fixed shapes —
    /// bind via [`pimcomp_ir::transform::bind_seq_len`] or compile
    /// through a session with `seq_len` set).
    pub fn new(graph: &Graph, hw: &HardwareConfig) -> Result<Self, CompileError> {
        if graph.has_symbolic_dims() {
            return Err(CompileError::UnboundSeqLen {
                model: graph.name().to_string(),
            });
        }
        let wxbar = hw.weight_cols_per_crossbar();
        let max_cols_per_group = hw.crossbar_capacity_per_core() * wxbar;
        let mut entries = Vec::new();
        for id in graph.mvm_nodes() {
            let node = graph.node(id);
            let (h, w) = match &node.op {
                Op::Conv2d(c) => (c.weight_matrix_height(), c.weight_matrix_width()),
                Op::Linear(l) => (l.weight_matrix_height(), l.weight_matrix_width()),
                Op::MatMul(m) => (m.weight_matrix_height(), m.weight_matrix_width()),
                _ => unreachable!("mvm_nodes returns only conv/fc/matmul"),
            };
            let (oh, ow) = (node.output_shape.height(), node.output_shape.width());
            let col_groups = w.div_ceil(max_cols_per_group);
            for g in 0..col_groups {
                let width = if g + 1 == col_groups {
                    w - g * max_cols_per_group
                } else {
                    max_cols_per_group
                };
                let name = if col_groups == 1 {
                    node.name.clone()
                } else {
                    format!("{}[c{g}]", node.name)
                };
                entries.push(NodePartition {
                    node: id,
                    name,
                    col_group: g,
                    col_groups,
                    weight_height: h,
                    weight_width: width,
                    ags_per_replica: h.div_ceil(hw.crossbar_rows),
                    crossbars_per_ag: width.div_ceil(wxbar),
                    windows: oh * ow,
                    out_height: oh,
                    out_width: ow,
                });
            }
        }
        if entries.is_empty() {
            return Err(CompileError::NoMvmNodes);
        }
        let mut by_node = HashMap::new();
        for (i, e) in entries.iter().enumerate() {
            by_node.entry(e.node).or_insert(i);
        }
        Ok(Partitioning { entries, by_node })
    }

    /// Number of MVM nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when there are no MVM nodes (never after successful
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry by MVM index.
    pub fn entry(&self, idx: MvmIdx) -> &NodePartition {
        &self.entries[idx]
    }

    /// All entries in topological order.
    pub fn entries(&self) -> &[NodePartition] {
        &self.entries
    }

    /// First MVM index of a graph node, if it is a partitioned node
    /// (column-split nodes have consecutive indices; see
    /// [`Partitioning::indices_of`]).
    pub fn index_of(&self, node: NodeId) -> Option<MvmIdx> {
        self.by_node.get(&node).copied().or_else(|| {
            // After deserialization the map is rebuilt lazily here.
            self.entries.iter().position(|e| e.node == node)
        })
    }

    /// All MVM indices belonging to a graph node (more than one for
    /// column-split nodes).
    pub fn indices_of(&self, node: NodeId) -> Vec<MvmIdx> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.node == node)
            .map(|(i, _)| i)
            .collect()
    }

    /// Minimum crossbars to hold one replica of every node.
    pub fn min_crossbars(&self) -> usize {
        self.entries.iter().map(|e| e.crossbars_per_replica()).sum()
    }
}

/// Placement of one Array-Group instance within a mapping epoch
/// (`weight_reload` mode; replication is fixed at 1, so an AG instance
/// is identified by `(mvm, slice)` alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochAssignment {
    /// Which partitioned node.
    pub mvm: MvmIdx,
    /// AG index within the node's single replica.
    pub slice: usize,
    /// Core holding this AG's crossbars during its epoch.
    pub core: usize,
}

/// Epoch decomposition of a model under a fixed crossbar budget
/// (`weight_reload` mode, COMPASS-style).
///
/// Execution proceeds epoch by epoch; between epochs the crossbars of
/// cores shared by several epochs are reprogrammed with the next
/// epoch's weights. A model that fits its budget yields a single epoch
/// and a zero-cost [`ReloadPlan`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochPlan {
    /// AG placements per epoch, in `(mvm, slice)` order within each.
    pub epochs: Vec<Vec<EpochAssignment>>,
    /// The crossbar budget the plan respects (clamped to the hardware's
    /// total crossbars).
    pub budget: usize,
    /// Cores `0..ring_cores` form the placement ring; no AG is placed
    /// outside it.
    pub ring_cores: usize,
}

impl EpochPlan {
    /// Packs every AG instance (replication 1) into capacity-feasible
    /// epochs over a fixed ring of cores.
    ///
    /// The ring spans cores `0..ceil(budget / capacity)` (clamped to
    /// the core count), each capped at the per-core capacity except the
    /// last, which absorbs the budget remainder. AG instances are
    /// visited in `(mvm, slice)` order and placed next-fit: a rotating
    /// pointer sticks to its current core until an AG no longer fits,
    /// then advances around the ring; when a full lap finds no room the
    /// epoch closes, every core's occupancy resets, and packing
    /// continues in a fresh epoch (the pointer persists so adjacent
    /// epochs start filling where the previous one stopped). The
    /// procedure is deterministic — no search, no randomness — so
    /// epoch plans are bit-identical across runs by construction.
    ///
    /// # Errors
    ///
    /// [`CompileError::ReloadBudgetTooSmall`] when `budget` cannot hold
    /// the widest single AG (the atomic placement unit).
    pub fn new(
        partitioning: &Partitioning,
        hw: &HardwareConfig,
        budget: usize,
    ) -> Result<Self, CompileError> {
        let capacity = hw.crossbar_capacity_per_core();
        let budget = budget.min(hw.total_crossbars());
        let min_ag = partitioning
            .entries()
            .iter()
            .map(|e| e.crossbars_per_ag)
            .max()
            .unwrap_or(0);
        if budget < min_ag {
            return Err(CompileError::ReloadBudgetTooSmall { budget, min_ag });
        }
        let ring_cores = budget.div_ceil(capacity).min(hw.total_cores());
        let cap_of = |core: usize| {
            if core + 1 == ring_cores && budget < ring_cores * capacity {
                budget - (ring_cores - 1) * capacity
            } else {
                capacity
            }
        };

        let mut epochs = Vec::new();
        let mut current: Vec<EpochAssignment> = Vec::new();
        let mut used = vec![0usize; ring_cores];
        let mut ptr = 0usize;
        for (mvm, entry) in partitioning.entries().iter().enumerate() {
            let w = entry.crossbars_per_ag;
            for slice in 0..entry.ags_per_replica {
                let mut placed = false;
                for step in 0..ring_cores {
                    let core = (ptr + step) % ring_cores;
                    if used[core] + w <= cap_of(core) {
                        used[core] += w;
                        ptr = core;
                        current.push(EpochAssignment { mvm, slice, core });
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    // Close the epoch and retry in a fresh one; the
                    // widest-AG check above guarantees it fits there.
                    epochs.push(std::mem::take(&mut current));
                    used.iter_mut().for_each(|u| *u = 0);
                    for step in 0..ring_cores {
                        let core = (ptr + step) % ring_cores;
                        if used[core] + w <= cap_of(core) {
                            used[core] += w;
                            ptr = core;
                            current.push(EpochAssignment { mvm, slice, core });
                            placed = true;
                            break;
                        }
                    }
                    debug_assert!(placed, "AG must fit an empty epoch");
                }
            }
        }
        if !current.is_empty() {
            epochs.push(current);
        }
        Ok(EpochPlan {
            epochs,
            budget,
            ring_cores,
        })
    }

    /// Number of epochs.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Derives the reload cost of this plan.
    ///
    /// Residency rule: a core shared by several epochs has its contents
    /// rewritten at every epoch boundary, so *all* its AGs are charged
    /// — including epoch 0's, because in steady state (one reload pass
    /// per inference round) even the first epoch's weights were
    /// overwritten by the previous pass. A core hosting AGs of exactly
    /// one epoch keeps its weights resident and is never rewritten; a
    /// single-epoch plan therefore costs nothing, matching ordinary
    /// compilation.
    ///
    /// Per AG, programming is row-serial but cell- and
    /// crossbar-parallel ([`HardwareConfig::xbar_write_cycles`]); cores
    /// write serially within themselves but in parallel with each
    /// other, so an epoch's stall is the maximum per-core write-cycle
    /// sum, and the plan total is the sum over epochs.
    ///
    /// Each epoch also carries an analytic per-inference compute
    /// estimate (`compute_cycles`): the Fig. 5 per-core busy-time model
    /// ([`ht_core_time`](crate::ht_fitness)'s kernel) applied to the
    /// epoch's resident AGs, maxed over cores. Epochs execute serially,
    /// so the simulator sums these instead of event-simulating an
    /// over-committed mapping (which would model all epochs as
    /// physically concurrent).
    pub fn reload_plan(&self, partitioning: &Partitioning, hw: &HardwareConfig) -> ReloadPlan {
        let mut core_epochs = vec![0usize; self.ring_cores];
        for epoch in &self.epochs {
            let mut seen = vec![false; self.ring_cores];
            for a in epoch {
                if !seen[a.core] {
                    seen[a.core] = true;
                    core_epochs[a.core] += 1;
                }
            }
        }
        let resident_core = |core: usize| core_epochs[core] <= 1;

        let cells_per_weight = hw.cells_per_weight();
        let mut epochs = Vec::with_capacity(self.epochs.len());
        let mut total_ags = 0usize;
        let mut total_cells = 0u64;
        let mut total_cycles = 0u64;
        let mut total_pj = 0.0f64;
        let mut total_compute = 0u64;
        for epoch in &self.epochs {
            let mut cost = EpochReloadCost::default();
            let mut per_core_cycles = vec![0u64; self.ring_cores];
            // (ag_count, windows) per (core, mvm) for the Fig. 5 model.
            let mut per_core_items: Vec<BTreeMap<MvmIdx, usize>> =
                vec![BTreeMap::new(); self.ring_cores];
            for a in epoch {
                let e = partitioning.entry(a.mvm);
                let rows = crate::schedule::slice_rows(e.weight_height, hw.crossbar_rows, a.slice);
                let cells = (rows * e.weight_width * cells_per_weight) as u64;
                if resident_core(a.core) {
                    cost.resident_cells += cells;
                } else {
                    cost.ags_written += 1;
                    cost.cells_written += cells;
                    per_core_cycles[a.core] += hw.xbar_write_cycles(rows);
                    cost.write_pj += cells as f64 * hw.xbar_write_pj_per_cell;
                }
                *per_core_items[a.core].entry(a.mvm).or_default() += 1;
            }
            cost.write_cycles = per_core_cycles.iter().copied().max().unwrap_or(0);
            cost.compute_cycles = per_core_items
                .iter()
                .map(|items| {
                    let items: Vec<(usize, usize)> = items
                        .iter()
                        .map(|(&mvm, &ags)| (ags, partitioning.entry(mvm).windows))
                        .collect();
                    crate::fitness::ht_core_time(hw, &items)
                })
                .max()
                .unwrap_or(0);
            total_ags += cost.ags_written;
            total_cells += cost.cells_written;
            total_cycles += cost.write_cycles;
            total_pj += cost.write_pj;
            total_compute += cost.compute_cycles;
            epochs.push(cost);
        }
        ReloadPlan {
            budget: self.budget,
            ring_cores: self.ring_cores,
            epochs,
            total_ags_written: total_ags,
            total_cells_written: total_cells,
            total_write_cycles: total_cycles,
            total_write_pj: total_pj,
            total_compute_cycles: total_compute,
        }
    }
}

/// Reload cost of one epoch of a [`ReloadPlan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct EpochReloadCost {
    /// AGs whose crossbars are reprogrammed entering this epoch.
    pub ags_written: usize,
    /// NVM cells those writes touch.
    pub cells_written: u64,
    /// Cells of this epoch's AGs that stay resident (single-epoch
    /// cores) and are never rewritten.
    pub resident_cells: u64,
    /// Stall cycles of the reload barrier: max per-core write time
    /// (cores program in parallel, rows within a core serially).
    pub write_cycles: u64,
    /// Write energy in pJ (`cells_written × xbar_write_pj_per_cell`).
    pub write_pj: f64,
    /// Analytic per-inference compute estimate for this epoch (Fig. 5
    /// per-core busy-time model, maxed over cores). Only consumed by
    /// multi-epoch plans — single-epoch models run the event-driven
    /// simulator instead (and resident plans record zero here).
    pub compute_cycles: u64,
}

/// The serialized reload schedule of a `weight_reload` compilation:
/// per-epoch write costs plus totals, derived from an [`EpochPlan`] by
/// [`EpochPlan::reload_plan`]. Stored in the
/// [`CompiledModel`](crate::CompiledModel) so artifacts carry the full
/// reload story and simulators/reports need no recomputation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReloadPlan {
    /// The crossbar budget the schedule respects.
    pub budget: usize,
    /// Cores forming the placement ring.
    pub ring_cores: usize,
    /// Per-epoch write costs, in execution order.
    pub epochs: Vec<EpochReloadCost>,
    /// Total AG rewrites per inference round.
    pub total_ags_written: usize,
    /// Total cells written per inference round.
    pub total_cells_written: u64,
    /// Total reload stall cycles per inference round (sum of the
    /// per-epoch barriers).
    pub total_write_cycles: u64,
    /// Total write energy per inference round, in pJ.
    pub total_write_pj: f64,
    /// Sum of the per-epoch analytic compute estimates (epochs execute
    /// serially). Zero in single-epoch plans.
    pub total_compute_cycles: u64,
}

impl ReloadPlan {
    /// Number of epochs.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// `true` when the model fit its budget in one epoch (no reload
    /// cost; the compilation is equivalent to an ordinary one).
    pub fn is_single_epoch(&self) -> bool {
        self.epochs.len() <= 1
    }
}

/// Sizes a chip count for `graph` on the `base` target: enough chips
/// for `headroom ×` the single-replica crossbar demand, leaving room
/// for weight replication. This is the headroom heuristic the bench
/// harness (`hardware_for`) and the sweep engine's `hardware: "auto"`
/// option share; `headroom` 2.0 is the harness default.
///
/// # Errors
///
/// Propagates partitioning failures ([`CompileError`]) — a graph with
/// no MVM nodes, or one whose Array Groups exceed a single core, cannot
/// be sized.
pub fn sized_chips(
    graph: &Graph,
    base: &HardwareConfig,
    headroom: f64,
) -> Result<usize, CompileError> {
    let p = Partitioning::new(graph, base)?;
    let per_chip = base.cores_per_chip * base.crossbars_per_core;
    let need = (p.min_crossbars() as f64 * headroom).ceil() as usize;
    Ok(need.div_ceil(per_chip).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimcomp_ir::{models, GraphBuilder};

    fn hw() -> HardwareConfig {
        HardwareConfig::puma() // 128 rows, 16 weight cols per crossbar
    }

    #[test]
    fn conv_partitioning_matches_fig4_formulas() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [64, 56, 56]);
        let c = b.conv2d("c", x, 128, (3, 3), (1, 1), (1, 1)).unwrap();
        let g = b.finish().unwrap();
        let p = Partitioning::new(&g, &hw()).unwrap();
        let e = p.entry(p.index_of(c).unwrap());
        assert_eq!(e.weight_height, 3 * 3 * 64); // 576
        assert_eq!(e.weight_width, 128);
        assert_eq!(e.ags_per_replica, 576usize.div_ceil(128)); // 5
        assert_eq!(e.crossbars_per_ag, 128usize.div_ceil(16)); // 8
        assert_eq!(e.windows, 56 * 56);
        assert_eq!(e.crossbars_per_replica(), 40);
    }

    #[test]
    fn fc_is_a_one_window_node() {
        let mut b = GraphBuilder::new("t");
        let x = b.input_flat("x", 512);
        let f = b.linear("fc", x, 100).unwrap();
        let g = b.finish().unwrap();
        let p = Partitioning::new(&g, &hw()).unwrap();
        let e = p.entry(p.index_of(f).unwrap());
        assert_eq!(e.windows, 1);
        assert_eq!(e.ags_per_replica, 4); // 512/128
        assert_eq!(e.crossbars_per_ag, 7); // ceil(100/16)
    }

    #[test]
    fn windows_split_evenly_across_replicas() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [3, 10, 10]);
        let c = b.conv2d("c", x, 8, (3, 3), (1, 1), (1, 1)).unwrap();
        let g = b.finish().unwrap();
        let p = Partitioning::new(&g, &hw()).unwrap();
        let e = p.entry(p.index_of(c).unwrap());
        assert_eq!(e.windows, 100);
        assert_eq!(e.windows_per_replica(1), 100);
        assert_eq!(e.windows_per_replica(3), 34);
        assert_eq!(e.windows_per_replica(100), 1);
        // More replicas than windows: still one window each.
        assert_eq!(e.windows_per_replica(1000), 1);
    }

    #[test]
    fn graph_without_mvm_nodes_is_rejected() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [3, 8, 8]);
        let _ = b.relu("r", x).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(
            Partitioning::new(&g, &hw()).unwrap_err(),
            CompileError::NoMvmNodes
        );
    }

    #[test]
    fn too_wide_nodes_split_into_column_groups() {
        // Cout beyond one core's AG width (64 crossbars * 16 cols =
        // 1024) splits: 2000 -> groups of 1024 + 976.
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [3, 8, 8]);
        let c = b.conv2d("c", x, 2000, (3, 3), (1, 1), (1, 1)).unwrap();
        let g = b.finish().unwrap();
        let p = Partitioning::new(&g, &hw()).unwrap();
        let idxs = p.indices_of(c);
        assert_eq!(idxs.len(), 2);
        assert_eq!(p.entry(idxs[0]).weight_width, 1024);
        assert_eq!(p.entry(idxs[1]).weight_width, 976);
        assert_eq!(p.entry(idxs[0]).crossbars_per_ag, 64);
        assert!(p.entry(idxs[0]).name.ends_with("[c0]"));
        // Column groups share windows and AG-per-replica structure.
        assert_eq!(p.entry(idxs[0]).windows, p.entry(idxs[1]).windows);
        assert_eq!(
            p.entry(idxs[0]).ags_per_replica,
            p.entry(idxs[1]).ags_per_replica
        );
    }

    #[test]
    fn vgg16_partitions_every_mvm_node() {
        let g = pimcomp_ir::transform::normalize(&models::vgg16()).unwrap();
        let p = Partitioning::new(&g, &hw()).unwrap();
        // 13 convs (one group each) + fc6/fc7 split 4-ways + fc8.
        assert_eq!(p.len(), 13 + 4 + 4 + 1);
        // fc6: 25088 x 4096 split into four 1024-wide column groups.
        let fc6 = p
            .entries()
            .iter()
            .find(|e| e.name == "fc6[c0]")
            .expect("fc6[c0] present");
        assert_eq!(fc6.weight_height, 25088);
        assert_eq!(fc6.ags_per_replica, 196);
        assert_eq!(fc6.crossbars_per_ag, 64);
        assert_eq!(fc6.col_groups, 4);
    }

    fn small_partitioning() -> (Partitioning, HardwareConfig) {
        let hw = HardwareConfig::small_test();
        let g = pimcomp_ir::transform::normalize(&models::tiny_cnn()).unwrap();
        let p = Partitioning::new(&g, &hw).unwrap();
        (p, hw)
    }

    #[test]
    fn epoch_plan_places_every_ag_exactly_once_within_budget() {
        let (p, hw) = small_partitioning();
        let budget = 32;
        let plan = EpochPlan::new(&p, &hw, budget).unwrap();
        assert!(
            plan.epoch_count() > 1,
            "tiny_cnn must overflow 32 crossbars"
        );
        // Every (mvm, slice) instance appears exactly once across all
        // epochs, on a ring core, and each epoch respects the budget.
        let mut seen = std::collections::BTreeSet::new();
        for epoch in &plan.epochs {
            let mut used = vec![0usize; plan.ring_cores];
            for a in epoch {
                assert!(a.core < plan.ring_cores);
                assert!(seen.insert((a.mvm, a.slice)), "duplicate placement");
                used[a.core] += p.entry(a.mvm).crossbars_per_ag;
            }
            assert!(used.iter().sum::<usize>() <= budget);
            for (core, &u) in used.iter().enumerate() {
                assert!(
                    u <= hw.crossbar_capacity_per_core(),
                    "core {core} over capacity"
                );
            }
        }
        let total: usize = p.entries().iter().map(|e| e.ags_per_replica).sum();
        assert_eq!(seen.len(), total);
    }

    #[test]
    fn epoch_plan_is_deterministic() {
        let (p, hw) = small_partitioning();
        let a = EpochPlan::new(&p, &hw, 32).unwrap();
        let b = EpochPlan::new(&p, &hw, 32).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn budget_below_widest_ag_is_a_structured_error() {
        let (p, hw) = small_partitioning();
        let min_ag = p
            .entries()
            .iter()
            .map(|e| e.crossbars_per_ag)
            .max()
            .unwrap();
        match EpochPlan::new(&p, &hw, min_ag - 1) {
            Err(CompileError::ReloadBudgetTooSmall { budget, min_ag: m }) => {
                assert_eq!((budget, m), (min_ag - 1, min_ag));
            }
            other => panic!("expected ReloadBudgetTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn fitting_budget_yields_single_zero_cost_epoch() {
        let (p, hw) = small_partitioning();
        let plan = EpochPlan::new(&p, &hw, hw.total_crossbars()).unwrap();
        assert_eq!(plan.epoch_count(), 1);
        let reload = plan.reload_plan(&p, &hw);
        assert!(reload.is_single_epoch());
        // Every core hosts AGs of exactly one epoch, so nothing is
        // ever rewritten (the analytic compute estimate is still
        // populated, but single-epoch models use the event-driven
        // simulator instead).
        assert_eq!(reload.total_ags_written, 0);
        assert_eq!(reload.total_cells_written, 0);
        assert_eq!(reload.total_write_cycles, 0);
        assert_eq!(reload.total_write_pj, 0.0);
    }

    #[test]
    fn multi_epoch_reload_cost_totals_are_the_epoch_sums() {
        let (p, hw) = small_partitioning();
        let plan = EpochPlan::new(&p, &hw, 32).unwrap();
        let reload = plan.reload_plan(&p, &hw);
        assert_eq!(reload.epoch_count(), plan.epoch_count());
        assert!(reload.total_write_cycles > 0);
        assert!(reload.total_write_pj > 0.0);
        // Serial epochs: every epoch contributes nonzero compute, and
        // the totals are exactly the per-epoch sums.
        assert!(reload.epochs.iter().all(|e| e.compute_cycles > 0));
        assert_eq!(
            reload.total_write_cycles,
            reload.epochs.iter().map(|e| e.write_cycles).sum::<u64>()
        );
        assert_eq!(
            reload.total_compute_cycles,
            reload.epochs.iter().map(|e| e.compute_cycles).sum::<u64>()
        );
        assert_eq!(
            reload.total_cells_written,
            reload.epochs.iter().map(|e| e.cells_written).sum::<u64>()
        );
    }

    #[test]
    fn oversized_budget_clamps_to_the_hardware() {
        let (p, hw) = small_partitioning();
        let plan = EpochPlan::new(&p, &hw, usize::MAX).unwrap();
        assert_eq!(plan.budget, hw.total_crossbars());
        assert_eq!(plan.epoch_count(), 1);
    }
}
