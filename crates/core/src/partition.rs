//! Node partitioning (paper Section IV-B, Fig. 4).
//!
//! Convolution and fully connected layers are unfolded into weight
//! matrices of height `kh·kw·Cin` and width `Cout`, then sliced
//! horizontally into **Array Groups** (AGs): each AG covers `Hxbar` rows
//! of the weight matrix and all `Cout` columns, occupying
//! `ceil(Cout / Wxbar)` crossbars. One replica of a node therefore owns
//! `ceil(height / Hxbar)` AGs, and every AG processes the node's
//! `Hout × Wout` sliding windows.

use crate::CompileError;
use pimcomp_arch::HardwareConfig;
use pimcomp_ir::{Graph, NodeId, Op};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of an MVM node within a [`Partitioning`] (topological order of
/// conv/fc nodes).
pub type MvmIdx = usize;

/// Partitioning result for one convolution / fully connected node (or
/// one *column group* of it, when `Cout` is too wide for a single-core
/// AG — see [`Partitioning::new`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePartition {
    /// The graph node this entry describes.
    pub node: NodeId,
    /// Node name (for reports); column groups are suffixed `[cK]`.
    pub name: String,
    /// Column group index (0 for unsplit nodes).
    pub col_group: usize,
    /// Total column groups of this node.
    pub col_groups: usize,
    /// Unfolded weight matrix height `kh·kw·Cin` — also the input-vector
    /// length of one sliding window.
    pub weight_height: usize,
    /// Width of this entry's weight matrix slice (`Cout` for unsplit
    /// nodes) — also the output elements per sliding window.
    pub weight_width: usize,
    /// AGs per replica: `ceil(weight_height / Hxbar)`.
    pub ags_per_replica: usize,
    /// Crossbars per AG: `ceil(weight_width / Wxbar)`.
    pub crossbars_per_ag: usize,
    /// Sliding windows (input cycles) per inference: `Hout × Wout`.
    pub windows: usize,
    /// Output feature height (windows are row-major over this extent).
    pub out_height: usize,
    /// Output feature width.
    pub out_width: usize,
}

impl NodePartition {
    /// Crossbars one replica occupies.
    pub fn crossbars_per_replica(&self) -> usize {
        self.ags_per_replica * self.crossbars_per_ag
    }

    /// Sliding windows each replica processes when the node is
    /// replicated `r` times (windows are divided evenly; the last
    /// replica may run fewer, the estimate uses the ceiling as the
    /// paper's Fig. 5 does).
    pub fn windows_per_replica(&self, r: usize) -> usize {
        self.windows.div_ceil(r.max(1))
    }

    /// Bytes of input one sliding window consumes.
    pub fn input_bytes_per_window(&self, hw: &HardwareConfig) -> usize {
        self.weight_height * hw.input_bytes_per_element()
    }

    /// Bytes of output one sliding window produces.
    pub fn output_bytes_per_window(&self, hw: &HardwareConfig) -> usize {
        self.weight_width * hw.input_bytes_per_element()
    }
}

/// The node-partitioning stage output: one entry per MVM node, in
/// topological order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioning {
    entries: Vec<NodePartition>,
    #[serde(skip)]
    by_node: HashMap<NodeId, MvmIdx>,
}

impl Partitioning {
    /// Runs node partitioning over every conv/fc node of `graph`.
    ///
    /// The paper's placement invariant prefers all crossbars of one AG
    /// on one core. Nodes whose `Cout` would make one AG wider than a
    /// core's PIMMU are split into *column groups* (independent `Cout`
    /// slices sharing inputs; their outputs concatenate, no cross-group
    /// accumulation is needed) so that every AG fits a core.
    ///
    /// # Errors
    ///
    /// [`CompileError::NoMvmNodes`] when the graph has no conv/fc node.
    pub fn new(graph: &Graph, hw: &HardwareConfig) -> Result<Self, CompileError> {
        let wxbar = hw.weight_cols_per_crossbar();
        let max_cols_per_group = hw.crossbar_capacity_per_core() * wxbar;
        let mut entries = Vec::new();
        for id in graph.mvm_nodes() {
            let node = graph.node(id);
            let (h, w) = match &node.op {
                Op::Conv2d(c) => (c.weight_matrix_height(), c.weight_matrix_width()),
                Op::Linear(l) => (l.weight_matrix_height(), l.weight_matrix_width()),
                _ => unreachable!("mvm_nodes returns only conv/fc"),
            };
            let (oh, ow) = (node.output_shape.height(), node.output_shape.width());
            let col_groups = w.div_ceil(max_cols_per_group);
            for g in 0..col_groups {
                let width = if g + 1 == col_groups {
                    w - g * max_cols_per_group
                } else {
                    max_cols_per_group
                };
                let name = if col_groups == 1 {
                    node.name.clone()
                } else {
                    format!("{}[c{g}]", node.name)
                };
                entries.push(NodePartition {
                    node: id,
                    name,
                    col_group: g,
                    col_groups,
                    weight_height: h,
                    weight_width: width,
                    ags_per_replica: h.div_ceil(hw.crossbar_rows),
                    crossbars_per_ag: width.div_ceil(wxbar),
                    windows: oh * ow,
                    out_height: oh,
                    out_width: ow,
                });
            }
        }
        if entries.is_empty() {
            return Err(CompileError::NoMvmNodes);
        }
        let mut by_node = HashMap::new();
        for (i, e) in entries.iter().enumerate() {
            by_node.entry(e.node).or_insert(i);
        }
        Ok(Partitioning { entries, by_node })
    }

    /// Number of MVM nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when there are no MVM nodes (never after successful
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry by MVM index.
    pub fn entry(&self, idx: MvmIdx) -> &NodePartition {
        &self.entries[idx]
    }

    /// All entries in topological order.
    pub fn entries(&self) -> &[NodePartition] {
        &self.entries
    }

    /// First MVM index of a graph node, if it is a partitioned node
    /// (column-split nodes have consecutive indices; see
    /// [`Partitioning::indices_of`]).
    pub fn index_of(&self, node: NodeId) -> Option<MvmIdx> {
        self.by_node.get(&node).copied().or_else(|| {
            // After deserialization the map is rebuilt lazily here.
            self.entries.iter().position(|e| e.node == node)
        })
    }

    /// All MVM indices belonging to a graph node (more than one for
    /// column-split nodes).
    pub fn indices_of(&self, node: NodeId) -> Vec<MvmIdx> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.node == node)
            .map(|(i, _)| i)
            .collect()
    }

    /// Minimum crossbars to hold one replica of every node.
    pub fn min_crossbars(&self) -> usize {
        self.entries.iter().map(|e| e.crossbars_per_replica()).sum()
    }
}

/// Sizes a chip count for `graph` on the `base` target: enough chips
/// for `headroom ×` the single-replica crossbar demand, leaving room
/// for weight replication. This is the headroom heuristic the bench
/// harness (`hardware_for`) and the sweep engine's `hardware: "auto"`
/// option share; `headroom` 2.0 is the harness default.
///
/// # Errors
///
/// Propagates partitioning failures ([`CompileError`]) — a graph with
/// no MVM nodes, or one whose Array Groups exceed a single core, cannot
/// be sized.
pub fn sized_chips(
    graph: &Graph,
    base: &HardwareConfig,
    headroom: f64,
) -> Result<usize, CompileError> {
    let p = Partitioning::new(graph, base)?;
    let per_chip = base.cores_per_chip * base.crossbars_per_core;
    let need = (p.min_crossbars() as f64 * headroom).ceil() as usize;
    Ok(need.div_ceil(per_chip).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimcomp_ir::{models, GraphBuilder};

    fn hw() -> HardwareConfig {
        HardwareConfig::puma() // 128 rows, 16 weight cols per crossbar
    }

    #[test]
    fn conv_partitioning_matches_fig4_formulas() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [64, 56, 56]);
        let c = b.conv2d("c", x, 128, (3, 3), (1, 1), (1, 1)).unwrap();
        let g = b.finish().unwrap();
        let p = Partitioning::new(&g, &hw()).unwrap();
        let e = p.entry(p.index_of(c).unwrap());
        assert_eq!(e.weight_height, 3 * 3 * 64); // 576
        assert_eq!(e.weight_width, 128);
        assert_eq!(e.ags_per_replica, 576usize.div_ceil(128)); // 5
        assert_eq!(e.crossbars_per_ag, 128usize.div_ceil(16)); // 8
        assert_eq!(e.windows, 56 * 56);
        assert_eq!(e.crossbars_per_replica(), 40);
    }

    #[test]
    fn fc_is_a_one_window_node() {
        let mut b = GraphBuilder::new("t");
        let x = b.input_flat("x", 512);
        let f = b.linear("fc", x, 100).unwrap();
        let g = b.finish().unwrap();
        let p = Partitioning::new(&g, &hw()).unwrap();
        let e = p.entry(p.index_of(f).unwrap());
        assert_eq!(e.windows, 1);
        assert_eq!(e.ags_per_replica, 4); // 512/128
        assert_eq!(e.crossbars_per_ag, 7); // ceil(100/16)
    }

    #[test]
    fn windows_split_evenly_across_replicas() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [3, 10, 10]);
        let c = b.conv2d("c", x, 8, (3, 3), (1, 1), (1, 1)).unwrap();
        let g = b.finish().unwrap();
        let p = Partitioning::new(&g, &hw()).unwrap();
        let e = p.entry(p.index_of(c).unwrap());
        assert_eq!(e.windows, 100);
        assert_eq!(e.windows_per_replica(1), 100);
        assert_eq!(e.windows_per_replica(3), 34);
        assert_eq!(e.windows_per_replica(100), 1);
        // More replicas than windows: still one window each.
        assert_eq!(e.windows_per_replica(1000), 1);
    }

    #[test]
    fn graph_without_mvm_nodes_is_rejected() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [3, 8, 8]);
        let _ = b.relu("r", x).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(
            Partitioning::new(&g, &hw()).unwrap_err(),
            CompileError::NoMvmNodes
        );
    }

    #[test]
    fn too_wide_nodes_split_into_column_groups() {
        // Cout beyond one core's AG width (64 crossbars * 16 cols =
        // 1024) splits: 2000 -> groups of 1024 + 976.
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", [3, 8, 8]);
        let c = b.conv2d("c", x, 2000, (3, 3), (1, 1), (1, 1)).unwrap();
        let g = b.finish().unwrap();
        let p = Partitioning::new(&g, &hw()).unwrap();
        let idxs = p.indices_of(c);
        assert_eq!(idxs.len(), 2);
        assert_eq!(p.entry(idxs[0]).weight_width, 1024);
        assert_eq!(p.entry(idxs[1]).weight_width, 976);
        assert_eq!(p.entry(idxs[0]).crossbars_per_ag, 64);
        assert!(p.entry(idxs[0]).name.ends_with("[c0]"));
        // Column groups share windows and AG-per-replica structure.
        assert_eq!(p.entry(idxs[0]).windows, p.entry(idxs[1]).windows);
        assert_eq!(
            p.entry(idxs[0]).ags_per_replica,
            p.entry(idxs[1]).ags_per_replica
        );
    }

    #[test]
    fn vgg16_partitions_every_mvm_node() {
        let g = pimcomp_ir::transform::normalize(&models::vgg16()).unwrap();
        let p = Partitioning::new(&g, &hw()).unwrap();
        // 13 convs (one group each) + fc6/fc7 split 4-ways + fc8.
        assert_eq!(p.len(), 13 + 4 + 4 + 1);
        // fc6: 25088 x 4096 split into four 1024-wide column groups.
        let fc6 = p
            .entries()
            .iter()
            .find(|e| e.name == "fc6[c0]")
            .expect("fc6[c0] present");
        assert_eq!(fc6.weight_height, 25088);
        assert_eq!(fc6.ags_per_replica, 196);
        assert_eq!(fc6.crossbars_per_ag, 64);
        assert_eq!(fc6.col_groups, 4);
    }
}
