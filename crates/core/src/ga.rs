//! The modified genetic algorithm jointly optimizing weight replication
//! and core mapping (paper Section IV-C).
//!
//! Individuals are [`Chromosome`]s (gene grids of
//! `core_num × max_node_num_in_core` slots). As in the paper, the
//! crossover phase is skipped — recombining two mappings almost never
//! yields a feasible mapping — and evolution proceeds through four
//! mutation operators:
//!
//! 1. **Grow**: increase a node's replication, placing the new replica's
//!    AGs on random cores with free capacity.
//! 2. **Shrink**: decrease a node's replication, returning its crossbars.
//! 3. **Spread**: move part of one gene's AGs to another core.
//! 4. **Merge**: fold one gene into a gene of the same node on another
//!    core.
//!
//! All operators preserve feasibility (crossbar capacity and per-core
//! node limits), so no penalty terms are needed.

use crate::fitness::{ht_fitness, ll_fitness_with_issue_floor};
use crate::mapping::{Chromosome, Gene};
use crate::partition::{MvmIdx, Partitioning};
use crate::waiting::DepInfo;
use crate::CompileError;
use pimcomp_arch::{HardwareConfig, PipelineMode};
use pimcomp_ir::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Genetic-algorithm hyper-parameters.
///
/// Defaults follow the paper's evaluation: population 100, 200
/// iterations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaParams {
    /// Population size (paper: 100).
    pub population: usize,
    /// Generation count (paper: 200).
    pub iterations: usize,
    /// RNG seed for reproducible compilations.
    pub seed: u64,
    /// Fraction of the population carried over unchanged each
    /// generation.
    pub elite_fraction: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Maximum mutation operators applied to one child.
    pub max_mutations_per_child: usize,
    /// Per-core distinct-node limit (`max_node_num_in_core`); `None`
    /// selects a heuristic based on node and core counts.
    pub max_nodes_per_core: Option<usize>,
}

impl Default for GaParams {
    fn default() -> Self {
        GaParams {
            population: 100,
            iterations: 200,
            seed: 0xC0FFEE,
            elite_fraction: 0.2,
            tournament: 3,
            max_mutations_per_child: 3,
            max_nodes_per_core: None,
        }
    }
}

impl GaParams {
    /// A down-scaled configuration for tests and examples (population
    /// 16, 24 iterations, given seed).
    pub fn fast(seed: u64) -> Self {
        GaParams {
            population: 16,
            iterations: 24,
            seed,
            ..Self::default()
        }
    }
}

/// Optimization trace returned alongside the best chromosome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaStats {
    /// Best fitness of the initial random population.
    pub initial_fitness: f64,
    /// Best fitness after the final generation.
    pub final_fitness: f64,
    /// Best fitness at each generation.
    pub history: Vec<f64>,
    /// Total fitness evaluations performed.
    pub evaluations: usize,
}

/// One generation's progress snapshot, delivered to
/// [`CompileObserver::on_ga_generation`](crate::CompileObserver::on_ga_generation)
/// while the GA runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaGeneration {
    /// Generation index (0-based).
    pub generation: usize,
    /// Total generations this run will execute.
    pub total_generations: usize,
    /// Best fitness in the population after this generation.
    pub best_fitness: f64,
    /// Cumulative fitness evaluations so far.
    pub evaluations: usize,
}

/// Everything the fitness functions need, bundled for reuse.
pub struct GaContext<'a> {
    /// Hardware target.
    pub hw: &'a HardwareConfig,
    /// The (normalized) graph.
    pub graph: &'a Graph,
    /// Node partitioning.
    pub partitioning: &'a Partitioning,
    /// Dependency/waiting analysis.
    pub dep: &'a DepInfo,
    /// Which fitness to optimize.
    pub mode: PipelineMode,
}

impl GaContext<'_> {
    /// Evaluates the mode's fitness for a chromosome (lower is better).
    ///
    /// # Errors
    ///
    /// Propagates invariant violations from replication derivation.
    pub fn fitness(&self, chromosome: &Chromosome) -> Result<f64, CompileError> {
        let plan = chromosome.replication(self.partitioning)?;
        Ok(match self.mode {
            PipelineMode::HighThroughput => {
                ht_fitness(self.hw, self.partitioning, chromosome, &plan)
            }
            PipelineMode::LowLatency => ll_fitness_with_issue_floor(
                self.hw,
                self.graph,
                self.partitioning,
                self.dep,
                chromosome,
                &plan,
            ),
        })
    }
}

/// A chromosome plus cached bookkeeping.
#[derive(Debug, Clone)]
struct Individual {
    chromosome: Chromosome,
    used_crossbars: Vec<usize>,
    fitness: f64,
}

/// Heuristic `max_node_num_in_core` when the user does not pin one.
pub fn default_max_nodes_per_core(nodes: usize, cores: usize) -> usize {
    ((2 * nodes).div_ceil(cores) + 2).clamp(4, nodes.max(4))
}

/// Runs the GA and returns the best chromosome with its trace.
///
/// # Errors
///
/// [`CompileError::InsufficientCapacity`] when even one replica of every
/// node cannot be placed.
pub fn optimize(
    ctx: &GaContext<'_>,
    params: &GaParams,
) -> Result<(Chromosome, GaStats), CompileError> {
    optimize_observed(ctx, params, &mut |_| {})
}

/// Runs the GA like [`optimize`], invoking `on_generation` after every
/// generation with a [`GaGeneration`] progress snapshot.
///
/// # Errors
///
/// [`CompileError::InsufficientCapacity`] when even one replica of every
/// node cannot be placed.
pub fn optimize_observed(
    ctx: &GaContext<'_>,
    params: &GaParams,
    on_generation: &mut dyn FnMut(GaGeneration),
) -> Result<(Chromosome, GaStats), CompileError> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let cores = ctx.hw.total_cores();
    let capacity = ctx.hw.crossbar_capacity_per_core();
    let max_nodes = params
        .max_nodes_per_core
        .unwrap_or_else(|| default_max_nodes_per_core(ctx.partitioning.len(), cores));

    let required = ctx.partitioning.min_crossbars();
    let available = cores * capacity;
    if required > available {
        return Err(CompileError::InsufficientCapacity {
            required,
            available,
        });
    }

    // Initial population: random replication numbers per node (the
    // paper's initialization), placed big-AGs-first so fragmentation
    // cannot strand them. Individual 0 stays at the minimum plan as a
    // safe anchor.
    let mut population = Vec::with_capacity(params.population);
    let mut evaluations = 0usize;
    for i in 0..params.population.max(1) {
        let randomize = i > 0;
        let mut ind = initial_individual(ctx, cores, max_nodes, capacity, randomize, &mut rng)?;
        ind.fitness = ctx.fitness(&ind.chromosome)?;
        evaluations += 1;
        population.push(ind);
    }

    population.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
    let initial_fitness = population[0].fitness;
    let mut history = Vec::with_capacity(params.iterations);

    let elite = ((params.population as f64 * params.elite_fraction).ceil() as usize)
        .clamp(1, params.population);

    for gen in 0..params.iterations {
        let mut next: Vec<Individual> = population[..elite].to_vec();
        while next.len() < params.population {
            let parent = tournament(&population, params.tournament, &mut rng);
            let mut child = parent.clone();
            let n_mut = rng.gen_range(1..=params.max_mutations_per_child);
            let mut changed = false;
            for _ in 0..n_mut {
                changed |= mutate(&mut child, ctx, capacity, &mut rng);
            }
            if changed {
                child.fitness = ctx.fitness(&child.chromosome)?;
                evaluations += 1;
            }
            next.push(child);
        }
        next.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
        next.truncate(params.population);
        population = next;
        history.push(population[0].fitness);
        on_generation(GaGeneration {
            generation: gen,
            total_generations: params.iterations,
            best_fitness: population[0].fitness,
            evaluations,
        });
    }

    let best = population.remove(0);
    let stats = GaStats {
        initial_fitness,
        final_fitness: best.fitness,
        history,
        evaluations,
    };
    Ok((best.chromosome, stats))
}

/// Builds a feasible individual. With `randomize` set, each node draws
/// a random power-of-two replication number (halved until it fits);
/// otherwise every node gets exactly one replica.
fn initial_individual(
    ctx: &GaContext<'_>,
    cores: usize,
    max_nodes: usize,
    capacity: usize,
    randomize: bool,
    rng: &mut StdRng,
) -> Result<Individual, CompileError> {
    let mut ind = Individual {
        chromosome: Chromosome::empty(cores, max_nodes),
        used_crossbars: vec![0; cores],
        fitness: f64::INFINITY,
    };
    // Pass 1: the mandatory replica of every node, wide-AG nodes first
    // so fragmentation cannot strand them.
    let mut order: Vec<MvmIdx> = (0..ctx.partitioning.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(ctx.partitioning.entry(i).crossbars_per_ag));
    for &mvm in &order {
        let a = ctx.partitioning.entry(mvm).ags_per_replica;
        // Random start first; deterministic first-fit as the fallback
        // so pass 1 only fails on true capacity exhaustion.
        if !place_ags(&mut ind, ctx, mvm, a, capacity, rng)
            && !place_ags_from(&mut ind, ctx, mvm, a, capacity, 0)
        {
            return Err(CompileError::InsufficientCapacity {
                required: ctx.partitioning.min_crossbars(),
                available: cores * capacity,
            });
        }
    }
    // Pass 2: random replication — the paper's initialization draws a
    // random replication number per node. Unstructured draws saturate
    // the crossbar budget and freeze every later mutation, so the draw
    // is structured: each individual samples a random *window target*
    // `t` (log-uniform) and replicates every node toward
    // `ceil(windows/t)`, stopping at ~85% occupancy so the mutation
    // operators always have room to move.
    if randomize {
        // A random fraction of individuals draw aggressive targets
        // (up to ~98% occupancy, where the balanced heuristic lives);
        // the rest keep slack so the mutation operators can move.
        let pct = *[98usize, 90, 75].choose(rng).expect("non-empty");
        let budget = (cores * capacity) * pct / 100;
        let max_windows = (0..ctx.partitioning.len())
            .map(|i| ctx.partitioning.entry(i).windows)
            .max()
            .unwrap_or(1)
            .max(1);
        let t_fit = fit_window_target(ctx.partitioning, budget, max_windows);
        // Log-uniform sample in [t_fit, max_windows], biased low (more
        // replication) by taking the min of two draws.
        let (lo, hi) = ((t_fit.max(1) as f64).ln(), (max_windows.max(2) as f64).ln());
        let draw = |rng: &mut StdRng| rng.gen_range(lo..=hi).exp().round().max(1.0) as usize;
        let t = draw(rng).min(draw(rng));
        let mut occupied: usize = ind.used_crossbars.iter().sum();
        for &mvm in &order {
            let entry = ctx.partitioning.entry(mvm);
            let a = entry.ags_per_replica;
            let want = entry.windows.div_ceil(t).max(1);
            let mut extra = want.saturating_sub(1).min(entry.windows.saturating_sub(1));
            // Respect the occupancy budget.
            let per_replica = entry.crossbars_per_replica().max(1);
            extra = extra.min(budget.saturating_sub(occupied) / per_replica);
            while extra > 0 {
                if place_ags(&mut ind, ctx, mvm, extra * a, capacity, rng) {
                    occupied += extra * per_replica;
                    break;
                }
                extra /= 2;
            }
        }
    }
    Ok(ind)
}

/// Smallest window target `t` whose windows-proportional replication
/// (`R = ceil(windows/t)`) fits the crossbar `budget`.
fn fit_window_target(partitioning: &Partitioning, budget: usize, max_windows: usize) -> usize {
    let cost = |t: usize| -> usize {
        (0..partitioning.len())
            .map(|i| {
                let e = partitioning.entry(i);
                e.windows.div_ceil(t) * e.crossbars_per_replica()
            })
            .sum()
    };
    let (mut lo, mut hi) = (1usize, max_windows);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if cost(mid) <= budget {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Tournament selection.
fn tournament<'a>(population: &'a [Individual], k: usize, rng: &mut StdRng) -> &'a Individual {
    let mut best = &population[rng.gen_range(0..population.len())];
    for _ in 1..k.max(1) {
        let cand = &population[rng.gen_range(0..population.len())];
        if cand.fitness < best.fitness {
            best = cand;
        }
    }
    best
}

/// Applies one random mutation operator; returns whether the chromosome
/// changed.
///
/// Node selection is criticality-biased in HT mode: half of the grow
/// operations target a node on the current bottleneck core, and half of
/// the shrinks target the most over-replicated node. Uniform-random
/// selection (the paper's wording) needs far more generations to walk
/// the `max`-objective plateau; the bias changes which node is drawn,
/// not what the operators do.
fn mutate(ind: &mut Individual, ctx: &GaContext<'_>, capacity: usize, rng: &mut StdRng) -> bool {
    let n = ctx.partitioning.len();
    match rng.gen_range(0..4u8) {
        0 => {
            let node = if ctx.mode == PipelineMode::HighThroughput && rng.gen_bool(0.5) {
                critical_node(ind, ctx).unwrap_or_else(|| rng.gen_range(0..n))
            } else {
                rng.gen_range(0..n)
            };
            mutate_grow(ind, ctx, node, capacity, rng)
        }
        1 => {
            let node = if rng.gen_bool(0.5) {
                over_replicated_node(ind, ctx).unwrap_or_else(|| rng.gen_range(0..n))
            } else {
                rng.gen_range(0..n)
            };
            mutate_shrink(ind, ctx, node, rng)
        }
        2 => mutate_spread(ind, ctx, capacity, rng),
        _ => mutate_merge(ind, ctx, capacity, rng),
    }
}

/// A node with AGs on the bottleneck core (largest estimated HT time),
/// preferring the gene with the largest cycle count there.
fn critical_node(ind: &Individual, ctx: &GaContext<'_>) -> Option<MvmIdx> {
    let plan = ind.chromosome.replication(ctx.partitioning).ok()?;
    let mut worst: Option<(u64, usize)> = None;
    let mut items: Vec<(usize, usize)> = Vec::new();
    for core in 0..ind.chromosome.cores() {
        items.clear();
        for (_, gene) in ind.chromosome.genes_of_core(core) {
            items.push((
                gene.ag_count,
                plan.windows_per_replica(ctx.partitioning, gene.mvm),
            ));
        }
        let t = crate::fitness::ht_core_time(ctx.hw, &items);
        if worst.is_none_or(|(w, _)| t > w) {
            worst = Some((t, core));
        }
    }
    let (_, core) = worst?;
    ind.chromosome
        .genes_of_core(core)
        .max_by_key(|(_, g)| plan.windows_per_replica(ctx.partitioning, g.mvm))
        .map(|(_, g)| g.mvm)
}

/// The replicated node with the smallest windows-per-replica (the most
/// over-replicated one; shrinking it frees the most useful capacity).
fn over_replicated_node(ind: &Individual, ctx: &GaContext<'_>) -> Option<MvmIdx> {
    let plan = ind.chromosome.replication(ctx.partitioning).ok()?;
    (0..ctx.partitioning.len())
        .filter(|&i| plan.count(i) > 1)
        .min_by_key(|&i| plan.windows_per_replica(ctx.partitioning, i))
}

/// Operator I: increase `node`'s replication, scattering the new AGs
/// onto cores with free capacity. The step size is geometric (up to
/// doubling the current count) so large targets are reachable in few
/// generations; falls back to +1, rolls back entirely on failure.
fn mutate_grow(
    ind: &mut Individual,
    ctx: &GaContext<'_>,
    node: MvmIdx,
    capacity: usize,
    rng: &mut StdRng,
) -> bool {
    let entry = ctx.partitioning.entry(node);
    let a = entry.ags_per_replica;
    let cur = ind.chromosome.ag_total(node) / a.max(1);
    // Replicating beyond one replica per window is pure waste.
    let headroom = entry.windows.saturating_sub(cur);
    if headroom == 0 {
        return false;
    }
    let mut amount = rng.gen_range(1..=cur.max(1)).min(headroom);
    while amount > 0 {
        if place_ags(ind, ctx, node, amount * a, capacity, rng) {
            if std::env::var("GA_DEBUG").is_ok() {
                eprintln!("grow ok node={node} amount={amount}");
            }
            return true;
        }
        amount /= 2;
    }
    if std::env::var("GA_DEBUG").is_ok() {
        let free_caps = ind
            .used_crossbars
            .iter()
            .filter(|&&u| u + entry.crossbars_per_ag <= capacity)
            .count();
        let free_slots = (0..ind.chromosome.cores())
            .filter(|&c| ind.chromosome.free_slot_of_core(c).is_some())
            .count();
        eprintln!("grow FAIL node={node} cur={cur} headroom={headroom} xb={} a={} cores_with_cap={free_caps} cores_with_slot={free_slots}", entry.crossbars_per_ag, entry.ags_per_replica);
    }
    false
}

/// Operator II: decrease `node`'s replication (geometric step, at least
/// one replica remains), recovering the crossbars from its genes.
fn mutate_shrink(
    ind: &mut Individual,
    ctx: &GaContext<'_>,
    node: MvmIdx,
    rng: &mut StdRng,
) -> bool {
    let entry = ctx.partitioning.entry(node);
    let a = entry.ags_per_replica;
    let total = ind.chromosome.ag_total(node);
    if total < 2 * a {
        return false; // last replica must stay
    }
    let cur = total / a;
    let amount = rng.gen_range(1..cur);
    let mut to_remove = amount * a;
    // Walk this node's gene slots in random order, shaving counts.
    let mut slots: Vec<usize> = ind
        .chromosome
        .genes()
        .filter(|(_, g)| g.mvm == node)
        .map(|(s, _)| s)
        .collect();
    slots.shuffle(rng);
    for slot in slots {
        if to_remove == 0 {
            break;
        }
        let gene = match ind.chromosome.gene(slot) {
            Some(g) => g,
            None => continue,
        };
        let take = gene.ag_count.min(to_remove);
        let core = ind.chromosome.core_of_slot(slot);
        ind.used_crossbars[core] -= take * entry.crossbars_per_ag;
        to_remove -= take;
        let left = gene.ag_count - take;
        ind.chromosome.set_gene(
            slot,
            (left > 0).then_some(Gene {
                mvm: node,
                ag_count: left,
            }),
        );
    }
    debug_assert_eq!(to_remove, 0);
    true
}

/// Operator III: spread part of a random gene's AGs to another core.
fn mutate_spread(
    ind: &mut Individual,
    ctx: &GaContext<'_>,
    capacity: usize,
    rng: &mut StdRng,
) -> bool {
    let genes: Vec<(usize, Gene)> = ind
        .chromosome
        .genes()
        .filter(|(_, g)| g.ag_count >= 2)
        .collect();
    let Some(&(slot, gene)) = genes.choose(rng) else {
        return false;
    };
    let entry = ctx.partitioning.entry(gene.mvm);
    let src_core = ind.chromosome.core_of_slot(slot);
    let move_n = rng.gen_range(1..gene.ag_count);
    let needed = move_n * entry.crossbars_per_ag;

    let cores = ind.chromosome.cores();
    let start = rng.gen_range(0..cores);
    for off in 0..cores {
        let dst = (start + off) % cores;
        if dst == src_core || ind.used_crossbars[dst] + needed > capacity {
            continue;
        }
        let dst_slot = ind
            .chromosome
            .slot_of_node_on_core(dst, gene.mvm)
            .or_else(|| ind.chromosome.free_slot_of_core(dst));
        let Some(dst_slot) = dst_slot else { continue };
        // Commit.
        let dst_count = ind.chromosome.gene(dst_slot).map_or(0, |g| g.ag_count);
        ind.chromosome.set_gene(
            dst_slot,
            Some(Gene {
                mvm: gene.mvm,
                ag_count: dst_count + move_n,
            }),
        );
        ind.chromosome.set_gene(
            slot,
            Some(Gene {
                mvm: gene.mvm,
                ag_count: gene.ag_count - move_n,
            }),
        );
        ind.used_crossbars[src_core] -= needed;
        ind.used_crossbars[dst] += needed;
        return true;
    }
    false
}

/// Operator IV: merge a whole gene into a gene of the same node on
/// another core.
fn mutate_merge(
    ind: &mut Individual,
    ctx: &GaContext<'_>,
    capacity: usize,
    rng: &mut StdRng,
) -> bool {
    let genes: Vec<(usize, Gene)> = ind.chromosome.genes().collect();
    let Some(&(slot, gene)) = genes.choose(rng) else {
        return false;
    };
    let entry = ctx.partitioning.entry(gene.mvm);
    let src_core = ind.chromosome.core_of_slot(slot);
    let needed = gene.ag_count * entry.crossbars_per_ag;

    // Candidate targets: other cores already hosting this node.
    let mut targets: Vec<(usize, Gene)> = genes
        .iter()
        .copied()
        .filter(|&(s, g)| g.mvm == gene.mvm && ind.chromosome.core_of_slot(s) != src_core)
        .collect();
    targets.shuffle(rng);
    for (dst_slot, dst_gene) in targets {
        let dst_core = ind.chromosome.core_of_slot(dst_slot);
        if ind.used_crossbars[dst_core] + needed > capacity {
            continue;
        }
        ind.chromosome.set_gene(
            dst_slot,
            Some(Gene {
                mvm: gene.mvm,
                ag_count: dst_gene.ag_count + gene.ag_count,
            }),
        );
        ind.chromosome.set_gene(slot, None);
        ind.used_crossbars[src_core] -= needed;
        ind.used_crossbars[dst_core] += needed;
        return true;
    }
    false
}

/// Places `count` AGs of `node` on cores with capacity and slot room,
/// scanning from a random start. Cores already hosting the node are
/// preferred (they need no fresh slot), which keeps slot pressure low.
/// All-or-nothing: rolls back on failure.
fn place_ags(
    ind: &mut Individual,
    ctx: &GaContext<'_>,
    node: MvmIdx,
    count: usize,
    capacity: usize,
    rng: &mut StdRng,
) -> bool {
    let cores = ind.chromosome.cores();
    let start = rng.gen_range(0..cores);
    place_ags_from(ind, ctx, node, count, capacity, start)
}

/// Deterministic variant of [`place_ags`] scanning from `start`.
fn place_ags_from(
    ind: &mut Individual,
    ctx: &GaContext<'_>,
    node: MvmIdx,
    count: usize,
    capacity: usize,
    start: usize,
) -> bool {
    let entry = ctx.partitioning.entry(node);
    let xb = entry.crossbars_per_ag;
    let cores = ind.chromosome.cores();
    let mut placed: Vec<usize> = Vec::with_capacity(count); // slots touched

    'outer: for _ in 0..count {
        // First pass: merge into a core already hosting the node.
        let mut fallback: Option<(usize, usize)> = None;
        for off in 0..cores {
            let core = (start + off) % cores;
            if ind.used_crossbars[core] + xb > capacity {
                continue;
            }
            if let Some(slot) = ind.chromosome.slot_of_node_on_core(core, node) {
                let cur = ind.chromosome.gene(slot).map_or(0, |g| g.ag_count);
                ind.chromosome.set_gene(
                    slot,
                    Some(Gene {
                        mvm: node,
                        ag_count: cur + 1,
                    }),
                );
                ind.used_crossbars[core] += xb;
                placed.push(slot);
                continue 'outer;
            }
            if fallback.is_none() {
                if let Some(slot) = ind.chromosome.free_slot_of_core(core) {
                    fallback = Some((core, slot));
                }
            }
        }
        // Second pass: open a fresh slot.
        if let Some((core, slot)) = fallback {
            ind.chromosome.set_gene(
                slot,
                Some(Gene {
                    mvm: node,
                    ag_count: 1,
                }),
            );
            ind.used_crossbars[core] += xb;
            placed.push(slot);
            continue 'outer;
        }
        // Could not place this AG: roll back everything.
        for &slot in placed.iter().rev() {
            let core = ind.chromosome.core_of_slot(slot);
            let gene = ind.chromosome.gene(slot).expect("just placed");
            ind.used_crossbars[core] -= xb;
            ind.chromosome.set_gene(
                slot,
                (gene.ag_count > 1).then_some(Gene {
                    mvm: node,
                    ag_count: gene.ag_count - 1,
                }),
            );
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimcomp_ir::models;
    use pimcomp_ir::transform::normalize;

    fn setup(mode: PipelineMode) -> (Graph, HardwareConfig) {
        let g = normalize(&models::tiny_cnn());
        let hw = HardwareConfig::small_test();
        let _ = mode;
        (g, hw)
    }

    fn run(mode: PipelineMode, seed: u64) -> (Chromosome, GaStats, Partitioning) {
        let (g, hw) = setup(mode);
        let p = Partitioning::new(&g, &hw).unwrap();
        let dep = DepInfo::analyze(&g);
        let ctx = GaContext {
            hw: &hw,
            graph: &g,
            partitioning: &p,
            dep: &dep,
            mode,
        };
        let (best, stats) = optimize(&ctx, &GaParams::fast(seed)).unwrap();
        (best, stats, p)
    }

    #[test]
    fn ga_improves_or_matches_initial_fitness_ht() {
        let (_, stats, _) = run(PipelineMode::HighThroughput, 1);
        assert!(stats.final_fitness <= stats.initial_fitness);
        assert!(stats.evaluations > 0);
        assert_eq!(stats.history.len(), GaParams::fast(1).iterations);
    }

    #[test]
    fn ga_improves_or_matches_initial_fitness_ll() {
        let (_, stats, _) = run(PipelineMode::LowLatency, 2);
        assert!(stats.final_fitness <= stats.initial_fitness);
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let (a, _, _) = run(PipelineMode::HighThroughput, 42);
        let (b, _, _) = run(PipelineMode::HighThroughput, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn best_chromosome_is_feasible() {
        let (best, _, p) = run(PipelineMode::HighThroughput, 7);
        let hw = HardwareConfig::small_test();
        let used = best.used_crossbars(&p);
        assert!(used.iter().all(|&u| u <= hw.crossbar_capacity_per_core()));
        let plan = best.replication(&p).unwrap();
        assert!(plan.counts().iter().all(|&r| r >= 1));
        let mapping = crate::mapping::CoreMapping::from_chromosome(&best, &p).unwrap();
        mapping.validate(&p).unwrap();
    }

    #[test]
    fn ga_exploits_replication_when_capacity_allows() {
        // tiny_cnn on the small target leaves plenty of room, so the GA
        // should end with at least one node replicated.
        let (best, _, p) = run(PipelineMode::HighThroughput, 3);
        let plan = best.replication(&p).unwrap();
        assert!(
            plan.counts().iter().any(|&r| r > 1),
            "expected some replication, got {:?}",
            plan.counts()
        );
    }

    #[test]
    fn insufficient_capacity_is_reported() {
        let g = normalize(&models::vgg16());
        let hw = HardwareConfig::small_test(); // far too small for vgg16
        let p = Partitioning::new(&g, &hw).unwrap();
        let dep = DepInfo::analyze(&g);
        let ctx = GaContext {
            hw: &hw,
            graph: &g,
            partitioning: &p,
            dep: &dep,
            mode: PipelineMode::HighThroughput,
        };
        assert!(matches!(
            optimize(&ctx, &GaParams::fast(1)),
            Err(CompileError::InsufficientCapacity { .. })
        ));
    }
}
