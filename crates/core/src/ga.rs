//! The modified genetic algorithm jointly optimizing weight replication
//! and core mapping (paper Section IV-C).
//!
//! Individuals are [`Chromosome`]s (gene grids of
//! `core_num × max_node_num_in_core` slots). As in the paper, the
//! crossover phase is skipped — recombining two mappings almost never
//! yields a feasible mapping — and evolution proceeds through four
//! mutation operators:
//!
//! 1. **Grow**: increase a node's replication, placing the new replica's
//!    AGs on random cores with free capacity.
//! 2. **Shrink**: decrease a node's replication, returning its crossbars.
//! 3. **Spread**: move part of one gene's AGs to another core.
//! 4. **Merge**: fold one gene into a gene of the same node on another
//!    core.
//!
//! All operators preserve feasibility (crossbar capacity and per-core
//! node limits), so no penalty terms are needed.
//!
//! # The evaluation engine
//!
//! Fitness evaluation dominates compile time, so the engine is built
//! for parallel, incremental, memoized evaluation while staying
//! **deterministic to the bit** for a given [`GaParams::seed`]:
//!
//! * **Seed-stream splitting** — every initial individual and every
//!   offspring slot of every generation owns a private [`StdRng`]
//!   seeded by SplitMix64-mixing the master seed with the (generation,
//!   slot) pair. No RNG is ever shared, so the random choices a slot
//!   makes cannot depend on scheduling.
//! * **Batched offspring** — each generation derives its full offspring
//!   batch (selection + mutation) up front against the immutable parent
//!   population, then evaluates the batch across a scoped worker pool
//!   ([`GaParams::parallelism`]) with an index-ordered reduction.
//!   Serial and parallel runs share one code path, so any thread count
//!   (including 1) produces bit-identical populations and
//!   [`GaStats`].
//! * **Memoization + incrementality** — results are cached by
//!   [chromosome fingerprint](Chromosome::fingerprint)
//!   ([`FitnessMemo`](crate::FitnessMemo)), and offspring that differ
//!   from their parent in a few genes are re-evaluated incrementally
//!   (per-core recomputation in HT mode, chain-estimate reuse in LL
//!   mode) — exactly, not approximately.

use crate::fitness::{
    compute_fitness, ht_fitness, ll_fitness_with_issue_floor, EvalBasis, EvalKind, EvalScratch,
    FitnessMemo,
};
use crate::mapping::{Chromosome, Gene};
use crate::parallel::run_indexed_with;
use crate::partition::{MvmIdx, Partitioning};
use crate::waiting::DepInfo;
use crate::CompileError;
use pimcomp_arch::{HardwareConfig, PipelineMode};
use pimcomp_ir::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::num::NonZeroUsize;
use std::sync::Arc;

/// Genetic-algorithm hyper-parameters.
///
/// Defaults follow the paper's evaluation: population 100, 200
/// iterations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaParams {
    /// Population size (paper: 100).
    pub population: usize,
    /// Generation count (paper: 200).
    pub iterations: usize,
    /// RNG seed for reproducible compilations.
    pub seed: u64,
    /// Fraction of the population carried over unchanged each
    /// generation.
    pub elite_fraction: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Maximum mutation operators applied to one child.
    pub max_mutations_per_child: usize,
    /// Per-core distinct-node limit (`max_node_num_in_core`); `None`
    /// selects a heuristic based on node and core counts.
    pub max_nodes_per_core: Option<usize>,
    /// Worker threads for offspring construction and fitness
    /// evaluation. `None` (the default) runs serially on the calling
    /// thread.
    ///
    /// **Determinism contract (seed-stream splitting).** The result is
    /// bit-identical for every setting: each initial individual and
    /// each offspring slot of each generation draws from its own
    /// [`StdRng`] stream whose seed is derived from [`GaParams::seed`]
    /// and the (generation, slot) pair by a SplitMix64-style mix —
    /// never from a shared generator — fitness evaluation is a pure
    /// function of the chromosome, and batch results are reduced in
    /// slot order. Parallelism therefore changes wall-clock time only,
    /// never the compiled mapping or the [`GaStats`] trace.
    ///
    /// When this field is `None`, the `PIMCOMP_GA_THREADS` environment
    /// variable (a positive integer) supplies the default instead — CI
    /// uses it to run the whole test suite through both the serial and
    /// the parallel path. An explicit `Some(n)` always wins, so tests
    /// and benchmarks that compare thread counts stay meaningful under
    /// the override.
    pub parallelism: Option<NonZeroUsize>,
}

impl Default for GaParams {
    fn default() -> Self {
        GaParams {
            population: 100,
            iterations: 200,
            seed: 0xC0FFEE,
            elite_fraction: 0.2,
            tournament: 3,
            max_mutations_per_child: 3,
            max_nodes_per_core: None,
            parallelism: None,
        }
    }
}

impl GaParams {
    /// A down-scaled configuration for tests and examples (population
    /// 16, 24 iterations, given seed).
    pub fn fast(seed: u64) -> Self {
        GaParams {
            population: 16,
            iterations: 24,
            seed,
            ..Self::default()
        }
    }

    /// Sets the worker-thread count (see [`GaParams::parallelism`]).
    #[must_use]
    pub fn with_parallelism(mut self, threads: Option<NonZeroUsize>) -> Self {
        self.parallelism = threads;
        self
    }
}

/// The worker-thread count a run will actually use:
/// [`GaParams::parallelism`] when explicitly set, else the
/// `PIMCOMP_GA_THREADS` environment default (a positive integer),
/// else 1.
pub fn effective_parallelism(params: &GaParams) -> usize {
    if let Some(n) = params.parallelism {
        return n.get();
    }
    if let Ok(raw) = std::env::var("PIMCOMP_GA_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    1
}

/// Derives the seed of one private RNG stream from the master seed
/// (SplitMix64-style avalanche over the `(stage, index)` pair; stage 0
/// is population initialization, stage `g + 1` is generation `g`).
fn stream_seed(master: u64, stage: u64, index: u64) -> u64 {
    let mut z = master
        ^ stage.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Splits a deterministic child seed from `master` for the stream
/// addressed by `(stage, index)` — the same SplitMix64-style avalanche
/// the GA uses internally for its per-offspring RNG streams (see
/// [`GaParams::parallelism`]).
///
/// Exposed for drivers that fan deterministic work out over many
/// compilations (the design-space exploration engine derives each sweep
/// point's GA seed this way), so results stay bit-identical for any
/// thread count or evaluation order.
pub fn split_stream_seed(master: u64, stage: u64, index: u64) -> u64 {
    stream_seed(master, stage, index)
}

/// Optimization trace returned alongside the best chromosome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaStats {
    /// Best fitness of the initial random population.
    pub initial_fitness: f64,
    /// Best fitness after the final generation.
    pub final_fitness: f64,
    /// Best fitness at each generation.
    pub history: Vec<f64>,
    /// Total fitness evaluations computed (full + incremental;
    /// memo-cache hits are *not* evaluations).
    pub evaluations: usize,
    /// Evaluations computed from scratch (initial population, and
    /// offspring whose parent basis could not be reused).
    pub full_evals: usize,
    /// Evaluations computed incrementally from the parent's basis
    /// (dirty-core recomputation in HT mode, chain reuse in LL mode).
    pub incremental_evals: usize,
    /// Offspring answered from the fitness memo cache without any
    /// computation.
    pub cache_hits: usize,
    /// Fitness evaluations computed in each generation (the initial
    /// population is excluded; it accounts for
    /// `evaluations - evals_per_generation.sum()`).
    pub evals_per_generation: Vec<usize>,
    /// Grow mutations that placed at least one additional replica.
    pub grow_successes: usize,
    /// Grow mutations that found headroom but could not place anything
    /// (capacity or per-core slot exhaustion). A high ratio of failures
    /// to successes means the population is wedged against the crossbar
    /// budget — the diagnostic `GA_DEBUG` stderr prints used to carry.
    pub grow_failures: usize,
}

/// One generation's progress snapshot, delivered to
/// [`CompileObserver::on_ga_generation`](crate::CompileObserver::on_ga_generation)
/// while the GA runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaGeneration {
    /// Generation index (0-based).
    pub generation: usize,
    /// Total generations this run will execute.
    pub total_generations: usize,
    /// Best fitness in the population after this generation.
    pub best_fitness: f64,
    /// Cumulative fitness evaluations so far.
    pub evaluations: usize,
    /// Cumulative fitness-memo cache hits so far.
    pub cache_hits: usize,
    /// Cumulative grow mutations that succeeded so far (see
    /// [`GaStats::grow_successes`]).
    pub grow_successes: usize,
    /// Cumulative grow mutations that failed so far (see
    /// [`GaStats::grow_failures`]).
    pub grow_failures: usize,
}

/// Everything the fitness functions need, bundled for reuse.
pub struct GaContext<'a> {
    /// Hardware target.
    pub hw: &'a HardwareConfig,
    /// The (normalized) graph.
    pub graph: &'a Graph,
    /// Node partitioning.
    pub partitioning: &'a Partitioning,
    /// Dependency/waiting analysis.
    pub dep: &'a DepInfo,
    /// Which fitness to optimize.
    pub mode: PipelineMode,
    /// Restricts the search to cores `0..limit` (`None` = every core).
    /// Used by `weight_reload` compilations whose crossbar budget is
    /// smaller than the chip, so the GA packs into the budgeted prefix
    /// of cores; downstream stages size arrays by the full core count,
    /// so a limited chromosome simply leaves the tail cores empty.
    pub core_limit: Option<usize>,
}

impl GaContext<'_> {
    /// Cores available to the search: the hardware's core count, or the
    /// `core_limit` prefix when one is set (never more than the chip
    /// has).
    pub fn cores(&self) -> usize {
        let total = self.hw.total_cores();
        self.core_limit.map_or(total, |l| l.min(total)).max(1)
    }

    /// Evaluates the mode's fitness for a chromosome from scratch
    /// (lower is better). This is the reference implementation the
    /// memoized/incremental engine ([`FitnessMemo`](crate::FitnessMemo))
    /// must match bit-for-bit.
    ///
    /// # Errors
    ///
    /// Propagates invariant violations from replication derivation.
    pub fn fitness(&self, chromosome: &Chromosome) -> Result<f64, CompileError> {
        let plan = chromosome.replication(self.partitioning)?;
        Ok(match self.mode {
            PipelineMode::HighThroughput => {
                ht_fitness(self.hw, self.partitioning, chromosome, &plan)
            }
            PipelineMode::LowLatency => ll_fitness_with_issue_floor(
                self.hw,
                self.graph,
                self.partitioning,
                self.dep,
                chromosome,
                &plan,
            ),
        })
    }
}

/// The mutable state the mutation operators work on: a chromosome plus
/// the per-core crossbar occupancy they keep in sync.
#[derive(Debug, Clone)]
struct Draft {
    chromosome: Chromosome,
    used_crossbars: Vec<usize>,
}

/// A population member: a draft plus its evaluation result.
#[derive(Debug, Clone)]
struct Individual {
    draft: Draft,
    fitness: f64,
    fingerprint: u128,
    basis: Arc<EvalBasis>,
}

/// How an offspring obtained its fitness (tallied into [`GaStats`]).
enum OffspringSource {
    /// No mutation applied; the parent's result carries over.
    Unchanged,
    /// Answered by the fitness memo.
    CacheHit,
    /// Computed (fully or incrementally).
    Evaluated(EvalKind),
}

/// Per-offspring mutation-operator diagnostics, carried back from the
/// worker and reduced in slot order so the tallies are deterministic
/// for any thread count. This replaces the old `GA_DEBUG` stderr
/// prints, which read `std::env::var` inside the hot mutation loop and
/// wrote diagnostics from a library crate; the tallies now flow through
/// [`GaStats`] and the [`GaGeneration`] observer snapshot instead.
#[derive(Debug, Clone, Copy, Default)]
struct MutationTally {
    grow_ok: usize,
    grow_failed: usize,
}

/// One derived-and-evaluated offspring, produced by a worker.
struct Offspring {
    draft: Draft,
    fitness: f64,
    fingerprint: u128,
    basis: Arc<EvalBasis>,
    source: OffspringSource,
    tally: MutationTally,
}

/// Reusable per-worker buffers for offspring derivation. Purely an
/// allocation cache (cleared before every use), so reuse across
/// offspring slots never changes results.
#[derive(Default)]
struct MutScratch {
    /// Candidate gene lists (spread source genes, merge genes).
    genes: Vec<(usize, Gene)>,
    /// Merge target genes.
    targets: Vec<(usize, Gene)>,
    /// Shrink slot walk order.
    slots: Vec<usize>,
    /// `(ag_count, cycles)` per-core items for `critical_node`.
    items: Vec<(usize, usize)>,
}

/// Everything one evaluation worker reuses across its offspring slots.
#[derive(Default)]
struct WorkerScratch {
    eval: EvalScratch,
    mutation: MutScratch,
}

/// Heuristic `max_node_num_in_core` when the user does not pin one.
pub fn default_max_nodes_per_core(nodes: usize, cores: usize) -> usize {
    ((2 * nodes).div_ceil(cores) + 2).clamp(4, nodes.max(4))
}

/// Runs the GA and returns the best chromosome with its trace.
///
/// # Errors
///
/// [`CompileError::InsufficientCapacity`] when even one replica of every
/// node cannot be placed.
pub fn optimize(
    ctx: &GaContext<'_>,
    params: &GaParams,
) -> Result<(Chromosome, GaStats), CompileError> {
    optimize_observed(ctx, params, &mut |_| {})
}

/// Runs the GA like [`optimize`], invoking `on_generation` after every
/// generation with a [`GaGeneration`] progress snapshot.
///
/// # Errors
///
/// [`CompileError::InsufficientCapacity`] when even one replica of every
/// node cannot be placed.
pub fn optimize_observed(
    ctx: &GaContext<'_>,
    params: &GaParams,
    on_generation: &mut dyn FnMut(GaGeneration),
) -> Result<(Chromosome, GaStats), CompileError> {
    let cores = ctx.cores();
    let capacity = ctx.hw.crossbar_capacity_per_core();
    let max_nodes = params
        .max_nodes_per_core
        .unwrap_or_else(|| default_max_nodes_per_core(ctx.partitioning.len(), cores));

    let required = ctx.partitioning.min_crossbars();
    let available = cores * capacity;
    if required > available {
        return Err(CompileError::InsufficientCapacity {
            required,
            available,
        });
    }

    let threads = effective_parallelism(params);
    let mut memo = FitnessMemo::new(ctx);
    let pop_n = params.population.max(1);

    // Initial population: random replication numbers per node (the
    // paper's initialization), placed big-AGs-first so fragmentation
    // cannot strand them. Individual 0 stays at the minimum plan as a
    // safe anchor. Every individual derives from its own seed stream
    // and is evaluated from scratch across the worker pool.
    let built = run_indexed_with(threads, pop_n, EvalScratch::default, |scratch, i| {
        let mut rng = StdRng::seed_from_u64(stream_seed(params.seed, 0, i as u64));
        let draft = initial_draft(ctx, cores, max_nodes, capacity, i > 0, &mut rng)?;
        let (fitness, basis, _) = compute_fitness(ctx, &draft.chromosome, None, scratch)?;
        Ok::<_, CompileError>((draft, fitness, basis))
    });
    let mut population: Vec<Individual> = Vec::with_capacity(pop_n);
    for result in built {
        let (draft, fitness, basis) = result?;
        let fingerprint = draft.chromosome.fingerprint();
        let basis = Arc::new(basis);
        memo.observe(EvalKind::Full);
        memo.record(fingerprint, fitness, basis.clone());
        population.push(Individual {
            draft,
            fitness,
            fingerprint,
            basis,
        });
    }

    population.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
    let initial_fitness = population[0].fitness;
    let mut history = Vec::with_capacity(params.iterations);
    let mut evals_per_generation = Vec::with_capacity(params.iterations);
    let mut grow_successes = 0usize;
    let mut grow_failures = 0usize;

    let elite =
        ((params.population as f64 * params.elite_fraction).ceil() as usize).clamp(1, pop_n);

    for gen in 0..params.iterations {
        let offspring_n = pop_n - elite;
        let evals_before = memo.full_evals() + memo.incremental_evals();

        // Derive and evaluate the whole offspring batch against the
        // immutable parent population; each slot owns its RNG stream.
        let results = run_indexed_with(threads, offspring_n, WorkerScratch::default, |ws, slot| {
            let scratch = &mut ws.eval;
            let mut rng =
                StdRng::seed_from_u64(stream_seed(params.seed, gen as u64 + 1, slot as u64));
            let parent = tournament(&population, params.tournament, &mut rng);
            let mut draft = parent.draft.clone();
            let n_mut = rng.gen_range(1..=params.max_mutations_per_child);
            let mut changed = false;
            let mut tally = MutationTally::default();
            for _ in 0..n_mut {
                changed |= mutate(
                    &mut draft,
                    ctx,
                    capacity,
                    &mut rng,
                    &mut tally,
                    &mut ws.mutation,
                );
            }
            if !changed {
                return Ok(Offspring {
                    draft,
                    fitness: parent.fitness,
                    fingerprint: parent.fingerprint,
                    basis: parent.basis.clone(),
                    source: OffspringSource::Unchanged,
                    tally,
                });
            }
            let fingerprint = draft.chromosome.fingerprint();
            if let Some(entry) = memo.lookup(fingerprint) {
                return Ok(Offspring {
                    draft,
                    fitness: entry.fitness,
                    fingerprint,
                    basis: entry.basis.clone(),
                    source: OffspringSource::CacheHit,
                    tally,
                });
            }
            let (fitness, basis, kind) = compute_fitness(
                ctx,
                &draft.chromosome,
                Some((&parent.draft.chromosome, &parent.basis)),
                scratch,
            )?;
            Ok::<_, CompileError>(Offspring {
                draft,
                fitness,
                fingerprint,
                basis: Arc::new(basis),
                source: OffspringSource::Evaluated(kind),
                tally,
            })
        });

        // Index-ordered reduction: tally stats and fill the memo in
        // slot order, so the outcome is independent of thread count.
        let mut next: Vec<Individual> = population[..elite].to_vec();
        for result in results {
            let off = result?;
            grow_successes += off.tally.grow_ok;
            grow_failures += off.tally.grow_failed;
            match off.source {
                OffspringSource::Unchanged => {}
                OffspringSource::CacheHit => memo.observe_hit(),
                OffspringSource::Evaluated(kind) => {
                    memo.observe(kind);
                    memo.record(off.fingerprint, off.fitness, off.basis.clone());
                }
            }
            next.push(Individual {
                draft: off.draft,
                fitness: off.fitness,
                fingerprint: off.fingerprint,
                basis: off.basis,
            });
        }
        next.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
        population = next;
        history.push(population[0].fitness);
        evals_per_generation.push(memo.full_evals() + memo.incremental_evals() - evals_before);
        on_generation(GaGeneration {
            generation: gen,
            total_generations: params.iterations,
            best_fitness: population[0].fitness,
            evaluations: memo.full_evals() + memo.incremental_evals(),
            cache_hits: memo.cache_hits(),
            grow_successes,
            grow_failures,
        });
    }

    let best = population.remove(0);
    let stats = GaStats {
        initial_fitness,
        final_fitness: best.fitness,
        history,
        evaluations: memo.full_evals() + memo.incremental_evals(),
        full_evals: memo.full_evals(),
        incremental_evals: memo.incremental_evals(),
        cache_hits: memo.cache_hits(),
        evals_per_generation,
        grow_successes,
        grow_failures,
    };
    Ok((best.draft.chromosome, stats))
}

/// Builds a feasible draft. With `randomize` set, each node draws
/// a random power-of-two replication number (halved until it fits);
/// otherwise every node gets exactly one replica.
fn initial_draft(
    ctx: &GaContext<'_>,
    cores: usize,
    max_nodes: usize,
    capacity: usize,
    randomize: bool,
    rng: &mut StdRng,
) -> Result<Draft, CompileError> {
    let mut ind = Draft {
        chromosome: Chromosome::empty(cores, max_nodes),
        used_crossbars: vec![0; cores],
    };
    // Pass 1: the mandatory replica of every node, wide-AG nodes first
    // so fragmentation cannot strand them.
    let mut order: Vec<MvmIdx> = (0..ctx.partitioning.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(ctx.partitioning.entry(i).crossbars_per_ag));
    for &mvm in &order {
        let a = ctx.partitioning.entry(mvm).ags_per_replica;
        // Random start first; deterministic first-fit as the fallback
        // so pass 1 only fails on true capacity exhaustion.
        if !place_ags(&mut ind, ctx, mvm, a, capacity, rng)
            && !place_ags_from(&mut ind, ctx, mvm, a, capacity, 0)
        {
            return Err(CompileError::InsufficientCapacity {
                required: ctx.partitioning.min_crossbars(),
                available: cores * capacity,
            });
        }
    }
    // Pass 2: random replication — the paper's initialization draws a
    // random replication number per node. Unstructured draws saturate
    // the crossbar budget and freeze every later mutation, so the draw
    // is structured: each individual samples a random *window target*
    // `t` (log-uniform) and replicates every node toward
    // `ceil(windows/t)`, stopping at ~85% occupancy so the mutation
    // operators always have room to move.
    if randomize {
        // A random fraction of individuals draw aggressive targets
        // (up to ~98% occupancy, where the balanced heuristic lives);
        // the rest keep slack so the mutation operators can move.
        let pct = *[98usize, 90, 75].choose(rng).expect("non-empty");
        let budget = (cores * capacity) * pct / 100;
        let max_windows = (0..ctx.partitioning.len())
            .map(|i| ctx.partitioning.entry(i).windows)
            .max()
            .unwrap_or(1)
            .max(1);
        let t_fit = fit_window_target(ctx.partitioning, budget, max_windows);
        // Log-uniform sample in [t_fit, max_windows], biased low (more
        // replication) by taking the min of two draws.
        let (lo, hi) = ((t_fit.max(1) as f64).ln(), (max_windows.max(2) as f64).ln());
        let draw = |rng: &mut StdRng| rng.gen_range(lo..=hi).exp().round().max(1.0) as usize;
        let t = draw(rng).min(draw(rng));
        let mut occupied: usize = ind.used_crossbars.iter().sum();
        for &mvm in &order {
            let entry = ctx.partitioning.entry(mvm);
            let a = entry.ags_per_replica;
            let want = entry.windows.div_ceil(t).max(1);
            let mut extra = want.saturating_sub(1).min(entry.windows.saturating_sub(1));
            // Respect the occupancy budget.
            let per_replica = entry.crossbars_per_replica().max(1);
            extra = extra.min(budget.saturating_sub(occupied) / per_replica);
            while extra > 0 {
                if place_ags(&mut ind, ctx, mvm, extra * a, capacity, rng) {
                    occupied += extra * per_replica;
                    break;
                }
                extra /= 2;
            }
        }
    }
    Ok(ind)
}

/// Smallest window target `t` whose windows-proportional replication
/// (`R = ceil(windows/t)`) fits the crossbar `budget`.
fn fit_window_target(partitioning: &Partitioning, budget: usize, max_windows: usize) -> usize {
    let cost = |t: usize| -> usize {
        (0..partitioning.len())
            .map(|i| {
                let e = partitioning.entry(i);
                e.windows.div_ceil(t) * e.crossbars_per_replica()
            })
            .sum()
    };
    let (mut lo, mut hi) = (1usize, max_windows);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if cost(mid) <= budget {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Tournament selection.
fn tournament<'a>(population: &'a [Individual], k: usize, rng: &mut StdRng) -> &'a Individual {
    let mut best = &population[rng.gen_range(0..population.len())];
    for _ in 1..k.max(1) {
        let cand = &population[rng.gen_range(0..population.len())];
        if cand.fitness < best.fitness {
            best = cand;
        }
    }
    best
}

/// Applies one random mutation operator; returns whether the chromosome
/// changed.
///
/// Node selection is criticality-biased in HT mode: half of the grow
/// operations target a node on the current bottleneck core, and half of
/// the shrinks target the most over-replicated node. Uniform-random
/// selection (the paper's wording) needs far more generations to walk
/// the `max`-objective plateau; the bias changes which node is drawn,
/// not what the operators do.
fn mutate(
    ind: &mut Draft,
    ctx: &GaContext<'_>,
    capacity: usize,
    rng: &mut StdRng,
    tally: &mut MutationTally,
    ms: &mut MutScratch,
) -> bool {
    let n = ctx.partitioning.len();
    match rng.gen_range(0..4u8) {
        0 => {
            let node = if ctx.mode == PipelineMode::HighThroughput && rng.gen_bool(0.5) {
                critical_node(ind, ctx, ms).unwrap_or_else(|| rng.gen_range(0..n))
            } else {
                rng.gen_range(0..n)
            };
            mutate_grow(ind, ctx, node, capacity, rng, tally)
        }
        1 => {
            let node = if rng.gen_bool(0.5) {
                over_replicated_node(ind, ctx).unwrap_or_else(|| rng.gen_range(0..n))
            } else {
                rng.gen_range(0..n)
            };
            mutate_shrink(ind, ctx, node, rng, ms)
        }
        2 => mutate_spread(ind, ctx, capacity, rng, ms),
        _ => mutate_merge(ind, ctx, capacity, rng, ms),
    }
}

/// A node with AGs on the bottleneck core (largest estimated HT time),
/// preferring the gene with the largest cycle count there.
fn critical_node(ind: &Draft, ctx: &GaContext<'_>, ms: &mut MutScratch) -> Option<MvmIdx> {
    let plan = ind.chromosome.replication(ctx.partitioning).ok()?;
    let mut worst: Option<(u64, usize)> = None;
    for core in 0..ind.chromosome.cores() {
        ms.items.clear();
        for (_, gene) in ind.chromosome.genes_of_core(core) {
            ms.items.push((
                gene.ag_count,
                plan.windows_per_replica(ctx.partitioning, gene.mvm),
            ));
        }
        let t = crate::fitness::ht_core_time_in_place(ctx.hw, &mut ms.items);
        if worst.is_none_or(|(w, _)| t > w) {
            worst = Some((t, core));
        }
    }
    let (_, core) = worst?;
    ind.chromosome
        .genes_of_core(core)
        .max_by_key(|(_, g)| plan.windows_per_replica(ctx.partitioning, g.mvm))
        .map(|(_, g)| g.mvm)
}

/// The replicated node with the smallest windows-per-replica (the most
/// over-replicated one; shrinking it frees the most useful capacity).
fn over_replicated_node(ind: &Draft, ctx: &GaContext<'_>) -> Option<MvmIdx> {
    let plan = ind.chromosome.replication(ctx.partitioning).ok()?;
    (0..ctx.partitioning.len())
        .filter(|&i| plan.count(i) > 1)
        .min_by_key(|&i| plan.windows_per_replica(ctx.partitioning, i))
}

/// Operator I: increase `node`'s replication, scattering the new AGs
/// onto cores with free capacity. The step size is geometric (up to
/// doubling the current count) so large targets are reachable in few
/// generations; falls back to +1, rolls back entirely on failure.
fn mutate_grow(
    ind: &mut Draft,
    ctx: &GaContext<'_>,
    node: MvmIdx,
    capacity: usize,
    rng: &mut StdRng,
    tally: &mut MutationTally,
) -> bool {
    let entry = ctx.partitioning.entry(node);
    let a = entry.ags_per_replica;
    let cur = ind.chromosome.ag_total(node) / a.max(1);
    // Replicating beyond one replica per window is pure waste.
    let headroom = entry.windows.saturating_sub(cur);
    if headroom == 0 {
        return false;
    }
    let mut amount = rng.gen_range(1..=cur.max(1)).min(headroom);
    while amount > 0 {
        if place_ags(ind, ctx, node, amount * a, capacity, rng) {
            tally.grow_ok += 1;
            return true;
        }
        amount /= 2;
    }
    tally.grow_failed += 1;
    false
}

/// Operator II: decrease `node`'s replication (geometric step, at least
/// one replica remains), recovering the crossbars from its genes.
fn mutate_shrink(
    ind: &mut Draft,
    ctx: &GaContext<'_>,
    node: MvmIdx,
    rng: &mut StdRng,
    ms: &mut MutScratch,
) -> bool {
    let entry = ctx.partitioning.entry(node);
    let a = entry.ags_per_replica;
    let total = ind.chromosome.ag_total(node);
    if total < 2 * a {
        return false; // last replica must stay
    }
    let cur = total / a;
    let amount = rng.gen_range(1..cur);
    let mut to_remove = amount * a;
    // Walk this node's gene slots in random order, shaving counts.
    ms.slots.clear();
    ms.slots.extend(
        ind.chromosome
            .genes()
            .filter(|(_, g)| g.mvm == node)
            .map(|(s, _)| s),
    );
    ms.slots.shuffle(rng);
    for i in 0..ms.slots.len() {
        let slot = ms.slots[i];
        if to_remove == 0 {
            break;
        }
        let gene = match ind.chromosome.gene(slot) {
            Some(g) => g,
            None => continue,
        };
        let take = gene.ag_count.min(to_remove);
        let core = ind.chromosome.core_of_slot(slot);
        ind.used_crossbars[core] -= take * entry.crossbars_per_ag;
        to_remove -= take;
        let left = gene.ag_count - take;
        ind.chromosome.set_gene(
            slot,
            (left > 0).then_some(Gene {
                mvm: node,
                ag_count: left,
            }),
        );
    }
    debug_assert_eq!(to_remove, 0);
    true
}

/// Operator III: spread part of a random gene's AGs to another core.
fn mutate_spread(
    ind: &mut Draft,
    ctx: &GaContext<'_>,
    capacity: usize,
    rng: &mut StdRng,
    ms: &mut MutScratch,
) -> bool {
    ms.genes.clear();
    ms.genes
        .extend(ind.chromosome.genes().filter(|(_, g)| g.ag_count >= 2));
    let Some(&(slot, gene)) = ms.genes.choose(rng) else {
        return false;
    };
    let entry = ctx.partitioning.entry(gene.mvm);
    let src_core = ind.chromosome.core_of_slot(slot);
    let move_n = rng.gen_range(1..gene.ag_count);
    let needed = move_n * entry.crossbars_per_ag;

    let cores = ind.chromosome.cores();
    let start = rng.gen_range(0..cores);
    for off in 0..cores {
        let dst = (start + off) % cores;
        if dst == src_core || ind.used_crossbars[dst] + needed > capacity {
            continue;
        }
        let dst_slot = ind
            .chromosome
            .slot_of_node_on_core(dst, gene.mvm)
            .or_else(|| ind.chromosome.free_slot_of_core(dst));
        let Some(dst_slot) = dst_slot else { continue };
        // Commit.
        let dst_count = ind.chromosome.gene(dst_slot).map_or(0, |g| g.ag_count);
        ind.chromosome.set_gene(
            dst_slot,
            Some(Gene {
                mvm: gene.mvm,
                ag_count: dst_count + move_n,
            }),
        );
        ind.chromosome.set_gene(
            slot,
            Some(Gene {
                mvm: gene.mvm,
                ag_count: gene.ag_count - move_n,
            }),
        );
        ind.used_crossbars[src_core] -= needed;
        ind.used_crossbars[dst] += needed;
        return true;
    }
    false
}

/// Operator IV: merge a whole gene into a gene of the same node on
/// another core.
fn mutate_merge(
    ind: &mut Draft,
    ctx: &GaContext<'_>,
    capacity: usize,
    rng: &mut StdRng,
    ms: &mut MutScratch,
) -> bool {
    ms.genes.clear();
    ms.genes.extend(ind.chromosome.genes());
    let Some(&(slot, gene)) = ms.genes.choose(rng) else {
        return false;
    };
    let entry = ctx.partitioning.entry(gene.mvm);
    let src_core = ind.chromosome.core_of_slot(slot);
    let needed = gene.ag_count * entry.crossbars_per_ag;

    // Candidate targets: other cores already hosting this node.
    ms.targets.clear();
    ms.targets.extend(
        ms.genes
            .iter()
            .copied()
            .filter(|&(s, g)| g.mvm == gene.mvm && ind.chromosome.core_of_slot(s) != src_core),
    );
    ms.targets.shuffle(rng);
    for i in 0..ms.targets.len() {
        let (dst_slot, dst_gene) = ms.targets[i];
        let dst_core = ind.chromosome.core_of_slot(dst_slot);
        if ind.used_crossbars[dst_core] + needed > capacity {
            continue;
        }
        ind.chromosome.set_gene(
            dst_slot,
            Some(Gene {
                mvm: gene.mvm,
                ag_count: dst_gene.ag_count + gene.ag_count,
            }),
        );
        ind.chromosome.set_gene(slot, None);
        ind.used_crossbars[src_core] -= needed;
        ind.used_crossbars[dst_core] += needed;
        return true;
    }
    false
}

/// Places `count` AGs of `node` on cores with capacity and slot room,
/// scanning from a random start. Cores already hosting the node are
/// preferred (they need no fresh slot), which keeps slot pressure low.
/// All-or-nothing: rolls back on failure.
fn place_ags(
    ind: &mut Draft,
    ctx: &GaContext<'_>,
    node: MvmIdx,
    count: usize,
    capacity: usize,
    rng: &mut StdRng,
) -> bool {
    let cores = ind.chromosome.cores();
    let start = rng.gen_range(0..cores);
    place_ags_from(ind, ctx, node, count, capacity, start)
}

/// Deterministic variant of [`place_ags`] scanning from `start`.
fn place_ags_from(
    ind: &mut Draft,
    ctx: &GaContext<'_>,
    node: MvmIdx,
    count: usize,
    capacity: usize,
    start: usize,
) -> bool {
    let entry = ctx.partitioning.entry(node);
    let xb = entry.crossbars_per_ag;
    let cores = ind.chromosome.cores();
    let mut placed: Vec<usize> = Vec::with_capacity(count); // slots touched

    'outer: for _ in 0..count {
        // First pass: merge into a core already hosting the node.
        let mut fallback: Option<(usize, usize)> = None;
        for off in 0..cores {
            let core = (start + off) % cores;
            if ind.used_crossbars[core] + xb > capacity {
                continue;
            }
            if let Some(slot) = ind.chromosome.slot_of_node_on_core(core, node) {
                let cur = ind.chromosome.gene(slot).map_or(0, |g| g.ag_count);
                ind.chromosome.set_gene(
                    slot,
                    Some(Gene {
                        mvm: node,
                        ag_count: cur + 1,
                    }),
                );
                ind.used_crossbars[core] += xb;
                placed.push(slot);
                continue 'outer;
            }
            if fallback.is_none() {
                if let Some(slot) = ind.chromosome.free_slot_of_core(core) {
                    fallback = Some((core, slot));
                }
            }
        }
        // Second pass: open a fresh slot.
        if let Some((core, slot)) = fallback {
            ind.chromosome.set_gene(
                slot,
                Some(Gene {
                    mvm: node,
                    ag_count: 1,
                }),
            );
            ind.used_crossbars[core] += xb;
            placed.push(slot);
            continue 'outer;
        }
        // Could not place this AG: roll back everything.
        for &slot in placed.iter().rev() {
            let core = ind.chromosome.core_of_slot(slot);
            let gene = ind.chromosome.gene(slot).expect("just placed");
            ind.used_crossbars[core] -= xb;
            ind.chromosome.set_gene(
                slot,
                (gene.ag_count > 1).then_some(Gene {
                    mvm: node,
                    ag_count: gene.ag_count - 1,
                }),
            );
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimcomp_ir::models;
    use pimcomp_ir::transform::normalize;

    fn setup(mode: PipelineMode) -> (Graph, HardwareConfig) {
        let g = normalize(&models::tiny_cnn()).unwrap();
        let hw = HardwareConfig::small_test();
        let _ = mode;
        (g, hw)
    }

    fn run(mode: PipelineMode, seed: u64) -> (Chromosome, GaStats, Partitioning) {
        run_with(mode, seed, None)
    }

    fn run_with(
        mode: PipelineMode,
        seed: u64,
        parallelism: Option<NonZeroUsize>,
    ) -> (Chromosome, GaStats, Partitioning) {
        let (g, hw) = setup(mode);
        let p = Partitioning::new(&g, &hw).unwrap();
        let dep = DepInfo::analyze(&g);
        let ctx = GaContext {
            hw: &hw,
            graph: &g,
            partitioning: &p,
            dep: &dep,
            mode,
            core_limit: None,
        };
        let params = GaParams::fast(seed).with_parallelism(parallelism);
        let (best, stats) = optimize(&ctx, &params).unwrap();
        (best, stats, p)
    }

    #[test]
    fn ga_improves_or_matches_initial_fitness_ht() {
        let (_, stats, _) = run(PipelineMode::HighThroughput, 1);
        assert!(stats.final_fitness <= stats.initial_fitness);
        assert!(stats.evaluations > 0);
        assert_eq!(stats.history.len(), GaParams::fast(1).iterations);
    }

    #[test]
    fn ga_improves_or_matches_initial_fitness_ll() {
        let (_, stats, _) = run(PipelineMode::LowLatency, 2);
        assert!(stats.final_fitness <= stats.initial_fitness);
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let (a, _, _) = run(PipelineMode::HighThroughput, 42);
        let (b, _, _) = run(PipelineMode::HighThroughput, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_run_matches_serial_bit_for_bit() {
        for mode in [PipelineMode::HighThroughput, PipelineMode::LowLatency] {
            let (serial_best, serial_stats, _) = run_with(mode, 11, None);
            let (par_best, par_stats, _) = run_with(mode, 11, NonZeroUsize::new(4));
            assert_eq!(serial_best, par_best, "{mode}: chromosomes diverged");
            assert_eq!(serial_stats, par_stats, "{mode}: stats diverged");
        }
    }

    #[test]
    fn eval_stats_are_consistent() {
        let (_, stats, _) = run(PipelineMode::HighThroughput, 9);
        assert_eq!(
            stats.evaluations,
            stats.full_evals + stats.incremental_evals
        );
        let per_gen: usize = stats.evals_per_generation.iter().sum();
        // Initial population accounts for the remainder.
        assert_eq!(stats.evaluations - per_gen, GaParams::fast(9).population);
        // Single-gene mutations dominate, so the incremental path must
        // actually be exercised.
        assert!(stats.incremental_evals > 0, "{stats:?}");
    }

    #[test]
    fn best_chromosome_is_feasible() {
        let (best, _, p) = run(PipelineMode::HighThroughput, 7);
        let hw = HardwareConfig::small_test();
        let used = best.used_crossbars(&p);
        assert!(used.iter().all(|&u| u <= hw.crossbar_capacity_per_core()));
        let plan = best.replication(&p).unwrap();
        assert!(plan.counts().iter().all(|&r| r >= 1));
        let mapping = crate::mapping::CoreMapping::from_chromosome(&best, &p).unwrap();
        mapping.validate(&p).unwrap();
    }

    #[test]
    fn ga_exploits_replication_when_capacity_allows() {
        // tiny_cnn on the small target leaves plenty of room, so the GA
        // should end with at least one node replicated.
        let (best, _, p) = run(PipelineMode::HighThroughput, 3);
        let plan = best.replication(&p).unwrap();
        assert!(
            plan.counts().iter().any(|&r| r > 1),
            "expected some replication, got {:?}",
            plan.counts()
        );
    }

    #[test]
    fn insufficient_capacity_is_reported() {
        let g = normalize(&models::vgg16()).unwrap();
        let hw = HardwareConfig::small_test(); // far too small for vgg16
        let p = Partitioning::new(&g, &hw).unwrap();
        let dep = DepInfo::analyze(&g);
        let ctx = GaContext {
            hw: &hw,
            graph: &g,
            partitioning: &p,
            dep: &dep,
            mode: PipelineMode::HighThroughput,
            core_limit: None,
        };
        assert!(matches!(
            optimize(&ctx, &GaParams::fast(1)),
            Err(CompileError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn grow_tallies_are_populated_and_thread_invariant() {
        let (_, serial, _) = run_with(PipelineMode::HighThroughput, 5, None);
        let (_, parallel, _) = run_with(PipelineMode::HighThroughput, 5, NonZeroUsize::new(4));
        assert_eq!(serial.grow_successes, parallel.grow_successes);
        assert_eq!(serial.grow_failures, parallel.grow_failures);
        assert!(
            serial.grow_successes > 0,
            "a fast GA run on tiny_cnn should grow at least once: {serial:?}"
        );
    }

    #[test]
    fn budgeted_run_is_a_prefix_of_the_full_run() {
        // Seed streams are keyed by (seed, generation, slot), so a
        // k-generation run draws exactly the streams of the first k
        // generations of a longer run — the property successive-halving
        // drivers rely on when re-running survivors at a larger budget.
        let (g, hw) = setup(PipelineMode::HighThroughput);
        let p = Partitioning::new(&g, &hw).unwrap();
        let dep = DepInfo::analyze(&g);
        let ctx = GaContext {
            hw: &hw,
            graph: &g,
            partitioning: &p,
            dep: &dep,
            mode: PipelineMode::HighThroughput,
            core_limit: None,
        };
        let full = GaParams {
            iterations: 12,
            ..GaParams::fast(21)
        };
        let short = GaParams {
            iterations: 4,
            ..full.clone()
        };
        let (_, full_stats) = optimize(&ctx, &full).unwrap();
        let (_, short_stats) = optimize(&ctx, &short).unwrap();
        assert_eq!(short_stats.history[..], full_stats.history[..4]);
        assert_eq!(
            short_stats.evals_per_generation[..],
            full_stats.evals_per_generation[..4]
        );
        assert_eq!(short_stats.initial_fitness, full_stats.initial_fitness);
    }

    #[test]
    fn stream_seeds_do_not_collide_trivially() {
        let mut seen = std::collections::HashSet::new();
        for stage in 0..64u64 {
            for index in 0..64u64 {
                assert!(seen.insert(stream_seed(42, stage, index)));
            }
        }
    }
}
